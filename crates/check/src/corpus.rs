//! The shared valid-message corpus.
//!
//! One set of representative, *valid* BGP messages feeds both the
//! mutational fuzzer ([`crate::fuzz`]) and the wire crate's
//! corpus-seeded round-trip proptests, so a message shape added here
//! is automatically exercised by both. Every seed must encode and
//! decode cleanly; [`seed_bytes`] asserts as much in tests.

use std::net::Ipv4Addr;

use bgpbench_wire::{
    AsPath, AsPathSegment, Asn, Capability, ErrorCode, LargeCommunity, Message,
    NotificationMessage, OpenMessage, Origin, PathAttribute, Prefix, RouterId, UpdateMessage,
};

/// A prefix that is valid by construction.
fn prefix(a: u8, b: u8, c: u8, d: u8, len: u8) -> Prefix {
    Prefix::new_masked(Ipv4Addr::new(a, b, c, d), len)
        .expect("corpus prefixes are valid by construction")
}

/// A full-table-style UPDATE: mandatory attributes plus a batch of
/// announced prefixes.
fn update_announce() -> UpdateMessage {
    UpdateMessage::builder()
        .attribute(PathAttribute::Origin(Origin::Igp))
        .attribute(PathAttribute::AsPath(AsPath::from_sequence([
            Asn(64512),
            Asn(3356),
            Asn(1299),
        ])))
        .attribute(PathAttribute::NextHop(Ipv4Addr::new(10, 0, 0, 1)))
        .announce_all([
            prefix(10, 0, 0, 0, 8),
            prefix(192, 0, 2, 0, 24),
            prefix(198, 51, 100, 0, 24),
            prefix(203, 0, 113, 0, 24),
        ])
        .build()
}

/// An UPDATE exercising the optional attributes: MED, LOCAL_PREF,
/// ATOMIC_AGGREGATE, AGGREGATOR, COMMUNITIES, LARGE_COMMUNITIES, an
/// AS_SET segment, and an unmodeled transitive attribute.
fn update_rich_attributes() -> UpdateMessage {
    UpdateMessage::builder()
        .attribute(PathAttribute::Origin(Origin::Incomplete))
        .attribute(PathAttribute::AsPath(AsPath::from_segments([
            AsPathSegment::Sequence(vec![Asn(65001), Asn(65002)]),
            AsPathSegment::Set(vec![Asn(64496), Asn(64497)]),
        ])))
        .attribute(PathAttribute::NextHop(Ipv4Addr::new(172, 16, 0, 254)))
        .attribute(PathAttribute::Med(50))
        .attribute(PathAttribute::LocalPref(200))
        .attribute(PathAttribute::AtomicAggregate)
        .attribute(PathAttribute::Aggregator {
            asn: Asn(65001),
            router_id: Ipv4Addr::new(192, 0, 2, 1),
        })
        .attribute(PathAttribute::Communities(vec![
            (65001 << 16) | 100,
            (65001 << 16) | 200,
        ]))
        .attribute(PathAttribute::LargeCommunities(vec![
            LargeCommunity::new(65001, 0, 100),
            LargeCommunity::new(65001, 1, 200),
        ]))
        .attribute(PathAttribute::Unknown {
            flags: 0xC0,
            type_code: 77,
            value: vec![0xDE, 0xAD, 0xBE, 0xEF],
        })
        .announce(prefix(100, 64, 0, 0, 10))
        .build()
}

/// A withdraw-plus-announce UPDATE, the churn-workload shape.
fn update_mixed() -> UpdateMessage {
    UpdateMessage::builder()
        .withdraw_all([prefix(10, 1, 0, 0, 16), prefix(10, 2, 0, 0, 16)])
        .attribute(PathAttribute::Origin(Origin::Egp))
        .attribute(PathAttribute::AsPath(AsPath::from_sequence([Asn(64999)])))
        .attribute(PathAttribute::NextHop(Ipv4Addr::new(10, 9, 9, 9)))
        .announce(prefix(10, 3, 0, 0, 16))
        .build()
}

/// The corpus: every message shape the stack speaks, as typed values.
///
/// Order is stable — the fuzzer's determinism depends on it.
pub fn seed_messages() -> Vec<Message> {
    vec![
        Message::Open(OpenMessage::new(Asn(64512), 180, RouterId(0x0A00_0001))),
        Message::Open(
            OpenMessage::new(Asn(65001), 90, RouterId(0xC0A8_0101))
                .with_capability(Capability::Multiprotocol { afi: 1, safi: 1 })
                .with_capability(Capability::RouteRefresh)
                .with_capability(Capability::Unknown {
                    code: 65,
                    value: vec![0x00, 0x01, 0x02, 0x03],
                }),
        ),
        Message::Update(update_announce()),
        Message::Update(update_rich_attributes()),
        Message::Update(update_mixed()),
        // Withdraw-only UPDATE (end-of-RIB-adjacent shape).
        Message::Update(
            UpdateMessage::builder()
                .withdraw(prefix(192, 0, 2, 0, 24))
                .build(),
        ),
        Message::Notification(NotificationMessage::new(ErrorCode::Cease, 2)),
        Message::Notification(NotificationMessage::with_data(
            ErrorCode::UpdateMessageError,
            1,
            vec![0x40, 0x01, 0x01],
        )),
        Message::Keepalive,
        Message::RouteRefresh { afi: 1, safi: 1 },
    ]
}

/// The corpus as encoded wire images (header included).
///
/// # Panics
///
/// Never for the checked-in corpus: every seed encodes by
/// construction, and the unit tests below pin that.
pub fn seed_bytes() -> Vec<Vec<u8>> {
    seed_messages()
        .iter()
        .filter_map(|m| m.encode().ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_encodes_and_roundtrips() {
        let messages = seed_messages();
        let bytes = seed_bytes();
        assert_eq!(
            messages.len(),
            bytes.len(),
            "a corpus seed failed to encode"
        );
        for (message, image) in messages.iter().zip(&bytes) {
            let (decoded, consumed) = Message::decode(image).unwrap();
            assert_eq!(consumed, image.len());
            assert_eq!(&decoded, message);
        }
    }

    #[test]
    fn corpus_covers_every_message_type() {
        use std::collections::BTreeSet;
        let types: BTreeSet<u8> = seed_messages()
            .iter()
            .map(|m| m.message_type().to_wire())
            .collect();
        assert_eq!(types.into_iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
    }
}
