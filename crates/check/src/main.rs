//! `bgpbench-check`: the workspace's static-analysis and fuzzing
//! front end.
//!
//! ```text
//! bgpbench-check lint [--root DIR] [--allow FILE] [--json]
//! bgpbench-check fuzz-wire [--seed N] [--iters N] [--target wire|trace|mrt]
//! bgpbench-check fuzz-wire --repro HEX
//! bgpbench-check trace-schema PATH
//! bgpbench-check races [--seeded]        (needs --features check-sync)
//! ```
//!
//! `lint` exits 1 when any unwaived violation exists; `fuzz-wire`
//! exits 1 when a mutant violates a fuzz property (and prints a
//! minimized hex reproducer); `trace-schema` exits 1 when a
//! `--trace` dump is not valid Chrome trace-event JSON; `races` runs
//! the instrumented parallel models under the happens-before detector
//! and exits 1 on any unordered conflicting access pair (`--seeded`
//! inverts it: run the deliberately racy model and exit 0 only if the
//! detector catches it). All are wired into CI.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bgpbench_check::allow::Allowlist;
use bgpbench_check::{fuzz, lint};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("fuzz-wire") => run_fuzz(&args[1..]),
        Some("trace-schema") => run_trace_schema(&args[1..]),
        Some("races") => run_races(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print_usage();
            ExitCode::SUCCESS
        }
        other => {
            if let Some(cmd) = other {
                eprintln!("unknown command `{cmd}`\n");
            }
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  \
         bgpbench-check lint [--root DIR] [--allow FILE] [--json]\n  \
         bgpbench-check fuzz-wire [--seed N] [--iters N] [--target wire|trace|mrt]\n  \
         bgpbench-check fuzz-wire --repro HEX\n  \
         bgpbench-check trace-schema PATH\n  \
         bgpbench-check races [--seeded]"
    );
}

/// Validates a `--trace` dump as Chrome trace-event JSON and prints
/// its track census (the CI trace-smoke step gates on this).
fn run_trace_schema(args: &[String]) -> ExitCode {
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("trace-schema needs the path of a trace dump");
        return ExitCode::from(2);
    };
    let body = match std::fs::read_to_string(path) {
        Ok(body) => body,
        Err(err) => {
            eprintln!("{path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match bgpbench_telemetry::trace::export::validate_chrome_json(&body) {
        Ok(stats) => {
            println!(
                "trace-schema: {path}: {} event(s), {} thread / {} shard / {} peer track(s)",
                stats.events, stats.thread_tracks, stats.shard_tracks, stats.peer_tracks
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("{path}: invalid Chrome trace JSON: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Value of `--flag VALUE` in `args`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// The workspace root: `--root`, else the nearest ancestor of the
/// current directory whose `Cargo.toml` declares `[workspace]`, else
/// this crate's grandparent (checked-out layout).
fn workspace_root(args: &[String]) -> PathBuf {
    if let Some(root) = flag_value(args, "--root") {
        return PathBuf::from(root);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            break;
        }
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap_or_else(|| Path::new("."))
        .to_path_buf()
}

fn run_lint(args: &[String]) -> ExitCode {
    let root = workspace_root(args);
    let allow_path = flag_value(args, "--allow")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("check/allow.toml"));

    let allowlist = if allow_path.is_file() {
        match std::fs::read_to_string(&allow_path) {
            Ok(text) => match Allowlist::parse(&text) {
                Ok(list) => list,
                Err(err) => {
                    eprintln!("{}: {err}", allow_path.display());
                    return ExitCode::FAILURE;
                }
            },
            Err(err) => {
                eprintln!("{}: {err}", allow_path.display());
                return ExitCode::FAILURE;
            }
        }
    } else {
        Allowlist::empty()
    };

    let report = match lint::run(&root, &allowlist) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("lint walk failed under {}: {err}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if args.iter().any(|a| a == "--json") {
        // One JSON object per finding, violations then waived, each
        // tagged with whether the allowlist covered it. Machine
        // consumers get every field the text diagnostic carries.
        for violation in &report.violations {
            println!("{}", lint::finding_json(violation, false));
        }
        for waived in &report.waived_findings {
            println!("{}", lint::finding_json(waived, true));
        }
    } else {
        for violation in &report.violations {
            println!("{violation}");
        }
        println!(
            "lint: {} file(s) scanned, {} violation(s), {} waived",
            report.files_scanned,
            report.violations.len(),
            report.waived
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs the instrumented parallel models under the happens-before
/// detector. Without the `check-sync` feature the shims record
/// nothing, so the pass explains itself and exits 2 rather than
/// reporting a vacuous pass.
#[cfg(feature = "check-sync")]
fn run_races(args: &[String]) -> ExitCode {
    use bgpbench_check::race_models;

    if args.iter().any(|a| a == "--seeded") {
        // Negative control: the detector must catch the planted race.
        let report = race_models::seeded_race_model();
        for race in &report.races {
            println!("races: seeded: {race}");
        }
        return if report.races.iter().any(|race| race.write_write()) {
            println!(
                "races: seeded control caught ({} access(es) over {} cell(s))",
                report.accesses_checked, report.cells_seen
            );
            ExitCode::SUCCESS
        } else {
            println!("races: seeded control NOT caught — detector is broken");
            ExitCode::FAILURE
        };
    }

    let mut racy = 0usize;
    for (name, expect_clean, report) in race_models::run_all() {
        for race in &report.races {
            println!("races: {name}: {race}");
        }
        let verdict = if report.is_race_free() { "ok" } else { "RACES" };
        println!(
            "races: {name}: {verdict} — {} event(s) replayed, {} access(es) over {} cell(s), {} race(s)",
            report.events_replayed,
            report.accesses_checked,
            report.cells_seen,
            report.races.len()
        );
        if expect_clean && !report.is_race_free() {
            racy += 1;
        }
    }
    if racy == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(not(feature = "check-sync"))]
fn run_races(_args: &[String]) -> ExitCode {
    eprintln!(
        "races: the shims recorded nothing — rebuild with\n  \
         cargo run -p bgpbench-check --features check-sync -- races"
    );
    ExitCode::from(2)
}

fn run_fuzz(args: &[String]) -> ExitCode {
    let target = match fuzz::Target::from_name(flag_value(args, "--target").unwrap_or("wire")) {
        Some(target) => target,
        None => {
            eprintln!("--target expects `wire`, `trace`, or `mrt`");
            return ExitCode::from(2);
        }
    };
    if let Some(hex) = flag_value(args, "--repro") {
        return match fuzz::run_reproducer_target(target, hex) {
            Ok(()) => {
                println!("reproducer no longer fails");
                ExitCode::SUCCESS
            }
            Err(failure) => {
                println!("reproducer still fails: {failure}");
                ExitCode::FAILURE
            }
        };
    }

    let seed = match flag_value(args, "--seed").unwrap_or("7").parse::<u64>() {
        Ok(seed) => seed,
        Err(_) => {
            eprintln!("--seed expects an unsigned integer");
            return ExitCode::from(2);
        }
    };
    let iters = match flag_value(args, "--iters")
        .unwrap_or("10000")
        .parse::<u64>()
    {
        Ok(iters) => iters,
        Err(_) => {
            eprintln!("--iters expects an unsigned integer");
            return ExitCode::from(2);
        }
    };

    let report = fuzz::run_target(target, seed, iters);
    println!(
        "fuzz-wire[{}]: seed {}, {} iteration(s): {} decoded, {} rejected with typed errors",
        target.name(),
        report.seed,
        report.iterations,
        report.decoded_ok,
        report.rejected
    );
    match report.failure {
        None => ExitCode::SUCCESS,
        Some(reproducer) => {
            println!("FAILURE at {reproducer}");
            println!(
                "replay with: bgpbench-check fuzz-wire --target {} --repro {}",
                target.name(),
                reproducer.hex()
            );
            ExitCode::FAILURE
        }
    }
}
