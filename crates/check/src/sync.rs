//! Lock-order-cycle detection over recorded acquisition logs.
//!
//! The `parking_lot` shim, built with its `check-sync` feature,
//! records a `(held, acquired)` edge every time a thread takes lock B
//! while holding lock A. Deadlock requires a cycle in that edge
//! relation *and* an unlucky schedule; checking for the cycle finds
//! the hazard on every schedule, including the lucky ones CI gets.
//!
//! The graph logic is plain data (`u64` lock ids), so it tests without
//! the feature; [`recorded_lock_graph`] bridges to the shim's recorder
//! when the feature is on.

use std::collections::{BTreeMap, BTreeSet};

/// A directed graph over lock ids: edge `a → b` means some thread
/// acquired `b` while holding `a`.
#[derive(Debug, Default, Clone)]
pub struct LockOrderGraph {
    edges: BTreeMap<u64, BTreeSet<u64>>,
}

impl LockOrderGraph {
    /// An empty graph.
    pub fn new() -> Self {
        LockOrderGraph::default()
    }

    /// Builds a graph from recorded `(held, acquired)` pairs.
    pub fn from_edges<I: IntoIterator<Item = (u64, u64)>>(pairs: I) -> Self {
        let mut graph = LockOrderGraph::new();
        for (held, acquired) in pairs {
            graph.add_edge(held, acquired);
        }
        graph
    }

    /// Records that `acquired` was taken while `held` was held.
    pub fn add_edge(&mut self, held: u64, acquired: u64) {
        self.edges.entry(held).or_default().insert(acquired);
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeSet::len).sum()
    }

    /// Finds a lock-order cycle, if one exists, as the lock-id path
    /// `[a, b, …, a]`. Deterministic: the smallest cycle-starting node
    /// (by id) is explored first.
    pub fn find_cycle(&self) -> Option<Vec<u64>> {
        // Iterative DFS with three-color marking. `path` carries the
        // current chain so the cycle can be reported, not just
        // detected.
        let mut done: BTreeSet<u64> = BTreeSet::new();
        for &start in self.edges.keys() {
            if done.contains(&start) {
                continue;
            }
            let mut path: Vec<u64> = Vec::new();
            let mut on_path: BTreeSet<u64> = BTreeSet::new();
            // Each stack frame is (node, entered); a node is pushed
            // once to enter and once to leave.
            let mut stack: Vec<(u64, bool)> = vec![(start, false)];
            while let Some((node, leaving)) = stack.pop() {
                if leaving {
                    path.pop();
                    on_path.remove(&node);
                    done.insert(node);
                    continue;
                }
                if on_path.contains(&node) {
                    // Found: trim the path to the cycle and close it.
                    let from = path.iter().position(|&n| n == node).unwrap_or(0);
                    let mut cycle: Vec<u64> = path[from..].to_vec();
                    cycle.push(node);
                    return Some(cycle);
                }
                if done.contains(&node) {
                    continue;
                }
                path.push(node);
                on_path.insert(node);
                stack.push((node, true));
                if let Some(next) = self.edges.get(&node) {
                    // Reverse so the smallest id is explored first.
                    for &n in next.iter().rev() {
                        stack.push((n, false));
                    }
                }
            }
        }
        None
    }
}

/// The lock-order graph of everything recorded since the last
/// [`parking_lot::sync_check::reset`].
#[cfg(feature = "check-sync")]
pub fn recorded_lock_graph() -> LockOrderGraph {
    LockOrderGraph::from_edges(parking_lot::sync_check::edges())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_order_has_no_cycle() {
        // Three threads all take locks in id order.
        let graph = LockOrderGraph::from_edges([(1, 2), (2, 3), (1, 3)]);
        assert_eq!(graph.find_cycle(), None);
        assert_eq!(graph.edge_count(), 3);
    }

    #[test]
    fn two_lock_inversion_is_found() {
        let graph = LockOrderGraph::from_edges([(1, 2), (2, 1)]);
        let cycle = graph.find_cycle().expect("inversion must be detected");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() >= 3, "cycle should list both locks: {cycle:?}");
    }

    #[test]
    fn longer_cycle_is_found() {
        let graph = LockOrderGraph::from_edges([(1, 2), (2, 3), (3, 4), (4, 2)]);
        let cycle = graph.find_cycle().expect("2→3→4→2 must be detected");
        // The reported cycle is closed and involves the real loop, not
        // the entry edge.
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.contains(&2) && cycle.contains(&3) && cycle.contains(&4));
        assert!(!cycle[..cycle.len() - 1].contains(&1));
    }

    #[test]
    fn self_edge_is_a_cycle() {
        // Re-acquiring a lock you already hold: instant deadlock with
        // a non-reentrant mutex.
        let graph = LockOrderGraph::from_edges([(7, 7)]);
        assert_eq!(graph.find_cycle(), Some(vec![7, 7]));
    }

    #[test]
    fn diamond_is_not_a_cycle() {
        // a→b, a→c, b→d, c→d: converging paths, no loop.
        let graph = LockOrderGraph::from_edges([(1, 2), (1, 3), (2, 4), (3, 4)]);
        assert_eq!(graph.find_cycle(), None);
    }
}
