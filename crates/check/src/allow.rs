//! The lint allowlist (`check/allow.toml`).
//!
//! Violations the repo keeps on purpose are declared here with a
//! justification, so the lint pass stays zero-tolerance for anything
//! new. The file is a small TOML subset parsed in tree (no `toml`
//! crate in this environment): a sequence of `[[allow]]` tables with
//! string-valued keys.
//!
//! ```toml
//! [[allow]]
//! rule = "no-panic"
//! path = "crates/rib/src/fxhash.rs"
//! contains = "try_into().unwrap()"
//! reason = "chunks_exact(8) guarantees an 8-byte slice"
//! ```
//!
//! `rule` and `path` select violations; `contains` (optional) narrows
//! the entry to lines containing the substring, so a file-wide waiver
//! does not mask unrelated new violations; `reason` is mandatory —
//! an allowlist entry without a why is a lint violation itself.

use std::fmt;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The lint rule id this entry waives (e.g. `no-panic`).
    pub rule: String,
    /// Repo-relative path (forward slashes) of the waived file.
    pub path: String,
    /// When set, only lines containing this substring are waived.
    pub contains: Option<String>,
    /// Why the violation is intentional.
    pub reason: String,
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AllowParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "allow.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for AllowParseError {}

impl Allowlist {
    /// An empty allowlist (everything is a violation).
    pub fn empty() -> Self {
        Allowlist::default()
    }

    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Self, AllowParseError> {
        let mut entries = Vec::new();
        let mut current: Option<(usize, Vec<(String, String)>)> = None;

        let finish = |current: &mut Option<(usize, Vec<(String, String)>)>,
                      entries: &mut Vec<AllowEntry>|
         -> Result<(), AllowParseError> {
            if let Some((line, pairs)) = current.take() {
                let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone());
                let missing = |key: &str| AllowParseError {
                    line,
                    message: format!("[[allow]] entry is missing required key `{key}`"),
                };
                entries.push(AllowEntry {
                    rule: get("rule").ok_or_else(|| missing("rule"))?,
                    path: get("path").ok_or_else(|| missing("path"))?,
                    contains: get("contains"),
                    reason: get("reason").ok_or_else(|| missing("reason"))?,
                });
            }
            Ok(())
        };

        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = match raw.find('#') {
                // A `#` outside a quoted value starts a comment.
                Some(pos) if !in_string(raw, pos) => &raw[..pos],
                _ => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                finish(&mut current, &mut entries)?;
                current = Some((line_no, Vec::new()));
            } else if let Some((key, value)) = line.split_once('=') {
                let Some((_, pairs)) = current.as_mut() else {
                    return Err(AllowParseError {
                        line: line_no,
                        message: "key outside any [[allow]] table".to_owned(),
                    });
                };
                let key = key.trim().to_owned();
                let value = value.trim();
                let unquoted = value
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| AllowParseError {
                        line: line_no,
                        message: format!("value for `{key}` must be a double-quoted string"),
                    })?;
                pairs.push((key, unescape(unquoted)));
            } else {
                return Err(AllowParseError {
                    line: line_no,
                    message: format!("unrecognized line: {line}"),
                });
            }
        }
        finish(&mut current, &mut entries)?;
        Ok(Allowlist { entries })
    }

    /// The parsed entries.
    pub fn entries(&self) -> &[AllowEntry] {
        &self.entries
    }

    /// The entry waiving `rule` at `path` for a line with `text`,
    /// if any.
    pub fn waiver(&self, rule: &str, path: &str, text: &str) -> Option<&AllowEntry> {
        self.waiver_index(rule, path, text)
            .and_then(|index| self.entries.get(index))
    }

    /// Like [`Allowlist::waiver`], but returns the entry's index, so
    /// the lint pass can track which waivers are still load-bearing
    /// (the `unused-waiver` rule).
    pub fn waiver_index(&self, rule: &str, path: &str, text: &str) -> Option<usize> {
        self.entries.iter().position(|entry| {
            entry.rule == rule
                && entry.path == path
                && entry
                    .contains
                    .as_deref()
                    .is_none_or(|needle| text.contains(needle))
        })
    }
}

/// Whether `pos` in `line` falls inside a double-quoted string.
fn in_string(line: &str, pos: usize) -> bool {
    let mut inside = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if i == pos {
            return inside;
        }
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            inside = !inside;
        }
    }
    false
}

/// Resolves the TOML basic-string escapes the allowlist needs.
fn unescape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_with_and_without_contains() {
        let text = r#"
# repo allowlist
[[allow]]
rule = "no-panic"
path = "crates/rib/src/fxhash.rs"
contains = "try_into().unwrap()"
reason = "chunks_exact(8) guarantees an 8-byte slice"

[[allow]]
rule = "no-instant"
path = "crates/daemon/src/session.rs"
reason = "real TCP hold/keepalive timers need the host clock"
"#;
        let list = Allowlist::parse(text).unwrap();
        assert_eq!(list.entries().len(), 2);
        assert!(list
            .waiver(
                "no-panic",
                "crates/rib/src/fxhash.rs",
                "x.try_into().unwrap()"
            )
            .is_some());
        // `contains` narrows the waiver to matching lines.
        assert!(list
            .waiver("no-panic", "crates/rib/src/fxhash.rs", "y.expect(\"..\")")
            .is_none());
        // File-wide waiver matches any line.
        assert!(list
            .waiver("no-instant", "crates/daemon/src/session.rs", "anything")
            .is_some());
        // Other rules and paths are unaffected.
        assert!(list
            .waiver("no-instant", "crates/rib/src/engine.rs", "anything")
            .is_none());
    }

    #[test]
    fn missing_reason_is_an_error() {
        let text = "[[allow]]\nrule = \"r\"\npath = \"p\"\n";
        let err = Allowlist::parse(text).unwrap_err();
        assert!(err.message.contains("reason"));
    }

    #[test]
    fn key_outside_table_is_an_error() {
        assert!(Allowlist::parse("rule = \"r\"\n").is_err());
    }

    #[test]
    fn comments_inside_strings_are_preserved() {
        let text = "[[allow]]\nrule = \"r\"\npath = \"p\"\nreason = \"uses # in text\"\n";
        let list = Allowlist::parse(text).unwrap();
        assert_eq!(list.entries()[0].reason, "uses # in text");
    }
}
