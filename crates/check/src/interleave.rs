//! A bounded exhaustive-schedule mini-interleaver (loom-lite).
//!
//! Real model checkers (loom) intercept every atomic operation.
//! Offline, this module keeps the useful core for *algebraic*
//! concurrency properties: given each thread's operation sequence, it
//! enumerates **every** interleaving (all order-preserving merges),
//! applies each schedule to a fresh copy of the state, and asserts an
//! invariant on the outcome. If an operation set is genuinely
//! commutative — as sharded counter increments or snapshot merges must
//! be — then every schedule reaches the same result, and a schedule
//! that does not is reported with the exact thread order that broke.
//!
//! The enumeration is exact, so it is bounded: `C(n; k1..km)` (the
//! multinomial) schedules for m threads with ki ops each. [`explore`]
//! refuses budgets above [`MAX_SCHEDULES`] rather than silently
//! sampling.

use std::fmt;

/// Ceiling on enumerated schedules; above this, exhaustiveness would
/// mean minutes of CI time and the test should shrink its op set.
pub const MAX_SCHEDULES: u64 = 200_000;

/// One op in a schedule: `(thread index, op index within thread)`.
pub type ScheduledOp = (usize, usize);

/// Why an exploration could not run or did not hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// The multinomial exceeds [`MAX_SCHEDULES`].
    TooManySchedules {
        /// The exact schedule count.
        count: u64,
    },
    /// The invariant failed on some schedule.
    InvariantViolated {
        /// The schedule that failed, as `(thread, op)` pairs.
        schedule: Vec<ScheduledOp>,
        /// The invariant's message.
        message: String,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::TooManySchedules { count } => write!(
                f,
                "{count} schedules exceed the exhaustiveness budget of {MAX_SCHEDULES}"
            ),
            ExploreError::InvariantViolated { schedule, message } => {
                write!(f, "invariant violated on schedule {schedule:?}: {message}")
            }
        }
    }
}

/// Number of order-preserving merges of sequences with these lengths.
pub fn schedule_count(lens: &[usize]) -> u64 {
    // C(n; k1..km) computed incrementally: product of C(prefix, ki).
    let mut total: u64 = 1;
    let mut placed: u64 = 0;
    for &len in lens {
        for i in 1..=len as u64 {
            placed += 1;
            // total *= placed; total /= i — kept exact by interleaving
            // multiply/divide (C is always integral).
            total = total.saturating_mul(placed) / i;
            if total > MAX_SCHEDULES.saturating_mul(1000) {
                return u64::MAX;
            }
        }
    }
    total
}

/// Explores every interleaving of `threads` (each a list of opaque
/// ops), calling `run(schedule)` per schedule; `run` applies the ops
/// in schedule order to a fresh state and returns `Err(message)` if
/// the invariant does not hold.
///
/// Returns the number of schedules explored.
///
/// # Errors
///
/// [`ExploreError::TooManySchedules`] when the op set is too large to
/// exhaust, [`ExploreError::InvariantViolated`] with the exact failing
/// schedule otherwise.
pub fn explore<F>(thread_op_counts: &[usize], mut run: F) -> Result<u64, ExploreError>
where
    F: FnMut(&[ScheduledOp]) -> Result<(), String>,
{
    let count = schedule_count(thread_op_counts);
    if count > MAX_SCHEDULES {
        return Err(ExploreError::TooManySchedules { count });
    }

    let total_ops: usize = thread_op_counts.iter().sum();
    let mut progress = vec![0usize; thread_op_counts.len()];
    let mut schedule: Vec<ScheduledOp> = Vec::with_capacity(total_ops);
    let mut explored = 0u64;
    backtrack(
        thread_op_counts,
        &mut progress,
        &mut schedule,
        total_ops,
        &mut run,
        &mut explored,
    )?;
    Ok(explored)
}

fn backtrack<F>(
    counts: &[usize],
    progress: &mut [usize],
    schedule: &mut Vec<ScheduledOp>,
    total_ops: usize,
    run: &mut F,
    explored: &mut u64,
) -> Result<(), ExploreError>
where
    F: FnMut(&[ScheduledOp]) -> Result<(), String>,
{
    if schedule.len() == total_ops {
        *explored += 1;
        return run(schedule).map_err(|message| ExploreError::InvariantViolated {
            schedule: schedule.clone(),
            message,
        });
    }
    for thread in 0..counts.len() {
        if progress[thread] < counts[thread] {
            schedule.push((thread, progress[thread]));
            progress[thread] += 1;
            backtrack(counts, progress, schedule, total_ops, run, explored)?;
            progress[thread] -= 1;
            schedule.pop();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_multinomials() {
        assert_eq!(schedule_count(&[1, 1]), 2);
        assert_eq!(schedule_count(&[2, 2]), 6);
        assert_eq!(schedule_count(&[3, 3]), 20);
        assert_eq!(schedule_count(&[2, 2, 2]), 90);
        assert_eq!(schedule_count(&[]), 1);
    }

    #[test]
    fn explores_exactly_the_multinomial() {
        let explored = explore(&[2, 2, 2], |_| Ok(())).unwrap();
        assert_eq!(explored, 90);
    }

    #[test]
    fn commutative_ops_pass() {
        // Two threads each add to a shared sum; addition commutes, so
        // every schedule ends at the same total.
        let ops = [vec![1i64, 2], vec![10, 20]];
        let explored = explore(&[2, 2], |schedule| {
            let mut sum = 0i64;
            for &(t, i) in schedule {
                sum += ops[t][i];
            }
            if sum == 33 {
                Ok(())
            } else {
                Err(format!("sum {sum} != 33"))
            }
        })
        .unwrap();
        assert_eq!(explored, 6);
    }

    #[test]
    fn non_commutative_ops_report_the_schedule() {
        // `set` vs `double` do not commute; some schedule must differ
        // from the sequential baseline.
        let baseline = 10i64; // set(5) then double
        let err = explore(&[1, 1], |schedule| {
            let mut value = 0i64;
            for &(t, _) in schedule {
                value = if t == 0 { 5 } else { value * 2 };
            }
            if value == baseline {
                Ok(())
            } else {
                Err(format!("value {value} != {baseline}"))
            }
        })
        .unwrap_err();
        match err {
            ExploreError::InvariantViolated { schedule, .. } => {
                // double-then-set yields 5, not 10.
                assert_eq!(schedule, vec![(1, 0), (0, 0)]);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn oversized_budgets_are_refused() {
        let err = explore(&[10, 10, 10], |_| Ok(())).unwrap_err();
        assert!(matches!(err, ExploreError::TooManySchedules { .. }));
    }

    #[test]
    fn schedules_preserve_per_thread_order() {
        explore(&[3, 2], |schedule| {
            let mut last = [None::<usize>; 2];
            for &(t, i) in schedule {
                if let Some(prev) = last[t] {
                    if i != prev + 1 {
                        return Err(format!("thread {t} ran op {i} after {prev}"));
                    }
                } else if i != 0 {
                    return Err(format!("thread {t} started at op {i}"));
                }
                last[t] = Some(i);
            }
            Ok(())
        })
        .unwrap();
    }
}
