//! Deterministic schedule exploration for algebraic concurrency
//! properties (loom-lite).
//!
//! Real model checkers (loom) intercept every atomic operation.
//! Offline, this module keeps the useful core: given each thread's
//! operation sequence, enumerate interleavings, apply each schedule to
//! a fresh copy of the state, and assert an invariant on the outcome.
//! A schedule that breaks the invariant is reported with the exact
//! thread order — and a compact, replayable schedule string.
//!
//! Two explorers share the schedule representation:
//!
//! * [`explore`] — the exhaustive baseline: **every** order-preserving
//!   merge, `C(n; k1..km)` (multinomial) schedules. Exact, so bounded:
//!   it refuses budgets above [`MAX_SCHEDULES`] rather than silently
//!   sampling. Kept as the reference the DPOR explorer's pruning is
//!   measured against.
//! * [`explore_dpor`] — dynamic partial-order reduction with sleep
//!   sets (the persistent-set family of prunings). Each op declares
//!   the shared resources it touches ([`Access`]); two ops of
//!   different threads are *independent* when no resource is touched
//!   by both with at least one write. Schedules that differ only by
//!   swapping adjacent independent ops reach the same state, so the
//!   explorer executes exactly **one** schedule per equivalence class
//!   (Mazurkiewicz trace) instead of all of them — for fully
//!   independent op sets that is 1 execution where the multinomial
//!   explodes, which is what lets models scale past 3 threads.
//!
//! The soundness contract of [`explore_dpor`]: the invariant checked
//! by `run` may depend only on state reached through the **declared**
//! accesses. An undeclared shared resource hides reorderings from the
//! pruner exactly like an unannotated memory access hides races from a
//! dynamic detector.
//!
//! A failing schedule is first greedily minimized (adjacent
//! independent-order swaps toward the canonical thread-ascending
//! order, keeping the failure alive), then reported with its
//! [`schedule_string`]; [`replay`] runs such a string again.

use std::fmt;

/// Ceiling on executed schedules; above this, exhaustiveness would
/// mean minutes of CI time and the test should shrink its op set (or
/// declare accesses and move to [`explore_dpor`]).
pub const MAX_SCHEDULES: u64 = 200_000;

/// One op in a schedule: `(thread index, op index within thread)`.
pub type ScheduledOp = (usize, usize);

/// One declared touch of a shared resource by an op, for the DPOR
/// independence relation. Resource ids are opaque to the explorer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The op reads the resource.
    Read(u64),
    /// The op mutates the resource.
    Write(u64),
}

impl Access {
    fn resource(self) -> u64 {
        match self {
            Access::Read(r) | Access::Write(r) => r,
        }
    }

    fn is_write(self) -> bool {
        matches!(self, Access::Write(_))
    }
}

/// Whether two access sets conflict: some resource touched by both,
/// at least one side writing. Conflicting ops are *dependent* — their
/// order can change the outcome and both orders must be explored.
pub fn conflicting(a: &[Access], b: &[Access]) -> bool {
    a.iter().any(|x| {
        b.iter()
            .any(|y| x.resource() == y.resource() && (x.is_write() || y.is_write()))
    })
}

/// Why an exploration could not run or did not hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// The schedule budget exceeds [`MAX_SCHEDULES`]. For [`explore`]
    /// `count` is the exact multinomial; for [`explore_dpor`] it is
    /// the number of trace representatives executed before giving up
    /// (a lower bound).
    TooManySchedules {
        /// The offending schedule count.
        count: u64,
    },
    /// The invariant failed on some schedule.
    InvariantViolated {
        /// The (minimized, for DPOR) failing schedule as `(thread,
        /// op)` pairs.
        schedule: Vec<ScheduledOp>,
        /// The same schedule as a replayable string (see [`replay`]).
        replay: String,
        /// The invariant's message.
        message: String,
    },
    /// A schedule string handed to [`replay`] did not parse or did
    /// not match the declared op counts.
    MalformedSchedule {
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::TooManySchedules { count } => write!(
                f,
                "{count} schedules exceed the exhaustiveness budget of {MAX_SCHEDULES}"
            ),
            ExploreError::InvariantViolated {
                replay, message, ..
            } => {
                write!(f, "invariant violated on schedule \"{replay}\": {message}")
            }
            ExploreError::MalformedSchedule { message } => {
                write!(f, "malformed schedule string: {message}")
            }
        }
    }
}

/// Number of order-preserving merges of sequences with these lengths.
pub fn schedule_count(lens: &[usize]) -> u64 {
    // C(n; k1..km) computed incrementally: product of C(prefix, ki).
    let mut total: u64 = 1;
    let mut placed: u64 = 0;
    for &len in lens {
        for i in 1..=len as u64 {
            placed += 1;
            // total *= placed; total /= i — kept exact by interleaving
            // multiply/divide (C is always integral).
            total = total.saturating_mul(placed) / i;
            if total > MAX_SCHEDULES.saturating_mul(1000) {
                return u64::MAX;
            }
        }
    }
    total
}

/// Renders a schedule as its replayable string: the thread index of
/// each step, comma-separated (per-thread op order is implied).
pub fn schedule_string(schedule: &[ScheduledOp]) -> String {
    let steps: Vec<String> = schedule.iter().map(|&(t, _)| t.to_string()).collect();
    steps.join(",")
}

/// Parses a [`schedule_string`] back into `(thread, op)` pairs,
/// validating it against the per-thread op counts.
///
/// # Errors
///
/// Returns a description of the first malformed step, out-of-range
/// thread, overrun thread, or missing op.
pub fn parse_schedule(text: &str, counts: &[usize]) -> Result<Vec<ScheduledOp>, String> {
    let mut progress = vec![0usize; counts.len()];
    let mut schedule = Vec::new();
    for (pos, step) in text.split(',').enumerate() {
        let step = step.trim();
        let thread: usize = step
            .parse()
            .map_err(|_| format!("step {pos}: \"{step}\" is not a thread index"))?;
        let count = *counts
            .get(thread)
            .ok_or_else(|| format!("step {pos}: thread {thread} out of range"))?;
        if progress[thread] >= count {
            return Err(format!("step {pos}: thread {thread} has only {count} ops"));
        }
        schedule.push((thread, progress[thread]));
        progress[thread] += 1;
    }
    for (thread, (&done, &count)) in progress.iter().zip(counts).enumerate() {
        if done != count {
            return Err(format!("thread {thread} ran {done} of {count} ops"));
        }
    }
    Ok(schedule)
}

/// Re-runs the schedule encoded in `text` against `run` — the replay
/// side of the schedule string a failing exploration emits.
///
/// # Errors
///
/// [`ExploreError::MalformedSchedule`] when the string does not parse
/// against `counts`; [`ExploreError::InvariantViolated`] when the
/// replayed schedule still fails (reproducing the original report).
pub fn replay<F>(text: &str, counts: &[usize], mut run: F) -> Result<(), ExploreError>
where
    F: FnMut(&[ScheduledOp]) -> Result<(), String>,
{
    let schedule = parse_schedule(text, counts)
        .map_err(|message| ExploreError::MalformedSchedule { message })?;
    run(&schedule).map_err(|message| ExploreError::InvariantViolated {
        replay: schedule_string(&schedule),
        schedule,
        message,
    })
}

/// Explores every interleaving of `threads` (each a list of opaque
/// ops), calling `run(schedule)` per schedule; `run` applies the ops
/// in schedule order to a fresh state and returns `Err(message)` if
/// the invariant does not hold.
///
/// Returns the number of schedules explored.
///
/// # Errors
///
/// [`ExploreError::TooManySchedules`] when the op set is too large to
/// exhaust, [`ExploreError::InvariantViolated`] with the exact failing
/// schedule otherwise.
pub fn explore<F>(thread_op_counts: &[usize], mut run: F) -> Result<u64, ExploreError>
where
    F: FnMut(&[ScheduledOp]) -> Result<(), String>,
{
    let count = schedule_count(thread_op_counts);
    if count > MAX_SCHEDULES {
        return Err(ExploreError::TooManySchedules { count });
    }

    let total_ops: usize = thread_op_counts.iter().sum();
    let mut progress = vec![0usize; thread_op_counts.len()];
    let mut schedule: Vec<ScheduledOp> = Vec::with_capacity(total_ops);
    let mut explored = 0u64;
    backtrack(
        thread_op_counts,
        &mut progress,
        &mut schedule,
        total_ops,
        &mut run,
        &mut explored,
    )?;
    Ok(explored)
}

fn backtrack<F>(
    counts: &[usize],
    progress: &mut [usize],
    schedule: &mut Vec<ScheduledOp>,
    total_ops: usize,
    run: &mut F,
    explored: &mut u64,
) -> Result<(), ExploreError>
where
    F: FnMut(&[ScheduledOp]) -> Result<(), String>,
{
    if schedule.len() == total_ops {
        *explored += 1;
        return run(schedule).map_err(|message| ExploreError::InvariantViolated {
            replay: schedule_string(schedule),
            schedule: schedule.clone(),
            message,
        });
    }
    for thread in 0..counts.len() {
        if progress[thread] < counts[thread] {
            schedule.push((thread, progress[thread]));
            progress[thread] += 1;
            backtrack(counts, progress, schedule, total_ops, run, explored)?;
            progress[thread] -= 1;
            schedule.pop();
        }
    }
    Ok(())
}

/// Explores the interleavings of `threads` — where `threads[t][i]` is
/// the declared access set of thread `t`'s op `i` — executing exactly
/// one schedule per Mazurkiewicz trace (equivalence class under
/// swapping adjacent independent ops). `run` has the same contract as
/// in [`explore`], plus the module-level soundness contract: the
/// invariant may depend only on state reached through declared
/// accesses.
///
/// Returns the number of schedules *executed* (trace
/// representatives); the pruning ratio against [`explore`] is
/// `schedule_count / executed`.
///
/// # Errors
///
/// [`ExploreError::TooManySchedules`] if more than [`MAX_SCHEDULES`]
/// representatives exist, [`ExploreError::InvariantViolated`] with a
/// minimized, replayable schedule when the invariant fails.
pub fn explore_dpor<F>(threads: &[Vec<Vec<Access>>], mut run: F) -> Result<u64, ExploreError>
where
    F: FnMut(&[ScheduledOp]) -> Result<(), String>,
{
    let counts: Vec<usize> = threads.iter().map(Vec::len).collect();
    let total_ops: usize = counts.iter().sum();
    let mut progress = vec![0usize; threads.len()];
    let mut schedule: Vec<ScheduledOp> = Vec::with_capacity(total_ops);
    let mut executed = 0u64;
    dpor_dfs(
        threads,
        &counts,
        &mut progress,
        &mut schedule,
        total_ops,
        &[],
        &mut run,
        &mut executed,
    )?;
    Ok(executed)
}

/// Sleep-set DFS (Godefroid). `sleep` holds threads whose next op was
/// already explored from this node's parent in an order equivalent to
/// any order reachable below — re-running them here would only revisit
/// traces. A chosen op wakes exactly the sleeping threads whose next
/// op *conflicts* with it (the orders genuinely differ), which is what
/// collapses each trace to one executed representative.
#[allow(clippy::too_many_arguments)]
fn dpor_dfs<F>(
    threads: &[Vec<Vec<Access>>],
    counts: &[usize],
    progress: &mut [usize],
    schedule: &mut Vec<ScheduledOp>,
    total_ops: usize,
    sleep: &[usize],
    run: &mut F,
    executed: &mut u64,
) -> Result<(), ExploreError>
where
    F: FnMut(&[ScheduledOp]) -> Result<(), String>,
{
    if schedule.len() == total_ops {
        if *executed >= MAX_SCHEDULES {
            return Err(ExploreError::TooManySchedules {
                count: *executed + 1,
            });
        }
        *executed += 1;
        if let Err(message) = run(schedule) {
            let minimized = minimize_failing(schedule, run);
            return Err(ExploreError::InvariantViolated {
                replay: schedule_string(&minimized),
                schedule: minimized,
                message,
            });
        }
        return Ok(());
    }
    let mut sleep: Vec<usize> = sleep.to_vec();
    for thread in 0..counts.len() {
        if progress[thread] >= counts[thread] || sleep.contains(&thread) {
            continue;
        }
        let chosen = &threads[thread][progress[thread]];
        // A sleeping thread stays asleep below only while its next op
        // is independent of the op we just scheduled.
        let child_sleep: Vec<usize> = sleep
            .iter()
            .copied()
            .filter(|&s| !conflicting(&threads[s][progress[s]], chosen))
            .collect();
        schedule.push((thread, progress[thread]));
        progress[thread] += 1;
        dpor_dfs(
            threads,
            counts,
            progress,
            schedule,
            total_ops,
            &child_sleep,
            run,
            executed,
        )?;
        progress[thread] -= 1;
        schedule.pop();
        sleep.push(thread);
    }
    Ok(())
}

/// Greedily minimizes a failing schedule: repeatedly swaps adjacent
/// steps that are out of canonical (thread-ascending) order, keeping
/// each swap only if the schedule still fails. Each accepted swap
/// removes one inversion, so this terminates at a failing schedule as
/// close to the sequential order as the bug allows — the shortest
/// description of *which* reordering breaks.
fn minimize_failing<F>(schedule: &[ScheduledOp], run: &mut F) -> Vec<ScheduledOp>
where
    F: FnMut(&[ScheduledOp]) -> Result<(), String>,
{
    let mut best = schedule.to_vec();
    loop {
        let mut improved = false;
        for i in 0..best.len().saturating_sub(1) {
            // Swapping adjacent steps of *different* threads preserves
            // per-thread op order, so the candidate stays well-formed.
            if best[i].0 > best[i + 1].0 {
                let mut candidate = best.clone();
                candidate.swap(i, i + 1);
                if run(&candidate).is_err() {
                    best = candidate;
                    improved = true;
                }
            }
        }
        if !improved {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_multinomials() {
        assert_eq!(schedule_count(&[1, 1]), 2);
        assert_eq!(schedule_count(&[2, 2]), 6);
        assert_eq!(schedule_count(&[3, 3]), 20);
        assert_eq!(schedule_count(&[2, 2, 2]), 90);
        assert_eq!(schedule_count(&[]), 1);
    }

    #[test]
    fn explores_exactly_the_multinomial() {
        let explored = explore(&[2, 2, 2], |_| Ok(())).unwrap();
        assert_eq!(explored, 90);
    }

    #[test]
    fn commutative_ops_pass() {
        // Two threads each add to a shared sum; addition commutes, so
        // every schedule ends at the same total.
        let ops = [vec![1i64, 2], vec![10, 20]];
        let explored = explore(&[2, 2], |schedule| {
            let mut sum = 0i64;
            for &(t, i) in schedule {
                sum += ops[t][i];
            }
            if sum == 33 {
                Ok(())
            } else {
                Err(format!("sum {sum} != 33"))
            }
        })
        .unwrap();
        assert_eq!(explored, 6);
    }

    #[test]
    fn non_commutative_ops_report_the_schedule() {
        // `set` vs `double` do not commute; some schedule must differ
        // from the sequential baseline.
        let baseline = 10i64; // set(5) then double
        let err = explore(&[1, 1], |schedule| {
            let mut value = 0i64;
            for &(t, _) in schedule {
                value = if t == 0 { 5 } else { value * 2 };
            }
            if value == baseline {
                Ok(())
            } else {
                Err(format!("value {value} != {baseline}"))
            }
        })
        .unwrap_err();
        match err {
            ExploreError::InvariantViolated {
                schedule, replay, ..
            } => {
                // double-then-set yields 5, not 10.
                assert_eq!(schedule, vec![(1, 0), (0, 0)]);
                assert_eq!(replay, "1,0");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn oversized_budgets_are_refused() {
        let err = explore(&[10, 10, 10], |_| Ok(())).unwrap_err();
        assert!(matches!(err, ExploreError::TooManySchedules { .. }));
    }

    #[test]
    fn schedules_preserve_per_thread_order() {
        explore(&[3, 2], |schedule| {
            let mut last = [None::<usize>; 2];
            for &(t, i) in schedule {
                if let Some(prev) = last[t] {
                    if i != prev + 1 {
                        return Err(format!("thread {t} ran op {i} after {prev}"));
                    }
                } else if i != 0 {
                    return Err(format!("thread {t} started at op {i}"));
                }
                last[t] = Some(i);
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn schedule_strings_round_trip() {
        let counts = [2usize, 1, 1];
        let schedule = vec![(0, 0), (2, 0), (0, 1), (1, 0)];
        let text = schedule_string(&schedule);
        assert_eq!(text, "0,2,0,1");
        assert_eq!(parse_schedule(&text, &counts).unwrap(), schedule);
    }

    #[test]
    fn malformed_schedule_strings_are_rejected() {
        assert!(parse_schedule("0,x", &[2]).is_err(), "non-numeric step");
        assert!(parse_schedule("0,3", &[1, 1]).is_err(), "thread range");
        assert!(parse_schedule("0,0", &[1, 1]).is_err(), "thread overrun");
        assert!(parse_schedule("0", &[1, 1]).is_err(), "incomplete");
    }

    #[test]
    fn dpor_executes_once_when_everything_is_independent() {
        // Two threads, two ops each, all on private resources: every
        // interleaving is equivalent, so one representative suffices.
        let threads = vec![
            vec![vec![Access::Write(1)], vec![Access::Write(1)]],
            vec![vec![Access::Write(2)], vec![Access::Write(2)]],
        ];
        let mut ran = 0u64;
        let executed = explore_dpor(&threads, |_| {
            ran += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(executed, 1);
        assert_eq!(ran, 1);
        assert_eq!(schedule_count(&[2, 2]), 6, "vs 6 exhaustive");
    }

    #[test]
    fn dpor_explores_both_orders_of_dependent_ops() {
        let threads = vec![vec![vec![Access::Write(1)]], vec![vec![Access::Write(1)]]];
        let executed = explore_dpor(&threads, |_| Ok(())).unwrap();
        assert_eq!(executed, 2);
    }

    #[test]
    fn dpor_read_read_is_independent_read_write_is_not() {
        let reads = vec![vec![vec![Access::Read(1)]], vec![vec![Access::Read(1)]]];
        assert_eq!(explore_dpor(&reads, |_| Ok(())).unwrap(), 1);

        let mixed = vec![vec![vec![Access::Read(1)]], vec![vec![Access::Write(1)]]];
        assert_eq!(explore_dpor(&mixed, |_| Ok(())).unwrap(), 2);
    }

    #[test]
    fn dpor_scales_where_exhaustion_refuses() {
        // 5 threads × 4 private ops: C(20;4,4,4,4,4) ≈ 3×10^11 — far
        // past the exhaustive budget — but a single trace.
        let threads: Vec<Vec<Vec<Access>>> = (0..5)
            .map(|t| (0..4).map(|_| vec![Access::Write(t as u64)]).collect())
            .collect();
        let counts = [4usize; 5];
        assert!(matches!(
            explore(&counts, |_| Ok(())),
            Err(ExploreError::TooManySchedules { .. })
        ));
        assert_eq!(explore_dpor(&threads, |_| Ok(())).unwrap(), 1);
    }

    #[test]
    fn dpor_finds_seeded_violation_with_minimized_replayable_schedule() {
        // Thread 0: two private preamble ops, then `set(5)`; thread 1:
        // `double`. Only set/double conflict; the invariant (the
        // sequential outcome, 10) breaks exactly when double runs
        // before set.
        let threads = vec![
            vec![
                vec![Access::Write(100)],
                vec![Access::Write(100)],
                vec![Access::Write(1)],
            ],
            vec![vec![Access::Write(1)]],
        ];
        let run = |schedule: &[ScheduledOp]| {
            let mut value = 0i64;
            for &(t, i) in schedule {
                match (t, i) {
                    (0, 2) => value = 5,
                    (1, 0) => value *= 2,
                    _ => {}
                }
            }
            if value == 10 {
                Ok(())
            } else {
                Err(format!("value {value} != 10"))
            }
        };
        let err = explore_dpor(&threads, run).unwrap_err();
        let ExploreError::InvariantViolated {
            schedule,
            replay: replay_text,
            message,
        } = err
        else {
            panic!("expected a violation");
        };
        assert!(message.contains("!= 10"), "{message}");
        // Minimization pushes the inert preamble ops ahead of the
        // context switch: the canonical failing order runs thread 1
        // as late as the bug allows.
        assert_eq!(schedule_string(&schedule), replay_text);
        assert_eq!(replay_text, "0,0,1,0");

        // The emitted string reproduces the failure via replay().
        let replayed = replay(&replay_text, &[3, 1], run).unwrap_err();
        assert!(matches!(replayed, ExploreError::InvariantViolated { .. }));

        // And the sequential order passes, confirming the string
        // carries real information.
        assert!(replay("0,0,0,1", &[3, 1], run).is_ok());
    }

    #[test]
    fn dpor_agrees_with_exhaustive_on_dependent_models() {
        // Fully dependent 2×2: DPOR must still execute all 6 merges.
        let threads = vec![
            vec![vec![Access::Write(1)], vec![Access::Write(1)]],
            vec![vec![Access::Write(1)], vec![Access::Write(1)]],
        ];
        assert_eq!(explore_dpor(&threads, |_| Ok(())).unwrap(), 6);
    }

    #[test]
    fn replay_rejects_malformed_strings() {
        let err = replay("0,banana", &[2], |_| Ok(())).unwrap_err();
        assert!(matches!(err, ExploreError::MalformedSchedule { .. }));
    }
}
