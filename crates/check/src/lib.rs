//! In-tree static analysis and correctness tooling for the bgpbench
//! workspace.
//!
//! The build environment has no crates.io access, so the external
//! analysis stack (dylint, cargo-fuzz, loom, miri) is unavailable.
//! This crate rebuilds the subset the benchmark's claims actually
//! rest on, in tree:
//!
//! * [`lint`] — a token/line-level scanner (backed by the minimal
//!   [`lexer`]) enforcing repo-specific invariants: no panicking
//!   calls in hot-path crates, no host-clock reads outside
//!   `telemetry`/`bench`, no `std::collections::HashMap` in `rib`,
//!   `#![forbid(unsafe_code)]` in every crate root, and every
//!   `MetricId` registered exactly once. Intentional violations live
//!   in `check/allow.toml` ([`allow`]) with one-line justifications.
//! * [`fuzz`] — a deterministic mutational fuzzer over the BGP wire
//!   format, seeded from the valid-message [`corpus`]: decode must
//!   never panic, decode→encode→decode must be a fixpoint, and
//!   failures shrink to a minimized hex reproducer.
//! * [`sync`] + [`interleave`] — a lock-order-cycle detector over the
//!   acquisition log the `parking_lot` shim records under its
//!   `check-sync` feature, and deterministic schedule exploration
//!   (exhaustive baseline plus a sleep-set DPOR explorer) for
//!   algebraic concurrency properties (loom-lite).
//! * [`vclock`] + [`races`] — a dynamic happens-before race detector:
//!   vector-clock replay of the unified synchronization event log the
//!   shims record under `check-sync`, reporting unordered write/write
//!   and read/write access pairs with both source-site labels.
//!
//! The `bgpbench-check` binary fronts the lint pass, the fuzzer, and
//! (when built with `check-sync`) the race pass; the concurrency
//! checks run as `cargo test -p bgpbench-check --features check-sync`.

#![forbid(unsafe_code)]

pub mod allow;
pub mod corpus;
pub mod fuzz;
pub mod interleave;
pub mod lexer;
pub mod lint;
#[cfg(feature = "check-sync")]
pub mod race_models;
pub mod races;
pub mod sync;
pub mod vclock;
