//! The instrumented parallel subsystems the `bgpbench-check races`
//! pass drives, each returning the happens-before analysis of the
//! sync-event log its run produced.
//!
//! Three real models (the same trio the loom-lite interleaving tests
//! cover) plus one deliberately broken one:
//!
//! * [`sharded_train_model`] — `ShardedRibEngine::apply_update_train`:
//!   scoped workers write per-shard outcome cells, the caller merges
//!   them after the joins. Ordering comes from the spawn/join edges
//!   the shard code records.
//! * [`telemetry_merge_model`] — worker threads record into registry
//!   shards and their private trace rings; the parent snapshots and
//!   drains after joining. Ordering comes from join edges (registry)
//!   and ring locks (trace).
//! * [`grid_queue_model`] — `GridRunner::run_map`: workers write
//!   result cells, the collector reads each on the matching
//!   `Finished` message. Ordering comes from the channel edges alone —
//!   no joins are involved while results stream back.
//! * [`seeded_race_model`] — two plain `std::thread::spawn` threads
//!   write one shared cell with **no** recorded ordering edge. The
//!   detector must flag it; this is the pass's built-in negative
//!   control (`races --seeded`).
//!
//! Every model resets the global shim log first, so callers must hold
//! whatever serialization the process needs (the CLI is
//! single-threaded; tests take their `serial()` guard).

#![cfg(feature = "check-sync")]

use std::net::Ipv4Addr;

use bgpbench_core::{CellSpec, GridRunner, Scenario};
use bgpbench_models::pentium3;
use bgpbench_rib::{PeerId, PeerInfo, RouteAttributes, ShardedRibEngine};
use bgpbench_telemetry::{MetricId, Registry, TraceConfig, TraceEventId};
use bgpbench_wire::{AsPath, Asn, Origin, Prefix, RouterId, UpdateMessage};
use parking_lot::sync_check;

use crate::races::{analyze_recorded, RaceReport};

/// Every model in pass order: `(name, zero races expected, report)`.
pub fn run_all() -> Vec<(&'static str, bool, RaceReport)> {
    vec![
        (
            "rib::shard::apply_update_train",
            true,
            sharded_train_model(),
        ),
        (
            "telemetry::registry+trace merge",
            true,
            telemetry_merge_model(),
        ),
        ("core::runner::grid_queue", true, grid_queue_model()),
    ]
}

/// The sharded RIB's parallel train: fan work out to scoped shard
/// workers, join, merge. The recorded spawn/join edges must order
/// every worker's outcome-cell write before the merge's reads.
pub fn sharded_train_model() -> RaceReport {
    sync_check::reset();

    let peer = PeerId(1);
    let info = PeerInfo::new(peer, Asn(65001), RouterId(2), Ipv4Addr::new(10, 0, 0, 2));
    let mut engine = ShardedRibEngine::new(Asn(65000), RouterId(1));
    engine.add_peer(info);
    engine.set_shards(4);

    let prefixes: Vec<Prefix> = (0..32u32)
        .map(|i| {
            Prefix::new_masked(Ipv4Addr::from(0x0A00_0000 + (i << 12)), 20).expect("static prefix")
        })
        .collect();
    let attrs = RouteAttributes::new(
        Origin::Igp,
        AsPath::from_sequence([Asn(65001)]),
        Ipv4Addr::new(10, 0, 0, 2),
    );
    // Eight announce messages of four prefixes each: enough updates to
    // take the parallel path, spread across all four shards.
    let updates: Vec<UpdateMessage> = prefixes
        .chunks(4)
        .map(|chunk| {
            let mut builder = UpdateMessage::builder();
            for attr in attrs.to_wire() {
                builder = builder.attribute(attr);
            }
            builder.announce_all(chunk.iter().copied()).build()
        })
        .collect();
    engine
        .apply_update_train(peer, &updates)
        .expect("train applies");

    analyze_recorded()
}

/// Registry shards plus trace rings: workers write, the parent merges
/// after joining. The join edges (recorded manually here, exactly as
/// the runner records its own) order shard writes before `snapshot`;
/// the per-ring locks order pushes before the drain.
pub fn telemetry_merge_model() -> RaceReport {
    sync_check::reset();

    let registry = Registry::new();
    bgpbench_telemetry::enable_trace(&TraceConfig::with_capacity(64));
    let mut tokens = Vec::new();
    std::thread::scope(|scope| {
        for worker in 0..4usize {
            let registry = &registry;
            let token = sync_check::next_task_token();
            sync_check::on_task_spawn(token);
            tokens.push(token);
            scope.spawn(move || {
                sync_check::on_task_start(token);
                for i in 0..8u64 {
                    registry.add_to_shard(worker, MetricId::RibUpdates, i);
                    registry.observe_in_shard(worker, MetricId::UpdatePrefixes, i * 3);
                    bgpbench_telemetry::trace_instant(TraceEventId::PhaseMark, worker as u64, i);
                }
                sync_check::on_task_end(token);
            });
        }
    });
    // The scope joined every worker when it closed; record the edges
    // it established so the analyzer sees the same ordering the
    // runtime guarantees — exactly what the grid runner does for its
    // own workers.
    for token in tokens {
        sync_check::on_task_join(token);
    }
    let snapshot = registry.snapshot();
    assert!(snapshot.get(MetricId::RibUpdates) > 0);
    let dump = bgpbench_telemetry::trace_dump();
    assert!(dump.total_events() > 0);
    bgpbench_telemetry::disable_trace();
    bgpbench_telemetry::trace_clear();

    analyze_recorded()
}

/// The grid runner's work queue: channel edges alone must order each
/// worker's result write before the collector's read.
pub fn grid_queue_model() -> RaceReport {
    sync_check::reset();

    let cells: Vec<CellSpec> = (0..8)
        .map(|i| {
            CellSpec::new(Scenario::S2, pentium3())
                .prefixes(10)
                .seed(i as u64)
        })
        .collect();
    let runs = GridRunner::new(4).run_map(&cells, |cell| cell.cell_seed());
    assert_eq!(runs.len(), 8);

    analyze_recorded()
}

/// The negative control: two unsynchronized writers to one recorded
/// cell. `std::thread::join` *does* order them at runtime, but nothing
/// records that edge — exactly the shape of a real bug where code
/// relies on an ordering the synchronization doesn't provide.
pub fn seeded_race_model() -> RaceReport {
    sync_check::reset();

    let cell = sync_check::next_cell_id();
    let handles: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                sync_check::record_cell_write(cell, "race_models::seeded_writer");
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("seeded writer panicked");
    }

    analyze_recorded()
}
