//! The workspace lint pass.
//!
//! Six repo-specific invariants, enforced as token scans over
//! [`crate::lexer::scrub`]bed source (comments, strings, and
//! `#[cfg(test)]` items excluded), with `file:line` diagnostics and
//! the `check/allow.toml` waiver mechanism:
//!
//! * `no-panic` — hot-path crates (`wire`, `rib`, `fib`, `telemetry`)
//!   and the daemon's session FSM must not call `unwrap()`/`expect()`
//!   or invoke panicking macros: a malformed UPDATE must surface as a
//!   typed `WireError`, a telemetry record must never abort a measured
//!   run, and an unexpected FSM event must drop the session, not the
//!   process.
//! * `no-instant` — `Instant::now()` belongs to `telemetry` (the
//!   dual-clock tracer) and `bench` (the harness); anywhere else it
//!   is an unattributed clock read the paper's methodology cannot
//!   account for.
//! * `no-std-hashmap` — `rib` hot paths hash `Prefix` keys millions
//!   of times per run; `std::collections::HashMap`'s SipHash costs
//!   ~2× `fxhash` there, so the crate-local `FxHashMap` is mandatory.
//! * `forbid-unsafe` — every crate root carries
//!   `#![forbid(unsafe_code)]`.
//! * `metric-once` — every `MetricId` variant is registered exactly
//!   once in the `MetricId::ALL` catalog (a variant missing from the
//!   catalog silently drops its slot from every snapshot).
//! * `trace-once` — the same exactly-once invariant over the
//!   flight-recorder's `TraceEventId` catalog (an uncatalogued event
//!   would export with no name and break schema validation). The
//!   recorder's hot path is covered by `no-panic` already: the whole
//!   `telemetry` crate is a hot-path crate.
//! * `unused-waiver` — every `check/allow.toml` entry must still
//!   cover at least one raw finding; a waiver nothing matches is
//!   stale documentation that would silently mask the next real
//!   violation at that path.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::allow::Allowlist;
use crate::lexer::{cfg_test_mask, scrub};

/// Crates whose `src/` is a hot path for the `no-panic` rule.
const HOT_PATH_CRATES: [&str; 4] = ["wire", "rib", "fib", "telemetry"];

/// Individual files under the `no-panic` rule in crates that are not
/// hot paths as a whole. The session FSM runs once per peer per simnet
/// tick and inside the live daemon's reader threads; an `unwrap()`
/// there turns a malformed peer message into a process abort. The
/// policy-profile builders run inside measured scenario setup, where a
/// panic aborts a whole grid cell instead of surfacing as a result.
/// The metrics HTTP endpoint serves requests while a measurement is
/// live; a panic in its handler kills the serving thread mid-run.
const HOT_PATH_FILES: [&str; 3] = [
    "crates/daemon/src/fsm.rs",
    "crates/core/src/policy.rs",
    "crates/daemon/src/http.rs",
];

/// Crates allowed to read the host clock.
const CLOCK_CRATES: [&str; 2] = ["telemetry", "bench"];

/// One unwaived lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (e.g. `no-panic`).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.path, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.path, self.line, self.rule, self.message
            )
        }
    }
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings not covered by the allowlist, in path/line order.
    pub violations: Vec<Violation>,
    /// Findings waived by `check/allow.toml`, as full records (the
    /// `--json` output reports them with `"allowlisted": true`).
    pub waived_findings: Vec<Violation>,
    /// Findings waived by `check/allow.toml`.
    pub waived: usize,
    /// Source files scanned.
    pub files_scanned: usize,
    /// Indices into the allowlist's entries that waived at least one
    /// finding; the complement feeds the `unused-waiver` rule.
    pub matched_waivers: BTreeSet<usize>,
}

impl LintReport {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs every rule over the workspace rooted at `root`.
///
/// # Errors
///
/// Returns the first I/O error hit while walking or reading sources.
pub fn run(root: &Path, allowlist: &Allowlist) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    let mut files = Vec::new();
    for top in ["crates", "shims", "src"] {
        collect_rust_sources(&root.join(top), &mut files)?;
    }
    files.sort();

    for file in &files {
        let rel = relative(root, file);
        let source = fs::read_to_string(file)?;
        report.files_scanned += 1;
        scan_file(&rel, &source, allowlist, &mut report);
    }

    check_crate_roots(root, &files, allowlist, &mut report);
    check_id_catalog(
        root,
        &mut report,
        "metric-once",
        "crates/telemetry/src/metrics.rs",
        "MetricId",
    )?;
    check_id_catalog(
        root,
        &mut report,
        "trace-once",
        "crates/telemetry/src/trace/mod.rs",
        "TraceEventId",
    )?;

    append_unused_waiver_findings(&mut report, allowlist);

    report
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    report
        .waived_findings
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

/// Recursively collects `.rs` files, skipping build output.
fn collect_rust_sources(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rust_sources(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Whether `rel` (repo-relative, forward slashes) is library source of
/// one of `crates`' `src/` trees (integration `tests/` excluded).
fn in_crate_src(rel: &str, crates: &[&str]) -> bool {
    crates
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
}

/// Whether `rel` is any scanned library source (crate `src/`, shim
/// `src/`, or the facade), as opposed to integration tests.
fn is_library_source(rel: &str) -> bool {
    (rel.starts_with("crates/") || rel.starts_with("shims/") || rel.starts_with("src/"))
        && !rel.contains("/tests/")
}

fn push_finding(
    report: &mut LintReport,
    allowlist: &Allowlist,
    rule: &'static str,
    path: &str,
    line: usize,
    line_text: &str,
    message: String,
) {
    if let Some(index) = allowlist.waiver_index(rule, path, line_text) {
        report.waived += 1;
        report.matched_waivers.insert(index);
        report.waived_findings.push(Violation {
            rule,
            path: path.to_owned(),
            line,
            message,
        });
    } else {
        report.violations.push(Violation {
            rule,
            path: path.to_owned(),
            line,
            message,
        });
    }
}

/// One lint finding as a JSON object (`bgpbench-check lint --json`).
/// The repo has no JSON dependency, so the string fields are escaped
/// by hand (the control/quote subset JSON requires).
pub fn finding_json(violation: &Violation, allowlisted: bool) -> String {
    format!(
        r#"{{"path":"{}","line":{},"rule":"{}","allowlisted":{},"message":"{}"}}"#,
        json_escape(&violation.path),
        violation.line,
        json_escape(violation.rule),
        allowlisted,
        json_escape(&violation.message)
    )
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `unused-waiver` rule: every allowlist entry must have waived
/// at least one finding during the scan, or it is stale and the run
/// fails.
fn append_unused_waiver_findings(report: &mut LintReport, allowlist: &Allowlist) {
    for (index, entry) in allowlist.entries().iter().enumerate() {
        if !report.matched_waivers.contains(&index) {
            report.violations.push(Violation {
                rule: "unused-waiver",
                path: entry.path.clone(),
                line: 0,
                message: match &entry.contains {
                    Some(needle) => format!(
                        "allow.toml waiver [{} @ {}] (contains \"{needle}\") matches no \
                         finding — delete it",
                        entry.rule, entry.path
                    ),
                    None => format!(
                        "allow.toml waiver [{} @ {}] matches no finding — delete it",
                        entry.rule, entry.path
                    ),
                },
            });
        }
    }
}

/// The token-scan rules (`no-panic`, `no-instant`, `no-std-hashmap`).
fn scan_file(rel: &str, source: &str, allowlist: &Allowlist, report: &mut LintReport) {
    if !is_library_source(rel) {
        return;
    }
    let scrubbed = scrub(source);
    let mask = cfg_test_mask(&scrubbed);
    let original_lines: Vec<&str> = source.lines().collect();

    let panic_rule = in_crate_src(rel, &HOT_PATH_CRATES) || HOT_PATH_FILES.contains(&rel);
    let instant_rule =
        rel.starts_with("crates/") && !in_crate_src(rel, &CLOCK_CRATES) || rel.starts_with("src/");
    let hashmap_rule = in_crate_src(rel, &["rib"]);

    for (idx, line) in scrubbed.lines().enumerate() {
        if mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let line_no = idx + 1;
        let original = original_lines.get(idx).copied().unwrap_or("").trim();
        if panic_rule {
            for token in [
                ".unwrap()",
                ".expect(",
                "panic!",
                "unreachable!",
                "todo!",
                "unimplemented!",
            ] {
                if line.contains(token) {
                    push_finding(
                        report,
                        allowlist,
                        "no-panic",
                        rel,
                        line_no,
                        original,
                        format!("`{token}` in hot-path crate (return a typed error instead)"),
                    );
                }
            }
        }
        if instant_rule && line.contains("Instant::now") {
            push_finding(
                report,
                allowlist,
                "no-instant",
                rel,
                line_no,
                original,
                "host clock read outside `telemetry`/`bench` (use the telemetry tracer)".to_owned(),
            );
        }
        if hashmap_rule && line.contains("collections::HashMap") {
            push_finding(
                report,
                allowlist,
                "no-std-hashmap",
                rel,
                line_no,
                original,
                "std HashMap in rib hot path (use crate::fxhash::FxHashMap)".to_owned(),
            );
        }
    }
}

/// The `forbid-unsafe` rule over every crate root in the file set.
fn check_crate_roots(
    root: &Path,
    files: &[PathBuf],
    allowlist: &Allowlist,
    report: &mut LintReport,
) {
    for file in files {
        let rel = relative(root, file);
        let is_root = rel == "src/lib.rs"
            || (rel.starts_with("crates/") || rel.starts_with("shims/"))
                && rel.ends_with("/src/lib.rs");
        if !is_root {
            continue;
        }
        let Ok(source) = fs::read_to_string(file) else {
            continue;
        };
        if !scrub(&source).contains("#![forbid(unsafe_code)]") {
            push_finding(
                report,
                allowlist,
                "forbid-unsafe",
                &rel,
                0,
                "",
                "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
            );
        }
    }
}

/// The exactly-once catalog rule behind `metric-once` and
/// `trace-once`: every variant of the id enum at `rel` appears in its
/// `ALL` catalog exactly once, and the catalog names no strangers.
fn check_id_catalog(
    root: &Path,
    report: &mut LintReport,
    rule: &'static str,
    rel: &'static str,
    type_name: &str,
) -> io::Result<()> {
    let path = root.join(rel);
    if !path.is_file() {
        report.violations.push(Violation {
            rule,
            path: rel.to_owned(),
            line: 0,
            message: format!("{type_name} catalog file not found"),
        });
        return Ok(());
    }
    let scrubbed = scrub(&fs::read_to_string(&path)?);

    let variants = enum_variants(&scrubbed, &format!("pub enum {type_name}"));
    let registered = catalog_entries(&scrubbed, type_name);
    if variants.is_empty() || registered.is_empty() {
        report.violations.push(Violation {
            rule,
            path: rel.to_owned(),
            line: 0,
            message: format!("could not locate `pub enum {type_name}` or `{type_name}::ALL`"),
        });
        return Ok(());
    }
    for variant in &variants {
        let count = registered.iter().filter(|r| *r == variant).count();
        if count != 1 {
            report.violations.push(Violation {
                rule,
                path: rel.to_owned(),
                line: 0,
                message: format!(
                    "{type_name}::{variant} is registered {count} times in {type_name}::ALL \
                     (want exactly 1)"
                ),
            });
        }
    }
    for entry in &registered {
        if !variants.contains(entry) {
            report.violations.push(Violation {
                rule,
                path: rel.to_owned(),
                line: 0,
                message: format!("{type_name}::ALL names unknown variant `{entry}`"),
            });
        }
    }
    Ok(())
}

/// Variant names of the enum declared by `header` (e.g.
/// `pub enum MetricId`): identifiers at brace depth 1 that are
/// followed by `=` (explicit discriminants) or `,`.
fn enum_variants(scrubbed: &str, header: &str) -> Vec<String> {
    let Some(start) = scrubbed.find(header) else {
        return Vec::new();
    };
    let Some(open) = scrubbed[start..].find('{') else {
        return Vec::new();
    };
    let body_start = start + open + 1;
    let mut depth = 1;
    let mut end = body_start;
    for (i, c) in scrubbed[body_start..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = body_start + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &scrubbed[body_start..end];
    let mut variants = Vec::new();
    // Variants in this catalog are `Name = N,` — split on commas at
    // depth 0 and take the leading identifier.
    for item in body.split(',') {
        let item = item.trim();
        let name: String = item
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() && name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            variants.push(name);
        }
    }
    variants
}

/// `<TypeName>::X` entries of the `ALL` catalog array.
fn catalog_entries(scrubbed: &str, type_name: &str) -> Vec<String> {
    let Some(start) = scrubbed.find("const ALL") else {
        return Vec::new();
    };
    let Some(open) = scrubbed[start..].find("= [") else {
        return Vec::new();
    };
    let body_start = start + open + 3;
    let Some(close) = scrubbed[body_start..].find(']') else {
        return Vec::new();
    };
    let body = &scrubbed[body_start..body_start + close];
    let prefix = format!("{type_name}::");
    body.split(',')
        .filter_map(|item| {
            item.trim()
                .strip_prefix(prefix.as_str())
                .map(|name| name.trim().to_owned())
        })
        .filter(|name| !name.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_and_catalog_extraction() {
        let src = "
pub enum MetricId {
    AlphaOne = 0,
    BetaTwo = 1,
}
impl MetricId {
    pub const ALL: [MetricId; 2] = [
        MetricId::AlphaOne,
        MetricId::BetaTwo,
    ];
}
";
        let scrubbed = scrub(src);
        assert_eq!(
            enum_variants(&scrubbed, "pub enum MetricId"),
            vec!["AlphaOne", "BetaTwo"]
        );
        assert_eq!(
            catalog_entries(&scrubbed, "MetricId"),
            vec!["AlphaOne", "BetaTwo"]
        );
        assert!(
            catalog_entries(&scrubbed, "TraceEventId").is_empty(),
            "a mismatched type name matches nothing"
        );
    }

    #[test]
    fn scan_flags_panics_in_hot_crates_only() {
        let mut report = LintReport::default();
        let allow = Allowlist::empty();
        scan_file(
            "crates/rib/src/x.rs",
            "fn f() { y.unwrap(); }\n",
            &allow,
            &mut report,
        );
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "no-panic");
        assert_eq!(report.violations[0].line, 1);

        let mut report = LintReport::default();
        scan_file(
            "crates/models/src/x.rs",
            "fn f() { y.unwrap(); }\n",
            &allow,
            &mut report,
        );
        assert!(report.is_clean(), "models is not a hot-path crate");
    }

    #[test]
    fn scan_flags_panics_in_the_session_fsm_only() {
        let allow = Allowlist::empty();
        let mut report = LintReport::default();
        scan_file(
            "crates/daemon/src/fsm.rs",
            "fn f() { unreachable!(); }\n",
            &allow,
            &mut report,
        );
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "no-panic");

        let mut report = LintReport::default();
        scan_file(
            "crates/daemon/src/core.rs",
            "fn f() { y.unwrap(); }\n",
            &allow,
            &mut report,
        );
        assert!(report.is_clean(), "the rest of the daemon is exempt");
    }

    #[test]
    fn scan_flags_panics_in_the_policy_profile_builders() {
        let allow = Allowlist::empty();
        let mut report = LintReport::default();
        scan_file(
            "crates/core/src/policy.rs",
            "fn f() { x.expect(\"boom\"); }\n",
            &allow,
            &mut report,
        );
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "no-panic");

        let mut report = LintReport::default();
        scan_file(
            "crates/core/src/harness.rs",
            "fn f() { y.unwrap(); }\n",
            &allow,
            &mut report,
        );
        assert!(report.is_clean(), "the rest of core is exempt");
    }

    #[test]
    fn scan_ignores_tests_and_comments() {
        let mut report = LintReport::default();
        let allow = Allowlist::empty();
        let src = "\
// x.unwrap() in a comment
/// doc: y.expect(\"..\")
fn hot() {}
#[cfg(test)]
mod tests {
    fn t() { z.unwrap(); }
}
";
        scan_file("crates/wire/src/x.rs", src, &allow, &mut report);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn instant_rule_spares_telemetry_and_bench() {
        let allow = Allowlist::empty();
        for (path, clean) in [
            ("crates/telemetry/src/span.rs", true),
            ("crates/bench/src/cli.rs", true),
            ("crates/rib/src/engine.rs", false),
        ] {
            let mut report = LintReport::default();
            scan_file(
                path,
                "fn f() { let t = std::time::Instant::now(); }\n",
                &allow,
                &mut report,
            );
            assert_eq!(report.is_clean(), clean, "{path}");
        }
    }

    #[test]
    fn waived_findings_are_counted_not_reported() {
        let allow = Allowlist::parse(
            "[[allow]]\nrule = \"no-panic\"\npath = \"crates/rib/src/x.rs\"\ncontains = \"unwrap\"\nreason = \"test\"\n",
        )
        .unwrap();
        let mut report = LintReport::default();
        scan_file(
            "crates/rib/src/x.rs",
            "fn f() { y.unwrap(); }\n",
            &allow,
            &mut report,
        );
        assert!(report.is_clean());
        assert_eq!(report.waived, 1);
        // The waived finding survives as a full record for --json.
        assert_eq!(report.waived_findings.len(), 1);
        assert_eq!(report.waived_findings[0].rule, "no-panic");
        assert_eq!(report.waived_findings[0].line, 1);
        // And the entry is marked load-bearing.
        assert_eq!(
            report.matched_waivers.iter().copied().collect::<Vec<_>>(),
            [0]
        );
    }

    #[test]
    fn finding_json_escapes_and_tags() {
        let violation = Violation {
            rule: "no-panic",
            path: "crates/rib/src/x.rs".to_owned(),
            line: 7,
            message: "`.unwrap()` in \"hot\" path\n".to_owned(),
        };
        assert_eq!(
            finding_json(&violation, true),
            r#"{"path":"crates/rib/src/x.rs","line":7,"rule":"no-panic","allowlisted":true,"message":"`.unwrap()` in \"hot\" path\n"}"#
        );
    }

    #[test]
    fn unused_waivers_become_violations() {
        let allow = Allowlist::parse(
            "[[allow]]\nrule = \"no-panic\"\npath = \"crates/rib/src/x.rs\"\ncontains = \"unwrap\"\nreason = \"used\"\n\
             [[allow]]\nrule = \"no-panic\"\npath = \"crates/rib/src/gone.rs\"\nreason = \"stale\"\n",
        )
        .unwrap();
        let mut report = LintReport::default();
        scan_file(
            "crates/rib/src/x.rs",
            "fn f() { y.unwrap(); }\n",
            &allow,
            &mut report,
        );
        append_unused_waiver_findings(&mut report, &allow);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].rule, "unused-waiver");
        assert_eq!(report.violations[0].path, "crates/rib/src/gone.rs");
        assert!(report.violations[0].message.contains("matches no finding"));
    }

    #[test]
    fn metrics_http_endpoint_is_a_hot_path_file() {
        let allow = Allowlist::empty();
        let mut report = LintReport::default();
        scan_file(
            "crates/daemon/src/http.rs",
            "fn f() { y.unwrap(); }\n",
            &allow,
            &mut report,
        );
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "no-panic");
    }
}
