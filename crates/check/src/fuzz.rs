//! A deterministic mutational fuzzer for the BGP wire format.
//!
//! Crates.io fuzzing engines (cargo-fuzz/libFuzzer, AFL) are
//! unavailable offline, and their coverage feedback is overkill for a
//! single well-bounded decoder. This module keeps the part that finds
//! real bugs — structured seeds plus byte-level mutation — and makes
//! it reproducible: the same `--seed` always visits the same mutants,
//! so a CI failure replays locally bit-for-bit.
//!
//! Three properties are checked on every mutant:
//!
//! 1. **No panics.** `Message::decode` and the [`StreamDecoder`] drain
//!    path must return, never unwind, on arbitrary bytes.
//! 2. **Decode→encode→decode fixpoint.** If a mutant decodes to `m`,
//!    then `m.encode()` must succeed and decode back to exactly `m`.
//!    (Byte images may legitimately differ — the encoder normalizes
//!    attribute flag bits and capability packing — but the *message*
//!    must survive.)
//! 3. **Typed errors.** A rejected mutant must produce a `WireError`;
//!    that is what the `Result` return already proves, so the check is
//!    subsumed by (1).
//!
//! A failing mutant is shrunk with a ddmin-lite pass (truncate, drop
//! spans, zero spans — keeping whatever still fails) and reported as a
//! hex string ready for [`run_reproducer`].
//!
//! The same machinery drives two further [`Target`]s: the `BGPBTRC1`
//! binary trace-dump format (`fuzz-wire --target trace`), where the
//! properties are parse-never-panics and dump→parse→dump fixpoint,
//! and MRT dumps (`fuzz-wire --target mrt`), where [`MrtReader`] must
//! never unwind and every decoded record must survive re-encode →
//! re-decode structurally unchanged.

use std::fmt;
use std::panic::{self, AssertUnwindSafe};

use bgpbench_telemetry::trace::export;
use bgpbench_telemetry::{TraceDump, TraceEvent, TraceEventId};
use bgpbench_wire::mrt::{
    self, MrtError, MrtPeer, MrtReader, MrtRecord, PeerIndexTable, RibEntry, RibPrefix,
};
use bgpbench_wire::{
    AsPath, Asn, Message, Origin, PathAttribute, Prefix, RouterId, StreamDecoder, UpdateMessage,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

use crate::corpus;

/// What the fuzzer mutates and checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// BGP wire messages through `Message::decode` / `StreamDecoder`.
    Wire,
    /// `BGPBTRC1` binary trace dumps through `parse_binary`.
    Trace,
    /// MRT dumps (TABLE_DUMP_V2 + BGP4MP) through [`MrtReader`].
    Mrt,
}

impl Target {
    /// Parses a `--target` argument.
    pub fn from_name(name: &str) -> Option<Target> {
        match name {
            "wire" => Some(Target::Wire),
            "trace" => Some(Target::Trace),
            "mrt" => Some(Target::Mrt),
            _ => None,
        }
    }

    /// The target's display name.
    pub fn name(self) -> &'static str {
        match self {
            Target::Wire => "wire",
            Target::Trace => "trace",
            Target::Mrt => "mrt",
        }
    }

    fn seeds(self) -> Vec<Vec<u8>> {
        match self {
            Target::Wire => corpus::seed_bytes(),
            Target::Trace => trace_seed_bytes(),
            Target::Mrt => mrt_seed_bytes(),
        }
    }

    fn check(self, bytes: &[u8]) -> Result<bool, Failure> {
        match self {
            Target::Wire => check_input(bytes),
            Target::Trace => check_trace(bytes),
            Target::Mrt => check_mrt(bytes),
        }
    }
}

/// How a mutant violated the fuzz properties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// `Message::decode` unwound.
    DecodePanicked,
    /// The stream decoder unwound while draining the mutant.
    StreamPanicked,
    /// Decoded fine, but re-encoding failed.
    ReencodeFailed(String),
    /// Decoded fine, re-encoded fine, but the second decode failed.
    RedecodeFailed(String),
    /// The second decode produced a different message.
    NotAFixpoint,
    /// `parse_binary` unwound on a trace-dump mutant.
    TraceParsePanicked,
    /// Parsed fine, re-dumped fine, but the second parse failed.
    TraceReparseFailed(String),
    /// The second parse produced a different dump.
    TraceNotAFixpoint,
    /// [`MrtReader`] unwound on an MRT mutant.
    MrtDecodePanicked,
    /// An MRT record decoded fine, but re-encoding it unwound.
    MrtReencodePanicked,
    /// A re-encoded MRT record failed to decode.
    MrtRedecodeFailed(String),
    /// The re-decoded MRT record differs from the original.
    MrtNotAFixpoint,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::DecodePanicked => write!(f, "Message::decode panicked"),
            Failure::StreamPanicked => write!(f, "StreamDecoder panicked"),
            Failure::ReencodeFailed(e) => write!(f, "re-encode of decoded message failed: {e}"),
            Failure::RedecodeFailed(e) => write!(f, "decode of re-encoded bytes failed: {e}"),
            Failure::NotAFixpoint => write!(f, "decode(encode(decode(bytes))) differs"),
            Failure::TraceParsePanicked => write!(f, "trace parse_binary panicked"),
            Failure::TraceReparseFailed(e) => {
                write!(f, "parse of re-dumped trace bytes failed: {e}")
            }
            Failure::TraceNotAFixpoint => write!(f, "parse(dump(parse(bytes))) differs"),
            Failure::MrtDecodePanicked => write!(f, "MrtReader panicked"),
            Failure::MrtReencodePanicked => write!(f, "re-encode of decoded MRT record panicked"),
            Failure::MrtRedecodeFailed(e) => {
                write!(f, "decode of re-encoded MRT record failed: {e}")
            }
            Failure::MrtNotAFixpoint => write!(f, "decode(encode(decode(record))) differs"),
        }
    }
}

/// A minimized failing input.
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// The iteration that produced the failure.
    pub iteration: u64,
    /// What went wrong.
    pub failure: Failure,
    /// The minimized failing bytes.
    pub bytes: Vec<u8>,
}

impl Reproducer {
    /// The failing bytes as lowercase hex, for copy-paste replay.
    pub fn hex(&self) -> String {
        to_hex(&self.bytes)
    }
}

impl fmt::Display for Reproducer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "iteration {}: {} ({} bytes)\n  reproducer: {}",
            self.iteration,
            self.failure,
            self.bytes.len(),
            self.hex()
        )
    }
}

/// Summary of a completed fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The seed the run started from.
    pub seed: u64,
    /// Mutants exercised.
    pub iterations: u64,
    /// Mutants that still decoded successfully.
    pub decoded_ok: u64,
    /// Mutants rejected with a typed error.
    pub rejected: u64,
    /// The first failure, minimized, if any.
    pub failure: Option<Reproducer>,
}

/// Runs `iters` deterministic wire-format mutants derived from `seed`.
pub fn run(seed: u64, iters: u64) -> FuzzReport {
    run_target(Target::Wire, seed, iters)
}

/// Runs `iters` deterministic mutants of `target`'s format.
pub fn run_target(target: Target, seed: u64, iters: u64) -> FuzzReport {
    let seeds = target.seeds();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = FuzzReport {
        seed,
        iterations: 0,
        decoded_ok: 0,
        rejected: 0,
        failure: None,
    };

    for iteration in 0..iters {
        let base = &seeds[rng.gen_range(0..seeds.len())];
        let mut bytes = base.clone();
        let mutations = rng.gen_range(1..=4usize);
        for _ in 0..mutations {
            mutate(&mut bytes, &mut rng, &seeds);
        }
        report.iterations += 1;
        match target.check(&bytes) {
            Ok(true) => report.decoded_ok += 1,
            Ok(false) => report.rejected += 1,
            Err(failure) => {
                let minimized = minimize(target, bytes, &failure);
                report.failure = Some(Reproducer {
                    iteration,
                    failure,
                    bytes: minimized,
                });
                break;
            }
        }
    }
    report
}

/// Replays one wire-format hex reproducer; `Err` is the surviving
/// failure.
///
/// Accepts the exact string printed by [`Reproducer::hex`].
pub fn run_reproducer(hex: &str) -> Result<(), Failure> {
    run_reproducer_target(Target::Wire, hex)
}

/// Replays one hex reproducer against `target`'s properties.
pub fn run_reproducer_target(target: Target, hex: &str) -> Result<(), Failure> {
    let bytes = from_hex(hex).unwrap_or_default();
    target.check(&bytes).map(|_| ())
}

/// One random byte-level mutation, chosen from eight operators.
fn mutate(bytes: &mut Vec<u8>, rng: &mut StdRng, seeds: &[Vec<u8>]) {
    if bytes.is_empty() {
        bytes.push(rng.gen::<u8>());
        return;
    }
    match rng.gen_range(0..8u32) {
        // Flip one bit.
        0 => {
            let at = rng.gen_range(0..bytes.len());
            bytes[at] ^= 1 << rng.gen_range(0..8u32);
        }
        // Overwrite one byte.
        1 => {
            let at = rng.gen_range(0..bytes.len());
            bytes[at] = rng.gen::<u8>();
        }
        // Truncate.
        2 => {
            let keep = rng.gen_range(0..bytes.len());
            bytes.truncate(keep);
        }
        // Extend with random bytes.
        3 => {
            let extra = rng.gen_range(1..=16usize);
            for _ in 0..extra {
                bytes.push(rng.gen::<u8>());
            }
        }
        // Splice a window from another seed.
        4 => {
            let donor = &seeds[rng.gen_range(0..seeds.len())];
            let from = rng.gen_range(0..donor.len());
            let len = rng.gen_range(1..=(donor.len() - from).min(32));
            let at = rng.gen_range(0..=bytes.len());
            let insert_at = at.min(bytes.len());
            bytes.splice(
                insert_at..insert_at,
                donor[from..from + len].iter().copied(),
            );
        }
        // Duplicate a window in place.
        5 => {
            let from = rng.gen_range(0..bytes.len());
            let len = rng.gen_range(1..=(bytes.len() - from).min(16));
            let window: Vec<u8> = bytes[from..from + len].to_vec();
            bytes.splice(from..from, window);
        }
        // Zero a window.
        6 => {
            let from = rng.gen_range(0..bytes.len());
            let len = rng.gen_range(1..=(bytes.len() - from).min(16));
            bytes[from..from + len].fill(0);
        }
        // Tweak a plausible length field: the header length, or any
        // byte in the body (most BGP substructures carry u8/u16
        // lengths, so nudging bytes near their current value probes
        // off-by-one paths).
        _ => {
            let at = if bytes.len() > 17 && rng.gen_bool(0.5) {
                16 + rng.gen_range(0..2usize)
            } else {
                rng.gen_range(0..bytes.len())
            };
            let delta = [1u8, 0xFF, 2, 0xFE][rng.gen_range(0..4usize)];
            bytes[at] = bytes[at].wrapping_add(delta);
        }
    }
    // Keep mutants within one max message of bytes; the decoder
    // length-checks anyway, and unbounded growth slows iteration.
    bytes.truncate(8192);
}

/// Checks one input against all fuzz properties.
///
/// `Ok(true)` = decoded and round-tripped; `Ok(false)` = rejected with
/// a typed error; `Err` = property violation.
fn check_input(bytes: &[u8]) -> Result<bool, Failure> {
    let decoded = panic::catch_unwind(AssertUnwindSafe(|| Message::decode(bytes)))
        .map_err(|_| Failure::DecodePanicked)?;

    // The stream path wraps the same decoder in buffering and
    // error-latching; drive it separately in case buffering math
    // itself panics.
    panic::catch_unwind(AssertUnwindSafe(|| {
        let mut stream = StreamDecoder::new();
        stream.extend(bytes);
        while let Ok(Some(_)) = stream.next_message() {}
    }))
    .map_err(|_| Failure::StreamPanicked)?;

    let (message, _consumed) = match decoded {
        Ok(pair) => pair,
        Err(_) => return Ok(false),
    };
    let reencoded = message
        .encode()
        .map_err(|e| Failure::ReencodeFailed(e.to_string()))?;
    let (again, _) =
        Message::decode(&reencoded).map_err(|e| Failure::RedecodeFailed(e.to_string()))?;
    if again != message {
        return Err(Failure::NotAFixpoint);
    }
    Ok(true)
}

/// Structurally valid trace-dump seeds: empty, single-thread, and a
/// multi-thread dump touching every catalogued event id plus a
/// nonzero drop counter.
fn trace_seed_bytes() -> Vec<Vec<u8>> {
    let ev = |id: TraceEventId, ts: u64, dur: u64, a: u64, b: u64| TraceEvent {
        id,
        ts_ns: ts,
        dur_ns: dur,
        virt_ns: ts / 2,
        a,
        b,
    };
    let empty = TraceDump::default();
    let single = TraceDump {
        threads: vec![bgpbench_telemetry::trace::ThreadTrace {
            tid: 1,
            dropped: 0,
            events: vec![
                ev(TraceEventId::PhaseMark, 10, 0, 1, 0),
                ev(TraceEventId::CellStart, 20, 0, 2007, 4000),
            ],
        }],
    };
    let full = TraceDump {
        threads: vec![
            bgpbench_telemetry::trace::ThreadTrace {
                tid: 1,
                dropped: 0,
                events: TraceEventId::ALL
                    .iter()
                    .enumerate()
                    .map(|(i, id)| ev(*id, 100 + i as u64 * 10, (i as u64 % 3) * 500, i as u64, 1))
                    .collect(),
            },
            bgpbench_telemetry::trace::ThreadTrace {
                tid: 2,
                dropped: 7,
                events: vec![ev(TraceEventId::ShardBusy, 250, 900, 1, 7)],
            },
        ],
    };
    vec![
        export::binary_dump(&empty),
        export::binary_dump(&single),
        export::binary_dump(&full),
    ]
}

/// Checks one trace-dump input: `parse_binary` must never unwind, and
/// a successfully parsed dump must survive dump→parse unchanged.
fn check_trace(bytes: &[u8]) -> Result<bool, Failure> {
    let parsed = panic::catch_unwind(AssertUnwindSafe(|| export::parse_binary(bytes)))
        .map_err(|_| Failure::TraceParsePanicked)?;
    let dump = match parsed {
        Ok(dump) => dump,
        Err(_) => return Ok(false),
    };
    let redumped = export::binary_dump(&dump);
    let again = export::parse_binary(&redumped).map_err(Failure::TraceReparseFailed)?;
    if again != dump {
        return Err(Failure::TraceNotAFixpoint);
    }
    Ok(true)
}

/// Structurally valid MRT seeds built with the real encoders: a full
/// dump (peer index + RIB prefixes + announce/withdraw BGP4MP), a
/// bare peer index, a BGP4MP-only stream, and a dump containing an
/// unknown record type the reader must skip by header length.
fn mrt_seed_bytes() -> Vec<Vec<u8>> {
    let next_hop = Ipv4Addr::new(10, 0, 0, 2);
    let peer_index = || PeerIndexTable {
        collector_id: RouterId(0xC000_0201),
        view_name: String::from("fuzz"),
        peers: vec![
            MrtPeer {
                bgp_id: RouterId(0x0A00_0002),
                asn: Asn(65001),
                addr: Some(next_hop),
            },
            MrtPeer {
                bgp_id: RouterId(0x0A00_0003),
                asn: Asn(65002),
                addr: None,
            },
        ],
    };
    let prefix = |text: &str| text.parse::<Prefix>().expect("seed prefixes are valid");
    let rib = |seq: u32, text: &str, path: &[u16]| RibPrefix {
        sequence: seq,
        prefix: prefix(text),
        entries: vec![RibEntry {
            peer_index: (seq % 2) as u16,
            originated: 1_186_610_000,
            attributes: vec![
                PathAttribute::Origin(Origin::Igp),
                PathAttribute::AsPath(AsPath::from_sequence(path.iter().map(|&a| Asn(a)))),
                PathAttribute::NextHop(next_hop),
            ],
        }],
    };
    let announce = UpdateMessage::builder()
        .attribute(PathAttribute::Origin(Origin::Igp))
        .attribute(PathAttribute::AsPath(AsPath::from_sequence([
            Asn(65001),
            Asn(2914),
        ])))
        .attribute(PathAttribute::NextHop(next_hop))
        .announce(prefix("198.51.100.128/25"))
        .build();
    let withdraw = UpdateMessage::builder()
        .withdraw(prefix("203.0.113.0/24"))
        .build();
    let bgp4mp = |ts: u32, update: &UpdateMessage, out: &mut Vec<u8>| {
        mrt::encode_bgp4mp_update(
            ts,
            Asn(65001),
            Asn(65000),
            next_hop,
            Ipv4Addr::new(10, 0, 0, 1),
            update,
            out,
        );
    };

    let mut full = Vec::new();
    peer_index().encode(1_186_617_600, &mut full);
    rib(0, "198.51.100.0/24", &[65001, 3356, 15169]).encode(1_186_617_600, &mut full);
    rib(1, "192.0.2.0/25", &[65002, 6939, 13335]).encode(1_186_617_600, &mut full);
    bgp4mp(1_186_617_660, &announce, &mut full);
    bgp4mp(1_186_617_720, &withdraw, &mut full);

    let mut index_only = Vec::new();
    peer_index().encode(1_186_617_600, &mut index_only);

    let mut updates_only = Vec::new();
    bgp4mp(1_186_617_660, &announce, &mut updates_only);
    bgp4mp(1_186_617_661, &withdraw, &mut updates_only);

    // An unknown record type between two known records: header says
    // type 42 with a 4-byte body, which the reader must skip cleanly.
    let mut with_unknown = Vec::new();
    peer_index().encode(1_186_617_600, &mut with_unknown);
    with_unknown.extend_from_slice(&1_186_617_601u32.to_be_bytes());
    with_unknown.extend_from_slice(&42u16.to_be_bytes());
    with_unknown.extend_from_slice(&0u16.to_be_bytes());
    with_unknown.extend_from_slice(&4u32.to_be_bytes());
    with_unknown.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
    bgp4mp(1_186_617_660, &announce, &mut with_unknown);

    vec![full, index_only, updates_only, with_unknown]
}

/// Checks one MRT input: the reader must never unwind, and every
/// record it does decode must survive re-encode → re-decode
/// structurally unchanged (timestamps of index/RIB records are not
/// part of the decoded structure, so the re-encode uses a fixed one).
fn check_mrt(bytes: &[u8]) -> Result<bool, Failure> {
    let records = panic::catch_unwind(AssertUnwindSafe(|| {
        MrtReader::new(bytes).collect::<Vec<Result<MrtRecord, MrtError>>>()
    }))
    .map_err(|_| Failure::MrtDecodePanicked)?;
    let mut any_rejected = false;
    for record in records {
        let record = match record {
            Ok(record) => record,
            Err(_) => {
                any_rejected = true;
                continue;
            }
        };
        let reencoded = panic::catch_unwind(AssertUnwindSafe(|| {
            let mut out = Vec::new();
            match &record {
                MrtRecord::PeerIndex(table) => table.encode(0, &mut out),
                MrtRecord::RibIpv4(rib) => rib.encode(0, &mut out),
                MrtRecord::Update(update) => mrt::encode_bgp4mp_update(
                    update.timestamp,
                    update.peer_asn,
                    Asn(65000),
                    update.peer_addr,
                    Ipv4Addr::new(10, 0, 0, 1),
                    &update.update,
                    &mut out,
                ),
                // Skipped records carry no payload to re-encode.
                MrtRecord::Skipped { .. } => {}
            }
            out
        }))
        .map_err(|_| Failure::MrtReencodePanicked)?;
        if reencoded.is_empty() {
            continue;
        }
        let mut again = MrtReader::new(&reencoded);
        match again.next() {
            Some(Ok(redecoded)) => {
                if redecoded != record {
                    return Err(Failure::MrtNotAFixpoint);
                }
            }
            Some(Err(error)) => return Err(Failure::MrtRedecodeFailed(error.to_string())),
            None => {
                return Err(Failure::MrtRedecodeFailed(String::from(
                    "re-encoded record produced no records",
                )))
            }
        }
    }
    Ok(!any_rejected)
}

/// ddmin-lite: shrink a failing input while the *same* failure
/// persists. Tries tail truncation, span removal, and span zeroing at
/// halving granularity.
fn minimize(target: Target, mut bytes: Vec<u8>, failure: &Failure) -> Vec<u8> {
    let still_fails = |candidate: &[u8]| target.check(candidate).as_ref() == Err(failure);

    // Tail truncation first — cheap and usually the biggest win.
    while !bytes.is_empty() && still_fails(&bytes[..bytes.len() - 1]) {
        bytes.pop();
    }

    let mut chunk = bytes.len() / 2;
    while chunk >= 1 {
        let mut from = 0;
        while from < bytes.len() {
            let to = (from + chunk).min(bytes.len());
            // Try removing the span outright.
            let mut without: Vec<u8> = Vec::with_capacity(bytes.len() - (to - from));
            without.extend_from_slice(&bytes[..from]);
            without.extend_from_slice(&bytes[to..]);
            if still_fails(&without) {
                bytes = without;
                continue; // same `from`, shorter buffer
            }
            // Fall back to zeroing it (keeps framing lengths intact).
            if bytes[from..to].iter().any(|&b| b != 0) {
                let mut zeroed = bytes.clone();
                zeroed[from..to].fill(0);
                if still_fails(&zeroed) {
                    bytes = zeroed;
                }
            }
            from = to;
        }
        chunk /= 2;
    }
    bytes
}

fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn from_hex(hex: &str) -> Option<Vec<u8>> {
    let hex = hex.trim();
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(hex.get(i..i + 2)?, 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_outcome() {
        let a = run(42, 500);
        let b = run(42, 500);
        assert_eq!(a.decoded_ok, b.decoded_ok);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.failure.is_none(), b.failure.is_none());
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(1, 500);
        let b = run(2, 500);
        // Astronomically unlikely to tie on both counters if the RNG
        // is actually being consulted.
        assert!(
            a.decoded_ok != b.decoded_ok || a.rejected != b.rejected,
            "seeds 1 and 2 produced identical runs"
        );
    }

    #[test]
    fn ci_configuration_is_clean() {
        // The exact run CI performs; keep in sync with ci.yml.
        let report = run(7, 10_000);
        assert!(
            report.failure.is_none(),
            "fuzz failure: {}",
            report.failure.unwrap()
        );
        assert_eq!(report.iterations, 10_000);
        assert!(report.decoded_ok > 0, "no mutant survived decoding");
        assert!(report.rejected > 0, "no mutant was rejected");
    }

    #[test]
    fn hex_roundtrip() {
        let bytes = vec![0x00, 0xFF, 0x42, 0x19];
        assert_eq!(from_hex(&to_hex(&bytes)), Some(bytes));
        assert_eq!(from_hex("zz"), None);
        assert_eq!(from_hex("abc"), None);
    }

    #[test]
    fn minimizer_preserves_the_failure() {
        // Synthesize a failure by hand: feed the minimizer an input
        // whose "failure" is just a predicate via check_input — here we
        // can only exercise the plumbing on a healthy input, so verify
        // minimize() is identity-safe when nothing fails.
        let keepalive = corpus::seed_bytes().remove(8);
        let minimized = minimize(Target::Wire, keepalive.clone(), &Failure::NotAFixpoint);
        // Nothing fails, so nothing shrinks below... anything; the
        // function must still terminate and return bytes.
        assert_eq!(minimized, keepalive);
    }

    #[test]
    fn target_names_round_trip() {
        for target in [Target::Wire, Target::Trace, Target::Mrt] {
            assert_eq!(Target::from_name(target.name()), Some(target));
        }
        assert_eq!(Target::from_name("bogus"), None);
    }

    #[test]
    fn trace_seeds_are_valid_and_fixpoints() {
        for (i, seed) in trace_seed_bytes().iter().enumerate() {
            assert_eq!(
                check_trace(seed),
                Ok(true),
                "trace seed {i} must parse and round-trip"
            );
        }
    }

    #[test]
    fn trace_target_same_seed_same_outcome() {
        let a = run_target(Target::Trace, 42, 500);
        let b = run_target(Target::Trace, 42, 500);
        assert_eq!(a.decoded_ok, b.decoded_ok);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.failure.is_none(), b.failure.is_none());
    }

    #[test]
    fn trace_ci_configuration_is_clean() {
        // The exact run CI performs; keep in sync with ci.yml.
        let report = run_target(Target::Trace, 7, 10_000);
        assert!(
            report.failure.is_none(),
            "trace fuzz failure: {}",
            report.failure.unwrap()
        );
        assert_eq!(report.iterations, 10_000);
        assert!(report.decoded_ok > 0, "no trace mutant survived parsing");
        assert!(report.rejected > 0, "no trace mutant was rejected");
    }

    #[test]
    fn mrt_seeds_are_valid_and_fixpoints() {
        for (i, seed) in mrt_seed_bytes().iter().enumerate() {
            assert_eq!(
                check_mrt(seed),
                Ok(true),
                "MRT seed {i} must decode and round-trip"
            );
        }
    }

    #[test]
    fn mrt_target_same_seed_same_outcome() {
        let a = run_target(Target::Mrt, 42, 500);
        let b = run_target(Target::Mrt, 42, 500);
        assert_eq!(a.decoded_ok, b.decoded_ok);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.failure.is_none(), b.failure.is_none());
    }

    #[test]
    fn mrt_ci_configuration_is_clean() {
        // The exact run CI performs; keep in sync with ci.yml.
        let report = run_target(Target::Mrt, 7, 10_000);
        assert!(
            report.failure.is_none(),
            "MRT fuzz failure: {}",
            report.failure.unwrap()
        );
        assert_eq!(report.iterations, 10_000);
        assert!(report.decoded_ok > 0, "no MRT mutant survived decoding");
        assert!(report.rejected > 0, "no MRT mutant was rejected");
    }

    #[test]
    fn mrt_truncation_is_rejected_not_panicking() {
        let seed = mrt_seed_bytes().remove(0);
        for keep in 0..seed.len() {
            let outcome = check_mrt(&seed[..keep]);
            assert!(
                outcome.is_ok(),
                "truncation to {keep} bytes must not violate a property: {outcome:?}"
            );
        }
    }

    #[test]
    fn trace_truncation_is_rejected_not_panicking() {
        let seed = trace_seed_bytes().remove(2);
        for keep in 0..seed.len() {
            assert_eq!(
                check_trace(&seed[..keep]),
                Ok(false),
                "every truncation must be a typed rejection (kept {keep})"
            );
        }
    }
}
