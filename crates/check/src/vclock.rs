//! Vector clocks for the happens-before race analysis ([`crate::races`]).
//!
//! A [`VClock`] maps thread ids to logical timestamps. Thread `t`'s
//! own component advances after every event `t` records; joining
//! another clock (on lock acquire, channel receive, or task start /
//! join) folds the sender's history into the receiver's. Event `a` by
//! thread `t` happened-before event `b` exactly when `b`'s clock has
//! caught up with `a`'s timestamp in component `t` — the standard
//! epoch comparison FastTrack-style detectors build on.

use std::collections::BTreeMap;

/// A sparse vector clock: absent components are zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock {
    components: BTreeMap<u32, u64>,
}

impl VClock {
    /// The zero clock.
    pub fn new() -> Self {
        VClock::default()
    }

    /// The timestamp of `thread`'s component (0 when never advanced).
    pub fn get(&self, thread: u32) -> u64 {
        self.components.get(&thread).copied().unwrap_or(0)
    }

    /// Advances `thread`'s own component by one.
    pub fn tick(&mut self, thread: u32) {
        *self.components.entry(thread).or_insert(0) += 1;
    }

    /// Folds `other` into `self` componentwise (`self ⊔= other`).
    pub fn join(&mut self, other: &VClock) {
        for (&thread, &stamp) in &other.components {
            let slot = self.components.entry(thread).or_insert(0);
            if *slot < stamp {
                *slot = stamp;
            }
        }
    }

    /// Whether every component of `self` is ≤ the matching component
    /// of `other` — i.e. the event stamped `self` happened-before (or
    /// equals) the point stamped `other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.components
            .iter()
            .all(|(&thread, &stamp)| stamp <= other.get(thread))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get_round_trip() {
        let mut clock = VClock::new();
        assert_eq!(clock.get(3), 0);
        clock.tick(3);
        clock.tick(3);
        assert_eq!(clock.get(3), 2);
        assert_eq!(clock.get(4), 0);
    }

    #[test]
    fn join_takes_componentwise_max() {
        let mut a = VClock::new();
        a.tick(1);
        a.tick(1);
        let mut b = VClock::new();
        b.tick(1);
        b.tick(2);
        a.join(&b);
        assert_eq!(a.get(1), 2);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn le_orders_causally_related_clocks() {
        let mut earlier = VClock::new();
        earlier.tick(1);
        let mut later = earlier.clone();
        later.tick(1);
        later.tick(2);
        assert!(earlier.le(&later));
        assert!(!later.le(&earlier));
    }

    #[test]
    fn concurrent_clocks_are_unordered() {
        let mut a = VClock::new();
        a.tick(1);
        let mut b = VClock::new();
        b.tick(2);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
    }

    #[test]
    fn zero_clock_precedes_everything() {
        let zero = VClock::new();
        let mut any = VClock::new();
        any.tick(9);
        assert!(zero.le(&any));
        assert!(zero.le(&zero.clone()));
    }
}
