//! A minimal Rust source scrubber.
//!
//! The lint pass does not need a real parser: every invariant it
//! enforces is a token-presence question *outside* comments, string
//! literals, and `#[cfg(test)]` items. This module produces a
//! "scrubbed" copy of a source file — same byte length, same line
//! structure, with the contents of comments, string/char literals,
//! and (optionally) test-only items blanked out — so rules can be
//! implemented as plain substring scans with trustworthy `file:line`
//! positions.
//!
//! Handled syntax: line comments (`//`, `///`, `//!`), nested block
//! comments (`/* /* */ */`), string literals with escapes, raw
//! strings with any hash depth (`r#"…"#`), byte and byte-raw strings,
//! char literals (including `'\''`), and lifetimes (which look like
//! unterminated char literals to a naive scanner).

/// Replaces the contents of comments and string/char literals with
/// spaces, preserving newlines and byte offsets.
pub fn scrub(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;

    // Blank `len` bytes starting at `i`, keeping newlines.
    fn blank(out: &mut Vec<u8>, bytes: &[u8], from: usize, to: usize) {
        for &b in &bytes[from..to] {
            out.push(if b == b'\n' { b'\n' } else { b' ' });
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        if b == b'/' && next == Some(b'/') {
            let end = bytes[i..]
                .iter()
                .position(|&c| c == b'\n')
                .map_or(bytes.len(), |p| i + p);
            blank(&mut out, bytes, i, end);
            i = end;
        } else if b == b'/' && next == Some(b'*') {
            let mut depth = 1;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            blank(&mut out, bytes, i, j);
            i = j;
        } else if b == b'r' || b == b'b' {
            // Possible raw / byte string starts: r"…", r#"…"#, b"…",
            // br#"…"#. Only treat as a literal when the prefix is not
            // part of a longer identifier (e.g. `for`, `rb_tree`).
            let prev_ident =
                i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
            let mut j = i + 1;
            let mut raw = b == b'r';
            if b == b'b' && bytes.get(j) == Some(&b'r') {
                raw = true;
                j += 1;
            }
            let mut hashes = 0;
            while raw && bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if !prev_ident && bytes.get(j) == Some(&b'"') {
                // Raw or byte string. Byte strings (`b"…"`) still obey
                // escapes; raw strings close at `"` + `hashes` hashes.
                out.push(bytes[i]);
                blank(&mut out, bytes, i + 1, j + 1);
                let mut k = j + 1;
                if raw {
                    while k < bytes.len() {
                        if bytes[k] == b'"'
                            && bytes[k + 1..]
                                .iter()
                                .take(hashes)
                                .filter(|&&c| c == b'#')
                                .count()
                                == hashes
                        {
                            k += 1 + hashes;
                            break;
                        }
                        k += 1;
                    }
                } else {
                    // b"…" — escaped string body.
                    k = skip_escaped_string(bytes, k);
                }
                blank(&mut out, bytes, j + 1, k);
                i = k;
            } else {
                out.push(b);
                i += 1;
            }
        } else if b == b'"' {
            out.push(b'"');
            let end = skip_escaped_string(bytes, i + 1);
            blank(&mut out, bytes, i + 1, end);
            i = end;
        } else if b == b'\'' {
            // Char literal or lifetime. A lifetime is `'` followed by
            // an identifier not closed by a matching quote.
            let end = char_literal_end(bytes, i);
            match end {
                Some(end) => {
                    out.push(b'\'');
                    blank(&mut out, bytes, i + 1, end);
                    i = end;
                }
                None => {
                    out.push(b);
                    i += 1;
                }
            }
        } else {
            out.push(b);
            i += 1;
        }
    }
    String::from_utf8(out).unwrap_or_else(|e| {
        // Multi-byte characters inside code (outside literals) are
        // copied verbatim, so the output stays valid UTF-8; this
        // fallback only guards byte-slicing bugs.
        String::from_utf8_lossy(e.as_bytes()).into_owned()
    })
}

/// Skips past an escaped (non-raw) string body starting after the
/// opening quote; returns the index one past the closing quote.
fn skip_escaped_string(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// If a char literal starts at `i` (which holds `'`), returns the
/// index one past its closing quote; `None` for lifetimes.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= bytes.len() {
        return None;
    }
    if bytes[j] == b'\\' {
        j += 2;
        // Escapes like \x41 and \u{…} are longer; scan to the quote.
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        return (j < bytes.len()).then_some(j + 1);
    }
    // Unescaped: a char literal closes within a few bytes (one UTF-8
    // scalar). A lifetime never has a closing quote right after its
    // identifier start.
    let mut k = j;
    while k < bytes.len() && k - j < 5 {
        if bytes[k] == b'\'' {
            // `''` is not a char literal; `'a'` is.
            return (k > j).then_some(k + 1);
        }
        if bytes[k] == b'\n' {
            return None;
        }
        k += 1;
    }
    None
}

/// Per-line mask of code that belongs to `#[cfg(test)]` items.
///
/// Works on scrubbed text: finds each `#[cfg(test)]` attribute and
/// masks through the end of the item it gates — the matching closing
/// brace of the item's body, or the terminating semicolon for
/// brace-less items (`use`, fields).
pub fn cfg_test_mask(scrubbed: &str) -> Vec<bool> {
    let line_count = scrubbed.lines().count();
    let mut mask = vec![false; line_count];
    let bytes = scrubbed.as_bytes();

    // Line number (0-based) for each byte offset.
    let line_of = |offset: usize| scrubbed[..offset].bytes().filter(|&b| b == b'\n').count();

    let mut search_from = 0;
    while let Some(found) = scrubbed[search_from..].find("#[cfg(test)]") {
        let start = search_from + found;
        let mut j = start + "#[cfg(test)]".len();
        // Scan forward to the gated item's extent: first `{` opens the
        // body (match braces), but a `;` first means a brace-less item.
        let mut end = bytes.len();
        while j < bytes.len() {
            match bytes[j] {
                b';' => {
                    end = j + 1;
                    break;
                }
                b'{' => {
                    let mut depth = 1;
                    let mut k = j + 1;
                    while k < bytes.len() && depth > 0 {
                        match bytes[k] {
                            b'{' => depth += 1,
                            b'}' => depth -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    end = k;
                    break;
                }
                _ => j += 1,
            }
        }
        let first = line_of(start);
        let last = line_of(end.min(bytes.len().saturating_sub(1)));
        for line in mask.iter_mut().take((last + 1).min(line_count)).skip(first) {
            *line = true;
        }
        search_from = end.max(start + 1);
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_preserves_length_and_newlines() {
        let src = "let x = \"a\\\"b\"; // comment\nlet y = 'c';\n/* multi\nline */ let z = 1;\n";
        let out = scrub(src);
        assert_eq!(out.len(), src.len());
        assert_eq!(
            out.bytes().filter(|&b| b == b'\n').count(),
            src.bytes().filter(|&b| b == b'\n').count()
        );
        assert!(!out.contains("comment"));
        assert!(!out.contains("multi"));
        assert!(!out.contains("a\\\"b"));
        assert!(out.contains("let z = 1;"));
    }

    #[test]
    fn scrub_hides_tokens_inside_literals() {
        let src = r#"let s = "unwrap() inside"; s.len();"#;
        let out = scrub(src);
        assert!(!out.contains("unwrap"));
        assert!(out.contains("s.len();"));
    }

    #[test]
    fn scrub_handles_raw_strings() {
        let src = "let s = r#\"panic! \"quoted\" body\"#; after();";
        let out = scrub(src);
        assert!(!out.contains("panic!"));
        assert!(out.contains("after();"));
    }

    #[test]
    fn scrub_handles_nested_block_comments() {
        let src = "/* outer /* inner unwrap() */ still comment */ code();";
        let out = scrub(src);
        assert!(!out.contains("unwrap"));
        assert!(out.contains("code();"));
    }

    #[test]
    fn scrub_keeps_lifetimes_intact() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let out = scrub(src);
        assert_eq!(out, src);
    }

    #[test]
    fn scrub_handles_escaped_quote_char() {
        let src = "let q = '\\''; next();";
        let out = scrub(src);
        assert!(out.contains("next();"));
    }

    #[test]
    fn cfg_test_mask_covers_test_module() {
        let src = "fn hot() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn after() {}\n";
        let scrubbed = scrub(src);
        let mask = cfg_test_mask(&scrubbed);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_mask_handles_braceless_items() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let mask = cfg_test_mask(&scrub(src));
        assert_eq!(mask, vec![true, true, false]);
    }
}
