//! Dynamic happens-before race detection over the shim event log.
//!
//! The `parking_lot` shim (under its `check-sync` feature) records one
//! global, ordered log of synchronization events: lock acquire/release,
//! channel send/recv (mirrored in by the `crossbeam` shim), task
//! spawn/start/end/join edges, and labelled accesses to deliberately
//! shared cells. This module replays that log through vector clocks
//! ([`crate::vclock`]) and reports every pair of conflicting accesses
//! (write/write or read/write on the same cell from different threads)
//! that the recorded synchronization does **not** order.
//!
//! Happens-before edges, in the classic shapes:
//!
//! * lock release → next acquire of the same lock;
//! * channel send of message `seq` → receive of that same message;
//! * task spawn → task start, and task end → task join.
//!
//! The analysis is its own code path so it stays testable without the
//! recording feature: [`Event`] mirrors the shim's `SyncEvent`, and
//! seeded-race unit tests below run in the plain test suite. With
//! `check-sync` enabled, [`analyze_recorded`] pulls the live log.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::vclock::VClock;

/// One event of a recorded (or synthesized) execution, in log order.
/// Mirrors `parking_lot::sync_check::SyncEvent` one-to-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// `thread` acquired `lock` (joins the lock's release clock).
    LockAcquired {
        /// Acquiring thread.
        thread: u32,
        /// Lock id.
        lock: u64,
    },
    /// `thread` released `lock` (publishes its clock on the lock).
    LockReleased {
        /// Releasing thread.
        thread: u32,
        /// Lock id.
        lock: u64,
    },
    /// `thread` sent message `seq` on channel `chan`.
    Send {
        /// Sending thread.
        thread: u32,
        /// Channel id.
        chan: u64,
        /// Per-channel message sequence number.
        seq: u64,
    },
    /// `thread` received message `seq` from channel `chan`.
    Recv {
        /// Receiving thread.
        thread: u32,
        /// Channel id.
        chan: u64,
        /// Per-channel message sequence number.
        seq: u64,
    },
    /// `thread` spawned the task identified by `token`.
    Spawned {
        /// Parent thread.
        thread: u32,
        /// Spawn token.
        token: u64,
    },
    /// The task identified by `token` started on `thread`.
    Started {
        /// Child thread.
        thread: u32,
        /// Spawn token.
        token: u64,
    },
    /// The task identified by `token` finished on `thread`.
    Ended {
        /// Child thread.
        thread: u32,
        /// Spawn token.
        token: u64,
    },
    /// `thread` joined the task identified by `token`.
    Joined {
        /// Joining thread.
        thread: u32,
        /// Spawn token.
        token: u64,
    },
    /// `thread` accessed shared cell `cell` at source site `site`.
    Access {
        /// Accessing thread.
        thread: u32,
        /// Cell id.
        cell: u64,
        /// Whether the access mutates the cell.
        write: bool,
        /// Static label of the access site.
        site: &'static str,
    },
}

/// One side of a reported race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSite {
    /// The accessing thread's recorder id.
    pub thread: u32,
    /// The static source-site label recorded with the access.
    pub site: &'static str,
    /// Whether this side was a write.
    pub write: bool,
}

impl fmt::Display for AccessSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (thread {}, {})",
            self.site,
            self.thread,
            if self.write { "write" } else { "read" }
        )
    }
}

/// A pair of conflicting accesses with no happens-before order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Race {
    /// The shared cell both sides touched.
    pub cell: u64,
    /// The earlier access in log order.
    pub first: AccessSite,
    /// The later access in log order.
    pub second: AccessSite,
}

impl Race {
    /// Whether both sides are writes (the worst kind).
    pub fn write_write(&self) -> bool {
        self.first.write && self.second.write
    }
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} race on cell {}: {} vs {}",
            if self.write_write() {
                "write/write"
            } else {
                "read/write"
            },
            self.cell,
            self.first,
            self.second
        )
    }
}

/// The result of one happens-before replay.
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// Unordered conflicting pairs, deduplicated per (cell, site
    /// pair); empty means the log is race-free.
    pub races: Vec<Race>,
    /// Cell accesses examined.
    pub accesses_checked: usize,
    /// Distinct shared cells seen in the log.
    pub cells_seen: usize,
    /// Total events replayed.
    pub events_replayed: usize,
}

impl RaceReport {
    /// Whether the replay found no unordered conflicting pair.
    pub fn is_race_free(&self) -> bool {
        self.races.is_empty()
    }
}

/// One recorded access with the clock it carried, kept per cell for
/// the conflict scan.
#[derive(Debug, Clone)]
struct PastAccess {
    thread: u32,
    clock: VClock,
    write: bool,
    site: &'static str,
}

/// Replays `events` (in recorded order) through vector clocks and
/// reports every unordered conflicting access pair.
pub fn analyze(events: &[Event]) -> RaceReport {
    let mut clocks: HashMap<u32, VClock> = HashMap::new();
    let mut lock_clocks: HashMap<u64, VClock> = HashMap::new();
    let mut message_clocks: HashMap<(u64, u64), VClock> = HashMap::new();
    let mut spawn_clocks: HashMap<u64, VClock> = HashMap::new();
    let mut end_clocks: HashMap<u64, VClock> = HashMap::new();
    let mut cells: HashMap<u64, Vec<PastAccess>> = HashMap::new();
    let mut report = RaceReport::default();
    let mut reported: BTreeSet<(u64, &'static str, &'static str)> = BTreeSet::new();

    for event in events {
        report.events_replayed += 1;
        let thread = match *event {
            Event::LockAcquired { thread, .. }
            | Event::LockReleased { thread, .. }
            | Event::Send { thread, .. }
            | Event::Recv { thread, .. }
            | Event::Spawned { thread, .. }
            | Event::Started { thread, .. }
            | Event::Ended { thread, .. }
            | Event::Joined { thread, .. }
            | Event::Access { thread, .. } => thread,
        };
        let clock = clocks.entry(thread).or_default();
        clock.tick(thread);
        match *event {
            Event::LockAcquired { lock, .. } => {
                if let Some(release) = lock_clocks.get(&lock) {
                    clock.join(release);
                }
            }
            Event::LockReleased { lock, .. } => {
                lock_clocks.insert(lock, clock.clone());
            }
            Event::Send { chan, seq, .. } => {
                message_clocks.insert((chan, seq), clock.clone());
            }
            Event::Recv { chan, seq, .. } => {
                if let Some(sent) = message_clocks.get(&(chan, seq)) {
                    clock.join(sent);
                }
            }
            Event::Spawned { token, .. } => {
                spawn_clocks.insert(token, clock.clone());
            }
            Event::Started { token, .. } => {
                if let Some(parent) = spawn_clocks.get(&token) {
                    clock.join(parent);
                }
            }
            Event::Ended { token, .. } => {
                end_clocks.insert(token, clock.clone());
            }
            Event::Joined { token, .. } => {
                if let Some(child) = end_clocks.get(&token) {
                    clock.join(child);
                }
            }
            Event::Access {
                cell, write, site, ..
            } => {
                report.accesses_checked += 1;
                let history = cells.entry(cell).or_default();
                for past in history.iter() {
                    let conflicting = past.thread != thread && (past.write || write);
                    // `past` happened-before this access exactly when
                    // this thread's clock has caught up with `past`'s
                    // own component (the epoch comparison).
                    let ordered = past.clock.get(past.thread) <= clock.get(past.thread);
                    if conflicting && !ordered {
                        let key = (cell, past.site, site);
                        if reported.insert(key) {
                            report.races.push(Race {
                                cell,
                                first: AccessSite {
                                    thread: past.thread,
                                    site: past.site,
                                    write: past.write,
                                },
                                second: AccessSite {
                                    thread,
                                    site,
                                    write,
                                },
                            });
                        }
                    }
                }
                history.push(PastAccess {
                    thread,
                    clock: clock.clone(),
                    write,
                    site,
                });
            }
        }
    }
    report.cells_seen = cells.len();
    report
}

/// Converts the shim's recorded log into [`Event`]s and analyzes it.
#[cfg(feature = "check-sync")]
pub fn analyze_recorded() -> RaceReport {
    analyze(&from_shim(&parking_lot::sync_check::sync_events()))
}

/// Maps the shim's `SyncEvent` log onto the analyzer's [`Event`]s.
#[cfg(feature = "check-sync")]
pub fn from_shim(events: &[parking_lot::sync_check::SyncEvent]) -> Vec<Event> {
    use parking_lot::sync_check::SyncEvent;
    events
        .iter()
        .map(|event| match *event {
            SyncEvent::LockAcquired { thread, lock } => Event::LockAcquired { thread, lock },
            SyncEvent::LockReleased { thread, lock } => Event::LockReleased { thread, lock },
            SyncEvent::ChanSend { thread, chan, seq } => Event::Send { thread, chan, seq },
            SyncEvent::ChanRecv { thread, chan, seq } => Event::Recv { thread, chan, seq },
            SyncEvent::TaskSpawned { thread, token } => Event::Spawned { thread, token },
            SyncEvent::TaskStarted { thread, token } => Event::Started { thread, token },
            SyncEvent::TaskEnded { thread, token } => Event::Ended { thread, token },
            SyncEvent::TaskJoined { thread, token } => Event::Joined { thread, token },
            SyncEvent::CellAccess {
                thread,
                cell,
                write,
                site,
            } => Event::Access {
                thread,
                cell,
                write,
                site,
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(thread: u32, cell: u64, site: &'static str) -> Event {
        Event::Access {
            thread,
            cell,
            write: true,
            site,
        }
    }

    fn read(thread: u32, cell: u64, site: &'static str) -> Event {
        Event::Access {
            thread,
            cell,
            write: false,
            site,
        }
    }

    #[test]
    fn unsynchronized_writes_race() {
        let report = analyze(&[write(1, 7, "site::a"), write(2, 7, "site::b")]);
        assert_eq!(report.races.len(), 1);
        let race = report.races[0];
        assert!(race.write_write());
        assert_eq!(race.first.site, "site::a");
        assert_eq!(race.second.site, "site::b");
        assert_eq!(race.cell, 7);
    }

    #[test]
    fn read_write_pair_races_but_reads_do_not() {
        let report = analyze(&[read(1, 7, "site::r"), write(2, 7, "site::w")]);
        assert_eq!(report.races.len(), 1);
        assert!(!report.races[0].write_write());

        let report = analyze(&[read(1, 7, "site::r1"), read(2, 7, "site::r2")]);
        assert!(report.is_race_free(), "concurrent reads never race");
    }

    #[test]
    fn same_thread_accesses_are_program_ordered() {
        let report = analyze(&[write(1, 7, "a"), write(1, 7, "b"), read(1, 7, "c")]);
        assert!(report.is_race_free());
    }

    #[test]
    fn distinct_cells_never_conflict() {
        let report = analyze(&[write(1, 7, "a"), write(2, 8, "b")]);
        assert!(report.is_race_free());
        assert_eq!(report.cells_seen, 2);
    }

    #[test]
    fn lock_release_acquire_orders_accesses() {
        let events = [
            Event::LockAcquired { thread: 1, lock: 5 },
            write(1, 7, "a"),
            Event::LockReleased { thread: 1, lock: 5 },
            Event::LockAcquired { thread: 2, lock: 5 },
            write(2, 7, "b"),
            Event::LockReleased { thread: 2, lock: 5 },
        ];
        assert!(analyze(&events).is_race_free());
    }

    #[test]
    fn different_locks_do_not_order_accesses() {
        let events = [
            Event::LockAcquired { thread: 1, lock: 5 },
            write(1, 7, "a"),
            Event::LockReleased { thread: 1, lock: 5 },
            Event::LockAcquired { thread: 2, lock: 6 },
            write(2, 7, "b"),
            Event::LockReleased { thread: 2, lock: 6 },
        ];
        assert_eq!(analyze(&events).races.len(), 1);
    }

    #[test]
    fn channel_message_orders_sender_writes_before_receiver_reads() {
        let events = [
            write(1, 7, "producer"),
            Event::Send {
                thread: 1,
                chan: 3,
                seq: 0,
            },
            Event::Recv {
                thread: 2,
                chan: 3,
                seq: 0,
            },
            read(2, 7, "consumer"),
        ];
        assert!(analyze(&events).is_race_free());
    }

    #[test]
    fn receiving_a_different_message_gives_no_order() {
        let events = [
            write(1, 7, "producer"),
            Event::Send {
                thread: 1,
                chan: 3,
                seq: 1,
            },
            // Message 0 was sent before thread 1's write.
            Event::Recv {
                thread: 2,
                chan: 3,
                seq: 0,
            },
            read(2, 7, "consumer"),
        ];
        assert_eq!(analyze(&events).races.len(), 1);
    }

    #[test]
    fn spawn_and_join_edges_order_parent_and_child() {
        let events = [
            write(1, 7, "parent::init"),
            Event::Spawned {
                thread: 1,
                token: 9,
            },
            Event::Started {
                thread: 2,
                token: 9,
            },
            write(2, 7, "child::work"),
            Event::Ended {
                thread: 2,
                token: 9,
            },
            Event::Joined {
                thread: 1,
                token: 9,
            },
            read(1, 7, "parent::collect"),
        ];
        assert!(analyze(&events).is_race_free());
    }

    #[test]
    fn access_before_join_races_with_child() {
        let events = [
            Event::Spawned {
                thread: 1,
                token: 9,
            },
            Event::Started {
                thread: 2,
                token: 9,
            },
            write(2, 7, "child::work"),
            // Parent reads before observing the child's end.
            read(1, 7, "parent::early"),
            Event::Ended {
                thread: 2,
                token: 9,
            },
            Event::Joined {
                thread: 1,
                token: 9,
            },
        ];
        let report = analyze(&events);
        assert_eq!(report.races.len(), 1);
        assert_eq!(report.races[0].second.site, "parent::early");
    }

    #[test]
    fn duplicate_site_pairs_are_reported_once() {
        let events = [
            write(1, 7, "a"),
            write(1, 7, "a"),
            write(2, 7, "b"),
            write(2, 7, "b"),
        ];
        assert_eq!(analyze(&events).races.len(), 1);
    }

    #[test]
    fn report_display_names_both_sites() {
        let report = analyze(&[write(1, 7, "alpha"), read(2, 7, "beta")]);
        let text = report.races[0].to_string();
        assert!(text.contains("alpha"), "{text}");
        assert!(text.contains("beta"), "{text}");
        assert!(text.contains("read/write"), "{text}");
    }
}
