//! The lint pass, run against this workspace with the checked-in
//! allowlist — the same invocation CI's `check` job performs via the
//! `bgpbench-check lint` binary. Keeping it as a test too means a
//! bare `cargo test` catches new violations without the extra job.

use std::path::Path;

use bgpbench_check::allow::Allowlist;
use bgpbench_check::lint;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/check sits two levels under the workspace root")
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let allow_text = std::fs::read_to_string(root.join("check/allow.toml"))
        .expect("check/allow.toml is checked in");
    let allowlist = Allowlist::parse(&allow_text).expect("allowlist parses");
    let report = lint::run(root, &allowlist).expect("workspace walk succeeds");

    assert!(report.files_scanned > 50, "walker found too few sources");
    assert!(
        report.is_clean(),
        "lint violations:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_allowlist_entry_is_load_bearing() {
    // A waiver nothing matches is stale documentation; fail until it
    // is removed. Run the lint with an empty allowlist and require
    // each entry to cover at least one raw finding.
    let root = workspace_root();
    let allow_text = std::fs::read_to_string(root.join("check/allow.toml")).unwrap();
    let allowlist = Allowlist::parse(&allow_text).unwrap();
    let raw = lint::run(root, &Allowlist::empty()).unwrap();

    for entry in allowlist.entries() {
        let used = raw
            .violations
            .iter()
            .any(|v| v.rule == entry.rule && v.path == entry.path);
        assert!(
            used,
            "allowlist entry [{} @ {}] no longer matches any finding — delete it",
            entry.rule, entry.path
        );
    }
}
