//! Concurrency checks over real workspace subsystems, built on the
//! `check-sync` instrumentation in the `parking_lot`/`crossbeam`
//! shims plus the [`bgpbench_check::interleave`] mini-interleaver.
//!
//! Run with:
//!
//! ```text
//! cargo test -p bgpbench-check --features check-sync
//! ```
//!
//! The shim recorders are process-global, so every test touching them
//! takes the [`serial`] guard — the harness's default parallelism
//! would otherwise interleave unrelated tests' lock/channel logs.

#![cfg(feature = "check-sync")]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock};

use bgpbench_check::interleave::{explore, explore_dpor, ExploreError};
use bgpbench_check::sync::{recorded_lock_graph, LockOrderGraph};
use bgpbench_core::{CellSpec, GridRunner, Scenario};
use bgpbench_models::pentium3;
use bgpbench_telemetry::{EventKind, Journal, MetricId, Registry, Snapshot};
use crossbeam::sync_check::ChannelOp;
use parking_lot::Mutex;

/// Serializes tests that read or reset the global shim recorders.
fn serial() -> StdMutexGuard<'static, ()> {
    static GUARD: OnceLock<StdMutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| StdMutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

// ───────────────────────── lock ordering ─────────────────────────

#[test]
fn consistent_lock_order_leaves_no_cycle() {
    let _serial = serial();
    parking_lot::sync_check::reset();

    let a = Arc::new(Mutex::new(0u64));
    let b = Arc::new(Mutex::new(0u64));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                for _ in 0..10 {
                    let mut outer = a.lock();
                    let mut inner = b.lock();
                    *outer += 1;
                    *inner += 1;
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("worker panicked");
    }

    let graph = recorded_lock_graph();
    assert!(graph.edge_count() >= 1, "nesting must record an edge");
    assert_eq!(graph.find_cycle(), None);
}

#[test]
fn inverted_lock_order_is_detected_without_a_deadlock() {
    // The negative test the detector exists for: A→B in one region,
    // B→A in another. Run *sequentially*, this never deadlocks — an
    // execution-based checker sees nothing — but the order graph has
    // the cycle that an unlucky parallel schedule would hit.
    let _serial = serial();
    parking_lot::sync_check::reset();

    let a = Mutex::new(0u64);
    let b = Mutex::new(0u64);
    {
        let _first = a.lock();
        let _second = b.lock();
    }
    {
        let _first = b.lock();
        let _second = a.lock();
    }

    let graph = recorded_lock_graph();
    let cycle = graph
        .find_cycle()
        .expect("inverted acquisition order must produce a cycle");
    assert_eq!(cycle.first(), cycle.last());
    assert!(cycle.contains(&a.sync_id()) && cycle.contains(&b.sync_id()));
}

#[test]
fn telemetry_journal_locking_is_cycle_free() {
    // A real subsystem under the detector: concurrent pushes into the
    // telemetry journal's ring buffer (a single parking_lot mutex —
    // there must be no nested acquisition at all).
    let _serial = serial();
    parking_lot::sync_check::reset();

    let journal = Arc::new(Journal::new(256));
    let handles: Vec<_> = (0..4)
        .map(|thread| {
            let journal = Arc::clone(&journal);
            std::thread::spawn(move || {
                for i in 0..50u64 {
                    journal.push(bgpbench_telemetry::Event::now(
                        EventKind::PhaseStart,
                        thread,
                        i,
                    ));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("journal writer panicked");
    }

    assert_eq!(journal.total_recorded(), 200);
    let graph = recorded_lock_graph();
    assert_eq!(
        graph.find_cycle(),
        None,
        "journal writes must not nest locks"
    );
}

#[test]
fn lock_graph_builds_from_arbitrary_edges() {
    // The graph logic itself is feature-independent; exercise it here
    // too so a `--features check-sync` run covers both layers.
    let graph = LockOrderGraph::from_edges([(10, 20), (20, 30)]);
    assert_eq!(graph.find_cycle(), None);
}

// ─────────────── registry sharded recording (loom-lite) ───────────────

#[test]
fn sharded_metric_recording_commutes_across_all_schedules() {
    // Three "threads" record into three distinct registry shards —
    // the exact write pattern GridRunner workers produce. Every
    // interleaving must yield the same snapshot, or sharding would
    // make measured numbers schedule-dependent.
    let ops: [Vec<(usize, MetricId, u64)>; 3] = [
        vec![
            (0, MetricId::RibUpdates, 1),
            (0, MetricId::RibPrefixes, 10),
            (0, MetricId::RibUpdates, 2),
        ],
        vec![(1, MetricId::RibUpdates, 4), (1, MetricId::FibInstalls, 7)],
        vec![(2, MetricId::RibPrefixes, 5), (2, MetricId::RibUpdates, 8)],
    ];

    let apply = |schedule: &[(usize, usize)]| {
        let registry = Registry::new();
        for &(thread, index) in schedule {
            let (shard, id, n) = ops[thread][index];
            registry.add_to_shard(shard, id, n);
        }
        registry.snapshot()
    };

    // Sequential baseline: thread 0 fully, then 1, then 2.
    let baseline = {
        let sequential: Vec<(usize, usize)> = (0..3)
            .flat_map(|t| (0..ops[t].len()).map(move |i| (t, i)))
            .collect();
        apply(&sequential)
    };
    assert_eq!(baseline.get(MetricId::RibUpdates), 15);
    assert_eq!(baseline.get(MetricId::RibPrefixes), 15);
    assert_eq!(baseline.get(MetricId::FibInstalls), 7);

    let lens = [ops[0].len(), ops[1].len(), ops[2].len()];
    let explored = explore(&lens, |schedule| {
        let snapshot = apply(schedule);
        if snapshot == baseline {
            Ok(())
        } else {
            Err(format!(
                "snapshot diverged: RibUpdates {} vs {}",
                snapshot.get(MetricId::RibUpdates),
                baseline.get(MetricId::RibUpdates)
            ))
        }
    })
    .expect("all schedules must agree");
    // C(7; 3,2,2) = 210 distinct interleavings.
    assert_eq!(explored, 210);
}

#[test]
fn histogram_shard_recording_commutes() {
    let ops: [Vec<u64>; 2] = [vec![3, 900, 17], vec![250_000, 12]];
    let apply = |schedule: &[(usize, usize)]| {
        let registry = Registry::new();
        for &(thread, index) in schedule {
            registry.observe_in_shard(thread, MetricId::UpdatePrefixes, ops[thread][index]);
        }
        registry.snapshot()
    };
    let baseline = apply(&[(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)]);
    assert_eq!(baseline.histogram(MetricId::UpdatePrefixes).count, 5);

    explore(&[3, 2], |schedule| {
        if apply(schedule) == baseline {
            Ok(())
        } else {
            Err("histogram snapshot diverged".to_owned())
        }
    })
    .expect("histogram recording must commute");
}

// ───────────────────── snapshot merge algebra ─────────────────────

#[test]
fn snapshot_merge_is_schedule_independent() {
    // GridRunner merges per-worker snapshots in completion order,
    // which varies run to run; the merged report must not.
    let part = |updates: u64, gauge: u64, observed: u64| {
        let registry = Registry::new();
        registry.add(MetricId::RibUpdates, updates);
        registry.gauge_set(MetricId::LocRibPrefixes, gauge);
        registry.observe(MetricId::UpdatePrefixes, observed);
        registry.snapshot()
    };
    let parts = [part(3, 100, 7), part(5, 900, 2), part(11, 4, 40)];

    let merged_in = |schedule: &[(usize, usize)]| {
        let mut total = Snapshot::default();
        for &(thread, _) in schedule {
            total.merge(&parts[thread]);
        }
        total
    };
    let baseline = merged_in(&[(0, 0), (1, 0), (2, 0)]);
    assert_eq!(baseline.get(MetricId::RibUpdates), 19);
    // Gauges merge by max, not sum.
    assert_eq!(baseline.get(MetricId::LocRibPrefixes), 900);
    assert_eq!(baseline.histogram(MetricId::UpdatePrefixes).count, 3);

    let explored = explore(&[1, 1, 1], |schedule| {
        if merged_in(schedule) == baseline {
            Ok(())
        } else {
            Err("merge order changed the merged snapshot".to_owned())
        }
    })
    .expect("merge must commute");
    assert_eq!(explored, 6);
}

#[test]
fn interleaver_rejects_a_planted_non_commutative_op() {
    // Self-test of the harness: feed the interleaver an op set that is
    // *not* commutative and require it to find the breaking schedule.
    let result = explore(&[1, 1], |schedule| {
        let mut value = 1u64;
        for &(thread, _) in schedule {
            value = if thread == 0 { value + 10 } else { value * 2 };
        }
        if value == 22 {
            Ok(())
        } else {
            Err(format!("value {value}"))
        }
    });
    assert!(matches!(
        result,
        Err(ExploreError::InvariantViolated { .. })
    ));
}

// ─────────────────── grid runner work queue (FIFO) ───────────────────

#[test]
fn grid_runner_channels_obey_fifo_and_lose_nothing() {
    let _serial = serial();
    crossbeam::sync_check::reset();
    parking_lot::sync_check::reset();

    const CELLS: usize = 24;
    let cells: Vec<CellSpec> = (0..CELLS)
        .map(|i| {
            CellSpec::new(Scenario::S2, pentium3())
                .prefixes(10)
                .seed(i as u64)
        })
        .collect();
    let touched = AtomicU64::new(0);
    let runs = GridRunner::new(4).run_map(&cells, |cell| {
        touched.fetch_add(1, Ordering::Relaxed);
        cell.cell_seed()
    });

    // The runner's contract first: everything ran, in grid order.
    assert_eq!(runs.len(), CELLS);
    assert_eq!(touched.load(Ordering::Relaxed), CELLS as u64);
    for (i, run) in runs.iter().enumerate() {
        assert_eq!(*run.result.as_ref().expect("cell failed"), i as u64);
    }

    // Now the recorded channel discipline. Group operations by
    // channel id.
    use std::collections::BTreeMap;
    let mut sends: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut recvs: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for op in crossbeam::sync_check::ops() {
        match op {
            ChannelOp::Send { chan, seq } => sends.entry(chan).or_default().push(seq),
            ChannelOp::Recv { chan, seq } => recvs.entry(chan).or_default().push(seq),
            ChannelOp::SendDisconnected { .. } | ChannelOp::RecvDisconnected { .. } => {}
        }
    }
    assert!(!sends.is_empty(), "the runner must use recorded channels");

    for (chan, seqs) in &recvs {
        // FIFO: dequeue order equals enqueue order, per channel.
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "channel {chan} delivered out of order: {seqs:?}"
        );
        let sent = &sends[chan];
        assert!(
            seqs.len() <= sent.len(),
            "channel {chan} delivered more than was sent"
        );
    }
    // The work queue: some channel carried exactly one send and one
    // receive per cell, with nothing lost.
    let work_queues: Vec<u64> = sends
        .iter()
        .filter(|(chan, sent)| {
            sent.len() == CELLS && recvs.get(chan).is_some_and(|r| r.len() == CELLS)
        })
        .map(|(chan, _)| *chan)
        .collect();
    assert!(
        !work_queues.is_empty(),
        "no channel matches the work queue's send/recv profile"
    );

    // And while the workers ran: no lock-order hazard anywhere in the
    // runner/telemetry stack they exercised.
    assert_eq!(recorded_lock_graph().find_cycle(), None);
}

// ─────────────── sharded RIB fan-out/merge (loom-lite) ───────────────

/// The 3-shard fan-out/merge model the exhaustive and DPOR
/// explorations below share: per-shard engines preloaded with slices
/// of a base table, one withdraw op and one announce op per shard
/// (that per-thread order is the program order every explorer
/// preserves), merged back in message order and compared against the
/// unsharded engine's outcome stream.
mod shard_model {
    use std::net::Ipv4Addr;

    use bgpbench_check::interleave::Access;
    use bgpbench_rib::{
        PeerId, PeerInfo, PrefixOutcome, RibEngine, RouteAttributes, ShardedRibEngine,
    };
    use bgpbench_wire::{AsPath, Asn, Origin, Prefix, RouterId, UpdateMessage};

    pub const SHARDS: usize = 3;

    pub struct ShardModel {
        peer: PeerId,
        info: PeerInfo,
        partitioner: ShardedRibEngine,
        attrs_base: RouteAttributes,
        attrs_new: RouteAttributes,
        withdrawn: Vec<Prefix>,
        announced: Vec<Prefix>,
        base_parts: Vec<Vec<Prefix>>,
        withdraw_parts: Vec<Vec<Prefix>>,
        announce_parts: Vec<Vec<Prefix>>,
        single_outcomes: Vec<PrefixOutcome>,
    }

    fn build(attrs: &RouteAttributes, announce: &[Prefix], withdraw: &[Prefix]) -> UpdateMessage {
        let mut builder = UpdateMessage::builder().withdraw_all(withdraw.iter().copied());
        if !announce.is_empty() {
            for attr in attrs.to_wire() {
                builder = builder.attribute(attr);
            }
            builder = builder.announce_all(announce.iter().copied());
        }
        builder.build()
    }

    impl ShardModel {
        pub fn new() -> Self {
            let peer = PeerId(1);
            let info = PeerInfo::new(peer, Asn(65001), RouterId(2), Ipv4Addr::new(10, 0, 0, 2));
            // A sharded engine used only for its stable prefix→shard
            // key.
            let partitioner = {
                let mut engine = ShardedRibEngine::new(Asn(65000), RouterId(1));
                engine.add_peer(info);
                engine.set_shards(SHARDS);
                engine
            };

            let prefixes: Vec<Prefix> = (0..12u32)
                .map(|i| Prefix::new_masked(Ipv4Addr::from(0x0A00_0000 + (i << 12)), 20).unwrap())
                .collect();
            let attrs_base = RouteAttributes::new(
                Origin::Igp,
                AsPath::from_sequence([Asn(65001)]),
                Ipv4Addr::new(10, 0, 0, 2),
            );
            let attrs_new = RouteAttributes::new(
                Origin::Egp,
                AsPath::from_sequence([Asn(65001), Asn(64512)]),
                Ipv4Addr::new(10, 0, 0, 2),
            );

            // Base table: everything announced; then one message that
            // withdraws a third of it and flips attributes on another
            // third.
            let base = build(&attrs_base, &prefixes, &[]);
            let withdrawn: Vec<Prefix> = prefixes.iter().copied().step_by(3).collect();
            let announced: Vec<Prefix> = prefixes.iter().copied().skip(1).step_by(3).collect();
            let update = build(&attrs_new, &announced, &withdrawn);

            // Sequential baseline: the unsharded engine's stream.
            let single_outcomes = {
                let mut engine = RibEngine::new(Asn(65000), RouterId(1));
                engine.add_peer(info);
                engine.apply_update(peer, &base).expect("base load");
                engine.apply_update(peer, &update).expect("update")
            };

            let partition = |prefixes: &[Prefix]| {
                let mut parts: Vec<Vec<Prefix>> = vec![Vec::new(); SHARDS];
                for prefix in prefixes {
                    parts[partitioner.shard_for(prefix)].push(*prefix);
                }
                parts
            };
            let base_parts = partition(&prefixes);
            let withdraw_parts = partition(&withdrawn);
            let announce_parts = partition(&announced);

            ShardModel {
                peer,
                info,
                partitioner,
                attrs_base,
                attrs_new,
                withdrawn,
                announced,
                base_parts,
                withdraw_parts,
                announce_parts,
                single_outcomes,
            }
        }

        /// Runs one cross-shard schedule and checks that the merge
        /// reproduces the single-engine outcome stream.
        pub fn check(&self, schedule: &[(usize, usize)]) -> Result<(), String> {
            // Fresh per-shard engines, each preloaded with its slice
            // of the base table.
            let mut shards: Vec<RibEngine> = self
                .base_parts
                .iter()
                .map(|slice| {
                    let mut engine = RibEngine::new(Asn(65000), RouterId(1));
                    engine.add_peer(self.info);
                    engine
                        .apply_update(self.peer, &build(&self.attrs_base, slice, &[]))
                        .expect("shard base load");
                    engine
                })
                .collect();
            let mut per_shard: Vec<Vec<PrefixOutcome>> = vec![Vec::new(); SHARDS];
            for &(shard, op) in schedule {
                let message = if op == 0 {
                    build(&self.attrs_new, &[], &self.withdraw_parts[shard])
                } else {
                    build(&self.attrs_new, &self.announce_parts[shard], &[])
                };
                let outcomes = shards[shard]
                    .apply_update(self.peer, &message)
                    .map_err(|error| format!("shard {shard} op {op}: {error:?}"))?;
                per_shard[shard].extend(outcomes);
            }
            // The merge step: walk the original message order and pop
            // the owning shard's next outcome.
            let mut queues: Vec<std::vec::IntoIter<PrefixOutcome>> =
                per_shard.into_iter().map(Vec::into_iter).collect();
            let mut merged = Vec::new();
            for prefix in self.withdrawn.iter().chain(&self.announced) {
                match queues[self.partitioner.shard_for(prefix)].next() {
                    Some(outcome) => merged.push(outcome),
                    None => return Err(format!("shard queue exhausted at {prefix:?}")),
                }
            }
            if merged == self.single_outcomes {
                Ok(())
            } else {
                Err("merged outcome stream diverged from the single engine".to_owned())
            }
        }

        /// Honest declared accesses: each shard's two ops touch only
        /// that shard's private engine state.
        pub fn private_accesses(&self) -> Vec<Vec<Vec<Access>>> {
            (0..SHARDS)
                .map(|shard| {
                    vec![
                        vec![Access::Write(shard as u64)],
                        vec![Access::Write(shard as u64)],
                    ]
                })
                .collect()
        }
    }
}

#[test]
fn shard_fan_out_and_merge_commute_across_all_schedules() {
    // The sharded RIB's parallel claim, checked exhaustively: each
    // shard applies its sub-batches against private state, so *any*
    // execution order across shards must merge back into exactly the
    // single engine's outcome stream.
    let model = shard_model::ShardModel::new();
    let explored = explore(&[2, 2, 2], |schedule| model.check(schedule))
        .expect("every schedule must merge to the single-engine stream");
    // C(6; 2,2,2) = 90 interleavings, each checked against the
    // sequential baseline.
    assert_eq!(explored, 90);
}

#[test]
fn dpor_prunes_the_shard_model_to_one_trace_representative() {
    // The same model under the sleep-set explorer. Every cross-shard
    // op pair is independent (private per-shard state), so the 90
    // exhaustive interleavings collapse into a single Mazurkiewicz
    // trace — DPOR must execute exactly one representative, and the
    // asserted pruning ratio is the whole point of the explorer.
    let model = shard_model::ShardModel::new();
    let exhaustive = explore(&[2, 2, 2], |schedule| model.check(schedule))
        .expect("exhaustive baseline must pass");
    let executed = explore_dpor(&model.private_accesses(), |schedule| model.check(schedule))
        .expect("DPOR exploration must pass");
    assert!(
        executed < exhaustive,
        "DPOR must execute strictly fewer schedules ({executed} vs {exhaustive})"
    );
    assert_eq!(executed, 1, "all cross-shard ops are independent");
    assert_eq!(exhaustive / executed, 90, "pruning ratio 90:1");
}

#[test]
fn dpor_executes_one_representative_per_conflicting_order() {
    // Declare a shared resource touched by each shard's second op:
    // now only the relative order of those three ops matters, so the
    // 90 interleavings collapse to 3! = 6 trace representatives —
    // pruned, but honestly covering every order of the real conflict.
    use bgpbench_check::interleave::Access;

    let model = shard_model::ShardModel::new();
    let mut accesses = model.private_accesses();
    for (shard, ops) in accesses.iter_mut().enumerate() {
        ops[1] = vec![Access::Write(shard as u64), Access::Write(100)];
    }
    let executed = explore_dpor(&accesses, |schedule| model.check(schedule))
        .expect("conflicting-order exploration must pass");
    assert_eq!(executed, 6, "3! orders of the shared-resource writes");
}
