//! The happens-before race pass against the real instrumented
//! subsystems — the test twin of `bgpbench-check races`.
//!
//! Run with:
//!
//! ```text
//! cargo test -p bgpbench-check --features check-sync
//! ```
//!
//! The shim recorders are process-global, so every test serializes on
//! the local [`serial`] guard (this binary runs in its own process, so
//! it cannot collide with the sync_interleave binary's tests).

#![cfg(feature = "check-sync")]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock};

use bgpbench_check::race_models;
use bgpbench_check::races::{analyze_recorded, from_shim};
use parking_lot::sync_check;

/// Serializes tests that read or reset the global shim recorders.
fn serial() -> StdMutexGuard<'static, ()> {
    static GUARD: OnceLock<StdMutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| StdMutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[test]
fn sharded_train_protocol_is_race_free() {
    let _serial = serial();
    let report = race_models::sharded_train_model();
    assert!(
        report.is_race_free(),
        "apply_update_train raced: {:?}",
        report.races
    );
    assert!(report.accesses_checked >= 8, "model must record accesses");
}

#[test]
fn telemetry_merge_protocol_is_race_free() {
    let _serial = serial();
    let report = race_models::telemetry_merge_model();
    assert!(
        report.is_race_free(),
        "registry/trace merge raced: {:?}",
        report.races
    );
    // Four workers × (registry shard + trace ring) plus the merge
    // reads: the model must genuinely exercise the shared cells.
    assert!(report.cells_seen >= 5, "saw {} cells", report.cells_seen);
}

#[test]
fn grid_queue_protocol_is_race_free() {
    let _serial = serial();
    let report = race_models::grid_queue_model();
    assert!(
        report.is_race_free(),
        "grid runner result slots raced: {:?}",
        report.races
    );
    // One write (worker) + one read (collector) per cell.
    assert_eq!(report.cells_seen, 8);
    assert_eq!(report.accesses_checked, 16);
}

#[test]
fn seeded_unordered_writes_are_detected() {
    // The negative control: two plain spawned threads write one cell
    // with no recorded ordering edge. The detector must flag exactly
    // this pair, with both site labels in the report.
    let _serial = serial();
    let report = race_models::seeded_race_model();
    assert!(!report.is_race_free(), "seeded race must be caught");
    let race = report.races.first().expect("one race reported");
    assert!(race.write_write());
    let rendered = race.to_string();
    assert!(
        rendered.matches("race_models::seeded_writer").count() == 2,
        "both sites must be labelled: {rendered}"
    );
}

#[test]
fn recorded_join_edge_suppresses_the_seeded_shape() {
    // Same two writers, but with spawn/join edges recorded the way
    // the instrumented runners record theirs: the exact access pair
    // the seeded model flags is now ordered, and the pass is clean.
    let _serial = serial();
    sync_check::reset();

    let cell = sync_check::next_cell_id();
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let token = sync_check::next_task_token();
            sync_check::on_task_spawn(token);
            (
                token,
                std::thread::spawn(move || {
                    sync_check::on_task_start(token);
                    sync_check::record_cell_write(cell, "race_detector::ordered_writer");
                    sync_check::on_task_end(token);
                }),
            )
        })
        .collect();
    for (token, handle) in handles {
        handle.join().expect("writer panicked");
        sync_check::on_task_join(token);
    }

    // Joining both threads back into the parent does NOT order the two
    // writers against each other — they are still concurrent. What it
    // does order is each writer against anything the parent does next.
    let report = analyze_recorded();
    assert!(!report.is_race_free(), "writers are still unordered");

    // Sequential spawn→join pairs, by contrast, are fully ordered.
    sync_check::reset();
    let cell = sync_check::next_cell_id();
    for _ in 0..2 {
        let token = sync_check::next_task_token();
        sync_check::on_task_spawn(token);
        let handle = std::thread::spawn(move || {
            sync_check::on_task_start(token);
            sync_check::record_cell_write(cell, "race_detector::sequential_writer");
            sync_check::on_task_end(token);
        });
        handle.join().expect("writer panicked");
        sync_check::on_task_join(token);
    }
    let report = analyze_recorded();
    assert!(
        report.is_race_free(),
        "spawn→join chains order the writes: {:?}",
        report.races
    );
}

#[test]
fn from_shim_round_trips_the_unified_log() {
    let _serial = serial();
    sync_check::reset();

    let cell = sync_check::next_cell_id();
    sync_check::record_cell_write(cell, "race_detector::round_trip");
    let events = from_shim(&sync_check::sync_events());
    assert!(
        !events.is_empty(),
        "the shim log must translate into analyzer events"
    );
}
