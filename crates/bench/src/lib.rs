//! Shared driver for the benchmark binaries (`table1`–`table3`,
//! `fig3`–`fig6`, `fig34_breakdown`, `ablation_*`) and the criterion
//! micro-benchmarks.
//!
//! Every binary regenerates one table or figure of the paper's
//! evaluation section. All of them share one command line ([`cli`]):
//!
//! * `--quick` — reduced workload sizes for smoke runs;
//! * `--threads <n>` — worker threads for the experiment grid
//!   (defaults to the host's parallelism; results are bit-identical
//!   at any thread count);
//! * `--csv [<path>]` — emit the artifact's raw data as CSV, to the
//!   given file or to stdout;
//! * `--telemetry [text|json|csv]` — enable the telemetry registry for
//!   the run and dump its snapshot to stderr at the end.

#![forbid(unsafe_code)]

pub mod cli;
pub mod statics;

pub use cli::{Cli, TelemetryFormat};
