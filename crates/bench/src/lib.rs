//! Shared helpers for the benchmark binaries (`table1`–`table3`,
//! `fig3`–`fig6`) and the criterion micro-benchmarks.
//!
//! Every binary regenerates one table or figure of the paper's
//! evaluation section; `--quick` switches to reduced workload sizes for
//! smoke runs. Figure binaries print the rendered figure and emit the
//! raw data as CSV on request (`--csv`).

use bgpbench_core::experiments::ExperimentConfig;

/// Parses the common CLI flags of the table/figure binaries.
///
/// Returns the experiment configuration (`--quick` selects
/// [`ExperimentConfig::quick`]) and whether `--csv` was requested.
pub fn cli_config() -> (ExperimentConfig, bool) {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::full()
    };
    (config, csv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cli_is_full_without_csv() {
        // The test binary carries no --quick/--csv flags.
        let (config, csv) = cli_config();
        assert_eq!(config, ExperimentConfig::full());
        assert!(!csv);
    }
}
