//! Tables I and II — the paper's definition tables, whose content is
//! fixed rather than measured — as [`Render`]able artifacts.

use std::fmt::Write as _;

use bgpbench_core::{BgpOperation, PacketSize, Scenario, StaticReport};
use bgpbench_models::{all_platforms, PlatformKind};

fn operation_columns(scenario: Scenario) -> (&'static str, &'static str) {
    match scenario.operation() {
        BgpOperation::StartupAnnounce => ("Start-Up", "ANNOUNCE"),
        BgpOperation::EndingWithdraw => ("Ending", "WITHDRAW"),
        BgpOperation::IncrementalNoChange | BgpOperation::IncrementalChange => {
            ("Incremental Operation", "ANNOUNCE")
        }
        BgpOperation::SessionChurn => ("Session Churn", "ANNOUNCE"),
        BgpOperation::ExportRewrite => ("Policy Export", "ANNOUNCE"),
        BgpOperation::MedOscillation => ("MED Oscillation", "ANNOUNCE"),
        BgpOperation::UpdateTrainReplay => ("Update-Train Replay", "MIXED"),
    }
}

/// Table I: the benchmark scenario definitions.
pub fn table1() -> StaticReport {
    let mut text = String::new();
    let _ = writeln!(text, "Table I: BGP benchmark scenarios");
    let _ = writeln!(text, "{:-<88}", "");
    let _ = writeln!(
        text,
        "{:<10} {:<24} {:<14} {:<22} {:<10}",
        "Scenario", "BGP operation", "UPDATE type", "Fwd table changes", "Packets"
    );
    let _ = writeln!(text, "{:-<88}", "");
    let mut csv = String::from("scenario,operation,update_type,changes_fwd_table,packets\n");
    for scenario in Scenario::ALL {
        let (operation, update_type) = operation_columns(scenario);
        let changes = if scenario.changes_forwarding_table() {
            "Yes"
        } else {
            "No"
        };
        let _ = writeln!(
            text,
            "{:<10} {:<24} {:<14} {:<22} {:<10}",
            scenario.number(),
            operation,
            update_type,
            changes,
            scenario.packet_size().to_string(),
        );
        let _ = writeln!(
            csv,
            "{},{},{},{},{}",
            scenario.number(),
            operation,
            update_type,
            changes,
            scenario.packet_size(),
        );
    }
    let _ = writeln!(text, "{:-<88}", "");
    let _ = writeln!(
        text,
        "small = {} prefix/UPDATE, large = {} prefixes/UPDATE",
        PacketSize::Small.prefixes_per_update(),
        PacketSize::Large.prefixes_per_update()
    );
    StaticReport {
        title: "Table I".to_owned(),
        text,
        csv,
    }
}

/// Table II: the modeled system configurations.
pub fn table2() -> StaticReport {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Table II: system configurations of the modeled BGP routers"
    );
    let _ = writeln!(text, "{:-<96}", "");
    let _ = writeln!(
        text,
        "{:<13} {:<26} {:<7} {:<17} {:<12} {:<16}",
        "Name", "System type", "Cores", "Control CPU", "Fwd limit", "Software model"
    );
    let _ = writeln!(text, "{:-<96}", "");
    let mut csv =
        String::from("name,system_type,cores,control_gcycles_per_sec,fwd_limit_mbps,software\n");
    for platform in all_platforms() {
        let system_type = match platform.name {
            "Pentium III" => "Uni-core router",
            "Xeon" => "Dual-core router",
            "IXP2400" => "Network processor router",
            _ => "Commercial router",
        };
        let software = match platform.kind {
            PlatformKind::Xorp(_) => "XORP 1.3 pipeline",
            PlatformKind::Ios(_) => "IOS black box",
        };
        let _ = writeln!(
            text,
            "{:<13} {:<26} {:<7} {:<17} {:<12} {:<16}",
            platform.name,
            system_type,
            platform.cores,
            format!("{:.1} Gcycles/s", platform.core.hz / 1e9),
            format!("{:.0} Mbps", platform.cross.max_forward_mbps),
            software,
        );
        let _ = writeln!(
            csv,
            "{},{},{},{:.1},{:.0},{}",
            platform.name,
            system_type,
            platform.cores,
            platform.core.hz / 1e9,
            platform.cross.max_forward_mbps,
            software,
        );
    }
    let _ = writeln!(text, "{:-<96}", "");
    let _ = writeln!(
        text,
        "forwarding limits per the paper: PCI bus (315), PCIe (784), NP interconnect (940), 100 Mbps ports (78)"
    );
    StaticReport {
        title: "Table II".to_owned(),
        text,
        csv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpbench_core::Render;

    #[test]
    fn table1_covers_all_scenarios() {
        let report = table1();
        for n in 1..=8 {
            assert!(
                report.text().contains(&format!("\n{n:<10} ")),
                "scenario {n}"
            );
        }
        assert_eq!(report.csv().lines().count(), 9);
        assert!(report.csv().contains("1,Start-Up,ANNOUNCE,Yes,small"));
    }

    #[test]
    fn table2_covers_all_platforms() {
        let report = table2();
        for name in ["Pentium III", "Xeon", "IXP2400", "Cisco"] {
            assert!(report.text().contains(name), "{name}");
            assert!(report.csv().contains(name), "{name} (csv)");
        }
        assert_eq!(report.csv().lines().count(), 5);
    }
}
