//! The measured Figures 3–4 report: per-process decomposition derived
//! from telemetry spans and the simulator's cycle attribution, instead
//! of the model-emitted CPU series `fig3`/`fig4` plot.
//!
//! ```text
//! cargo run --release -p bgpbench-bench --bin fig34_breakdown -- [--quick] [--csv [<path>]]
//! ```
//!
//! Cells run serially regardless of `--threads`: the telemetry registry
//! is process-global, so parallel cells would blend their attribution.

use bgpbench_bench::Cli;
use bgpbench_core::fig34_breakdown;

fn main() {
    let cli = Cli::from_env();
    eprintln!(
        "measuring 8 scenarios on the Pentium III ({}/{} prefixes small/large), serially...",
        cli.config.small_prefixes, cli.config.large_prefixes
    );
    let breakdown = fig34_breakdown(&cli.config);
    cli.emit(&breakdown);
    let violations = breakdown.check_shape();
    if violations.is_empty() {
        println!("\nthe paper's Fig. 3-4 shape emerges from the instrumentation");
    } else {
        println!("\nshape mismatches:");
        for violation in &violations {
            println!("  - {violation}");
        }
    }
}
