//! Tracked RIB performance baseline: times the update-processing hot
//! paths the attribute interner and single-table layout optimize, and
//! writes the results to a JSON artifact (`BENCH_rib.json` by default)
//! so regressions show up as a diffable number rather than a feeling.
//!
//! ```text
//! cargo run --release -p bgpbench-bench --bin perf_baseline -- \
//!     [--quick] [--fulltable] [--samples <n>] [--prefixes <n>] [--out <path>] \
//!     [--init | --check] [--tolerance <pct>] [--telemetry] [--trace] \
//!     [--allow-telemetry-mismatch]
//! ```
//!
//! `--fulltable` switches to the Internet-scale workload: a modern
//! 1M-prefix table (S16–S18's generator) driven through
//! `apply_update_train` cold-start, bursty update-train replay, and
//! withdraw-storm samplers, each at one shard and at [`SHARDS`]
//! shards. The artifact defaults to `BENCH_fulltable.json` and every
//! `*_sharded` scenario baselines against its in-run one-shard twin,
//! so the recorded speedups are this host's parallel scaling at full
//! table size. `--quick` only lowers the sample count there — the
//! table stays at 1M prefixes unless `--prefixes` overrides it, so
//! checks always compare like-sized workloads.
//!
//! Each scenario reports the median wall time per iteration and the
//! derived per-prefix cost, next to a reference measurement. For the
//! single-engine scenarios the reference is the pre-interning two-map
//! engine (commit d66c2f8) on the same harness, so the speedup the
//! interner bought is recorded in the artifact itself. The `*_sharded`
//! scenarios instead measure against their own in-run one-shard twin
//! (`startup_train`, `withdraw_storm_train`), so their
//! `speedup_vs_baseline` is the parallel scaling factor of the sharded
//! engine at [`SHARDS`] shards — measured on this host, this run.
//!
//! The sharded scenarios run at `max(--prefixes, 100000)` prefixes:
//! partition and merge are serial, so the parallel win needs tables
//! big enough that cache-cold per-prefix decision cost dominates.
//!
//! The tracked baseline at `--out` must already exist: by default the
//! run compares against it and rewrites it, and exits non-zero with a
//! pointer at `--init` when the file is missing — a missing baseline
//! used to be silently replaced by a fresh one, which turned every
//! comparison into new-vs-new. `--init` creates the baseline;
//! `--check` compares without rewriting and fails the process when any
//! *tracked* scenario's median regresses more than `--tolerance`
//! percent (default 2.0) — that is the mode CI's telemetry-overhead
//! and shards jobs run with telemetry off. Scenarios whose baseline
//! entry carries `"baseline_ns_per_iter": null` are informational:
//! `--check` prints them with a warning and skips them instead of
//! gating on numbers that have no reference. `--telemetry` enables the
//! registry for the run (to measure the instrumented path's overhead)
//! and dumps its snapshot to stderr; `--trace` additionally arms the
//! flight recorder. The artifact records which recorders were live
//! (`"telemetry"`, `"trace"`), and `--check` refuses to compare runs
//! whose recorder state differs from the baseline's — an instrumented
//! run against a bare baseline measures the instrumentation, not a
//! regression. `--allow-telemetry-mismatch` downgrades that refusal to
//! a warning (the overhead-measuring CI job compares on purpose).

use std::net::Ipv4Addr;
use std::time::Instant;

use bgpbench_core::PolicyProfile;
use bgpbench_rib::{PeerId, PeerInfo, RibEngine, ShardedRibEngine};
use bgpbench_speaker::{modern, workload, BurstSpec, ModernTableGenerator, TableGenerator};
use bgpbench_telemetry as telemetry;
use bgpbench_wire::{Asn, RouterId, UpdateMessage};

/// Routing-table size of the single-engine scenarios when `--prefixes`
/// is not given.
const DEFAULT_PREFIXES: usize = 5000;
/// Expected table size passed to `reserve` in the reserved scenarios
/// at the default `--prefixes`; headroom above the table size mirrors
/// a speaker configured for a maximum rather than the exact count.
/// Other table sizes scale the same headroom ratio.
const RESERVE: usize = 8192;
/// Shard count of the `*_sharded` scenarios.
const SHARDS: usize = 4;
/// Table size of `--fulltable` mode when `--prefixes` is not given —
/// a modern full Internet table.
const FULLTABLE_PREFIXES: usize = 1_000_000;
/// Floor on the sharded scenarios' table size (see module docs).
const SHARDED_PREFIX_FLOOR: usize = 100_000;

/// `reserve` argument scaled so the default table size keeps its
/// historical 8192 and bigger tables keep the same headroom ratio.
fn reserve_for(prefixes: usize) -> usize {
    prefixes * RESERVE / DEFAULT_PREFIXES
}

/// Median times per iteration measured at the pre-interning engine
/// (two hash maps, no attribute store), in nanoseconds. `None` where
/// the scenario did not exist before this harness. The `*_sharded`
/// scenarios are absent on purpose: their baseline is the in-run
/// one-shard twin, not a historical number.
const BASELINE_NS: &[(&str, Option<f64>)] = &[
    ("startup_large_pkts", Some(1_120_000.0)),
    ("startup_large_pkts_reserved", Some(1_120_000.0)),
    ("startup_small_pkts", None),
    ("incremental_losing", Some(1_194_000.0)),
    ("incremental_winning", Some(1_171_000.0)),
    ("incremental_policed", None),
    ("withdraw_storm", Some(891_711.0)),
];

/// What to do with the tracked baseline file at `--out`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BaselineMode {
    /// Compare against the existing file and rewrite it (the default;
    /// errors out when the file is missing).
    Update,
    /// Create the file without requiring it to exist (`--init`).
    Init,
    /// Compare only, never write; exit 1 on a regression beyond the
    /// tolerance (`--check`).
    Check,
}

struct Options {
    samples: usize,
    prefixes: usize,
    /// Measure the Internet-scale modern-table samplers instead of the
    /// classic RIB hot paths.
    fulltable: bool,
    out: String,
    mode: BaselineMode,
    /// Allowed regression in percent before `--check` fails.
    tolerance: f64,
    telemetry: bool,
    /// Arm the flight recorder for the run (implies recorder-state
    /// metadata `"trace": true` in the artifact).
    trace: bool,
    /// Compare under `--check` even when the baseline's recorder state
    /// differs from this run's.
    allow_telemetry_mismatch: bool,
}

fn parse_args() -> Options {
    let mut samples: Option<usize> = None;
    let mut quick = false;
    let mut fulltable = false;
    let mut prefixes: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut mode = BaselineMode::Update;
    let mut tolerance = 2.0;
    let mut telemetry = false;
    let mut trace = false;
    let mut allow_telemetry_mismatch = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--fulltable" => fulltable = true,
            "--init" => mode = BaselineMode::Init,
            "--check" => mode = BaselineMode::Check,
            "--telemetry" => telemetry = true,
            "--trace" => trace = true,
            "--allow-telemetry-mismatch" => allow_telemetry_mismatch = true,
            "--samples" => {
                let value = args.next().unwrap_or_default();
                samples = Some(value.parse().unwrap_or_else(|_| {
                    eprintln!("--samples expects a positive integer, got {value:?}");
                    std::process::exit(2);
                }));
            }
            "--prefixes" => {
                let value = args.next().unwrap_or_default();
                let parsed: usize = value.parse().unwrap_or_else(|_| {
                    eprintln!("--prefixes expects a positive integer, got {value:?}");
                    std::process::exit(2);
                });
                if parsed == 0 {
                    eprintln!("--prefixes expects a positive integer, got 0");
                    std::process::exit(2);
                }
                prefixes = Some(parsed);
            }
            "--tolerance" => {
                let value = args.next().unwrap_or_default();
                tolerance = value.parse().unwrap_or_else(|_| {
                    eprintln!("--tolerance expects a percentage, got {value:?}");
                    std::process::exit(2);
                });
            }
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--out expects a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: perf_baseline [--quick] [--fulltable] [--samples <n>] \
                     [--prefixes <n>] [--out <path>] [--init | --check] [--tolerance <pct>] \
                     [--telemetry] [--trace] [--allow-telemetry-mismatch]"
                );
                std::process::exit(2);
            }
        }
    }
    Options {
        samples: samples.unwrap_or(if quick { 5 } else { 20 }),
        prefixes: prefixes.unwrap_or(if fulltable {
            FULLTABLE_PREFIXES
        } else {
            DEFAULT_PREFIXES
        }),
        fulltable,
        out: out.unwrap_or_else(|| {
            String::from(if fulltable {
                "BENCH_fulltable.json"
            } else {
                "BENCH_rib.json"
            })
        }),
        mode,
        tolerance,
        telemetry,
        trace,
        allow_telemetry_mismatch,
    }
}

/// Pulls the top-level `"telemetry"` / `"trace"` recorder-state flags
/// out of a baseline artifact. Artifacts written before the flags
/// existed read as (false, false) — those baselines were measured bare.
fn parse_recorder_state(json: &str) -> (bool, bool) {
    let mut telemetry = false;
    let mut trace = false;
    for line in json.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"telemetry\": ") {
            telemetry = rest.trim_end_matches(',') == "true";
        } else if let Some(rest) = line.strip_prefix("\"trace\": ") {
            trace = rest.trim_end_matches(',') == "true";
        }
    }
    (telemetry, trace)
}

struct TrackedScenario {
    name: String,
    /// Per-scenario `"prefixes"` from the artifact, where recorded —
    /// compare() reports it when a mismatch could be a workload-size
    /// difference rather than a code change.
    prefixes: Option<usize>,
    median_ns: f64,
    min_ns: Option<f64>,
    /// `false` when the artifact records `"baseline_ns_per_iter":
    /// null` — the scenario is informational and `--check` skips it.
    tracked: bool,
}

/// Pulls each scenario's `"name"`, `"median_ns_per_iter"`,
/// `"min_ns_per_iter"`, and null-baseline marker out of a previously
/// written baseline artifact. The format is our own line-per-field
/// JSON, so a line scan is exact, not a heuristic.
fn parse_tracked(json: &str) -> Vec<TrackedScenario> {
    let mut scenarios: Vec<TrackedScenario> = Vec::new();
    let mut name: Option<String> = None;
    let mut prefixes: Option<usize> = None;
    for line in json.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\": \"") {
            name = rest.strip_suffix("\",").map(str::to_owned);
            prefixes = None;
        } else if let Some(rest) = line.strip_prefix("\"prefixes\": ") {
            // Only the per-scenario size (after a "name" line); the
            // artifact's top-level "prefixes" precedes any scenario.
            if name.is_some() {
                prefixes = rest.trim_end_matches(',').parse().ok();
            }
        } else if let Some(rest) = line.strip_prefix("\"median_ns_per_iter\": ") {
            if let (Some(name), Ok(ns)) = (name.take(), rest.trim_end_matches(',').parse()) {
                scenarios.push(TrackedScenario {
                    name,
                    prefixes: prefixes.take(),
                    median_ns: ns,
                    min_ns: None,
                    tracked: true,
                });
            }
        } else if let Some(rest) = line.strip_prefix("\"min_ns_per_iter\": ") {
            if let (Some(last), Ok(ns)) = (scenarios.last_mut(), rest.trim_end_matches(',').parse())
            {
                last.min_ns = Some(ns);
            }
        } else if line
            .strip_prefix("\"baseline_ns_per_iter\": null")
            .is_some()
        {
            if let Some(last) = scenarios.last_mut() {
                last.tracked = false;
            }
        }
    }
    scenarios
}

/// Outcome of comparing a fresh run against the tracked baseline.
#[derive(Default)]
struct Comparison {
    /// Tracked scenarios that regressed beyond the tolerance.
    regressions: Vec<String>,
    /// Scenarios the current run measures but the baseline file does
    /// not mention at all — a stale baseline, fatal under `--check`
    /// (an unrecorded scenario can regress forever without failing
    /// anything). Scenarios *recorded* with a null baseline are not
    /// in this list; those are warned about and skipped.
    untracked: Vec<String>,
}

/// Compares the fresh run against the tracked baseline. The
/// comparison runs on the per-scenario *minimum*: on a shared host the
/// median swings with load, while the fastest sample is reproducible
/// (baselines written before the minimum was recorded fall back to
/// the median).
fn compare(results: &[ScenarioResult], tracked: &[TrackedScenario], tolerance: f64) -> Comparison {
    let mut comparison = Comparison::default();
    eprintln!("\nvs tracked baseline, fastest sample (tolerance {tolerance:.1}%):");
    for result in results {
        match tracked.iter().find(|entry| entry.name == result.name) {
            Some(entry) if !entry.tracked => {
                eprintln!(
                    "{:32} warning: baseline_ns_per_iter is null; informational only, skipped",
                    result.name
                );
            }
            Some(entry) => {
                let tracked_ns = entry.min_ns.unwrap_or(entry.median_ns);
                let delta = (result.min_ns_per_iter - tracked_ns) / tracked_ns * 100.0;
                let verdict = if delta > tolerance { "REGRESSED" } else { "ok" };
                // A size mismatch makes the timing delta meaningless —
                // say so right on the line instead of letting it read
                // as a code regression (or a phantom win).
                let size_note = match entry.prefixes {
                    Some(base) if base != result.prefixes => {
                        format!(
                            "  [workload size differs: baseline {base} vs run {} prefixes]",
                            result.prefixes
                        )
                    }
                    _ => String::new(),
                };
                eprintln!(
                    "{:32} {:10.1} -> {:10.1} us/iter  {delta:+6.1}%  {verdict}{size_note}",
                    result.name,
                    tracked_ns / 1e3,
                    result.min_ns_per_iter / 1e3
                );
                if delta > tolerance {
                    comparison
                        .regressions
                        .push(format!("{} ({} prefixes)", result.name, result.prefixes));
                }
            }
            None => {
                eprintln!(
                    "{:32} (no tracked measurement at {} prefixes)",
                    result.name, result.prefixes
                );
                comparison.untracked.push(result.name.to_owned());
            }
        }
    }
    comparison
}

fn engine() -> RibEngine {
    let mut engine = RibEngine::new(Asn(65000), RouterId(1));
    engine.add_peer(PeerInfo::new(
        PeerId(1),
        Asn(65001),
        RouterId(2),
        Ipv4Addr::new(10, 0, 0, 2),
    ));
    engine.add_peer(PeerInfo::new(
        PeerId(2),
        Asn(65002),
        RouterId(3),
        Ipv4Addr::new(10, 0, 0, 3),
    ));
    engine
}

fn announcements(
    prefixes: usize,
    asn: u16,
    path_len: usize,
    per_update: usize,
) -> Vec<UpdateMessage> {
    let table = TableGenerator::new(5).generate(prefixes);
    workload::announcements(
        &table,
        &workload::AnnounceSpec {
            speaker_asn: Asn(asn),
            path_len,
            next_hop: Ipv4Addr::new(10, 0, 0, if asn == 65001 { 2 } else { 3 }),
            prefixes_per_update: per_update,
            seed: 5,
        },
    )
}

/// Times `routine` over fresh state from `setup`: per sample, the
/// setup runs untimed, the routine runs timed, and the routine's
/// return value drops untimed. Returns the raw sample times in ns.
fn measure_times<T, R>(
    samples: usize,
    mut setup: impl FnMut() -> T,
    mut routine: impl FnMut(T) -> R,
) -> Vec<f64> {
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..2 {
        std::hint::black_box(routine(setup()));
    }
    for _ in 0..samples {
        let input = setup();
        let start = Instant::now();
        let output = routine(input);
        times.push(start.elapsed().as_nanos() as f64);
        drop(output);
    }
    times
}

/// (median, minimum) ns/iteration over a scenario's pooled samples:
/// the median is the honest typical cost, the minimum is the
/// noise-robust number regression checks compare (timing noise on a
/// shared host is strictly additive, so the fastest sample is the
/// closest observable to the code's true cost).
fn summarize(times: &mut [f64]) -> (f64, f64) {
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[times.len() / 2], times[0])
}

struct ScenarioResult {
    name: &'static str,
    /// Table size this scenario processed per iteration (the sharded
    /// scenarios run bigger tables than the single-engine ones).
    prefixes: usize,
    ns_per_iter: f64,
    min_ns_per_iter: f64,
    /// The reference this scenario's `speedup_vs_baseline` divides
    /// against: a historical [`BASELINE_NS`] entry, or — for the
    /// `*_sharded` scenarios — the in-run one-shard twin's median.
    baseline_ns: Option<f64>,
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains('"') && !s.contains('\\'));
    s
}

/// One scenario's sampler: takes a sample count, returns raw times.
type ScenarioSampler<'a> = Box<dyn FnMut(usize) -> Vec<f64> + 'a>;

/// Everything one measurement mode produces: the per-scenario results
/// (baselines already assigned), the artifact's attribute-store
/// fragment where the mode measures one, and artifact metadata.
struct Measurement {
    results: Vec<ScenarioResult>,
    attr_json: Option<String>,
    sharded_prefixes: usize,
    bench_name: &'static str,
    baseline_note: &'static str,
}

/// Round-robin driver shared by both modes: each round takes a slice
/// of every scenario's samples, so one scenario's pool spans the whole
/// run instead of a contiguous ~0.1 s window. A noise burst on a
/// shared host then has to outlast the entire run to poison a
/// scenario's minimum, rather than just its slice of the schedule.
fn run_specs(
    samples: usize,
    specs: &mut [(&'static str, usize, ScenarioSampler)],
) -> Vec<ScenarioResult> {
    let rounds = samples.min(10);
    let per_round = samples.div_ceil(rounds);
    let mut pools: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
    for _ in 0..rounds {
        for (pool, (_, _, spec)) in pools.iter_mut().zip(specs.iter_mut()) {
            pool.extend(spec(per_round));
        }
    }
    let mut results: Vec<ScenarioResult> = Vec::new();
    for ((name, scenario_prefixes, _), pool) in specs.iter().zip(pools.iter_mut()) {
        let (ns, min_ns) = summarize(pool);
        eprintln!(
            "{name:32} {:10.1} us/iter  ({:.0} ns/prefix, fastest {:.1} us)",
            ns / 1e3,
            ns / *scenario_prefixes as f64,
            min_ns / 1e3
        );
        results.push(ScenarioResult {
            name,
            prefixes: *scenario_prefixes,
            ns_per_iter: ns,
            min_ns_per_iter: min_ns,
            baseline_ns: None,
        });
    }
    results
}

/// Assigns each `*_sharded` scenario's baseline from its in-run
/// one-shard twin and prints the resulting scaling factors —
/// `speedup_vs_baseline` then *is* the parallel scaling on this host.
fn apply_twin_baselines(results: &mut [ScenarioResult], pairs: &[(&str, &str)]) {
    for (sharded, twin) in pairs {
        let twin_ns = results
            .iter()
            .find(|result| result.name == *twin)
            .map(|result| result.ns_per_iter);
        if let Some(result) = results.iter_mut().find(|result| result.name == *sharded) {
            result.baseline_ns = twin_ns;
            if let Some(base) = twin_ns {
                eprintln!(
                    "{sharded:32} {:.2}x vs {twin} at {SHARDS} shards, {} prefixes",
                    base / result.ns_per_iter,
                    result.prefixes
                );
            }
        }
    }
}

/// The classic hot-path scenarios (the 2007-era table) and the
/// attribute-store effectiveness section.
fn measure_classic(options: &Options) -> Measurement {
    let prefixes = options.prefixes;
    let sharded_prefixes = prefixes.max(SHARDED_PREFIX_FLOOR);
    let large = announcements(prefixes, 65001, 3, 500);
    let small = announcements(prefixes, 65001, 3, 1);
    let losing = announcements(prefixes, 65002, 6, 500);
    let winning = announcements(prefixes, 65002, 2, 500);
    let withdrawals = workload::withdrawals(&TableGenerator::new(5).generate(prefixes), 500);
    let sharded_table = TableGenerator::new(5).generate(sharded_prefixes);
    let sharded_large = workload::announcements(
        &sharded_table,
        &workload::AnnounceSpec {
            speaker_asn: Asn(65001),
            path_len: 3,
            next_hop: Ipv4Addr::new(10, 0, 0, 2),
            prefixes_per_update: 500,
            seed: 5,
        },
    );
    let sharded_withdrawals = workload::withdrawals(&sharded_table, 500);

    let loaded = || {
        let mut engine = engine();
        for update in &large {
            engine.apply_update(PeerId(1), update).unwrap();
        }
        engine
    };
    // The same loaded engine with S13's two-entry import filter
    // attached — `incremental_policed` vs `incremental_winning` is the
    // route-map's per-announcement overhead on the import hot path.
    let policed = || {
        let mut engine = loaded();
        engine.set_import_policy(PolicyProfile::FilterChurn.import_map());
        engine
    };
    fn flood(updates: &[UpdateMessage], peer: PeerId) -> impl FnMut(RibEngine) -> RibEngine + '_ {
        move |mut engine| {
            for update in updates {
                engine.apply_update(peer, update).unwrap();
            }
            engine
        }
    }
    // The sharded scenarios and their one-shard twins go through
    // `apply_update_train` on both sides, so the comparison isolates
    // the parallel fan-out from the (identical) train bookkeeping.
    let sharded_engine = |shards: usize| {
        let mut engine = ShardedRibEngine::new(Asn(65000), RouterId(1));
        engine.add_peer(PeerInfo::new(
            PeerId(1),
            Asn(65001),
            RouterId(2),
            Ipv4Addr::new(10, 0, 0, 2),
        ));
        engine.set_shards(shards);
        engine.reserve(reserve_for(sharded_prefixes));
        engine
    };
    let sharded_loaded = |shards: usize| {
        let mut engine = sharded_engine(shards);
        engine
            .apply_update_train(PeerId(1), &sharded_large)
            .unwrap();
        engine
    };
    fn train(updates: &[UpdateMessage]) -> impl FnMut(ShardedRibEngine) -> ShardedRibEngine + '_ {
        move |mut engine| {
            engine.apply_update_train(PeerId(1), updates).unwrap();
            engine
        }
    }

    // The scenarios measure round-robin: each round takes a slice of
    // every scenario's samples, so one scenario's pool spans the whole
    // run instead of a contiguous ~0.1 s window. A noise burst on a
    // shared host then has to outlast the entire run to poison a
    // scenario's minimum, rather than just its slice of the schedule.
    let mut specs: Vec<(&'static str, usize, ScenarioSampler)> = vec![
        (
            "startup_large_pkts",
            prefixes,
            Box::new(|n| measure_times(n, engine, flood(&large, PeerId(1)))),
        ),
        (
            "startup_large_pkts_reserved",
            prefixes,
            Box::new(|n| {
                measure_times(
                    n,
                    || {
                        let mut engine = engine();
                        engine.reserve(reserve_for(prefixes));
                        engine
                    },
                    flood(&large, PeerId(1)),
                )
            }),
        ),
        (
            "startup_small_pkts",
            prefixes,
            Box::new(|n| measure_times(n, engine, flood(&small, PeerId(1)))),
        ),
        (
            "incremental_losing",
            prefixes,
            Box::new(|n| measure_times(n, &loaded, flood(&losing, PeerId(2)))),
        ),
        (
            "incremental_winning",
            prefixes,
            Box::new(|n| measure_times(n, &loaded, flood(&winning, PeerId(2)))),
        ),
        (
            "incremental_policed",
            prefixes,
            Box::new(|n| measure_times(n, &policed, flood(&winning, PeerId(2)))),
        ),
        (
            "withdraw_storm",
            prefixes,
            Box::new(|n| measure_times(n, &loaded, flood(&withdrawals, PeerId(1)))),
        ),
        (
            "startup_train",
            sharded_prefixes,
            Box::new(|n| measure_times(n, || sharded_engine(1), train(&sharded_large))),
        ),
        (
            "startup_sharded",
            sharded_prefixes,
            Box::new(|n| measure_times(n, || sharded_engine(SHARDS), train(&sharded_large))),
        ),
        (
            "withdraw_storm_train",
            sharded_prefixes,
            Box::new(|n| measure_times(n, || sharded_loaded(1), train(&sharded_withdrawals))),
        ),
        (
            "withdraw_storm_sharded",
            sharded_prefixes,
            Box::new(|n| measure_times(n, || sharded_loaded(SHARDS), train(&sharded_withdrawals))),
        ),
    ];

    let results = run_specs(options.samples, &mut specs);
    let mut results = results;
    for result in &mut results {
        result.baseline_ns = BASELINE_NS
            .iter()
            .find(|(tracked, _)| *tracked == result.name)
            .and_then(|(_, ns)| *ns);
    }
    apply_twin_baselines(
        &mut results,
        &[
            ("startup_sharded", "startup_train"),
            ("withdraw_storm_sharded", "withdraw_storm_train"),
        ],
    );

    // Attribute-store effectiveness over a representative startup run:
    // the workload carries one attribute set per UPDATE, so the table
    // collapses to one canonical allocation per packet.
    let loaded_engine = loaded();
    let store = loaded_engine.attr_store();
    let stats = store.stats();
    let announced = loaded_engine.stats().announcements;
    let mut attr = String::new();
    attr.push_str("  \"attr_store\": {\n");
    attr.push_str(&format!("    \"routes_announced\": {announced},\n"));
    attr.push_str(&format!("    \"distinct_sets\": {},\n", store.len()));
    attr.push_str(&format!(
        "    \"routes_per_set\": {:.1},\n",
        announced as f64 / store.len().max(1) as f64
    ));
    attr.push_str(&format!("    \"intern_hits\": {},\n", stats.hits));
    attr.push_str(&format!("    \"intern_misses\": {},\n", stats.misses));
    attr.push_str(&format!("    \"released\": {}\n", stats.released));
    attr.push_str("  }\n");

    Measurement {
        results,
        attr_json: Some(attr),
        sharded_prefixes,
        bench_name: "rib_perf_baseline",
        baseline_note: "pre-interning two-map engine (d66c2f8), same harness and host \
         class; *_sharded scenarios baseline against their in-run one-shard twin",
    }
}

/// The Internet-scale scenarios: a modern full table through the
/// sharded engine's update-train path — cold start, bursty update
/// train, and withdraw storm, each at one shard and at [`SHARDS`]
/// shards. Mirrors S16–S18.
fn measure_fulltable(options: &Options) -> Measurement {
    let prefixes = options.prefixes;
    let table = ModernTableGenerator::new(5).generate(prefixes);
    let spec = workload::AnnounceSpec {
        speaker_asn: Asn(65001),
        path_len: 3,
        next_hop: Ipv4Addr::new(10, 0, 0, 2),
        prefixes_per_update: 500,
        seed: 5,
    };
    let announcements = modern::announcements(&table, &spec);
    // One burst event per prefix, so the train touches the whole table
    // exactly once — the full-table analogue of S17's timed phase.
    let update_train = modern::update_train(
        &table,
        &spec,
        &BurstSpec {
            events: prefixes,
            ..BurstSpec::default()
        },
    );
    let withdrawals = workload::withdrawals(&table, 500);

    let engine = |shards: usize| {
        let mut engine = ShardedRibEngine::new(Asn(65000), RouterId(1));
        engine.add_peer(PeerInfo::new(
            PeerId(1),
            Asn(65001),
            RouterId(2),
            Ipv4Addr::new(10, 0, 0, 2),
        ));
        engine.set_shards(shards);
        engine.reserve(reserve_for(prefixes));
        engine
    };
    let loaded = |shards: usize| {
        let mut loaded = engine(shards);
        loaded
            .apply_update_train(PeerId(1), &announcements)
            .unwrap();
        loaded
    };
    fn train(updates: &[UpdateMessage]) -> impl FnMut(ShardedRibEngine) -> ShardedRibEngine + '_ {
        move |mut engine| {
            engine.apply_update_train(PeerId(1), updates).unwrap();
            engine
        }
    }

    let mut specs: Vec<(&'static str, usize, ScenarioSampler)> = vec![
        (
            "fulltable_startup_train",
            prefixes,
            Box::new(|n| measure_times(n, || engine(1), train(&announcements))),
        ),
        (
            "fulltable_startup_sharded",
            prefixes,
            Box::new(|n| measure_times(n, || engine(SHARDS), train(&announcements))),
        ),
        (
            "fulltable_update_train",
            prefixes,
            Box::new(|n| measure_times(n, || loaded(1), train(&update_train))),
        ),
        (
            "fulltable_update_train_sharded",
            prefixes,
            Box::new(|n| measure_times(n, || loaded(SHARDS), train(&update_train))),
        ),
        (
            "fulltable_withdraw_train",
            prefixes,
            Box::new(|n| measure_times(n, || loaded(1), train(&withdrawals))),
        ),
        (
            "fulltable_withdraw_sharded",
            prefixes,
            Box::new(|n| measure_times(n, || loaded(SHARDS), train(&withdrawals))),
        ),
    ];
    let mut results = run_specs(options.samples, &mut specs);
    apply_twin_baselines(
        &mut results,
        &[
            ("fulltable_startup_sharded", "fulltable_startup_train"),
            ("fulltable_update_train_sharded", "fulltable_update_train"),
            ("fulltable_withdraw_sharded", "fulltable_withdraw_train"),
        ],
    );
    Measurement {
        results,
        attr_json: None,
        sharded_prefixes: prefixes,
        bench_name: "rib_fulltable_baseline",
        baseline_note: "each *_sharded scenario baselines against its in-run one-shard \
         twin on the same modern full table; plain trains are informational",
    }
}

fn main() {
    let options = parse_args();
    if options.telemetry {
        telemetry::enable();
    }
    if options.trace {
        telemetry::enable_trace(&telemetry::TraceConfig::default());
    }
    // Load the tracked baseline up front so a missing file fails
    // before minutes of measurement, not after.
    let mut baseline_state: Option<(bool, bool)> = None;
    let tracked: Option<Vec<TrackedScenario>> = match std::fs::read_to_string(&options.out) {
        Ok(json) => {
            baseline_state = Some(parse_recorder_state(&json));
            Some(parse_tracked(&json))
        }
        Err(_) if options.mode == BaselineMode::Init => None,
        Err(error) => {
            eprintln!(
                "error: tracked baseline {} is not readable: {error}",
                options.out
            );
            eprintln!(
                "a fresh baseline is never written implicitly (that would make every \
                 comparison new-vs-new); run with --init to create one"
            );
            std::process::exit(1);
        }
    };
    // A check across mismatched recorder states compares the
    // instrumentation's cost, not a code change's — refuse before the
    // measurement unless the caller says the mismatch is the point.
    if options.mode == BaselineMode::Check {
        if let Some((base_telemetry, base_trace)) = baseline_state {
            let mismatch = base_telemetry != options.telemetry || base_trace != options.trace;
            if mismatch {
                let detail = format!(
                    "baseline {} was recorded with telemetry={base_telemetry} trace={base_trace}; \
                     this run has telemetry={} trace={}",
                    options.out, options.telemetry, options.trace
                );
                if options.allow_telemetry_mismatch {
                    eprintln!("warning: recorder-state mismatch allowed: {detail}");
                } else {
                    eprintln!("error: recorder-state mismatch: {detail}");
                    eprintln!(
                        "re-run with matching flags, or pass --allow-telemetry-mismatch to \
                         compare across states on purpose (overhead measurements)"
                    );
                    std::process::exit(1);
                }
            }
        }
    }
    let measurement = if options.fulltable {
        measure_fulltable(&options)
    } else {
        measure_classic(&options)
    };
    let results = measurement.results;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"bench\": \"{}\",\n", measurement.bench_name));
    json.push_str(&format!("  \"samples\": {},\n", options.samples));
    json.push_str(&format!("  \"telemetry\": {},\n", options.telemetry));
    json.push_str(&format!("  \"trace\": {},\n", options.trace));
    json.push_str(&format!("  \"prefixes\": {},\n", options.prefixes));
    json.push_str(&format!(
        "  \"sharded_prefixes\": {},\n",
        measurement.sharded_prefixes
    ));
    json.push_str(&format!("  \"rib_shards\": {SHARDS},\n"));
    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Threads the sharded train actually uses: the engine falls back
    // to the caller thread when the host has a single CPU, so the
    // recorded scaling factor must be read against this, not SHARDS.
    json.push_str(&format!(
        "  \"threads\": {},\n",
        if parallelism > 1 { SHARDS } else { 1 }
    ));
    json.push_str(&format!("  \"available_parallelism\": {parallelism},\n"));
    json.push_str(&format!(
        "  \"baseline\": \"{}\",\n",
        json_escape_free(measurement.baseline_note)
    ));
    json.push_str("  \"scenarios\": [\n");
    for (i, result) in results.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!(
            "      \"name\": \"{}\",\n",
            json_escape_free(result.name)
        ));
        json.push_str(&format!("      \"prefixes\": {},\n", result.prefixes));
        json.push_str(&format!(
            "      \"median_ns_per_iter\": {:.0},\n",
            result.ns_per_iter
        ));
        json.push_str(&format!(
            "      \"min_ns_per_iter\": {:.0},\n",
            result.min_ns_per_iter
        ));
        json.push_str(&format!(
            "      \"ns_per_prefix\": {:.1},\n",
            result.ns_per_iter / result.prefixes as f64
        ));
        json.push_str(&format!(
            "      \"prefixes_per_sec\": {:.0},\n",
            result.prefixes as f64 / (result.ns_per_iter / 1e9)
        ));
        match result.baseline_ns {
            Some(baseline_ns) => {
                json.push_str(&format!(
                    "      \"baseline_ns_per_iter\": {baseline_ns:.0},\n"
                ));
                json.push_str(&format!(
                    "      \"speedup_vs_baseline\": {:.2}\n",
                    baseline_ns / result.ns_per_iter
                ));
            }
            None => {
                json.push_str("      \"baseline_ns_per_iter\": null,\n");
                json.push_str("      \"speedup_vs_baseline\": null\n");
            }
        }
        json.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    match &measurement.attr_json {
        Some(attr) => {
            json.push_str("  ],\n");
            json.push_str(attr);
        }
        None => json.push_str("  ]\n"),
    }
    json.push_str("}\n");

    let comparison = tracked
        .as_deref()
        .map(|tracked| compare(&results, tracked, options.tolerance))
        .unwrap_or_default();
    if options.telemetry {
        eprint!("{}", telemetry::snapshot().to_text());
    }
    match options.mode {
        BaselineMode::Check => {
            if !comparison.untracked.is_empty() {
                eprintln!(
                    "error: {} scenario(s) have no tracked measurement in {}: {}",
                    comparison.untracked.len(),
                    options.out,
                    comparison.untracked.join(", ")
                );
                eprintln!(
                    "the baseline is stale; re-run without --check (or with --init) to \
                     record them"
                );
                std::process::exit(1);
            }
            if !comparison.regressions.is_empty() {
                eprintln!(
                    "error: {} scenario(s) regressed more than {:.1}% vs {}: {}",
                    comparison.regressions.len(),
                    options.tolerance,
                    options.out,
                    comparison.regressions.join(", ")
                );
                std::process::exit(1);
            }
            eprintln!(
                "check passed within {:.1}%; {} left untouched",
                options.tolerance, options.out
            );
        }
        BaselineMode::Update | BaselineMode::Init => {
            std::fs::write(&options.out, &json).unwrap_or_else(|err| {
                eprintln!("failed to write {}: {err}", options.out);
                std::process::exit(1);
            });
            eprintln!("wrote {}", options.out);
        }
    }
}
