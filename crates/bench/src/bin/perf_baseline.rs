//! Tracked RIB performance baseline: times the update-processing hot
//! paths the attribute interner and single-table layout optimize, and
//! writes the results to a JSON artifact (`BENCH_rib.json` by default)
//! so regressions show up as a diffable number rather than a feeling.
//!
//! ```text
//! cargo run --release -p bgpbench-bench --bin perf_baseline -- \
//!     [--quick] [--samples <n>] [--out <path>]
//! ```
//!
//! Each scenario reports the median wall time per iteration and the
//! derived per-prefix cost, next to the corresponding measurement
//! taken at the pre-interning two-map engine (commit d66c2f8) on the
//! same harness, so the speedup the optimization bought is recorded in
//! the artifact itself.

use std::net::Ipv4Addr;
use std::time::Instant;

use bgpbench_rib::{PeerId, PeerInfo, RibEngine};
use bgpbench_speaker::{workload, TableGenerator};
use bgpbench_wire::{Asn, RouterId, UpdateMessage};

const PREFIXES: usize = 5000;
/// Expected table size passed to [`RibEngine::reserve`] in the
/// reserved scenarios; headroom above `PREFIXES` mirrors a speaker
/// configured for a maximum rather than the exact count.
const RESERVE: usize = 8192;

/// Median times per iteration measured at the pre-interning engine
/// (two hash maps, no attribute store), in nanoseconds. `None` where
/// the scenario did not exist before this harness.
const BASELINE_NS: &[(&str, Option<f64>)] = &[
    ("startup_large_pkts", Some(1_120_000.0)),
    ("startup_large_pkts_reserved", Some(1_120_000.0)),
    ("startup_small_pkts", None),
    ("incremental_losing", Some(1_194_000.0)),
    ("incremental_winning", Some(1_171_000.0)),
    ("withdraw_storm", Some(891_711.0)),
];

struct Options {
    samples: usize,
    out: String,
}

fn parse_args() -> Options {
    let mut samples: Option<usize> = None;
    let mut quick = false;
    let mut out = String::from("BENCH_rib.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--samples" => {
                let value = args.next().unwrap_or_default();
                samples = Some(value.parse().unwrap_or_else(|_| {
                    eprintln!("--samples expects a positive integer, got {value:?}");
                    std::process::exit(2);
                }));
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("--out expects a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: perf_baseline [--quick] [--samples <n>] [--out <path>]");
                std::process::exit(2);
            }
        }
    }
    Options {
        samples: samples.unwrap_or(if quick { 5 } else { 20 }),
        out,
    }
}

fn engine() -> RibEngine {
    let mut engine = RibEngine::new(Asn(65000), RouterId(1));
    engine.add_peer(PeerInfo::new(
        PeerId(1),
        Asn(65001),
        RouterId(2),
        Ipv4Addr::new(10, 0, 0, 2),
    ));
    engine.add_peer(PeerInfo::new(
        PeerId(2),
        Asn(65002),
        RouterId(3),
        Ipv4Addr::new(10, 0, 0, 3),
    ));
    engine
}

fn announcements(asn: u16, path_len: usize, per_update: usize) -> Vec<UpdateMessage> {
    let table = TableGenerator::new(5).generate(PREFIXES);
    workload::announcements(
        &table,
        &workload::AnnounceSpec {
            speaker_asn: Asn(asn),
            path_len,
            next_hop: Ipv4Addr::new(10, 0, 0, if asn == 65001 { 2 } else { 3 }),
            prefixes_per_update: per_update,
            seed: 5,
        },
    )
}

/// Times `routine` over fresh state from `setup`: per sample, the
/// setup runs untimed, the routine runs timed, and the routine's
/// return value drops untimed. Returns the median ns/iteration.
fn measure<T, R>(
    samples: usize,
    mut setup: impl FnMut() -> T,
    mut routine: impl FnMut(T) -> R,
) -> f64 {
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..2 {
        std::hint::black_box(routine(setup()));
    }
    for _ in 0..samples {
        let input = setup();
        let start = Instant::now();
        let output = routine(input);
        times.push(start.elapsed().as_nanos() as f64);
        drop(output);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

struct ScenarioResult {
    name: &'static str,
    ns_per_iter: f64,
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains('"') && !s.contains('\\'));
    s
}

fn main() {
    let options = parse_args();
    let large = announcements(65001, 3, 500);
    let small = announcements(65001, 3, 1);
    let losing = announcements(65002, 6, 500);
    let winning = announcements(65002, 2, 500);
    let withdrawals = workload::withdrawals(&TableGenerator::new(5).generate(PREFIXES), 500);

    let loaded = || {
        let mut engine = engine();
        for update in &large {
            engine.apply_update(PeerId(1), update).unwrap();
        }
        engine
    };
    fn flood(updates: &[UpdateMessage], peer: PeerId) -> impl FnMut(RibEngine) -> RibEngine + '_ {
        move |mut engine| {
            for update in updates {
                engine.apply_update(peer, update).unwrap();
            }
            engine
        }
    }

    let mut results: Vec<ScenarioResult> = Vec::new();
    let mut run = |name: &'static str, ns: f64| {
        eprintln!(
            "{name:32} {:10.1} us/iter  ({:.0} ns/prefix)",
            ns / 1e3,
            ns / PREFIXES as f64
        );
        results.push(ScenarioResult {
            name,
            ns_per_iter: ns,
        });
    };

    run(
        "startup_large_pkts",
        measure(options.samples, engine, flood(&large, PeerId(1))),
    );
    run(
        "startup_large_pkts_reserved",
        measure(
            options.samples,
            || {
                let mut engine = engine();
                engine.reserve(RESERVE);
                engine
            },
            flood(&large, PeerId(1)),
        ),
    );
    run(
        "startup_small_pkts",
        measure(options.samples, engine, flood(&small, PeerId(1))),
    );
    run(
        "incremental_losing",
        measure(options.samples, loaded, flood(&losing, PeerId(2))),
    );
    run(
        "incremental_winning",
        measure(options.samples, loaded, flood(&winning, PeerId(2))),
    );
    run(
        "withdraw_storm",
        measure(options.samples, loaded, flood(&withdrawals, PeerId(1))),
    );

    // Attribute-store effectiveness over a representative startup run:
    // the workload carries one attribute set per UPDATE, so 5000
    // routes collapse to one canonical allocation per packet.
    let loaded_engine = loaded();
    let store = loaded_engine.attr_store();
    let stats = store.stats();
    let announced = loaded_engine.stats().announcements;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"rib_perf_baseline\",\n");
    json.push_str(&format!("  \"samples\": {},\n", options.samples));
    json.push_str(&format!("  \"prefixes\": {PREFIXES},\n"));
    json.push_str(
        "  \"baseline\": \"pre-interning two-map engine (d66c2f8), same harness and host class\",\n",
    );
    json.push_str("  \"scenarios\": [\n");
    for (i, result) in results.iter().enumerate() {
        let baseline = BASELINE_NS
            .iter()
            .find(|(name, _)| *name == result.name)
            .and_then(|(_, ns)| *ns);
        json.push_str("    {\n");
        json.push_str(&format!(
            "      \"name\": \"{}\",\n",
            json_escape_free(result.name)
        ));
        json.push_str(&format!(
            "      \"median_ns_per_iter\": {:.0},\n",
            result.ns_per_iter
        ));
        json.push_str(&format!(
            "      \"ns_per_prefix\": {:.1},\n",
            result.ns_per_iter / PREFIXES as f64
        ));
        json.push_str(&format!(
            "      \"prefixes_per_sec\": {:.0},\n",
            PREFIXES as f64 / (result.ns_per_iter / 1e9)
        ));
        match baseline {
            Some(baseline_ns) => {
                json.push_str(&format!(
                    "      \"baseline_ns_per_iter\": {baseline_ns:.0},\n"
                ));
                json.push_str(&format!(
                    "      \"speedup_vs_baseline\": {:.2}\n",
                    baseline_ns / result.ns_per_iter
                ));
            }
            None => {
                json.push_str("      \"baseline_ns_per_iter\": null,\n");
                json.push_str("      \"speedup_vs_baseline\": null\n");
            }
        }
        json.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"attr_store\": {\n");
    json.push_str(&format!("    \"routes_announced\": {announced},\n"));
    json.push_str(&format!("    \"distinct_sets\": {},\n", store.len()));
    json.push_str(&format!(
        "    \"routes_per_set\": {:.1},\n",
        announced as f64 / store.len().max(1) as f64
    ));
    json.push_str(&format!("    \"intern_hits\": {},\n", stats.hits));
    json.push_str(&format!("    \"intern_misses\": {},\n", stats.misses));
    json.push_str(&format!("    \"released\": {}\n", stats.released));
    json.push_str("  }\n");
    json.push_str("}\n");

    std::fs::write(&options.out, &json).unwrap_or_else(|err| {
        eprintln!("failed to write {}: {err}", options.out);
        std::process::exit(1);
    });
    eprintln!("wrote {}", options.out);
}
