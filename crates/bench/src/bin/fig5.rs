//! Regenerates Fig. 5: transactions/s versus cross-traffic for every
//! scenario and platform.

use bgpbench_bench::Cli;
use bgpbench_core::experiments::figure5;

fn main() {
    let cli = Cli::from_env();
    eprintln!(
        "sweeping cross-traffic over 8 scenarios x 4 platforms x {} levels on {} threads...",
        cli.config.cross_points, cli.threads
    );
    cli.emit(&figure5(&mut cli.runner(), &cli.config));
}
