//! Regenerates Fig. 5: transactions/s versus cross-traffic for every
//! scenario and platform.

use bgpbench_bench::cli_config;
use bgpbench_core::experiments::figure5;
use bgpbench_core::report::{figure_csv, render_figure};

fn main() {
    let (config, csv) = cli_config();
    eprintln!(
        "sweeping cross-traffic over 8 scenarios x 4 platforms x {} levels...",
        config.cross_points
    );
    let figure = figure5(&config);
    print!("{}", render_figure(&figure));
    if csv {
        println!("\n{}", figure_csv(&figure));
    }
}
