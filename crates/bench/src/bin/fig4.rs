//! Regenerates Fig. 4: Pentium III CPU load with small (Scenario 1)
//! versus large (Scenario 2) packets.

use bgpbench_bench::Cli;
use bgpbench_core::experiments::figure4;

fn main() {
    let cli = Cli::from_env();
    cli.emit(&figure4(&mut cli.runner(), &cli.config));
}
