//! Regenerates Fig. 4: Pentium III CPU load with small (Scenario 1)
//! versus large (Scenario 2) packets.

use bgpbench_bench::cli_config;
use bgpbench_core::experiments::figure4;
use bgpbench_core::report::{figure_csv, render_figure};

fn main() {
    let (config, csv) = cli_config();
    let figure = figure4(&config);
    print!("{}", render_figure(&figure));
    if csv {
        println!("\n{}", figure_csv(&figure));
    }
}
