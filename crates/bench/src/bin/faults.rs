//! Runs the session-churn fault scenarios S9–S12 on every platform
//! and sweeps the S9 flap-storm rate into a convergence figure.
//!
//! ```text
//! cargo run --release -p bgpbench-bench --bin faults -- [--quick] [--threads <n>] [--csv [<path>]]
//! ```
//!
//! Two artifacts come out: the S9–S12 convergence table (ticks to
//! converge, session flaps, duplicate re-advertisements, purged
//! prefixes) and the flap-storm figure (convergence time and duplicate
//! announcements versus flap rate). With `--csv <path>`, the table goes
//! to `<path>` and the figure to `<path>` with a `_sweep` suffix.

use std::path::PathBuf;

use bgpbench_bench::cli::CsvSink;
use bgpbench_bench::Cli;
use bgpbench_core::{convergence_report, flap_storm_figure, CellSpec, Render, Scenario};
use bgpbench_models::all_platforms;

/// Storm-flap spacings swept for the figure, densest first; `--quick`
/// takes the first [`ExperimentConfig::cross_points`] of them.
const FLAP_INTERVALS: [u64; 6] = [400, 800, 1500, 2500, 4000, 6000];

/// `<path>.csv` -> `<path>_sweep.csv` for the figure's CSV.
fn sweep_path(path: &std::path::Path) -> PathBuf {
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("faults");
    let mut name = format!("{stem}_sweep");
    if let Some(ext) = path.extension().and_then(|s| s.to_str()) {
        name = format!("{name}.{ext}");
    }
    path.with_file_name(name)
}

fn main() {
    let cli = Cli::from_env();
    let platforms = all_platforms();
    let intervals = &FLAP_INTERVALS[..cli.config.cross_points.min(FLAP_INTERVALS.len())];
    let base = CellSpec::new(Scenario::S9, platforms[0].clone())
        .prefixes(cli.config.small_prefixes)
        .seed(cli.config.seed);

    eprintln!(
        "running scenarios 9-12 x {} platforms plus a {}-point flap sweep ({} prefixes/peer) on {} threads...",
        platforms.len(),
        intervals.len(),
        cli.config.small_prefixes,
        cli.threads
    );
    let mut runner = cli.runner();
    let report = convergence_report(&mut runner, &platforms, &base);
    let figure = flap_storm_figure(&mut runner, &platforms, intervals, &base);

    // The report goes through the shared emitter (honoring `--csv` and
    // `--telemetry`); the figure follows with its own CSV sink so the
    // two artifacts never overwrite each other.
    cli.emit(&report);
    println!();
    match &cli.csv {
        None => print!("{}", figure.text()),
        Some(CsvSink::Stdout) => print!("{}\n{}", figure.text(), figure.csv()),
        Some(CsvSink::File(path)) => {
            print!("{}", figure.text());
            let path = sweep_path(path);
            match std::fs::write(&path, figure.csv()) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(error) => {
                    eprintln!("error: cannot write {}: {error}", path.display());
                    std::process::exit(1);
                }
            }
        }
    }
}
