//! Ablation: start-up throughput versus control-core count on the
//! Xeon-class cost table (§V.C's "highly parallelizable BGP
//! implementations" implication). Shows where XORP's five-process
//! pipeline saturates.

use bgpbench_bench::cli_config;
use bgpbench_core::extensions::core_scaling;
use bgpbench_core::report::{figure_csv, render_figure};
use bgpbench_models::xeon;

fn main() {
    let (config, csv) = cli_config();
    let figure = core_scaling(&xeon(), config.large_prefixes.min(4000), config.seed);
    print!("{}", render_figure(&figure));
    if csv {
        println!("\n{}", figure_csv(&figure));
    }
}
