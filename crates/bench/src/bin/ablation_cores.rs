//! Ablation: start-up throughput versus control-core count on the
//! Xeon-class cost table (§V.C's "highly parallelizable BGP
//! implementations" implication). Shows where XORP's five-process
//! pipeline saturates.

use bgpbench_bench::Cli;
use bgpbench_core::extensions::core_scaling;
use bgpbench_models::xeon;

fn main() {
    let cli = Cli::from_env();
    let figure = core_scaling(
        &mut cli.runner(),
        &xeon(),
        cli.config.large_prefixes.min(4000),
        cli.config.seed,
    );
    cli.emit(&figure);
}
