//! Regenerates Table II: the modeled system configurations.

use bgpbench_models::{all_platforms, PlatformKind};

fn main() {
    println!("Table II: system configurations of the modeled BGP routers");
    println!("{:-<96}", "");
    println!(
        "{:<13} {:<26} {:<7} {:<17} {:<12} {:<16}",
        "Name", "System type", "Cores", "Control CPU", "Fwd limit", "Software model"
    );
    println!("{:-<96}", "");
    for platform in all_platforms() {
        let system_type = match platform.name {
            "Pentium III" => "Uni-core router",
            "Xeon" => "Dual-core router",
            "IXP2400" => "Network processor router",
            _ => "Commercial router",
        };
        let software = match platform.kind {
            PlatformKind::Xorp(_) => "XORP 1.3 pipeline",
            PlatformKind::Ios(_) => "IOS black box",
        };
        println!(
            "{:<13} {:<26} {:<7} {:<17} {:<12} {:<16}",
            platform.name,
            system_type,
            platform.cores,
            format!("{:.1} Gcycles/s", platform.core.hz / 1e9),
            format!("{:.0} Mbps", platform.cross.max_forward_mbps),
            software,
        );
    }
    println!("{:-<96}", "");
    println!(
        "forwarding limits per the paper: PCI bus (315), PCIe (784), NP interconnect (940), 100 Mbps ports (78)"
    );
}
