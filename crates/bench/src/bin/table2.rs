//! Regenerates Table II: the modeled system configurations.

use bgpbench_bench::{statics, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.emit(&statics::table2());
}
