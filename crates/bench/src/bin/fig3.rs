//! Regenerates Fig. 3: per-process CPU load during Scenario 6 on the
//! three XORP platforms.

use bgpbench_bench::Cli;
use bgpbench_core::experiments::figure3;

fn main() {
    let cli = Cli::from_env();
    cli.emit(&figure3(&mut cli.runner(), &cli.config));
}
