//! Regenerates Fig. 3: per-process CPU load during Scenario 6 on the
//! three XORP platforms.

use bgpbench_bench::cli_config;
use bgpbench_core::experiments::figure3;
use bgpbench_core::report::{figure_csv, render_figure};

fn main() {
    let (config, csv) = cli_config();
    let figure = figure3(&config);
    print!("{}", render_figure(&figure));
    if csv {
        println!("\n{}", figure_csv(&figure));
    }
}
