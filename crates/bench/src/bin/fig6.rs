//! Regenerates Fig. 6: Pentium III CPU breakdown during Scenario 8
//! without and with 300 Mbps of cross-traffic, plus the forwarding-rate
//! dip during Phase 3.

use bgpbench_bench::cli_config;
use bgpbench_core::experiments::figure6;
use bgpbench_core::report::{figure_csv, render_figure};

fn main() {
    let (config, csv) = cli_config();
    let figure = figure6(&config);
    print!("{}", render_figure(&figure));
    if csv {
        println!("\n{}", figure_csv(&figure));
    }
}
