//! Regenerates Fig. 6: Pentium III CPU breakdown during Scenario 8
//! without and with 300 Mbps of cross-traffic, plus the forwarding-rate
//! dip during Phase 3.

use bgpbench_bench::Cli;
use bgpbench_core::experiments::figure6;

fn main() {
    let cli = Cli::from_env();
    cli.emit(&figure6(&mut cli.runner(), &cli.config));
}
