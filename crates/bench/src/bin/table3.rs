//! Regenerates Table III: transactions/s for all eight scenarios on
//! all four platforms, next to the paper's numbers.
//!
//! ```text
//! cargo run --release -p bgpbench-bench --bin table3 [-- --quick] [-- --csv]
//! ```

use bgpbench_bench::cli_config;
use bgpbench_core::experiments::table3;
use bgpbench_core::report::{render_table3, table3_csv};

fn main() {
    let (config, csv) = cli_config();
    eprintln!(
        "running 8 scenarios x 4 platforms ({}/{} prefixes small/large)...",
        config.small_prefixes, config.large_prefixes
    );
    let table = table3(&config);
    print!("{}", render_table3(&table));
    let violations = table.check_observations();
    if violations.is_empty() {
        println!("\nall of the paper's Table III observations reproduced");
    } else {
        println!("\nobservation mismatches:");
        for violation in &violations {
            println!("  - {violation}");
        }
    }
    if csv {
        println!("\n{}", table3_csv(&table));
    }
}
