//! Regenerates Table III: transactions/s for all eight scenarios on
//! all four platforms, next to the paper's numbers.
//!
//! ```text
//! cargo run --release -p bgpbench-bench --bin table3 -- [--quick] [--threads <n>] [--csv [<path>]]
//! ```

use bgpbench_bench::Cli;
use bgpbench_core::experiments::table3;

fn main() {
    let cli = Cli::from_env();
    eprintln!(
        "running 8 scenarios x 4 platforms ({}/{} prefixes small/large) on {} threads...",
        cli.config.small_prefixes, cli.config.large_prefixes, cli.threads
    );
    let table = table3(&mut cli.runner(), &cli.config);
    cli.emit(&table);
    let violations = table.check_observations();
    if violations.is_empty() {
        println!("\nall of the paper's Table III observations reproduced");
    } else {
        println!("\nobservation mismatches:");
        for violation in &violations {
            println!("  - {violation}");
        }
    }
}
