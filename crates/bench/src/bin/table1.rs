//! Regenerates Table I: the benchmark scenario definitions.

use bgpbench_bench::{statics, Cli};

fn main() {
    let cli = Cli::from_env();
    cli.emit(&statics::table1());
}
