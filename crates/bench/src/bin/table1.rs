//! Regenerates Table I: the benchmark scenario definitions.

use bgpbench_core::Scenario;

fn main() {
    println!("Table I: BGP benchmark scenarios");
    println!("{:-<88}", "");
    println!(
        "{:<10} {:<24} {:<14} {:<22} {:<10}",
        "Scenario", "BGP operation", "UPDATE type", "Fwd table changes", "Packets"
    );
    println!("{:-<88}", "");
    for scenario in Scenario::ALL {
        let (operation, update_type) = match scenario.operation() {
            bgpbench_core::BgpOperation::StartupAnnounce => ("Start-Up", "ANNOUNCE"),
            bgpbench_core::BgpOperation::EndingWithdraw => ("Ending", "WITHDRAW"),
            bgpbench_core::BgpOperation::IncrementalNoChange => {
                ("Incremental Operation", "ANNOUNCE")
            }
            bgpbench_core::BgpOperation::IncrementalChange => {
                ("Incremental Operation", "ANNOUNCE")
            }
        };
        println!(
            "{:<10} {:<24} {:<14} {:<22} {:<10}",
            scenario.number(),
            operation,
            update_type,
            if scenario.changes_forwarding_table() {
                "Yes"
            } else {
                "No"
            },
            scenario.packet_size().to_string(),
        );
    }
    println!("{:-<88}", "");
    println!(
        "small = {} prefix/UPDATE, large = {} prefixes/UPDATE",
        bgpbench_core::PacketSize::Small.prefixes_per_update(),
        bgpbench_core::PacketSize::Large.prefixes_per_update()
    );
}
