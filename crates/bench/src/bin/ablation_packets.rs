//! Ablation: transactions/s as a function of prefixes per UPDATE, the
//! full curve between the paper's small/large endpoints (§V.C's
//! "aggregate update messages into large packets" implication).

use bgpbench_bench::Cli;
use bgpbench_core::extensions::packet_size_sweep;
use bgpbench_models::all_platforms;

fn main() {
    let cli = Cli::from_env();
    let figure = packet_size_sweep(
        &mut cli.runner(),
        &all_platforms(),
        cli.config.large_prefixes.min(4000),
        cli.config.seed,
    );
    cli.emit(&figure);
}
