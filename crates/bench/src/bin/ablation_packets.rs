//! Ablation: transactions/s as a function of prefixes per UPDATE, the
//! full curve between the paper's small/large endpoints (§V.C's
//! "aggregate update messages into large packets" implication).

use bgpbench_bench::cli_config;
use bgpbench_core::extensions::packet_size_sweep;
use bgpbench_core::report::{figure_csv, render_figure};
use bgpbench_models::all_platforms;

fn main() {
    let (config, csv) = cli_config();
    let figure = packet_size_sweep(&all_platforms(), config.large_prefixes.min(4000), config.seed);
    print!("{}", render_figure(&figure));
    if csv {
        println!("\n{}", figure_csv(&figure));
    }
}
