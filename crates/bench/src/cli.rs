//! The one command line shared by every table/figure binary.

use std::path::PathBuf;

use bgpbench_core::experiments::ExperimentConfig;
use bgpbench_core::{GridRunner, Render, StderrProgress};
use bgpbench_telemetry as telemetry;

/// Where `--csv` output goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvSink {
    /// Print the CSV to stdout after the text rendering.
    Stdout,
    /// Write the CSV to a file.
    File(PathBuf),
}

/// Rendering of the `--telemetry` metrics dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryFormat {
    /// Human-readable listing (the bare `--telemetry` default).
    Text,
    /// JSON object per metric.
    Json,
    /// CSV rows.
    Csv,
}

impl TelemetryFormat {
    fn parse(value: &str) -> Result<Self, String> {
        match value {
            "text" => Ok(TelemetryFormat::Text),
            "json" => Ok(TelemetryFormat::Json),
            "csv" => Ok(TelemetryFormat::Csv),
            other => Err(format!(
                "unknown telemetry format `{other}` (expected text, json, or csv)"
            )),
        }
    }
}

/// Parsed command line of a benchmark binary.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Workload sizing (`--quick` selects [`ExperimentConfig::quick`];
    /// `--prefixes <n>` resizes either base config via
    /// [`ExperimentConfig::with_prefixes`]).
    pub config: ExperimentConfig,
    /// Worker threads for the experiment grid (`--threads <n>`).
    pub threads: usize,
    /// CSV output destination, if `--csv` was given.
    pub csv: Option<CsvSink>,
    /// Dump the telemetry registry to stderr after the run
    /// (`--telemetry [text|json|csv]`).
    pub telemetry: Option<TelemetryFormat>,
    /// Record a flight-recorder timeline and write it as Chrome
    /// trace-event JSON to this path after the run (`--trace <path>`).
    pub trace: Option<PathBuf>,
}

impl Cli {
    /// Parses the process's arguments; prints usage and exits with
    /// status 2 on an invalid command line.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(cli) => {
                if cli.telemetry.is_some() {
                    telemetry::enable();
                }
                if cli.trace.is_some() {
                    telemetry::enable_trace(&telemetry::TraceConfig::default());
                }
                cli
            }
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!(
                    "usage: <bin> [--quick] [--threads <n>] [--csv [<path>]] \
                     [--prefixes <n>] [--telemetry [text|json|csv]] [--trace <path>]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (no program name).
    pub fn parse<I>(args: I) -> Result<Self, String>
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let mut quick = false;
        let mut prefixes: Option<usize> = None;
        let mut threads: Option<usize> = None;
        let mut csv: Option<CsvSink> = None;
        let mut telemetry_format: Option<TelemetryFormat> = None;
        let mut trace: Option<PathBuf> = None;
        let mut iter = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => quick = true,
                "--telemetry" => {
                    // The format operand is optional: bare `--telemetry`
                    // prints the human-readable listing.
                    let format = iter.peek().filter(|next| !next.starts_with("--")).cloned();
                    telemetry_format = Some(match format {
                        Some(value) => {
                            iter.next();
                            TelemetryFormat::parse(&value)?
                        }
                        None => TelemetryFormat::Text,
                    });
                }
                "--trace" => {
                    let path = iter
                        .next()
                        .ok_or_else(|| "--trace needs an output path".to_owned())?;
                    trace = Some(PathBuf::from(path));
                }
                "--threads" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| "--threads needs a count".to_owned())?;
                    threads = Some(parse_threads(&value)?);
                }
                "--prefixes" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| "--prefixes needs a table size".to_owned())?;
                    prefixes = Some(parse_prefixes(&value)?);
                }
                "--csv" => {
                    // The path operand is optional: bare `--csv` prints
                    // to stdout.
                    let path = iter.peek().filter(|next| !next.starts_with("--")).cloned();
                    if path.is_some() {
                        iter.next();
                    }
                    csv = Some(match path {
                        Some(path) => CsvSink::File(PathBuf::from(path)),
                        None => CsvSink::Stdout,
                    });
                }
                other => {
                    if let Some(value) = other.strip_prefix("--threads=") {
                        threads = Some(parse_threads(value)?);
                    } else if let Some(value) = other.strip_prefix("--prefixes=") {
                        prefixes = Some(parse_prefixes(value)?);
                    } else if let Some(value) = other.strip_prefix("--csv=") {
                        csv = Some(CsvSink::File(PathBuf::from(value)));
                    } else if let Some(value) = other.strip_prefix("--telemetry=") {
                        telemetry_format = Some(TelemetryFormat::parse(value)?);
                    } else if let Some(value) = other.strip_prefix("--trace=") {
                        trace = Some(PathBuf::from(value));
                    } else {
                        return Err(format!("unknown argument `{other}`"));
                    }
                }
            }
        }
        let base = if quick {
            ExperimentConfig::quick()
        } else {
            ExperimentConfig::full()
        };
        let config = match prefixes {
            Some(n) => base.with_prefixes(n),
            None => base,
        };
        Ok(Cli {
            config,
            threads: threads.unwrap_or_else(default_threads),
            csv,
            telemetry: telemetry_format,
            trace,
        })
    }

    /// A grid runner configured per the command line, with per-cell
    /// progress on stderr.
    pub fn runner(&self) -> GridRunner {
        GridRunner::new(self.threads).with_observer(Box::new(StderrProgress::default()))
    }

    /// Prints the artifact's text rendering to stdout and routes its
    /// CSV to wherever `--csv` pointed. With `--telemetry`, dumps the
    /// registry snapshot to stderr afterwards (stderr so the metrics
    /// never mix into a piped artifact).
    pub fn emit(&self, artifact: &dyn Render) {
        print!("{}", artifact.text());
        match &self.csv {
            None => {}
            Some(CsvSink::Stdout) => println!("\n{}", artifact.csv()),
            Some(CsvSink::File(path)) => match std::fs::write(path, artifact.csv()) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(error) => {
                    eprintln!("error: cannot write {}: {error}", path.display());
                    std::process::exit(1);
                }
            },
        }
        if let Some(format) = self.telemetry {
            let snapshot = telemetry::snapshot();
            let rendered = match format {
                TelemetryFormat::Text => snapshot.to_text(),
                TelemetryFormat::Json => snapshot.to_json(),
                TelemetryFormat::Csv => snapshot.to_csv(),
            };
            eprint!("{rendered}");
        }
        if let Some(path) = &self.trace {
            let json = telemetry::trace::export::chrome_json(&telemetry::trace_dump());
            match std::fs::write(path, json) {
                Ok(()) => eprintln!("wrote trace {}", path.display()),
                Err(error) => {
                    eprintln!("error: cannot write trace {}: {error}", path.display());
                    std::process::exit(1);
                }
            }
        }
    }
}

fn parse_prefixes(value: &str) -> Result<usize, String> {
    let prefixes: usize = value
        .parse()
        .map_err(|_| format!("invalid table size `{value}`"))?;
    if prefixes == 0 {
        return Err("--prefixes must be at least 1".to_owned());
    }
    Ok(prefixes)
}

fn parse_threads(value: &str) -> Result<usize, String> {
    let threads: usize = value
        .parse()
        .map_err(|_| format!("invalid thread count `{value}`"))?;
    if threads == 0 {
        return Err("--threads must be at least 1".to_owned());
    }
    Ok(threads)
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cli_is_full_without_csv() {
        let cli = Cli::parse(Vec::<String>::new()).unwrap();
        assert_eq!(cli.config, ExperimentConfig::full());
        assert_eq!(cli.csv, None);
        assert!(cli.threads >= 1);
    }

    #[test]
    fn all_flags_parse() {
        let cli = Cli::parse(["--quick", "--threads", "4", "--csv", "out.csv"]).unwrap();
        assert_eq!(cli.config, ExperimentConfig::quick());
        assert_eq!(cli.threads, 4);
        assert_eq!(cli.csv, Some(CsvSink::File(PathBuf::from("out.csv"))));
    }

    #[test]
    fn equals_forms_and_bare_csv_parse() {
        let cli = Cli::parse(["--threads=2", "--csv"]).unwrap();
        assert_eq!(cli.threads, 2);
        assert_eq!(cli.csv, Some(CsvSink::Stdout));
        let cli = Cli::parse(["--csv=data.csv"]).unwrap();
        assert_eq!(cli.csv, Some(CsvSink::File(PathBuf::from("data.csv"))));
    }

    #[test]
    fn bad_arguments_are_rejected() {
        assert!(Cli::parse(["--threads"]).is_err());
        assert!(Cli::parse(["--threads", "zero"]).is_err());
        assert!(Cli::parse(["--threads", "0"]).is_err());
        assert!(Cli::parse(["--prefixes"]).is_err());
        assert!(Cli::parse(["--prefixes", "0"]).is_err());
        assert!(Cli::parse(["--prefixes", "many"]).is_err());
        assert!(Cli::parse(["--bogus"]).is_err());
    }

    #[test]
    fn prefixes_flag_resizes_both_table_sizes() {
        let cli = Cli::parse(["--prefixes", "1000000"]).unwrap();
        assert_eq!(cli.config.large_prefixes, 1_000_000);
        assert_eq!(cli.config.small_prefixes, 200_000);
        // The flag composes with --quick: same sizes, quick cross grid.
        let quick = Cli::parse(["--quick", "--prefixes=50"]).unwrap();
        assert_eq!(quick.config.large_prefixes, 50);
        assert_eq!(quick.config.small_prefixes, 10);
        assert_eq!(
            quick.config.cross_points,
            ExperimentConfig::quick().cross_points
        );
        // Bare --quick keeps the quick sizes untouched.
        assert_eq!(
            Cli::parse(["--quick"]).unwrap().config,
            ExperimentConfig::quick()
        );
    }

    #[test]
    fn csv_followed_by_flag_prints_to_stdout() {
        let cli = Cli::parse(["--csv", "--quick"]).unwrap();
        assert_eq!(cli.csv, Some(CsvSink::Stdout));
        assert_eq!(cli.config, ExperimentConfig::quick());
    }

    #[test]
    fn telemetry_flag_parses_every_form() {
        assert_eq!(Cli::parse(Vec::<String>::new()).unwrap().telemetry, None);
        let cli = Cli::parse(["--telemetry"]).unwrap();
        assert_eq!(cli.telemetry, Some(TelemetryFormat::Text));
        let cli = Cli::parse(["--telemetry", "json", "--quick"]).unwrap();
        assert_eq!(cli.telemetry, Some(TelemetryFormat::Json));
        assert_eq!(cli.config, ExperimentConfig::quick());
        let cli = Cli::parse(["--telemetry=csv"]).unwrap();
        assert_eq!(cli.telemetry, Some(TelemetryFormat::Csv));
        // A following flag is not mistaken for the format operand.
        let cli = Cli::parse(["--telemetry", "--csv"]).unwrap();
        assert_eq!(cli.telemetry, Some(TelemetryFormat::Text));
        assert_eq!(cli.csv, Some(CsvSink::Stdout));
        assert!(Cli::parse(["--telemetry", "yaml"]).is_err());
    }

    #[test]
    fn trace_flag_parses_both_forms_and_needs_a_path() {
        assert_eq!(Cli::parse(Vec::<String>::new()).unwrap().trace, None);
        let cli = Cli::parse(["--trace", "out.json", "--quick"]).unwrap();
        assert_eq!(cli.trace, Some(PathBuf::from("out.json")));
        assert_eq!(cli.config, ExperimentConfig::quick());
        let cli = Cli::parse(["--trace=s9.json"]).unwrap();
        assert_eq!(cli.trace, Some(PathBuf::from("s9.json")));
        assert!(Cli::parse(["--trace"]).is_err());
    }

    #[test]
    fn runner_honors_thread_count() {
        let cli = Cli::parse(["--threads", "3"]).unwrap();
        assert_eq!(cli.runner().threads(), 3);
    }
}
