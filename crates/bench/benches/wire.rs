//! Wire-format micro-benchmarks: message encode/decode throughput at
//! the benchmark's two packet sizes, and stream reassembly.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use std::net::Ipv4Addr;

use bgpbench_speaker::{workload, TableGenerator};
use bgpbench_wire::{Asn, Message, StreamDecoder, UpdateMessage};

fn build_updates(prefixes: usize, per_update: usize) -> Vec<UpdateMessage> {
    let table = TableGenerator::new(7).generate(prefixes);
    workload::announcements(
        &table,
        &workload::AnnounceSpec {
            speaker_asn: Asn(65001),
            path_len: 4,
            next_hop: Ipv4Addr::new(10, 0, 0, 2),
            prefixes_per_update: per_update,
            seed: 7,
        },
    )
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/encode");
    for (label, per_update) in [("small_pkt", 1), ("large_pkt", 500)] {
        let updates = build_updates(500, per_update);
        group.throughput(Throughput::Elements(500));
        group.bench_function(label, |b| {
            b.iter(|| {
                for update in &updates {
                    black_box(Message::Update(update.clone()).encode().unwrap());
                }
            })
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/decode");
    for (label, per_update) in [("small_pkt", 1), ("large_pkt", 500)] {
        let encoded: Vec<Vec<u8>> = build_updates(500, per_update)
            .into_iter()
            .map(|u| Message::Update(u).encode().unwrap())
            .collect();
        group.throughput(Throughput::Elements(500));
        group.bench_function(label, |b| {
            b.iter(|| {
                for bytes in &encoded {
                    black_box(Message::decode(bytes).unwrap());
                }
            })
        });
    }
    group.finish();
}

fn bench_stream_reassembly(c: &mut Criterion) {
    let mut stream = Vec::new();
    for update in build_updates(1000, 500) {
        stream.extend(Message::Update(update).encode().unwrap());
    }
    let mut group = c.benchmark_group("wire/stream");
    group.throughput(Throughput::Bytes(stream.len() as u64));
    group.bench_function("reassemble_1000_prefixes", |b| {
        b.iter_batched(
            StreamDecoder::new,
            |mut decoder| {
                // Feed in TCP-segment-sized chunks.
                for chunk in stream.chunks(1460) {
                    decoder.extend(chunk);
                    while let Some(message) = decoder.next_message().unwrap() {
                        black_box(message);
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_encode, bench_decode, bench_stream_reassembly
}
criterion_main!(benches);
