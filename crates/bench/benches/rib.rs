//! RIB micro-benchmarks: the decision-process pipeline the paper's
//! transactions-per-second metric ultimately measures.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use std::net::Ipv4Addr;

use bgpbench_rib::{PeerId, PeerInfo, RibEngine};
use bgpbench_speaker::{workload, TableGenerator};
use bgpbench_wire::{Asn, RouterId, UpdateMessage};

fn engine() -> RibEngine {
    let mut engine = RibEngine::new(Asn(65000), RouterId(1));
    engine.add_peer(PeerInfo::new(
        PeerId(1),
        Asn(65001),
        RouterId(2),
        Ipv4Addr::new(10, 0, 0, 2),
    ));
    engine.add_peer(PeerInfo::new(
        PeerId(2),
        Asn(65002),
        RouterId(3),
        Ipv4Addr::new(10, 0, 0, 3),
    ));
    engine
}

fn announcements(asn: u16, path_len: usize, per_update: usize) -> Vec<UpdateMessage> {
    let table = TableGenerator::new(5).generate(5000);
    workload::announcements(
        &table,
        &workload::AnnounceSpec {
            speaker_asn: Asn(asn),
            path_len,
            next_hop: Ipv4Addr::new(10, 0, 0, if asn == 65001 { 2 } else { 3 }),
            prefixes_per_update: per_update,
            seed: 5,
        },
    )
}

fn bench_startup(c: &mut Criterion) {
    let updates = announcements(65001, 3, 500);
    let mut group = c.benchmark_group("rib/startup_announce");
    group.throughput(Throughput::Elements(5000));
    group.bench_function("5k_prefixes_large_pkts", |b| {
        b.iter_batched(
            engine,
            |mut engine| {
                for update in &updates {
                    black_box(engine.apply_update(PeerId(1), update).unwrap());
                }
                engine
            },
            BatchSize::SmallInput,
        )
    });
    // Same flood into a pre-sized table: what a production speaker
    // configured for the expected table size would see.
    group.bench_function("5k_prefixes_large_pkts_reserved", |b| {
        b.iter_batched(
            || {
                let mut engine = engine();
                engine.reserve(8192);
                engine
            },
            |mut engine| {
                for update in &updates {
                    black_box(engine.apply_update(PeerId(1), update).unwrap());
                }
                engine
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// The interner itself: intern hits (the per-prefix hot-path cost) and
/// the release bookkeeping on withdraw.
fn bench_attr_store(c: &mut Criterion) {
    use bgpbench_rib::AttrStore;
    use bgpbench_rib::RouteAttributes;
    let updates = announcements(65001, 3, 500);
    let attrs: Vec<RouteAttributes> = updates
        .iter()
        .map(|u| RouteAttributes::from_wire(u.attributes()).unwrap())
        .collect();
    let mut group = c.benchmark_group("rib/attr_store");
    group.throughput(Throughput::Elements(attrs.len() as u64));
    group.bench_function("intern_hit_cycle", |b| {
        b.iter_batched(
            || {
                let mut store = AttrStore::new();
                // Seed so every intern below is a hit.
                let seeds: Vec<_> = attrs.iter().map(|a| store.intern(a.clone())).collect();
                (store, seeds)
            },
            |(mut store, seeds)| {
                for a in &attrs {
                    black_box(store.intern(a.clone()));
                }
                (store, seeds)
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("intern_miss_release_cycle", |b| {
        b.iter_batched(
            AttrStore::new,
            |mut store| {
                for a in &attrs {
                    let interned = store.intern(a.clone());
                    store.release(interned);
                }
                store
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_decision_losing_and_winning(c: &mut Criterion) {
    let base = announcements(65001, 3, 500);
    let losing = announcements(65002, 6, 500);
    let winning = announcements(65002, 2, 500);
    let mut group = c.benchmark_group("rib/incremental");
    group.throughput(Throughput::Elements(5000));
    for (label, phase3) in [("losing_path", &losing), ("winning_path", &winning)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut engine = engine();
                    for update in &base {
                        engine.apply_update(PeerId(1), update).unwrap();
                    }
                    engine
                },
                |mut engine| {
                    for update in phase3.iter() {
                        black_box(engine.apply_update(PeerId(2), update).unwrap());
                    }
                    engine
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_withdrawals(c: &mut Criterion) {
    let base = announcements(65001, 3, 500);
    let table = TableGenerator::new(5).generate(5000);
    let withdrawals = workload::withdrawals(&table, 500);
    let mut group = c.benchmark_group("rib/withdraw");
    group.throughput(Throughput::Elements(5000));
    group.bench_function("5k_prefixes", |b| {
        b.iter_batched(
            || {
                let mut engine = engine();
                for update in &base {
                    engine.apply_update(PeerId(1), update).unwrap();
                }
                engine
            },
            |mut engine| {
                for update in &withdrawals {
                    black_box(engine.apply_update(PeerId(1), update).unwrap());
                }
                engine
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Ablation: the cost of route-flap damping bookkeeping under a flap
/// storm (announce/withdraw rounds), with and without RFC 2439
/// enabled.
fn bench_damping_ablation(c: &mut Criterion) {
    use bgpbench_rib::DampingConfig;
    let table = TableGenerator::new(5).generate(2000);
    let announce = announcements(65001, 3, 500);
    let withdrawals = workload::withdrawals(&table, 500);
    let mut group = c.benchmark_group("rib/flap_storm");
    group.throughput(Throughput::Elements(3 * 2000));
    for (label, damping) in [("without_damping", false), ("with_damping", true)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut engine = engine();
                    if damping {
                        engine.enable_damping(DampingConfig::default());
                    }
                    engine
                },
                |mut engine| {
                    let mut now = 0.0;
                    for _round in 0..3 {
                        for update in announce.iter().take(4) {
                            black_box(engine.apply_update_at(PeerId(1), update, now).unwrap());
                        }
                        now += 15.0;
                        for update in &withdrawals {
                            black_box(engine.apply_update_at(PeerId(1), update, now).unwrap());
                        }
                        now += 15.0;
                    }
                    engine
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Ablation: decision-process configuration (the `always-compare-med`
/// and AS-path-length knobs) under contested prefixes.
fn bench_decision_config_ablation(c: &mut Criterion) {
    use bgpbench_rib::DecisionConfig;
    let base = announcements(65001, 3, 500);
    let contest = announcements(65002, 3, 500);
    let configs = [
        ("default", DecisionConfig::default()),
        (
            "med_scoped",
            DecisionConfig {
                always_compare_med: false,
                ..DecisionConfig::default()
            },
        ),
        (
            "ignore_path_len",
            DecisionConfig {
                ignore_as_path_length: true,
                ..DecisionConfig::default()
            },
        ),
    ];
    let mut group = c.benchmark_group("rib/decision_config");
    group.throughput(Throughput::Elements(5000));
    for (label, config) in configs {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut engine = engine();
                    engine.set_decision_config(config);
                    for update in &base {
                        engine.apply_update(PeerId(1), update).unwrap();
                    }
                    engine
                },
                |mut engine| {
                    for update in &contest {
                        black_box(engine.apply_update(PeerId(2), update).unwrap());
                    }
                    engine
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Scaling: decision-process cost as the number of peers holding
/// alternatives for every prefix grows (the paper's two-speaker setup
/// is the minimum; real routers hold dozens of Adj-RIBs-In).
fn bench_peer_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("rib/peer_scaling");
    group.throughput(Throughput::Elements(5000));
    for npeers in [2usize, 4, 8] {
        let setup = || {
            let mut engine = RibEngine::new(Asn(65000), RouterId(1));
            for i in 1..=npeers as u32 {
                engine.add_peer(PeerInfo::new(
                    PeerId(i),
                    Asn(65000 + i as u16),
                    RouterId(i + 1),
                    Ipv4Addr::new(10, 0, (i >> 8) as u8, i as u8),
                ));
            }
            // Every peer except the last announces an alternative.
            for i in 1..npeers as u32 {
                for update in announcements(65000 + i as u16, 3 + i as usize, 500) {
                    engine.apply_update(PeerId(i), &update).unwrap();
                }
            }
            engine
        };
        let contest = announcements(65000 + npeers as u16, 2, 500);
        group.bench_function(format!("{npeers}_peers"), |b| {
            b.iter_batched(
                setup,
                |mut engine| {
                    // The winning announcement must be compared against
                    // every stored alternative.
                    for update in &contest {
                        black_box(engine.apply_update(PeerId(npeers as u32), update).unwrap());
                    }
                    engine
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_startup, bench_attr_store, bench_decision_losing_and_winning,
        bench_withdrawals, bench_damping_ablation, bench_decision_config_ablation,
        bench_peer_scaling
}
criterion_main!(benches);
