//! End-to-end scenario benchmarks: each measures how long the
//! simulator takes (wall-clock) to run a reduced benchmark cell.
//! These regenerate the *structure* of Table III and Fig. 5 under
//! criterion's statistics; the `table3`/`fig5` binaries produce the
//! full-size paper artifacts.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bgpbench_core::{CellSpec, Scenario};
use bgpbench_models::{all_platforms, cisco3620, pentium3};

/// Reduced table sizes so every cell finishes quickly under criterion.
fn cell_prefixes(scenario: Scenario) -> usize {
    match scenario.packet_size() {
        bgpbench_core::PacketSize::Small => 60,
        bgpbench_core::PacketSize::Large => 600,
    }
}

/// Table III structure: scenario 2 and scenario 6 on every platform.
fn bench_table3_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    for platform in all_platforms() {
        for scenario in [Scenario::S2, Scenario::S6] {
            let label = format!(
                "{}/scenario{}",
                platform.name.replace(' ', "_"),
                scenario.number()
            );
            let cell = CellSpec::new(scenario, platform.clone()).prefixes(cell_prefixes(scenario));
            group.bench_function(&label, |b| b.iter(|| black_box(cell.run())));
        }
    }
    group.finish();
}

/// All eight scenarios on the Pentium III (the paper's reference
/// software router).
fn bench_all_scenarios_pentium3(c: &mut Criterion) {
    let platform = pentium3();
    let mut group = c.benchmark_group("scenarios/pentium3");
    for scenario in Scenario::ALL {
        let cell = CellSpec::new(scenario, platform.clone()).prefixes(cell_prefixes(scenario));
        group.bench_function(format!("scenario{}", scenario.number()), |b| {
            b.iter(|| black_box(cell.run()))
        });
    }
    group.finish();
}

/// Fig. 5 structure: a cross-traffic point with and without load on
/// the two platforms with opposite behaviours (shared-CPU Pentium III
/// vs the port-limited Cisco).
fn bench_cross_traffic_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    for (platform, mbps) in [
        (pentium3(), 0.0),
        (pentium3(), 300.0),
        (cisco3620(), 0.0),
        (cisco3620(), 70.0),
    ] {
        let label = format!("{}/{}mbps", platform.name.replace(' ', "_"), mbps as u32);
        let cell = CellSpec::new(Scenario::S2, platform)
            .prefixes(600)
            .cross_traffic(mbps);
        group.bench_function(&label, |b| b.iter(|| black_box(cell.run())));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table3_cells, bench_all_scenarios_pentium3, bench_cross_traffic_cells
}
criterion_main!(benches);
