//! FIB micro-benchmarks: LPM trie operations and the RFC 1812
//! forwarding pipeline that carries the benchmark's cross-traffic.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use std::net::Ipv4Addr;

use bgpbench_fib::{CompressedTrie, Fib, Forwarder, Ipv4Header, LpmTrie, NextHop};
use bgpbench_speaker::TableGenerator;

fn loaded_fib(prefixes: usize) -> Fib {
    let table = TableGenerator::new(3).generate(prefixes);
    let mut fib = Fib::new();
    for (i, prefix) in table.iter().enumerate() {
        fib.insert(
            *prefix,
            NextHop::new(Ipv4Addr::new(10, 0, (i % 250) as u8, 1), (i % 4) as u8),
        );
    }
    fib
}

fn bench_trie_insert(c: &mut Criterion) {
    let table = TableGenerator::new(3).generate(10_000);
    let mut group = c.benchmark_group("fib/insert");
    group.throughput(Throughput::Elements(table.len() as u64));
    group.bench_function("10k_prefixes", |b| {
        b.iter_batched(
            LpmTrie::new,
            |mut trie| {
                for (i, prefix) in table.iter().enumerate() {
                    trie.insert(*prefix, i);
                }
                black_box(trie.len())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_lpm_lookup(c: &mut Criterion) {
    let fib = loaded_fib(10_000);
    // Destinations inside the table (hits) and random (mixed).
    let hits: Vec<Ipv4Addr> = fib
        .iter()
        .take(1000)
        .map(|(prefix, _)| prefix.network())
        .collect();
    let mut group = c.benchmark_group("fib/lookup");
    group.throughput(Throughput::Elements(hits.len() as u64));
    group.bench_function("lpm_10k_table", |b| {
        b.iter(|| {
            for dst in &hits {
                black_box(fib.lookup(*dst));
            }
        })
    });
    group.finish();
}

fn bench_forwarding_pipeline(c: &mut Criterion) {
    let fib = loaded_fib(10_000);
    let destinations: Vec<Ipv4Addr> = fib
        .iter()
        .take(1000)
        .map(|(prefix, _)| prefix.network())
        .collect();
    let packets: Vec<[u8; 20]> = destinations
        .iter()
        .map(|&dst| Ipv4Header::new(Ipv4Addr::new(198, 51, 100, 1), dst, 64, 1480).encode())
        .collect();
    let mut forwarder = Forwarder::new(fib);
    let mut group = c.benchmark_group("fib/forward");
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.bench_function("rfc1812_pipeline", |b| {
        b.iter(|| {
            for packet in &packets {
                black_box(forwarder.forward(packet));
            }
        })
    });
    group.finish();
}

/// Head-to-head: the plain binary trie against the path-compressed
/// trie on the same 10k-prefix table (the Ruiz-Sánchez survey's
/// classic trade-off, DESIGN.md's FIB ablation).
fn bench_lpm_compare(c: &mut Criterion) {
    let table = TableGenerator::new(3).generate(10_000);
    let plain: LpmTrie<u32> = table
        .iter()
        .enumerate()
        .map(|(i, p)| (*p, i as u32))
        .collect();
    let compressed: CompressedTrie<u32> = table
        .iter()
        .enumerate()
        .map(|(i, p)| (*p, i as u32))
        .collect();
    let probes: Vec<Ipv4Addr> = table.iter().take(1000).map(|p| p.network()).collect();

    let mut group = c.benchmark_group("fib/lpm_compare");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("binary_trie", |b| {
        b.iter(|| {
            for dst in &probes {
                black_box(plain.lookup(*dst));
            }
        })
    });
    group.bench_function("compressed_trie", |b| {
        b.iter(|| {
            for dst in &probes {
                black_box(compressed.lookup(*dst));
            }
        })
    });
    group.bench_function("binary_trie_insert_remove", |b| {
        b.iter_batched(
            || plain.clone(),
            |mut trie| {
                for prefix in table.iter().take(1000) {
                    trie.remove(prefix);
                    trie.insert(*prefix, 0);
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("compressed_trie_insert_remove", |b| {
        b.iter_batched(
            || compressed.clone(),
            |mut trie| {
                for prefix in table.iter().take(1000) {
                    trie.remove(prefix);
                    trie.insert(*prefix, 0);
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_trie_insert, bench_lpm_lookup, bench_forwarding_pipeline, bench_lpm_compare
}
criterion_main!(benches);
