//! Failure injection against the live daemon: timer expiry, protocol
//! garbage mid-session, and abrupt disconnects mid-transfer.

use std::io::Write;
use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

use bgpbench_daemon::{BgpDaemon, DaemonConfig};
use bgpbench_speaker::{workload, LiveSpeaker, LiveSpeakerConfig, TableGenerator};
use bgpbench_wire::{Asn, ErrorCode, Message, RouterId};

fn wait_sessions(daemon: &BgpDaemon, expected: usize, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if daemon.snapshot().sessions == expected {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

#[test]
fn hold_timer_expiry_tears_the_session_down() {
    let daemon = BgpDaemon::start(DaemonConfig::default()).unwrap();
    // Negotiate the RFC minimum hold time (3 s) and then go silent.
    let mut speaker = LiveSpeaker::connect(
        daemon.local_addr(),
        &LiveSpeakerConfig {
            local_asn: Asn(65001),
            router_id: RouterId(0x0A00_0002),
            hold_time_secs: 3,
        },
        Duration::from_secs(5),
    )
    .unwrap();
    assert!(wait_sessions(&daemon, 1, Duration::from_secs(5)));

    // Stay silent; the daemon must notify HoldTimerExpired and close.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut saw_hold_expired = false;
    while Instant::now() < deadline && !saw_hold_expired {
        match speaker.recv() {
            Ok(Some(Message::Notification(note))) => {
                assert_eq!(note.error_code(), ErrorCode::HoldTimerExpired);
                saw_hold_expired = true;
            }
            Ok(Some(Message::Keepalive)) => {
                // Deliberately do not answer.
            }
            Ok(Some(other)) => panic!("unexpected message: {other:?}"),
            Ok(None) => {}
            Err(_) => break, // connection closed after the notification
        }
    }
    assert!(saw_hold_expired, "daemon never sent HoldTimerExpired");
    assert!(wait_sessions(&daemon, 0, Duration::from_secs(5)));
    daemon.shutdown();
}

#[test]
fn answered_keepalives_keep_the_session_alive() {
    let daemon = BgpDaemon::start(DaemonConfig::default()).unwrap();
    let mut speaker = LiveSpeaker::connect(
        daemon.local_addr(),
        &LiveSpeakerConfig {
            local_asn: Asn(65001),
            router_id: RouterId(0x0A00_0002),
            hold_time_secs: 3,
        },
        Duration::from_secs(5),
    )
    .unwrap();
    // Answer keepalives for well past the hold time.
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        match speaker.recv() {
            Ok(Some(Message::Keepalive)) => speaker.send_keepalive().unwrap(),
            Ok(Some(Message::Notification(note))) => {
                panic!("session died despite keepalives: {note}")
            }
            Ok(_) | Err(_) => {}
        }
    }
    assert_eq!(daemon.snapshot().sessions, 1);
    daemon.shutdown();
}

#[test]
fn garbage_mid_session_closes_only_that_session() {
    let daemon = BgpDaemon::start(DaemonConfig::default()).unwrap();
    let config = LiveSpeakerConfig {
        local_asn: Asn(65001),
        router_id: RouterId(0x0A00_0002),
        hold_time_secs: 90,
    };
    // A healthy second session that must survive.
    let healthy = LiveSpeaker::connect(
        daemon.local_addr(),
        &LiveSpeakerConfig {
            local_asn: Asn(65002),
            router_id: RouterId(0x0A00_0003),
            hold_time_secs: 90,
        },
        Duration::from_secs(5),
    )
    .unwrap();
    assert!(wait_sessions(&daemon, 1, Duration::from_secs(5)));

    // The victim session sends a corrupted marker mid-stream.
    {
        let mut victim =
            LiveSpeaker::connect(daemon.local_addr(), &config, Duration::from_secs(5)).unwrap();
        assert!(wait_sessions(&daemon, 2, Duration::from_secs(5)));
        // Reach under the speaker: send raw garbage over a fresh update.
        victim
            .send_update(
                &bgpbench_wire::UpdateMessage::builder()
                    .withdraw("10.0.0.0/8".parse().unwrap())
                    .build(),
            )
            .unwrap();
        // Now raw bytes that cannot be a BGP header.
        let mut stream = victim_stream(&mut victim);
        stream.write_all(&[0u8; 19]).unwrap();
        // The daemon should drop this session shortly.
        assert!(wait_sessions(&daemon, 1, Duration::from_secs(5)));
    }
    // The healthy session is untouched.
    assert_eq!(daemon.snapshot().sessions, 1);
    drop(healthy);
    assert!(wait_sessions(&daemon, 0, Duration::from_secs(5)));
    daemon.shutdown();
}

/// Grabs a raw handle to the speaker's socket for garbage injection.
fn victim_stream(speaker: &mut LiveSpeaker) -> std::net::TcpStream {
    speaker.raw_stream().try_clone().unwrap()
}

#[test]
fn unsupported_bgp_version_gets_the_rfc_subcode() {
    use bgpbench_wire::{Message, OpenMessage, StreamDecoder};
    use std::io::Read;

    let daemon = BgpDaemon::start(DaemonConfig::default()).unwrap();
    let mut stream = std::net::TcpStream::connect(daemon.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    // A valid OPEN with the version octet rewritten to 3.
    let mut open = Message::Open(OpenMessage::new(Asn(65001), 90, RouterId(7)))
        .encode()
        .unwrap();
    open[19] = 3; // version field immediately after the header
    stream.write_all(&open).unwrap();

    // Expect NOTIFICATION: OPEN message error (2), unsupported
    // version number (1).
    let mut decoder = StreamDecoder::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    let note = loop {
        assert!(Instant::now() < deadline, "no notification received");
        let mut buf = [0u8; 1024];
        match stream.read(&mut buf) {
            Ok(0) => panic!("connection closed without notification"),
            Ok(n) => {
                decoder.extend(&buf[..n]);
                if let Some(Message::Notification(note)) = decoder.next_message().unwrap() {
                    break note;
                }
            }
            Err(_) => {}
        }
    };
    assert_eq!(note.error_code(), ErrorCode::OpenMessageError);
    assert_eq!(note.subcode(), 1);
    daemon.shutdown();
}

#[test]
fn disconnect_mid_table_transfer_is_cleaned_up() {
    let daemon = BgpDaemon::start(DaemonConfig::default()).unwrap();
    let config = LiveSpeakerConfig {
        local_asn: Asn(65001),
        router_id: RouterId(0x0A00_0002),
        hold_time_secs: 90,
    };
    let table = TableGenerator::new(17).generate(5000);
    let updates = workload::announcements(
        &table,
        &workload::AnnounceSpec {
            speaker_asn: Asn(65001),
            path_len: 3,
            next_hop: Ipv4Addr::new(127, 0, 0, 1),
            prefixes_per_update: 500,
            seed: 17,
        },
    );
    {
        let mut speaker =
            LiveSpeaker::connect(daemon.local_addr(), &config, Duration::from_secs(5)).unwrap();
        // Send half the table, then vanish.
        speaker.flood(&updates[..5]).unwrap();
        // Dropped here: TCP reset/EOF mid-transfer.
    }
    assert!(wait_sessions(&daemon, 0, Duration::from_secs(5)));
    // Whatever made it in was withdrawn on session loss.
    let snapshot = daemon.snapshot();
    assert_eq!(snapshot.loc_rib_len, 0);
    assert_eq!(snapshot.fib_len, 0);
    // And a fresh session still works.
    let mut speaker =
        LiveSpeaker::connect(daemon.local_addr(), &config, Duration::from_secs(5)).unwrap();
    speaker.flood(&updates).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline && daemon.snapshot().loc_rib_len < 5000 {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(daemon.snapshot().loc_rib_len, 5000);
    daemon.shutdown();
}
