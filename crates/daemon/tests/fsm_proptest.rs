//! Property-based tests for the tick-driven session FSM.

use bgpbench_daemon::{FsmAction, FsmEvent, FsmState, SessionFsm, SessionTimers};
use proptest::prelude::*;

fn timers() -> SessionTimers {
    SessionTimers {
        hold_ticks: 12,
        keepalive_ticks: 4,
        connect_retry_ticks: 6,
    }
}

/// Drives an FSM into each of the five states.
fn fsm_in(state: FsmState) -> SessionFsm {
    let mut fsm = SessionFsm::new(timers());
    let mut actions = Vec::new();
    let path: &[FsmEvent] = match state {
        FsmState::Idle => &[],
        FsmState::Connect => &[FsmEvent::ManualStart],
        FsmState::OpenSent => &[FsmEvent::ManualStart, FsmEvent::TcpConnected],
        FsmState::OpenConfirm => &[
            FsmEvent::ManualStart,
            FsmEvent::TcpConnected,
            FsmEvent::OpenReceived,
        ],
        FsmState::Established => &[
            FsmEvent::ManualStart,
            FsmEvent::TcpConnected,
            FsmEvent::OpenReceived,
            FsmEvent::KeepaliveReceived,
        ],
    };
    for event in path {
        fsm.handle(*event, &mut actions);
    }
    assert_eq!(fsm.state(), state, "setup must reach {state}");
    fsm
}

const ALL_STATES: [FsmState; 5] = [
    FsmState::Idle,
    FsmState::Connect,
    FsmState::OpenSent,
    FsmState::OpenConfirm,
    FsmState::Established,
];

/// The full set of legal transitions. Anything the FSM does outside
/// this relation is a bug.
fn allowed(pre: FsmState, event: FsmEvent, post: FsmState) -> bool {
    use FsmEvent as E;
    use FsmState as S;
    match (pre, event) {
        // Global resets.
        (_, E::ManualStop) | (_, E::HoldTimerExpired) => post == S::Idle,
        (S::Idle, E::ManualStart) => post == S::Connect,
        (S::Idle, _) => post == S::Idle,
        (S::Connect, E::TcpConnected) => post == S::OpenSent,
        (S::Connect, E::TcpFailed | E::ConnectRetryExpired | E::ManualStart) => post == S::Connect,
        (S::Connect, _) => post == S::Idle,
        (S::OpenSent, E::OpenReceived) => post == S::OpenConfirm,
        (S::OpenSent, E::ManualStart | E::ConnectRetryExpired) => post == S::OpenSent,
        (S::OpenSent, _) => post == S::Idle,
        (S::OpenConfirm, E::KeepaliveReceived) => post == S::Established,
        (S::OpenConfirm, E::KeepaliveTimerExpired | E::ManualStart | E::ConnectRetryExpired) => {
            post == S::OpenConfirm
        }
        (S::OpenConfirm, _) => post == S::Idle,
        (
            S::Established,
            E::KeepaliveReceived
            | E::UpdateReceived
            | E::KeepaliveTimerExpired
            | E::ManualStart
            | E::ConnectRetryExpired,
        ) => post == S::Established,
        (S::Established, _) => post == S::Idle,
    }
}

fn arb_event() -> impl Strategy<Value = FsmEvent> {
    (0usize..FsmEvent::ALL.len()).prop_map(|i| FsmEvent::ALL[i])
}

/// An interleaving of external events and clock ticks.
#[derive(Debug, Clone)]
enum Step {
    Event(FsmEvent),
    Tick,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![arb_event().prop_map(Step::Event), Just(Step::Tick)]
}

proptest! {
    /// Every transition the FSM takes — for any event from any
    /// reachable state, with ticks interleaved — is in the legal
    /// relation, and session-down bookkeeping matches observed
    /// Established exits.
    #[test]
    fn transitions_stay_within_the_table(
        steps in prop::collection::vec(arb_step(), 0..120),
    ) {
        let mut fsm = SessionFsm::new(timers());
        let mut actions = Vec::new();
        let mut established_exits = 0u64;
        for step in steps {
            let pre = fsm.state();
            actions.clear();
            match step {
                Step::Event(event) => {
                    fsm.handle(event, &mut actions);
                    prop_assert!(
                        allowed(pre, event, fsm.state()),
                        "illegal transition {pre} --{event:?}--> {}",
                        fsm.state()
                    );
                }
                Step::Tick => fsm.on_tick(&mut actions),
            }
            if pre == FsmState::Established && fsm.state() != FsmState::Established {
                established_exits += 1;
                prop_assert!(actions.contains(&FsmAction::SessionDown));
            }
            // SessionDown is only ever emitted when leaving Established.
            if actions.contains(&FsmAction::SessionDown) {
                prop_assert_eq!(pre, FsmState::Established);
                prop_assert_eq!(fsm.state(), FsmState::Idle);
            }
        }
        prop_assert_eq!(fsm.flaps(), established_exits);
    }

    /// The FSM is a pure function of its event sequence: two instances
    /// fed the same steps agree on every state and action.
    #[test]
    fn event_sequences_are_deterministic(
        steps in prop::collection::vec(arb_step(), 0..120),
    ) {
        let mut a = SessionFsm::new(timers());
        let mut b = SessionFsm::new(timers());
        for step in steps {
            let mut actions_a = Vec::new();
            let mut actions_b = Vec::new();
            match step {
                Step::Event(event) => {
                    a.handle(event, &mut actions_a);
                    b.handle(event, &mut actions_b);
                }
                Step::Tick => {
                    a.on_tick(&mut actions_a);
                    b.on_tick(&mut actions_b);
                }
            }
            prop_assert_eq!(a.state(), b.state());
            prop_assert_eq!(actions_a, actions_b);
        }
        prop_assert_eq!(a.flaps(), b.flaps());
        prop_assert_eq!(a.transitions(), b.transitions());
    }
}

#[test]
fn hold_timer_expiry_lands_in_idle_from_every_state() {
    for state in ALL_STATES {
        let mut fsm = fsm_in(state);
        let mut actions = Vec::new();
        fsm.handle(FsmEvent::HoldTimerExpired, &mut actions);
        assert_eq!(fsm.state(), FsmState::Idle, "from {state}");
    }
}

#[test]
fn a_session_left_alone_expires_and_only_then() {
    // Established with no keepalives: the hold timer (12 ticks) fires
    // exactly at tick 12.
    let mut fsm = fsm_in(FsmState::Established);
    let mut actions = Vec::new();
    for tick in 1..=11 {
        fsm.on_tick(&mut actions);
        assert_eq!(fsm.state(), FsmState::Established, "tick {tick}");
    }
    fsm.on_tick(&mut actions);
    assert_eq!(fsm.state(), FsmState::Idle);
    assert!(actions.contains(&FsmAction::SessionDown));
}
