//! End-to-end tests: real speakers against the real daemon over
//! loopback TCP — the benchmark's Fig. 1 topology with live sockets.

use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

use bgpbench_daemon::{BgpDaemon, DaemonConfig};
use bgpbench_speaker::{workload, LiveSpeaker, LiveSpeakerConfig, TableGenerator};
use bgpbench_wire::{Asn, RouterId};

fn speaker1_config() -> LiveSpeakerConfig {
    LiveSpeakerConfig {
        local_asn: Asn(65001),
        router_id: RouterId(0x0A00_0002),
        hold_time_secs: 90,
    }
}

fn speaker2_config() -> LiveSpeakerConfig {
    LiveSpeakerConfig {
        local_asn: Asn(65002),
        router_id: RouterId(0x0A00_0003),
        hold_time_secs: 90,
    }
}

fn announce_spec(pkt: usize, path_len: usize, asn: u16) -> workload::AnnounceSpec {
    workload::AnnounceSpec {
        speaker_asn: Asn(asn),
        path_len,
        next_hop: Ipv4Addr::new(127, 0, 0, 1),
        prefixes_per_update: pkt,
        seed: 3,
    }
}

/// Polls until `predicate` holds on a snapshot or the timeout elapses.
fn wait_for(
    daemon: &BgpDaemon,
    timeout: Duration,
    predicate: impl Fn(&bgpbench_daemon::DaemonSnapshot) -> bool,
) -> bgpbench_daemon::DaemonSnapshot {
    let deadline = Instant::now() + timeout;
    loop {
        let snapshot = daemon.snapshot();
        if predicate(&snapshot) || Instant::now() > deadline {
            return snapshot;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn session_establishment_and_snapshot() {
    let daemon = BgpDaemon::start(DaemonConfig::default()).unwrap();
    let speaker = LiveSpeaker::connect(
        daemon.local_addr(),
        &speaker1_config(),
        Duration::from_secs(5),
    )
    .unwrap();
    assert_eq!(speaker.peer_open().asn(), Asn(65000));
    let snapshot = wait_for(&daemon, Duration::from_secs(5), |s| s.sessions == 1);
    assert_eq!(snapshot.sessions, 1);
    drop(speaker);
    let snapshot = wait_for(&daemon, Duration::from_secs(5), |s| s.sessions == 0);
    assert_eq!(snapshot.sessions, 0);
    daemon.shutdown();
}

#[test]
fn phase1_table_injection_reaches_rib_and_fib() {
    let daemon = BgpDaemon::start(DaemonConfig::default()).unwrap();
    let mut speaker = LiveSpeaker::connect(
        daemon.local_addr(),
        &speaker1_config(),
        Duration::from_secs(5),
    )
    .unwrap();
    let table = TableGenerator::new(10).generate(2000);
    let updates = workload::announcements(&table, &announce_spec(500, 3, 65001));
    speaker.flood(&updates).unwrap();
    let snapshot = wait_for(&daemon, Duration::from_secs(10), |s| s.loc_rib_len == 2000);
    assert_eq!(snapshot.loc_rib_len, 2000);
    assert_eq!(snapshot.fib_len, 2000);
    assert_eq!(snapshot.rib.fib_installs, 2000);
    daemon.shutdown();
}

#[test]
fn phase2_propagation_to_second_speaker() {
    let daemon = BgpDaemon::start(DaemonConfig::default()).unwrap();
    let mut speaker1 = LiveSpeaker::connect(
        daemon.local_addr(),
        &speaker1_config(),
        Duration::from_secs(5),
    )
    .unwrap();
    let table = TableGenerator::new(11).generate(1000);
    speaker1
        .flood(&workload::announcements(
            &table,
            &announce_spec(500, 3, 65001),
        ))
        .unwrap();
    wait_for(&daemon, Duration::from_secs(10), |s| s.loc_rib_len == 1000);

    // Speaker 2 connects afterwards and must receive the full table.
    let mut speaker2 = LiveSpeaker::connect(
        daemon.local_addr(),
        &speaker2_config(),
        Duration::from_secs(5),
    )
    .unwrap();
    let summary = speaker2
        .collect_routes_until(1000, 0, Duration::from_secs(10))
        .unwrap();
    assert_eq!(summary.announced, 1000);
    daemon.shutdown();
}

#[test]
fn incremental_update_propagates_live() {
    let daemon = BgpDaemon::start(DaemonConfig::default()).unwrap();
    let mut speaker1 = LiveSpeaker::connect(
        daemon.local_addr(),
        &speaker1_config(),
        Duration::from_secs(5),
    )
    .unwrap();
    let mut speaker2 = LiveSpeaker::connect(
        daemon.local_addr(),
        &speaker2_config(),
        Duration::from_secs(5),
    )
    .unwrap();
    wait_for(&daemon, Duration::from_secs(5), |s| s.sessions == 2);

    let table = TableGenerator::new(12).generate(100);
    speaker1
        .flood(&workload::announcements(
            &table,
            &announce_spec(100, 3, 65001),
        ))
        .unwrap();
    // Speaker 2 receives the incremental announcements.
    let summary = speaker2
        .collect_routes_until(100, 0, Duration::from_secs(10))
        .unwrap();
    assert_eq!(summary.announced, 100);

    // Withdrawal flows through too.
    speaker1.flood(&workload::withdrawals(&table, 100)).unwrap();
    let summary = speaker2
        .collect_routes_until(0, 100, Duration::from_secs(10))
        .unwrap();
    assert_eq!(summary.withdrawn, 100);
    let snapshot = daemon.snapshot();
    assert_eq!(snapshot.loc_rib_len, 0);
    assert_eq!(snapshot.fib_len, 0);
    daemon.shutdown();
}

#[test]
fn session_drop_withdraws_routes_from_peers() {
    let daemon = BgpDaemon::start(DaemonConfig::default()).unwrap();
    let mut speaker1 = LiveSpeaker::connect(
        daemon.local_addr(),
        &speaker1_config(),
        Duration::from_secs(5),
    )
    .unwrap();
    let mut speaker2 = LiveSpeaker::connect(
        daemon.local_addr(),
        &speaker2_config(),
        Duration::from_secs(5),
    )
    .unwrap();
    let table = TableGenerator::new(13).generate(50);
    speaker1
        .flood(&workload::announcements(
            &table,
            &announce_spec(50, 3, 65001),
        ))
        .unwrap();
    speaker2
        .collect_routes_until(50, 0, Duration::from_secs(10))
        .unwrap();

    // Kill speaker 1; its routes must be withdrawn toward speaker 2.
    drop(speaker1);
    let summary = speaker2
        .collect_routes_until(0, 50, Duration::from_secs(10))
        .unwrap();
    assert_eq!(summary.withdrawn, 50);
    let snapshot = wait_for(&daemon, Duration::from_secs(5), |s| s.loc_rib_len == 0);
    assert_eq!(snapshot.fib_len, 0);
    daemon.shutdown();
}

#[test]
fn best_path_selection_happens_live() {
    let daemon = BgpDaemon::start(DaemonConfig::default()).unwrap();
    let mut speaker1 = LiveSpeaker::connect(
        daemon.local_addr(),
        &speaker1_config(),
        Duration::from_secs(5),
    )
    .unwrap();
    let mut speaker2 = LiveSpeaker::connect(
        daemon.local_addr(),
        &speaker2_config(),
        Duration::from_secs(5),
    )
    .unwrap();
    wait_for(&daemon, Duration::from_secs(5), |s| s.sessions == 2);
    let table = TableGenerator::new(14).generate(20);

    // Speaker 1 announces with a long path, speaker 2 with a short one:
    // the daemon must prefer speaker 2 and re-advertise to speaker 1.
    speaker1
        .flood(&workload::announcements(
            &table,
            &announce_spec(20, 5, 65001),
        ))
        .unwrap();
    wait_for(&daemon, Duration::from_secs(5), |s| s.loc_rib_len == 20);
    speaker2
        .flood(&workload::announcements(
            &table,
            &announce_spec(20, 2, 65002),
        ))
        .unwrap();
    let summary = speaker1
        .collect_routes_until(20, 0, Duration::from_secs(10))
        .unwrap();
    // Speaker 1 first got nothing (it owned the best), then receives
    // the better routes sourced from speaker 2.
    assert_eq!(summary.announced, 20);
    let snapshot = daemon.snapshot();
    assert_eq!(snapshot.rib.best_changed, 40); // 20 installs + 20 replaces
    daemon.shutdown();
}

#[test]
fn peer_snapshots_count_both_directions() {
    let daemon = BgpDaemon::start(DaemonConfig::default()).unwrap();
    let mut speaker1 = LiveSpeaker::connect(
        daemon.local_addr(),
        &speaker1_config(),
        Duration::from_secs(5),
    )
    .unwrap();
    let mut speaker2 = LiveSpeaker::connect(
        daemon.local_addr(),
        &speaker2_config(),
        Duration::from_secs(5),
    )
    .unwrap();
    wait_for(&daemon, Duration::from_secs(5), |s| s.sessions == 2);
    let table = TableGenerator::new(16).generate(40);
    speaker1
        .flood(&workload::announcements(
            &table,
            &announce_spec(20, 3, 65001),
        ))
        .unwrap();
    speaker2
        .collect_routes_until(40, 0, Duration::from_secs(10))
        .unwrap();
    let peers = daemon.peer_snapshots();
    assert_eq!(peers.len(), 2);
    let p1 = peers.iter().find(|p| p.asn == Asn(65001)).unwrap();
    let p2 = peers.iter().find(|p| p.asn == Asn(65002)).unwrap();
    assert_eq!(p1.prefixes_in, 40);
    assert_eq!(p1.updates_in, 2);
    assert_eq!(
        p1.prefixes_out, 0,
        "no routes should flow back to the source"
    );
    assert_eq!(p2.prefixes_in, 0);
    assert_eq!(p2.prefixes_out, 40);
    daemon.shutdown();
}

#[test]
fn route_refresh_replays_the_full_table() {
    let daemon = BgpDaemon::start(DaemonConfig::default()).unwrap();
    let mut speaker1 = LiveSpeaker::connect(
        daemon.local_addr(),
        &speaker1_config(),
        Duration::from_secs(5),
    )
    .unwrap();
    // The daemon must advertise the RFC 2918 capability.
    assert!(speaker1
        .peer_open()
        .capabilities()
        .contains(&bgpbench_wire::Capability::RouteRefresh));
    let table = TableGenerator::new(15).generate(120);
    speaker1
        .flood(&workload::announcements(
            &table,
            &announce_spec(60, 3, 65001),
        ))
        .unwrap();
    wait_for(&daemon, Duration::from_secs(5), |s| s.loc_rib_len == 120);

    let mut speaker2 = LiveSpeaker::connect(
        daemon.local_addr(),
        &speaker2_config(),
        Duration::from_secs(5),
    )
    .unwrap();
    // Initial table transfer.
    let first = speaker2
        .collect_routes_until(120, 0, Duration::from_secs(10))
        .unwrap();
    assert_eq!(first.announced, 120);
    // Refresh: the same 120 routes arrive again.
    speaker2.request_refresh().unwrap();
    let replay = speaker2
        .collect_routes_until(120, 0, Duration::from_secs(10))
        .unwrap();
    assert_eq!(replay.announced, 120);
    daemon.shutdown();
}

#[test]
fn daemon_survives_garbage_bytes() {
    let daemon = BgpDaemon::start(DaemonConfig::default()).unwrap();
    {
        use std::io::Write;
        let mut stream = std::net::TcpStream::connect(daemon.local_addr()).unwrap();
        stream.write_all(&[0u8; 64]).unwrap();
        // The daemon should answer with a NOTIFICATION and close.
    }
    // A proper session still works afterwards.
    let speaker = LiveSpeaker::connect(
        daemon.local_addr(),
        &speaker1_config(),
        Duration::from_secs(5),
    );
    assert!(speaker.is_ok());
    daemon.shutdown();
}
