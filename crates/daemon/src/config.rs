use std::net::{Ipv4Addr, SocketAddr};

use bgpbench_wire::{Asn, RouterId};

/// Configuration for a [`crate::BgpDaemon`].
///
/// Construct via [`DaemonConfig::builder`]; the bare-struct form
/// remains for existing callers but new code should use the builder,
/// which owns defaulting and keeps field additions source-compatible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonConfig {
    /// The daemon's AS number.
    pub local_asn: Asn,
    /// The daemon's BGP identifier.
    pub router_id: RouterId,
    /// Hold time advertised in OPEN messages (seconds; zero disables
    /// keepalives entirely).
    pub hold_time_secs: u16,
    /// Interval between our own KEEPALIVEs (seconds; zero derives the
    /// conventional hold/3).
    pub keepalive_secs: u16,
    /// Delay between transport connection attempts (seconds).
    pub connect_retry_secs: u16,
    /// Address to listen on; port 0 picks an ephemeral port.
    pub bind_addr: SocketAddr,
    /// NEXT_HOP advertised for exported routes.
    pub next_hop: Ipv4Addr,
    /// Prefixes per UPDATE used when advertising the table to a newly
    /// established peer (the daemon's own packetization choice).
    pub export_prefixes_per_update: usize,
}

impl DaemonConfig {
    /// A builder seeded with the paper-faithful defaults.
    pub fn builder() -> DaemonConfigBuilder {
        DaemonConfigBuilder {
            config: DaemonConfig::default(),
        }
    }

    /// The effective keepalive interval in seconds (hold/3 when the
    /// configured value is zero).
    pub fn effective_keepalive_secs(&self) -> u16 {
        if self.keepalive_secs == 0 {
            self.hold_time_secs / 3
        } else {
            self.keepalive_secs
        }
    }
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            local_asn: Asn(65000),
            router_id: RouterId(0x0A00_0001),
            hold_time_secs: 90,
            keepalive_secs: 30,
            connect_retry_secs: 120,
            bind_addr: "127.0.0.1:0".parse().expect("static addr parses"),
            next_hop: Ipv4Addr::new(10, 0, 0, 1),
            export_prefixes_per_update: 500,
        }
    }
}

/// Builder for [`DaemonConfig`]. Every setter defaults to the
/// paper-faithful value (AS 65000, hold 90 s, keepalive 30 s,
/// connect-retry 120 s, 500 prefixes per exported UPDATE).
#[derive(Debug, Clone)]
pub struct DaemonConfigBuilder {
    config: DaemonConfig,
}

impl DaemonConfigBuilder {
    /// Sets the daemon's AS number.
    pub fn local_asn(mut self, asn: Asn) -> Self {
        self.config.local_asn = asn;
        self
    }

    /// Sets the daemon's BGP identifier.
    pub fn router_id(mut self, router_id: RouterId) -> Self {
        self.config.router_id = router_id;
        self
    }

    /// Sets the advertised hold time (zero disables keepalives).
    pub fn hold_time_secs(mut self, secs: u16) -> Self {
        self.config.hold_time_secs = secs;
        self
    }

    /// Sets the keepalive interval (zero derives hold/3).
    pub fn keepalive_secs(mut self, secs: u16) -> Self {
        self.config.keepalive_secs = secs;
        self
    }

    /// Sets the transport connect-retry delay.
    pub fn connect_retry_secs(mut self, secs: u16) -> Self {
        self.config.connect_retry_secs = secs;
        self
    }

    /// Sets the listen address (port 0 picks an ephemeral port).
    pub fn bind_addr(mut self, addr: SocketAddr) -> Self {
        self.config.bind_addr = addr;
        self
    }

    /// Sets the NEXT_HOP advertised for exported routes.
    pub fn next_hop(mut self, next_hop: Ipv4Addr) -> Self {
        self.config.next_hop = next_hop;
        self
    }

    /// Sets the daemon's own export packetization.
    pub fn export_prefixes_per_update(mut self, prefixes: usize) -> Self {
        self.config.export_prefixes_per_update = prefixes;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> DaemonConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_listens_on_loopback_ephemeral() {
        let config = DaemonConfig::default();
        assert!(config.bind_addr.ip().is_loopback());
        assert_eq!(config.bind_addr.port(), 0);
        assert_eq!(config.local_asn, Asn(65000));
        assert_eq!(config.export_prefixes_per_update, 500);
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(DaemonConfig::builder().build(), DaemonConfig::default());
    }

    #[test]
    fn builder_sets_timers() {
        let config = DaemonConfig::builder()
            .local_asn(Asn(65010))
            .hold_time_secs(9)
            .keepalive_secs(3)
            .connect_retry_secs(1)
            .build();
        assert_eq!(config.local_asn, Asn(65010));
        assert_eq!(config.hold_time_secs, 9);
        assert_eq!(config.effective_keepalive_secs(), 3);
        assert_eq!(config.connect_retry_secs, 1);
    }

    #[test]
    fn zero_keepalive_derives_hold_over_three() {
        let config = DaemonConfig::builder()
            .hold_time_secs(90)
            .keepalive_secs(0)
            .build();
        assert_eq!(config.effective_keepalive_secs(), 30);
    }
}
