use std::net::{Ipv4Addr, SocketAddr};

use bgpbench_wire::{Asn, RouterId};

/// Configuration for a [`crate::BgpDaemon`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonConfig {
    /// The daemon's AS number.
    pub local_asn: Asn,
    /// The daemon's BGP identifier.
    pub router_id: RouterId,
    /// Hold time advertised in OPEN messages (seconds; zero disables
    /// keepalives entirely).
    pub hold_time_secs: u16,
    /// Address to listen on; port 0 picks an ephemeral port.
    pub bind_addr: SocketAddr,
    /// NEXT_HOP advertised for exported routes.
    pub next_hop: Ipv4Addr,
    /// Prefixes per UPDATE used when advertising the table to a newly
    /// established peer (the daemon's own packetization choice).
    pub export_prefixes_per_update: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            local_asn: Asn(65000),
            router_id: RouterId(0x0A00_0001),
            hold_time_secs: 90,
            bind_addr: "127.0.0.1:0".parse().expect("static addr parses"),
            next_hop: Ipv4Addr::new(10, 0, 0, 1),
            export_prefixes_per_update: 500,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_listens_on_loopback_ephemeral() {
        let config = DaemonConfig::default();
        assert!(config.bind_addr.ip().is_loopback());
        assert_eq!(config.bind_addr.port(), 0);
        assert_eq!(config.local_asn, Asn(65000));
        assert_eq!(config.export_prefixes_per_update, 500);
    }
}
