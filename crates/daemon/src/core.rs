//! The daemon's shared routing core: one lock around the RIB engine,
//! the shadow FIB, and per-peer advertisement state.
//!
//! Holding a single lock across "apply update → update FIB → stage
//! advertisements" gives every peer a consistent, totally-ordered view
//! — the same serialization point the `xorp_rib` process provides in
//! the paper's software routers.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use crossbeam::channel::Sender;

use bgpbench_fib::{Fib, NextHop};
use bgpbench_rib::{
    AdjRibOut, ExportAction, FibDirective, PeerId, PeerInfo, RibEngine, RibStats, RouteAttributes,
};
use bgpbench_telemetry::{self as telemetry, EventKind, MetricId, SpanId};
use bgpbench_wire::{Message, Prefix, UpdateMessage};

use crate::DaemonConfig;

/// Counters the daemon exposes in snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct CoreStats {
    pub updates_received: u64,
    pub transactions: u64,
}

/// Per-session counters, exposed via
/// [`crate::BgpDaemon::peer_snapshots`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerSnapshot {
    /// The daemon-side session id.
    pub peer: PeerId,
    /// The peer's AS number.
    pub asn: bgpbench_wire::Asn,
    /// The peer's session address.
    pub address: Ipv4Addr,
    /// UPDATE messages received from this peer.
    pub updates_in: u64,
    /// Prefix-level transactions received from this peer.
    pub prefixes_in: u64,
    /// UPDATE messages sent to this peer.
    pub updates_out: u64,
    /// Prefix-level announcements/withdrawals sent to this peer.
    pub prefixes_out: u64,
}

#[derive(Debug)]
pub(crate) struct Core {
    config: DaemonConfig,
    engine: RibEngine,
    fib: Fib,
    adj_out: HashMap<PeerId, AdjRibOut>,
    writers: HashMap<PeerId, Sender<Vec<u8>>>,
    peer_stats: HashMap<PeerId, PeerSnapshot>,
    next_peer: u32,
    stats: CoreStats,
}

impl Core {
    pub(crate) fn new(config: DaemonConfig) -> Self {
        let engine = RibEngine::new(config.local_asn, config.router_id);
        Core {
            config,
            engine,
            fib: Fib::new(),
            adj_out: HashMap::new(),
            writers: HashMap::new(),
            peer_stats: HashMap::new(),
            next_peer: 1,
            stats: CoreStats::default(),
        }
    }

    pub(crate) fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// Registers an established session: adds the peer to the engine,
    /// stores its writer, and stages the initial full-table
    /// advertisement (Phase 2 of the benchmark methodology).
    pub(crate) fn register_peer(
        &mut self,
        asn: bgpbench_wire::Asn,
        router_id: bgpbench_wire::RouterId,
        address: Ipv4Addr,
        writer: Sender<Vec<u8>>,
    ) -> PeerId {
        let id = PeerId(self.next_peer);
        self.next_peer += 1;
        self.engine
            .add_peer(PeerInfo::new(id, asn, router_id, address));
        let mut adj_out = AdjRibOut::new();
        let routes = self.engine.export_routes(id, self.config.next_hop);
        let actions = adj_out.sync(routes);
        let updates = AdjRibOut::to_updates(&actions, self.config.export_prefixes_per_update);
        telemetry::add(MetricId::DaemonUpdatesSent, updates.len() as u64);
        let mut snapshot = PeerSnapshot {
            peer: id,
            asn,
            address,
            updates_in: 0,
            prefixes_in: 0,
            updates_out: 0,
            prefixes_out: 0,
        };
        for update in updates {
            snapshot.updates_out += 1;
            snapshot.prefixes_out += update.transaction_count() as u64;
            send_update(&writer, &update);
        }
        self.peer_stats.insert(id, snapshot);
        self.adj_out.insert(id, adj_out);
        self.writers.insert(id, writer);
        telemetry::incr(MetricId::SessionsOpened);
        telemetry::event(EventKind::SessionUp, u64::from(id.0), u64::from(asn.0));
        id
    }

    /// Tears a session down: withdraws everything learned from the
    /// peer and propagates the fallout to the remaining peers.
    pub(crate) fn unregister_peer(&mut self, peer: PeerId) {
        if self.writers.remove(&peer).is_some() {
            telemetry::incr(MetricId::SessionsClosed);
            telemetry::event(EventKind::SessionDown, u64::from(peer.0), 0);
        }
        self.adj_out.remove(&peer);
        self.peer_stats.remove(&peer);
        if let Ok(outcomes) = self.engine.remove_peer(peer) {
            let prefixes: Vec<Prefix> = outcomes.iter().map(|o| o.prefix).collect();
            {
                let _span = telemetry::span(SpanId::FibApply);
                for outcome in &outcomes {
                    self.apply_fib(outcome.fib);
                }
            }
            self.propagate(&prefixes);
        }
    }

    /// Applies one UPDATE from `peer`: RIB processing, FIB writes, and
    /// propagation to every other established session.
    pub(crate) fn apply_update_from(&mut self, peer: PeerId, update: &UpdateMessage) {
        let Ok(outcomes) = self.engine.apply_update(peer, update) else {
            // Malformed-by-content updates (missing mandatory
            // attributes) are counted but do not tear the core down;
            // the session layer sends the NOTIFICATION.
            return;
        };
        self.stats.updates_received += 1;
        self.stats.transactions += outcomes.len() as u64;
        if let Some(peer_stats) = self.peer_stats.get_mut(&peer) {
            peer_stats.updates_in += 1;
            peer_stats.prefixes_in += outcomes.len() as u64;
        }
        let prefixes: Vec<Prefix> = outcomes.iter().map(|o| o.prefix).collect();
        {
            let _span = telemetry::span(SpanId::FibApply);
            for outcome in &outcomes {
                self.apply_fib(outcome.fib);
            }
        }
        self.propagate(&prefixes);
    }

    fn apply_fib(&mut self, directive: Option<FibDirective>) {
        match directive {
            Some(FibDirective::Install { prefix, next_hop }) => {
                telemetry::incr(MetricId::FibInstalls);
                self.fib.insert(prefix, NextHop::new(next_hop, 0));
            }
            Some(FibDirective::Remove { prefix }) => {
                telemetry::incr(MetricId::FibRemoves);
                self.fib.remove(&prefix);
            }
            None => {}
        }
    }

    /// Re-syncs the advertisement state of `prefixes` toward every
    /// established peer and sends the resulting UPDATEs.
    fn propagate(&mut self, prefixes: &[Prefix]) {
        let _span = telemetry::span(SpanId::DaemonPropagate);
        telemetry::incr(MetricId::DaemonPropagateRounds);
        let peer_ids: Vec<PeerId> = self.writers.keys().copied().collect();
        // The exported form of an attribute set is peer-independent
        // (own AS prepended, next hop rewritten), and the engine interns
        // attribute sets, so one cache keyed on pointer identity covers
        // every prefix and every peer in this propagation round. This
        // also keeps Adj-RIB-Out grouping on the pointer fast path.
        let mut exported: HashMap<*const RouteAttributes, Arc<RouteAttributes>> = HashMap::new();
        for peer in peer_ids {
            let mut actions: Vec<ExportAction> = Vec::new();
            for prefix in prefixes {
                let desired = self.engine.loc_rib().get(prefix).and_then(|route| {
                    if route.learned_from() == peer {
                        None // never advertise a route back to its source
                    } else {
                        Some(
                            exported
                                .entry(Arc::as_ptr(route.attrs()))
                                .or_insert_with(|| {
                                    Arc::new(
                                        route
                                            .attrs()
                                            .exported(self.config.local_asn, self.config.next_hop),
                                    )
                                })
                                .clone(),
                        )
                    }
                });
                let adj_out = self.adj_out.get_mut(&peer).expect("writer implies adj_out");
                if let Some(action) = adj_out.sync_prefix(*prefix, desired) {
                    actions.push(action);
                }
            }
            if actions.is_empty() {
                continue;
            }
            let updates = AdjRibOut::to_updates(&actions, self.config.export_prefixes_per_update);
            telemetry::add(MetricId::DaemonUpdatesSent, updates.len() as u64);
            let writer = &self.writers[&peer];
            for update in &updates {
                send_update(writer, update);
            }
            if let Some(peer_stats) = self.peer_stats.get_mut(&peer) {
                peer_stats.updates_out += updates.len() as u64;
                peer_stats.prefixes_out += updates
                    .iter()
                    .map(|u| u.transaction_count() as u64)
                    .sum::<u64>();
            }
        }
    }

    /// Handles a ROUTE-REFRESH request (RFC 2918): resets the peer's
    /// Adj-RIB-Out and re-advertises the full table.
    pub(crate) fn refresh_peer(&mut self, peer: PeerId) {
        let Some(writer) = self.writers.get(&peer).cloned() else {
            return;
        };
        let routes = self.engine.export_routes(peer, self.config.next_hop);
        let adj_out = self.adj_out.get_mut(&peer).expect("writer implies adj_out");
        *adj_out = AdjRibOut::new();
        let actions = adj_out.sync(routes);
        let updates = AdjRibOut::to_updates(&actions, self.config.export_prefixes_per_update);
        telemetry::add(MetricId::DaemonUpdatesSent, updates.len() as u64);
        for update in updates {
            send_update(&writer, &update);
        }
    }

    pub(crate) fn established_sessions(&self) -> usize {
        self.writers.len()
    }

    /// Whether `peer` still has an established session (a live writer).
    pub(crate) fn is_registered(&self, peer: PeerId) -> bool {
        self.writers.contains_key(&peer)
    }

    pub(crate) fn peer_snapshot(&self, peer: PeerId) -> Option<PeerSnapshot> {
        self.peer_stats.get(&peer).cloned()
    }

    pub(crate) fn peer_ids(&self) -> Vec<PeerId> {
        let mut ids: Vec<PeerId> = self.peer_stats.keys().copied().collect();
        ids.sort();
        ids
    }

    pub(crate) fn peer_snapshots(&self) -> Vec<PeerSnapshot> {
        let mut peers: Vec<(PeerId, PeerSnapshot)> = self
            .peer_stats
            .iter()
            .map(|(id, snapshot)| (*id, snapshot.clone()))
            .collect();
        peers.sort_by_key(|(id, _)| *id);
        peers.into_iter().map(|(_, snapshot)| snapshot).collect()
    }

    pub(crate) fn loc_rib_len(&self) -> usize {
        self.engine.loc_rib().len()
    }

    pub(crate) fn fib_len(&self) -> usize {
        self.fib.len()
    }

    pub(crate) fn rib_stats(&self) -> RibStats {
        self.engine.stats()
    }

    pub(crate) fn stats(&self) -> CoreStats {
        self.stats
    }
}

fn send_update(writer: &Sender<Vec<u8>>, update: &UpdateMessage) {
    if let Ok(bytes) = Message::Update(update.clone()).encode() {
        // A disconnected writer means the session died; the session
        // thread will unregister it.
        let _ = writer.send(bytes);
    }
}
