//! A dependency-free HTTP scrape endpoint for the live daemon.
//!
//! One `std::net::TcpListener` accept loop on a background thread,
//! speaking just enough HTTP/1.1 for a scraper:
//!
//! * `GET /metrics` — the telemetry registry snapshot in Prometheus
//!   text exposition format ([`bgpbench_telemetry::Snapshot::to_prometheus`]);
//! * `GET /trace` — the flight-recorder ring as Chrome trace-event
//!   JSON (empty-but-valid when tracing is disabled);
//! * anything else — `404`.
//!
//! The server reads one request line, answers, and closes — no
//! keep-alive, no chunking, no headers parsed beyond the first line.
//! That is deliberate: the endpoint exists so `curl` and a Prometheus
//! scrape job can watch a benchmark run, not to be a web server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bgpbench_telemetry as telemetry;

/// The background scrape endpoint. Dropping the handle leaves the
/// thread running; call [`MetricsServer::shutdown`] for a clean stop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("bgpbench-metrics".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        // A scrape failing mid-write is the scraper's
                        // problem; the run must not notice.
                        let _ = serve_one(stream);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // The accept loop is blocked in `incoming()`; a throwaway
        // connection wakes it to observe the stop flag.
        if let Ok(stream) = TcpStream::connect(self.addr) {
            drop(stream);
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Answers a single request on `stream` and closes it.
fn serve_one(stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the header block so the peer's write side is not reset
    // before it finishes sending.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }
    let mut stream = reader.into_inner();

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4",
            telemetry::snapshot().to_prometheus(),
        ),
        ("GET", "/trace") => (
            "200 OK",
            "application/json",
            telemetry::trace::export::chrome_json(&telemetry::trace_dump()),
        ),
        _ => (
            "404 Not Found",
            "text/plain; version=0.0.4",
            "not found: try /metrics or /trace\n".to_owned(),
        ),
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Blocking one-shot GET against the server, for tests and the
/// daemon's own smoke checks. Returns the raw response.
#[doc(hidden)]
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: bgpbench\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_trace_and_404_then_shuts_down() {
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr();

        let metrics = http_get(addr, "/metrics").expect("scrape /metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(
            metrics.contains("# TYPE bgpbench_session_flaps counter"),
            "stable series present even at zero: {metrics}"
        );

        let trace = http_get(addr, "/trace").expect("scrape /trace");
        assert!(trace.starts_with("HTTP/1.1 200 OK"), "{trace}");
        assert!(
            trace.contains("\"traceEvents\""),
            "chrome trace envelope: {trace}"
        );

        let missing = http_get(addr, "/nope").expect("scrape bad path");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        server.shutdown();
    }
}
