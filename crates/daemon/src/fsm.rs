//! The RFC 4271 session FSM on simnet ticks.
//!
//! [`SessionFsm`] is a pure, socket-free state machine over the five
//! classic states (Idle, Connect, OpenSent, OpenConfirm, Established).
//! Transport and message arrivals are fed in as [`FsmEvent`]s; timers
//! (hold, keepalive, connect-retry) are counted in discrete ticks and
//! advanced by [`SessionFsm::on_tick`], so a simulated topology drives
//! N sessions deterministically off the simnet clock while the
//! socket-backed session loop in [`crate::session`] keeps its own
//! wall-clock timers. Every transition is total: unexpected events are
//! FSM errors that reset the session to Idle (RFC 4271 §6.6), never
//! panics — this module is under the workspace no-panic lint.
//!
//! Deviations from the full RFC figure, chosen for the simulator:
//!
//! * no `Active` state — the simulated transport either connects on
//!   request or reports failure, so the passive-wait state collapses
//!   into `Connect`;
//! * hold-timer expiry from *every* state lands in Idle (the RFC
//!   leaves the timer stopped in Idle/Connect; treating a stray expiry
//!   as a reset keeps the transition table total);
//! * restart policy (when Idle re-enters Connect) belongs to the
//!   caller via [`FsmEvent::ManualStart`].

use std::fmt;

use bgpbench_telemetry::{self as telemetry, TraceEventId};

/// The five session states of RFC 4271 §8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsmState {
    /// No session; all timers stopped.
    Idle,
    /// Waiting for the transport to come up (connect-retry running).
    Connect,
    /// Transport up, OPEN sent, waiting for the peer's OPEN.
    OpenSent,
    /// OPEN exchanged, waiting for the first KEEPALIVE.
    OpenConfirm,
    /// Session up; UPDATEs flow and the hold timer is armed.
    Established,
}

impl FsmState {
    /// RFC 4271 §8 state code (Active's 3 is unused in this model),
    /// packed into flight-recorder transition labels.
    pub fn code(self) -> u8 {
        match self {
            FsmState::Idle => 1,
            FsmState::Connect => 2,
            FsmState::OpenSent => 4,
            FsmState::OpenConfirm => 5,
            FsmState::Established => 6,
        }
    }
}

impl fmt::Display for FsmState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FsmState::Idle => "Idle",
            FsmState::Connect => "Connect",
            FsmState::OpenSent => "OpenSent",
            FsmState::OpenConfirm => "OpenConfirm",
            FsmState::Established => "Established",
        };
        f.write_str(name)
    }
}

/// Input events of the session FSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsmEvent {
    /// Operator/topology start: leave Idle and begin connecting.
    ManualStart,
    /// Operator stop or peer restart: tear the session down.
    ManualStop,
    /// The transport connection came up.
    TcpConnected,
    /// The transport connection failed or dropped.
    TcpFailed,
    /// The connect-retry timer fired (re-attempt the transport).
    ConnectRetryExpired,
    /// The peer's OPEN message arrived.
    OpenReceived,
    /// A KEEPALIVE arrived.
    KeepaliveReceived,
    /// An UPDATE arrived.
    UpdateReceived,
    /// A NOTIFICATION arrived.
    NotificationReceived,
    /// The hold timer expired without hearing from the peer.
    HoldTimerExpired,
    /// Time to send our own KEEPALIVE.
    KeepaliveTimerExpired,
}

impl FsmEvent {
    /// Every event, for exhaustive property tests.
    pub const ALL: [FsmEvent; 11] = [
        FsmEvent::ManualStart,
        FsmEvent::ManualStop,
        FsmEvent::TcpConnected,
        FsmEvent::TcpFailed,
        FsmEvent::ConnectRetryExpired,
        FsmEvent::OpenReceived,
        FsmEvent::KeepaliveReceived,
        FsmEvent::UpdateReceived,
        FsmEvent::NotificationReceived,
        FsmEvent::HoldTimerExpired,
        FsmEvent::KeepaliveTimerExpired,
    ];
}

/// Output actions the caller must perform after a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsmAction {
    /// Initiate the transport connection.
    StartConnect,
    /// Send our OPEN message.
    SendOpen,
    /// Send a KEEPALIVE.
    SendKeepalive,
    /// Send a NOTIFICATION (session is being torn down with cause).
    SendNotification,
    /// The session reached Established.
    SessionUp,
    /// The session left Established (purge the peer's routes).
    SessionDown,
}

/// Session timer durations in simnet ticks. Zero disables a timer
/// (matching the hold-time-zero convention of RFC 4271 §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionTimers {
    /// Ticks without hearing from the peer before the session resets.
    pub hold_ticks: u64,
    /// Ticks between our own KEEPALIVEs (conventionally hold/3).
    pub keepalive_ticks: u64,
    /// Ticks between transport connection attempts.
    pub connect_retry_ticks: u64,
}

impl SessionTimers {
    /// Timers from second-granularity configuration at `ticks_per_sec`
    /// simnet resolution. A zero keepalive derives hold/3.
    pub fn from_secs(hold: u16, keepalive: u16, connect_retry: u16, ticks_per_sec: u64) -> Self {
        let keepalive = if keepalive == 0 { hold / 3 } else { keepalive };
        SessionTimers {
            hold_ticks: u64::from(hold) * ticks_per_sec,
            keepalive_ticks: u64::from(keepalive) * ticks_per_sec,
            connect_retry_ticks: u64::from(connect_retry) * ticks_per_sec,
        }
    }

    /// Paper-faithful defaults: hold 90 s, keepalive 30 s,
    /// connect-retry 120 s (RFC 4271 §10 suggested values).
    pub fn paper_default(ticks_per_sec: u64) -> Self {
        SessionTimers::from_secs(90, 30, 120, ticks_per_sec)
    }
}

/// A deterministic, tick-driven BGP session FSM.
#[derive(Debug, Clone)]
pub struct SessionFsm {
    state: FsmState,
    timers: SessionTimers,
    hold_remaining: u64,
    keepalive_remaining: u64,
    connect_retry_remaining: u64,
    flaps: u64,
    transitions: u64,
    /// Peer label stamped on flight-recorder transition events so the
    /// exported timeline groups this session onto its own track.
    trace_label: u64,
}

impl SessionFsm {
    /// A new FSM in Idle with all timers stopped.
    pub fn new(timers: SessionTimers) -> Self {
        SessionFsm {
            state: FsmState::Idle,
            timers,
            hold_remaining: 0,
            keepalive_remaining: 0,
            connect_retry_remaining: 0,
            flaps: 0,
            transitions: 0,
            trace_label: 0,
        }
    }

    /// Sets the peer label carried by this session's flight-recorder
    /// events (conventionally the peer id; 0 = unlabeled).
    pub fn set_trace_label(&mut self, label: u64) {
        self.trace_label = label;
    }

    /// The current state.
    pub fn state(&self) -> FsmState {
        self.state
    }

    /// Times the session has left Established.
    pub fn flaps(&self) -> u64 {
        self.flaps
    }

    /// Total state transitions processed (self-transitions included).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The configured timer durations.
    pub fn timers(&self) -> SessionTimers {
        self.timers
    }

    /// Advances the clock by one tick, firing any timers that reach
    /// zero. Actions are appended to `actions`.
    pub fn on_tick(&mut self, actions: &mut Vec<FsmAction>) {
        if matches!(self.state, FsmState::Connect) && self.connect_retry_remaining > 0 {
            self.connect_retry_remaining -= 1;
            if self.connect_retry_remaining == 0 {
                self.handle(FsmEvent::ConnectRetryExpired, actions);
            }
        }
        if matches!(
            self.state,
            FsmState::OpenSent | FsmState::OpenConfirm | FsmState::Established
        ) && self.hold_remaining > 0
        {
            self.hold_remaining -= 1;
            if self.hold_remaining == 0 {
                self.handle(FsmEvent::HoldTimerExpired, actions);
                return;
            }
        }
        if matches!(self.state, FsmState::OpenConfirm | FsmState::Established)
            && self.keepalive_remaining > 0
        {
            self.keepalive_remaining -= 1;
            if self.keepalive_remaining == 0 {
                self.handle(FsmEvent::KeepaliveTimerExpired, actions);
            }
        }
    }

    /// Feeds one event through the transition table, appending the
    /// resulting actions. Total: every `(state, event)` pair is
    /// defined; unexpected messages are FSM errors that reset to Idle.
    pub fn handle(&mut self, event: FsmEvent, actions: &mut Vec<FsmAction>) {
        self.transitions += 1;
        let from = self.state;
        self.dispatch(event, actions);
        if self.state != from {
            telemetry::trace_instant(
                TraceEventId::FsmTransition,
                self.trace_label,
                (u64::from(from.code()) << 8) | u64::from(self.state.code()),
            );
        }
    }

    fn dispatch(&mut self, event: FsmEvent, actions: &mut Vec<FsmAction>) {
        match (self.state, event) {
            // Stop and hold-expiry reset the session from any state.
            (_, FsmEvent::ManualStop) | (_, FsmEvent::HoldTimerExpired) => {
                let notify = matches!(
                    self.state,
                    FsmState::OpenSent | FsmState::OpenConfirm | FsmState::Established
                );
                self.reset(notify, actions);
            }

            (FsmState::Idle, FsmEvent::ManualStart) => {
                self.state = FsmState::Connect;
                self.connect_retry_remaining = self.timers.connect_retry_ticks;
                actions.push(FsmAction::StartConnect);
            }
            // Idle ignores everything else (RFC 4271 §8.2.2).
            (FsmState::Idle, _) => {}

            (FsmState::Connect, FsmEvent::TcpConnected) => {
                self.state = FsmState::OpenSent;
                self.connect_retry_remaining = 0;
                self.hold_remaining = self.timers.hold_ticks;
                actions.push(FsmAction::SendOpen);
            }
            // Transport failure: stay in Connect and retry (this model
            // folds the RFC's Active state into Connect).
            (FsmState::Connect, FsmEvent::TcpFailed)
            | (FsmState::Connect, FsmEvent::ConnectRetryExpired) => {
                self.connect_retry_remaining = self.timers.connect_retry_ticks;
                actions.push(FsmAction::StartConnect);
            }
            (FsmState::Connect, FsmEvent::ManualStart) => {}
            // BGP messages without a transport are an FSM error.
            (FsmState::Connect, _) => self.reset(false, actions),

            (FsmState::OpenSent, FsmEvent::OpenReceived) => {
                self.state = FsmState::OpenConfirm;
                self.hold_remaining = self.timers.hold_ticks;
                self.keepalive_remaining = self.timers.keepalive_ticks;
                actions.push(FsmAction::SendKeepalive);
            }
            (FsmState::OpenSent, FsmEvent::TcpFailed)
            | (FsmState::OpenSent, FsmEvent::NotificationReceived) => self.reset(false, actions),
            (FsmState::OpenSent, FsmEvent::ManualStart)
            | (FsmState::OpenSent, FsmEvent::ConnectRetryExpired) => {}
            (FsmState::OpenSent, _) => self.reset(true, actions),

            (FsmState::OpenConfirm, FsmEvent::KeepaliveReceived) => {
                self.state = FsmState::Established;
                self.hold_remaining = self.timers.hold_ticks;
                actions.push(FsmAction::SessionUp);
            }
            (FsmState::OpenConfirm, FsmEvent::KeepaliveTimerExpired) => {
                self.keepalive_remaining = self.timers.keepalive_ticks;
                actions.push(FsmAction::SendKeepalive);
            }
            (FsmState::OpenConfirm, FsmEvent::TcpFailed)
            | (FsmState::OpenConfirm, FsmEvent::NotificationReceived) => self.reset(false, actions),
            (FsmState::OpenConfirm, FsmEvent::ManualStart)
            | (FsmState::OpenConfirm, FsmEvent::ConnectRetryExpired) => {}
            (FsmState::OpenConfirm, _) => self.reset(true, actions),

            (FsmState::Established, FsmEvent::KeepaliveReceived)
            | (FsmState::Established, FsmEvent::UpdateReceived) => {
                self.hold_remaining = self.timers.hold_ticks;
            }
            (FsmState::Established, FsmEvent::KeepaliveTimerExpired) => {
                self.keepalive_remaining = self.timers.keepalive_ticks;
                actions.push(FsmAction::SendKeepalive);
            }
            (FsmState::Established, FsmEvent::TcpFailed)
            | (FsmState::Established, FsmEvent::NotificationReceived) => self.reset(false, actions),
            (FsmState::Established, FsmEvent::ManualStart)
            | (FsmState::Established, FsmEvent::ConnectRetryExpired) => {}
            (FsmState::Established, _) => self.reset(true, actions),
        }
    }

    /// Drops to Idle, stopping all timers. Emits `SendNotification`
    /// when we are tearing down an open exchange ourselves, and
    /// `SessionDown` when leaving Established.
    fn reset(&mut self, notify: bool, actions: &mut Vec<FsmAction>) {
        if notify {
            actions.push(FsmAction::SendNotification);
        }
        if matches!(self.state, FsmState::Established) {
            self.flaps += 1;
            actions.push(FsmAction::SessionDown);
        }
        self.state = FsmState::Idle;
        self.hold_remaining = 0;
        self.keepalive_remaining = 0;
        self.connect_retry_remaining = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn established(timers: SessionTimers) -> SessionFsm {
        let mut fsm = SessionFsm::new(timers);
        let mut actions = Vec::new();
        fsm.handle(FsmEvent::ManualStart, &mut actions);
        fsm.handle(FsmEvent::TcpConnected, &mut actions);
        fsm.handle(FsmEvent::OpenReceived, &mut actions);
        fsm.handle(FsmEvent::KeepaliveReceived, &mut actions);
        assert_eq!(fsm.state(), FsmState::Established);
        assert!(actions.contains(&FsmAction::SessionUp));
        fsm
    }

    fn timers() -> SessionTimers {
        SessionTimers {
            hold_ticks: 9,
            keepalive_ticks: 3,
            connect_retry_ticks: 5,
        }
    }

    #[test]
    fn happy_path_reaches_established() {
        let fsm = established(timers());
        assert_eq!(fsm.flaps(), 0);
    }

    #[test]
    fn hold_timer_expires_without_keepalives() {
        let mut fsm = established(timers());
        let mut actions = Vec::new();
        for _ in 0..9 {
            fsm.on_tick(&mut actions);
        }
        assert_eq!(fsm.state(), FsmState::Idle);
        assert!(actions.contains(&FsmAction::SessionDown));
        assert_eq!(fsm.flaps(), 1);
    }

    #[test]
    fn keepalives_refresh_the_hold_timer() {
        let mut fsm = established(timers());
        let mut actions = Vec::new();
        for tick in 0..40 {
            if tick % 4 == 0 {
                fsm.handle(FsmEvent::KeepaliveReceived, &mut actions);
            }
            fsm.on_tick(&mut actions);
            assert_eq!(fsm.state(), FsmState::Established, "tick {tick}");
        }
        // Our own keepalive timer fired along the way.
        assert!(actions.contains(&FsmAction::SendKeepalive));
    }

    #[test]
    fn connect_retry_fires_until_transport_comes_up() {
        let mut fsm = SessionFsm::new(timers());
        let mut actions = Vec::new();
        fsm.handle(FsmEvent::ManualStart, &mut actions);
        actions.clear();
        for _ in 0..11 {
            fsm.on_tick(&mut actions);
        }
        assert_eq!(fsm.state(), FsmState::Connect);
        assert_eq!(
            actions
                .iter()
                .filter(|a| matches!(a, FsmAction::StartConnect))
                .count(),
            2
        );
    }

    #[test]
    fn unexpected_update_in_open_sent_is_an_fsm_error() {
        let mut fsm = SessionFsm::new(timers());
        let mut actions = Vec::new();
        fsm.handle(FsmEvent::ManualStart, &mut actions);
        fsm.handle(FsmEvent::TcpConnected, &mut actions);
        actions.clear();
        fsm.handle(FsmEvent::UpdateReceived, &mut actions);
        assert_eq!(fsm.state(), FsmState::Idle);
        assert_eq!(actions, vec![FsmAction::SendNotification]);
    }

    #[test]
    fn zero_hold_time_disables_the_hold_timer() {
        let mut fsm = established(SessionTimers::from_secs(0, 0, 5, 1));
        let mut actions = Vec::new();
        for _ in 0..10_000 {
            fsm.on_tick(&mut actions);
        }
        assert_eq!(fsm.state(), FsmState::Established);
    }

    #[test]
    fn paper_default_timers() {
        let t = SessionTimers::paper_default(1000);
        assert_eq!(t.hold_ticks, 90_000);
        assert_eq!(t.keepalive_ticks, 30_000);
        assert_eq!(t.connect_retry_ticks, 120_000);
    }
}
