//! Daemon lifecycle: listener, session threads, snapshots, shutdown.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use parking_lot::Mutex;

use bgpbench_rib::RibStats;

use crate::core::Core;
use crate::session::run_session;
use crate::DaemonConfig;

/// A point-in-time view of the daemon's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonSnapshot {
    /// Established BGP sessions.
    pub sessions: usize,
    /// Routes selected into the Loc-RIB.
    pub loc_rib_len: usize,
    /// Routes installed in the shadow FIB.
    pub fib_len: usize,
    /// UPDATE messages processed.
    pub updates_received: u64,
    /// Prefix-level transactions processed.
    pub transactions: u64,
    /// Full RIB-engine counters.
    pub rib: RibStats,
}

/// A running BGP daemon. See the [crate documentation](crate) for the
/// role it plays in the benchmark.
#[derive(Debug)]
pub struct BgpDaemon {
    core: Arc<Mutex<Core>>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl BgpDaemon {
    /// Binds the listener and starts accepting sessions.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the configured address.
    pub fn start(config: DaemonConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(config.bind_addr)?;
        let local_addr = listener.local_addr()?;
        let core = Arc::new(Mutex::new(Core::new(config)));
        let shutdown = Arc::new(AtomicBool::new(false));

        let accept_core = Arc::clone(&core);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = thread::Builder::new()
            .name("bgpd-accept".into())
            .spawn(move || {
                accept_loop(listener, accept_core, accept_shutdown);
            })?;

        Ok(BgpDaemon {
            core,
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the daemon listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Per-peer session counters, ordered by session id.
    pub fn peer_snapshots(&self) -> Vec<crate::PeerSnapshot> {
        self.core.lock().peer_snapshots()
    }

    /// One [`crate::PeerHandle`] per session, ordered by session id.
    pub fn peer_handles(&self) -> Vec<crate::DaemonPeerHandle> {
        self.core
            .lock()
            .peer_ids()
            .into_iter()
            .map(|id| crate::DaemonPeerHandle::new(Arc::clone(&self.core), id))
            .collect()
    }

    /// A consistent snapshot of sessions, RIB, and FIB state.
    pub fn snapshot(&self) -> DaemonSnapshot {
        let core = self.core.lock();
        DaemonSnapshot {
            sessions: core.established_sessions(),
            loc_rib_len: core.loc_rib_len(),
            fib_len: core.fib_len(),
            updates_received: core.stats().updates_received,
            transactions: core.stats().transactions,
            rib: core.rib_stats(),
        }
    }

    /// Stops accepting, notifies sessions, and waits for the accept
    /// thread. Session threads exit on their next timer check.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for BgpDaemon {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, core: Arc<Mutex<Core>>, shutdown: Arc<AtomicBool>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, peer_addr)) => {
                if shutdown.load(Ordering::Relaxed) {
                    break;
                }
                let core = Arc::clone(&core);
                let session_shutdown = Arc::clone(&shutdown);
                let handle = thread::Builder::new()
                    .name(format!("bgpd-session-{peer_addr}"))
                    .spawn(move || run_session(stream, peer_addr, core, session_shutdown));
                match handle {
                    Ok(handle) => sessions.push(handle),
                    Err(_) => continue,
                }
            }
            Err(_) => {
                if shutdown.load(Ordering::Relaxed) {
                    break;
                }
            }
        }
    }
    for handle in sessions {
        let _ = handle.join();
    }
}
