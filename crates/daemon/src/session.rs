//! Per-session finite state machine (RFC 4271 §8, passive side).

use std::io::{self, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver};
use parking_lot::Mutex;

use bgpbench_rib::PeerId;
use bgpbench_wire::{
    ErrorCode, Message, NotificationMessage, OpenMessage, StreamDecoder, WireError,
};

use crate::core::Core;

/// Observable states of a daemon session.
///
/// The daemon is the passive side, so the FSM runs
/// `Active → OpenConfirm → Established` (Idle/Connect/OpenSent belong
/// to the initiating side, played by the live speakers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Connection accepted, waiting for the peer's OPEN.
    Active,
    /// OPEN exchanged, waiting for the peer's KEEPALIVE.
    OpenConfirm,
    /// Session up; UPDATE processing in progress.
    Established,
    /// Session terminated.
    Closed,
}

impl SessionState {
    /// The equivalent state in the full tick-driven FSM
    /// ([`crate::fsm::SessionFsm`]), for the unified
    /// [`crate::PeerHandle`] surface. The passive side's `Active`
    /// (transport up, awaiting OPEN) maps to `OpenSent` — the same
    /// point in the handshake seen from the initiating side — and
    /// `Closed` maps to `Idle`.
    pub fn fsm_state(self) -> crate::fsm::FsmState {
        match self {
            SessionState::Active => crate::fsm::FsmState::OpenSent,
            SessionState::OpenConfirm => crate::fsm::FsmState::OpenConfirm,
            SessionState::Established => crate::fsm::FsmState::Established,
            SessionState::Closed => crate::fsm::FsmState::Idle,
        }
    }
}

/// Runs one accepted connection to completion. Returns when the
/// session closes for any reason.
pub(crate) fn run_session(
    stream: TcpStream,
    peer_addr: SocketAddr,
    core: Arc<Mutex<Core>>,
    shutdown: Arc<AtomicBool>,
) {
    if let Err(err) = session_loop(stream, peer_addr, &core, &shutdown) {
        // Socket-level failures simply end the session; state cleanup
        // happened in session_loop's scope guards.
        let _ = err;
    }
}

fn session_loop(
    mut stream: TcpStream,
    peer_addr: SocketAddr,
    core: &Arc<Mutex<Core>>,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut decoder = StreamDecoder::new();
    let mut state = SessionState::Active;

    // --- Handshake: wait for OPEN, answer OPEN + KEEPALIVE, wait for
    // KEEPALIVE.
    let local_open = {
        let core = core.lock();
        let config = core.config();
        OpenMessage::new(config.local_asn, config.hold_time_secs, config.router_id)
            .with_capability(bgpbench_wire::Capability::RouteRefresh)
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut peer_open: Option<OpenMessage> = None;
    while state != SessionState::Established {
        if shutdown.load(Ordering::Relaxed) || Instant::now() > deadline {
            send_now(
                &mut stream,
                &Message::Notification(NotificationMessage::new(ErrorCode::Cease, 0)),
            )?;
            return Ok(());
        }
        match read_message(&mut stream, &mut decoder) {
            Ok(Some(Message::Open(open))) if state == SessionState::Active => {
                send_now(&mut stream, &Message::Open(local_open.clone()))?;
                send_now(&mut stream, &Message::Keepalive)?;
                peer_open = Some(open);
                state = SessionState::OpenConfirm;
            }
            Ok(Some(Message::Keepalive)) if state == SessionState::OpenConfirm => {
                state = SessionState::Established;
            }
            Ok(Some(Message::Notification(_))) => return Ok(()),
            Ok(Some(_)) => {
                // UPDATE before establishment, or OPEN in the wrong
                // state: FSM error.
                send_now(
                    &mut stream,
                    &Message::Notification(NotificationMessage::new(
                        ErrorCode::FiniteStateMachineError,
                        0,
                    )),
                )?;
                return Ok(());
            }
            Ok(None) => {}
            Err(err) if err.kind() == io::ErrorKind::InvalidData => {
                send_now(
                    &mut stream,
                    &Message::Notification(classify_wire_error(&err)),
                )?;
                return Ok(());
            }
            Err(err) => return Err(err),
        }
    }
    let peer_open = peer_open.expect("established implies OPEN received");
    let negotiated_hold = effective_hold(local_open.hold_time_secs(), peer_open.hold_time_secs());
    // Our keepalive interval: the configured value, never slower than
    // a third of the negotiated hold time.
    let keepalive = negotiated_hold.map(|hold| {
        let configured = Duration::from_secs(u64::from(
            core.lock().config().effective_keepalive_secs().max(1),
        ));
        configured.min(hold / 3)
    });

    // --- Writer thread: serializes everything the core or the timer
    // sends toward this peer.
    let (tx, rx): (_, Receiver<Vec<u8>>) = unbounded();
    let writer_stream = stream.try_clone()?;
    let writer = thread::spawn(move || writer_loop(writer_stream, rx));

    let peer_ip = match peer_addr.ip() {
        std::net::IpAddr::V4(ip) => ip,
        std::net::IpAddr::V6(_) => Ipv4Addr::UNSPECIFIED,
    };
    let peer_id: PeerId =
        core.lock()
            .register_peer(peer_open.asn(), peer_open.router_id(), peer_ip, tx.clone());

    // --- Established loop.
    let result = established_loop(
        &mut stream,
        &mut decoder,
        core,
        shutdown,
        peer_id,
        negotiated_hold,
        keepalive,
        &tx,
    );

    core.lock().unregister_peer(peer_id);
    drop(tx);
    let _ = writer.join();
    result
}

#[allow(clippy::too_many_arguments)]
fn established_loop(
    stream: &mut TcpStream,
    decoder: &mut StreamDecoder,
    core: &Arc<Mutex<Core>>,
    shutdown: &Arc<AtomicBool>,
    peer_id: PeerId,
    hold: Option<Duration>,
    keepalive: Option<Duration>,
    tx: &crossbeam::channel::Sender<Vec<u8>>,
) -> io::Result<()> {
    let mut last_received = Instant::now();
    let mut last_sent = Instant::now();
    loop {
        if shutdown.load(Ordering::Relaxed) {
            let note = NotificationMessage::new(ErrorCode::Cease, 0);
            queue(tx, &Message::Notification(note));
            return Ok(());
        }
        if let Some(hold) = hold {
            if last_received.elapsed() > hold {
                let note = NotificationMessage::new(ErrorCode::HoldTimerExpired, 0);
                queue(tx, &Message::Notification(note));
                return Ok(());
            }
            if last_sent.elapsed() > keepalive.unwrap_or(hold / 3) {
                queue(tx, &Message::Keepalive);
                last_sent = Instant::now();
            }
        }
        match read_message(stream, decoder) {
            Ok(Some(Message::Update(update))) => {
                last_received = Instant::now();
                core.lock().apply_update_from(peer_id, &update);
            }
            Ok(Some(Message::Keepalive)) => last_received = Instant::now(),
            Ok(Some(Message::RouteRefresh { .. })) => {
                last_received = Instant::now();
                core.lock().refresh_peer(peer_id);
            }
            Ok(Some(Message::Notification(_))) => return Ok(()),
            Ok(Some(Message::Open(_))) => {
                let note = NotificationMessage::new(ErrorCode::FiniteStateMachineError, 0);
                queue(tx, &Message::Notification(note));
                return Ok(());
            }
            Ok(None) => {}
            Err(err) if err.kind() == io::ErrorKind::InvalidData => {
                let note = NotificationMessage::new(ErrorCode::UpdateMessageError, 0);
                queue(tx, &Message::Notification(note));
                return Ok(());
            }
            Err(err) if err.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(err) => return Err(err),
        }
    }
}

fn writer_loop(mut stream: TcpStream, rx: Receiver<Vec<u8>>) {
    while let Ok(bytes) = rx.recv() {
        if stream.write_all(&bytes).is_err() {
            return;
        }
    }
}

fn queue(tx: &crossbeam::channel::Sender<Vec<u8>>, message: &Message) {
    if let Ok(bytes) = message.encode() {
        let _ = tx.send(bytes);
    }
}

fn send_now(stream: &mut TcpStream, message: &Message) -> io::Result<()> {
    let bytes = message
        .encode()
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))?;
    stream.write_all(&bytes)
}

fn read_message(
    stream: &mut TcpStream,
    decoder: &mut StreamDecoder,
) -> io::Result<Option<Message>> {
    if let Some(message) = decoder
        .next_message()
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))?
    {
        return Ok(Some(message));
    }
    let mut buf = [0u8; 16 * 1024];
    match stream.read(&mut buf) {
        Ok(0) => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "peer closed the session",
        )),
        Ok(n) => {
            decoder.extend(&buf[..n]);
            decoder
                .next_message()
                .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))
        }
        Err(err)
            if err.kind() == io::ErrorKind::WouldBlock || err.kind() == io::ErrorKind::TimedOut =>
        {
            Ok(None)
        }
        Err(err) => Err(err),
    }
}

/// Maps a wire-level decode failure onto the NOTIFICATION RFC 4271 §6
/// prescribes: OPEN errors get code 2 with the matching subcode,
/// anything else is a message-header error.
fn classify_wire_error(err: &io::Error) -> NotificationMessage {
    let Some(wire) = err.get_ref().and_then(|e| e.downcast_ref::<WireError>()) else {
        return NotificationMessage::new(ErrorCode::MessageHeaderError, 0);
    };
    match wire {
        // §6.2 subcodes: 1 unsupported version, 2 bad peer AS,
        // 3 bad BGP identifier, 6 unacceptable hold time.
        WireError::UnsupportedVersion(_) => {
            NotificationMessage::new(ErrorCode::OpenMessageError, 1)
        }
        WireError::MalformedOpen { field } => {
            let subcode = match *field {
                "zero AS number" => 2,
                "zero BGP identifier" => 3,
                "hold time below three seconds" => 6,
                _ => 0,
            };
            NotificationMessage::new(ErrorCode::OpenMessageError, subcode)
        }
        WireError::InconsistentLength { .. } | WireError::MalformedAttribute { .. } => {
            NotificationMessage::new(ErrorCode::UpdateMessageError, 0)
        }
        _ => NotificationMessage::new(ErrorCode::MessageHeaderError, 0),
    }
}

/// RFC 4271 §4.2: the session hold time is the minimum of both sides'
/// proposals; zero disables the timers.
fn effective_hold(ours: u16, theirs: u16) -> Option<Duration> {
    let hold = ours.min(theirs);
    (hold > 0).then(|| Duration::from_secs(u64::from(hold)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hold_negotiation_takes_the_minimum() {
        assert_eq!(effective_hold(90, 30), Some(Duration::from_secs(30)));
        assert_eq!(effective_hold(30, 90), Some(Duration::from_secs(30)));
        assert_eq!(effective_hold(0, 90), None);
        assert_eq!(effective_hold(90, 0), None);
    }

    #[test]
    fn session_states_are_distinct() {
        let states = [
            SessionState::Active,
            SessionState::OpenConfirm,
            SessionState::Established,
            SessionState::Closed,
        ];
        for (i, a) in states.iter().enumerate() {
            for (j, b) in states.iter().enumerate() {
                assert_eq!(a == b, i == j);
            }
        }
    }
}
