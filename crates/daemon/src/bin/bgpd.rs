//! `bgpd` — run the bgpbench BGP daemon standalone.
//!
//! ```text
//! bgpd [--listen ADDR:PORT] [--asn N] [--router-id A.B.C.D] [--hold SECS]
//!      [--keepalive SECS] [--connect-retry SECS] [--metrics ADDR:PORT]
//! ```
//!
//! Prints a state snapshot once per second; terminate with Ctrl-C.
//! `--metrics` additionally serves `GET /metrics` (Prometheus text
//! exposition) and `GET /trace` (Chrome trace-event JSON of the
//! flight-recorder ring) on the given address, and turns both
//! recorders on so there is something to scrape.

use std::net::Ipv4Addr;
use std::process::exit;
use std::time::Duration;

use bgpbench_daemon::{BgpDaemon, DaemonConfig};
use bgpbench_wire::{Asn, RouterId};

fn usage() -> ! {
    eprintln!(
        "usage: bgpd [--listen ADDR:PORT] [--asn N] [--router-id A.B.C.D] [--hold SECS] \
         [--keepalive SECS] [--connect-retry SECS] [--metrics ADDR:PORT]"
    );
    exit(2);
}

fn main() {
    let mut builder =
        DaemonConfig::builder().bind_addr("127.0.0.1:1179".parse().expect("static addr parses"));
    let mut metrics_addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        builder = match flag.as_str() {
            "--metrics" => {
                metrics_addr = Some(value);
                continue;
            }
            "--listen" => match value.parse() {
                Ok(addr) => builder.bind_addr(addr),
                Err(_) => usage(),
            },
            "--asn" => match value.parse::<u16>() {
                Ok(asn) => builder.local_asn(Asn(asn)),
                Err(_) => usage(),
            },
            "--router-id" => match value.parse::<Ipv4Addr>() {
                Ok(addr) => builder.router_id(RouterId::from(addr)),
                Err(_) => usage(),
            },
            "--hold" => match value.parse::<u16>() {
                Ok(secs) => builder.hold_time_secs(secs),
                Err(_) => usage(),
            },
            "--keepalive" => match value.parse::<u16>() {
                Ok(secs) => builder.keepalive_secs(secs),
                Err(_) => usage(),
            },
            "--connect-retry" => match value.parse::<u16>() {
                Ok(secs) => builder.connect_retry_secs(secs),
                Err(_) => usage(),
            },
            _ => usage(),
        };
    }
    let config = builder.build();

    let _metrics = metrics_addr.map(|addr| {
        bgpbench_telemetry::enable();
        bgpbench_telemetry::enable_trace(&bgpbench_telemetry::TraceConfig::default());
        match bgpbench_daemon::MetricsServer::bind(&addr) {
            Ok(server) => {
                println!("bgpd: metrics on http://{}/metrics", server.local_addr());
                server
            }
            Err(err) => {
                eprintln!("bgpd: cannot bind metrics endpoint {addr}: {err}");
                exit(1);
            }
        }
    });

    let daemon = match BgpDaemon::start(config.clone()) {
        Ok(daemon) => daemon,
        Err(err) => {
            eprintln!("bgpd: cannot bind {}: {err}", config.bind_addr);
            exit(1);
        }
    };
    println!(
        "bgpd: {} (router-id {}) listening on {}",
        config.local_asn,
        config.router_id,
        daemon.local_addr()
    );
    let mut ticks = 0u64;
    loop {
        std::thread::sleep(Duration::from_secs(1));
        ticks += 1;
        let s = daemon.snapshot();
        println!(
            "sessions={} loc_rib={} fib={} updates={} transactions={}",
            s.sessions, s.loc_rib_len, s.fib_len, s.updates_received, s.transactions
        );
        // Per-peer detail every five seconds.
        if ticks.is_multiple_of(5) {
            for peer in daemon.peer_snapshots() {
                println!(
                    "  peer {} @ {}: in {} updates / {} prefixes, out {} updates / {} prefixes",
                    peer.asn,
                    peer.address,
                    peer.updates_in,
                    peer.prefixes_in,
                    peer.updates_out,
                    peer.prefixes_out
                );
            }
        }
    }
}
