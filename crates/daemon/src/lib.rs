//! A real, runnable BGP daemon.
//!
//! Where `bgpbench-models` *simulates* the paper's router platforms,
//! this crate is an actual BGP speaker: a TCP listener, a per-session
//! finite state machine (RFC 4271 §8), hold/keepalive timers, a shared
//! [`bgpbench_rib::RibEngine`], a shadow [`bgpbench_fib::Fib`], and
//! Adj-RIB-Out propagation to every other established session.
//!
//! It serves two purposes in the reproduction:
//!
//! 1. it proves the protocol stack end-to-end (the live speakers talk
//!    to it over real sockets with real RFC 4271 bytes), and
//! 2. it is the *software router under test* for the benchmark's live
//!    mode — the same role the XORP hosts play in the paper, with the
//!    measuring host as the hardware platform.
//!
//! # Examples
//!
//! ```no_run
//! use bgpbench_daemon::{BgpDaemon, DaemonConfig};
//!
//! let daemon = BgpDaemon::start(DaemonConfig::default())?;
//! println!("listening on {}", daemon.local_addr());
//! // ... connect speakers, run a benchmark phase ...
//! let snapshot = daemon.snapshot();
//! println!("{} routes selected", snapshot.loc_rib_len);
//! daemon.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]

mod config;
mod core;
mod daemon;
pub mod fsm;
pub mod http;
mod peer;
mod session;

pub use config::{DaemonConfig, DaemonConfigBuilder};
pub use core::PeerSnapshot;
pub use daemon::{BgpDaemon, DaemonSnapshot};
pub use fsm::{FsmAction, FsmEvent, FsmState, SessionFsm, SessionTimers};
pub use http::MetricsServer;
pub use peer::{DaemonPeerHandle, PeerCounters, PeerHandle};
pub use session::SessionState;
