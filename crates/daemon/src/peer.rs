//! The unified peer surface.
//!
//! The daemon exposes sessions through [`crate::PeerSnapshot`]s, and
//! the simulated topology engine keeps its own per-peer FSM and model
//! counters. [`PeerHandle`] is the single trait both sides implement:
//! session state as an [`FsmState`], directional counters, and UPDATE
//! injection, so the harness and topology code observe and drive a
//! peer the same way whether it is a live TCP session or a simulated
//! speaker.

use std::sync::Arc;

use parking_lot::Mutex;

use bgpbench_rib::PeerId;
use bgpbench_wire::UpdateMessage;

use crate::core::Core;
use crate::fsm::FsmState;

/// Directional per-peer counters, in messages and prefix-level
/// transactions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerCounters {
    /// UPDATE messages received from the peer.
    pub updates_in: u64,
    /// Prefix-level transactions received from the peer.
    pub prefixes_in: u64,
    /// UPDATE messages sent to the peer.
    pub updates_out: u64,
    /// Prefix-level transactions sent to the peer.
    pub prefixes_out: u64,
}

/// One peer of a BGP system under test, live or simulated.
pub trait PeerHandle {
    /// The session's current FSM state.
    fn state(&self) -> FsmState;

    /// Directional traffic counters for the session.
    fn counters(&self) -> PeerCounters;

    /// Injects one UPDATE as if received from this peer. Returns
    /// `false` when the session cannot accept input (not Established).
    fn inject(&mut self, update: &UpdateMessage) -> bool;
}

/// [`PeerHandle`] over one of a live [`crate::BgpDaemon`]'s sessions.
///
/// Obtained from [`crate::BgpDaemon::peer_handles`]; holds the daemon
/// core, so it stays valid (reporting `Idle`) after the session dies.
#[derive(Debug, Clone)]
pub struct DaemonPeerHandle {
    core: Arc<Mutex<Core>>,
    peer: PeerId,
}

impl DaemonPeerHandle {
    pub(crate) fn new(core: Arc<Mutex<Core>>, peer: PeerId) -> Self {
        DaemonPeerHandle { core, peer }
    }

    /// The daemon-side session id of this peer.
    pub fn peer_id(&self) -> PeerId {
        self.peer
    }
}

impl PeerHandle for DaemonPeerHandle {
    fn state(&self) -> FsmState {
        // The socket session layer registers a peer only once the OPEN
        // and first KEEPALIVE are exchanged, so registered == Established.
        if self.core.lock().is_registered(self.peer) {
            FsmState::Established
        } else {
            FsmState::Idle
        }
    }

    fn counters(&self) -> PeerCounters {
        self.core
            .lock()
            .peer_snapshot(self.peer)
            .map(|s| PeerCounters {
                updates_in: s.updates_in,
                prefixes_in: s.prefixes_in,
                updates_out: s.updates_out,
                prefixes_out: s.prefixes_out,
            })
            .unwrap_or_default()
    }

    fn inject(&mut self, update: &UpdateMessage) -> bool {
        let mut core = self.core.lock();
        if !core.is_registered(self.peer) {
            return false;
        }
        core.apply_update_from(self.peer, update);
        true
    }
}
