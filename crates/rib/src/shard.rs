//! Sharded parallel RIB engine: one router's decision process spread
//! across cores.
//!
//! BGP's decision process is per-prefix independent — nothing in RFC
//! 4271's tie-break consults any *other* prefix — so the prefix-keyed
//! table partitions cleanly: [`ShardedRibEngine`] keeps N complete
//! [`RibEngine`]s, routes every prefix to the shard selected by a
//! stable hash of its bits, and fans each UPDATE's withdrawn/NLRI
//! lists out as per-shard sub-batches. Each shard owns its own
//! `PrefixEntry` map *and its own [`AttrStore`]* — interning stays a
//! single-threaded hash-set probe, and pointer-identity equality holds
//! within a shard, which is the only place the engine ever compares
//! stored attribute pointers.
//!
//! # Determinism
//!
//! Output is bit-identical regardless of shard count:
//!
//! * **Outcome order.** A shard's sub-batch preserves the message's
//!   relative prefix order, and each shard's outcomes come back as an
//!   order-preserving subsequence (withdrawals first, then
//!   announcements — exactly the order the single engine emits them).
//!   The merge step walks the *original* message order and pops the
//!   next outcome from whichever shard owns each prefix, which
//!   reconstructs the single-engine outcome stream exactly.
//! * **Per-prefix results.** A prefix's entire history lands on one
//!   shard (the hash depends only on the prefix), so the routes,
//!   damping penalties, and decision inputs that shard sees are
//!   precisely the single engine's state restricted to its prefixes.
//! * **Exports.** [`ShardedRibEngine::export_routes`] concatenates the
//!   per-shard exports and re-sorts by prefix — the same prefix order
//!   the single engine produces. Equal attribute sets from different
//!   shards are distinct `Arc`s, but `AdjRibOut`'s pointer-keyed
//!   grouping falls back to value equality, so the staged wire
//!   messages come out identical too.
//!
//! With one shard (the default) every call delegates wholesale to the
//! inner engine — the fan-out, merge, and cross-shard stats paths are
//! never touched, so `shards = 1` is the PR-2 engine, instruction for
//! instruction.

use std::net::Ipv4Addr;
use std::sync::Arc;

use bgpbench_telemetry::{self as telemetry, SpanId, TraceEventId};
use bgpbench_wire::{Asn, Prefix, RouterId, UpdateMessage};

use crate::attr_store::AttrStoreStats;
use crate::damping::DampingConfig;
use crate::decision::DecisionConfig;
use crate::engine::{
    record_apply_telemetry, record_train_telemetry, PrefixOutcome, RibEngine, RibStats,
};
use crate::fxhash::FxHashSet;
use crate::policy::RouteMap;
use crate::route::{PeerId, PeerInfo, Route, RouteAttributes};
use crate::RibError;

/// Upper bound on the shard count: shards are per-core workers, and
/// the train partitioner records shard indices as `u8`.
pub const MAX_RIB_SHARDS: usize = 256;

/// Selects the shard owning `prefix`.
///
/// The key must be *stable* — identical across runs, platforms, and
/// engine instances — because shard assignment decides which
/// `AttrStore` interns a route and therefore the exact allocation
/// pattern a scenario replays. A SplitMix64 finalizer over the
/// prefix's value bits gives a deterministic, well-mixed key without
/// consulting any per-process hasher state.
#[inline]
fn shard_of(prefix: &Prefix, shards: usize) -> usize {
    let mut x = (u64::from(prefix.network_bits()) << 8) | u64::from(prefix.len());
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// A complete BGP routing-table engine whose prefix table is
/// partitioned across N independent [`RibEngine`] shards.
///
/// Mirrors the [`RibEngine`] API (the simulator models hold one of
/// these); with the default single shard it *is* that engine plus one
/// level of delegation. [`ShardedRibEngine::set_shards`] repartitions
/// an empty engine; [`ShardedRibEngine::apply_update_train`] is the
/// parallel batch entry point that actually uses the cores.
#[derive(Debug)]
pub struct ShardedRibEngine {
    shards: Vec<RibEngine>,
    /// UPDATE messages fanned out across shards. Sub-batches must not
    /// bump the per-shard `updates` counters (one message is one
    /// update no matter how many shards its prefixes span), so the
    /// fan-out paths count messages here and [`ShardedRibEngine::stats`]
    /// folds the two sources together.
    updates: u64,
    // The shard template: enough configuration to rebuild the shard
    // vector when the partition count changes on an empty engine.
    local_asn: Asn,
    local_id: RouterId,
    config: DecisionConfig,
    import_policy: RouteMap,
    export_policy: RouteMap,
    damping: Option<DampingConfig>,
    peers: Vec<PeerInfo>,
}

impl ShardedRibEngine {
    /// Creates a single-shard engine for a speaker with the given AS
    /// and identifier — behaviorally identical to
    /// [`RibEngine::new`].
    pub fn new(local_asn: Asn, local_id: RouterId) -> Self {
        ShardedRibEngine {
            shards: vec![RibEngine::new(local_asn, local_id)],
            updates: 0,
            local_asn,
            local_id,
            config: DecisionConfig::default(),
            import_policy: RouteMap::permit_all(),
            export_policy: RouteMap::permit_all(),
            damping: None,
            peers: Vec::new(),
        }
    }

    /// Repartitions the engine into `shards` shards, rebuilding each
    /// from the configured template (decision config, policies,
    /// damping config, registered peers).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds [`MAX_RIB_SHARDS`], or if
    /// the engine already holds routes — repartitioning a live table
    /// would have to rehash every entry *and* re-intern every
    /// attribute set, which no caller needs: shard count is a
    /// configuration-time knob, set before the first UPDATE.
    pub fn set_shards(&mut self, shards: usize) {
        assert!(
            (1..=MAX_RIB_SHARDS).contains(&shards),
            "shard count must be in 1..={MAX_RIB_SHARDS}"
        );
        assert!(
            self.loc_rib_is_empty(),
            "shard count can only change while the RIB is empty"
        );
        if shards == self.shards.len() {
            return;
        }
        self.shards = (0..shards).map(|_| self.blank_shard()).collect();
    }

    fn blank_shard(&self) -> RibEngine {
        let mut engine = RibEngine::new(self.local_asn, self.local_id);
        engine.set_decision_config(self.config);
        engine.set_import_policy(self.import_policy.clone());
        engine.set_export_policy(self.export_policy.clone());
        if let Some(config) = self.damping {
            engine.enable_damping(config);
        }
        for info in &self.peers {
            engine.add_peer(*info);
        }
        engine
    }

    /// The current shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard engines, in shard order (read-only; primarily for
    /// tests and diagnostics).
    pub fn shards(&self) -> &[RibEngine] {
        &self.shards
    }

    /// The shard index that owns `prefix` under the current partition.
    pub fn shard_for(&self, prefix: &Prefix) -> usize {
        shard_of(prefix, self.shards.len())
    }

    fn knows_peer(&self, peer: PeerId) -> bool {
        self.peers.iter().any(|info| info.id() == peer)
    }

    fn loc_rib_is_empty(&self) -> bool {
        self.shards.iter().all(|shard| shard.loc_rib().is_empty())
    }

    /// Enables route-flap damping on every shard (see
    /// [`RibEngine::enable_damping`]). Damping state is per
    /// (peer, prefix) and therefore partitions with the prefixes.
    pub fn enable_damping(&mut self, config: DampingConfig) {
        self.damping = Some(config);
        for shard in &mut self.shards {
            shard.enable_damping(config);
        }
    }

    /// Disables route-flap damping, forgetting all penalties.
    pub fn disable_damping(&mut self) {
        self.damping = None;
        for shard in &mut self.shards {
            shard.disable_damping();
        }
    }

    /// Whether damping is enabled.
    pub fn damping_enabled(&self) -> bool {
        self.damping.is_some()
    }

    /// Replaces the decision configuration on every shard.
    pub fn set_decision_config(&mut self, config: DecisionConfig) {
        self.config = config;
        for shard in &mut self.shards {
            shard.set_decision_config(config);
        }
    }

    /// Replaces the import route-map on every shard; policy evaluation
    /// runs *inside* the shard, on the shard's own interner, so policy
    /// scenarios scale with the shard count too.
    pub fn set_import_policy(&mut self, policy: RouteMap) {
        for shard in &mut self.shards {
            shard.set_import_policy(policy.clone());
        }
        self.import_policy = policy;
    }

    /// The import route-map currently in force.
    pub fn import_policy(&self) -> &RouteMap {
        &self.import_policy
    }

    /// Replaces the export route-map on every shard.
    pub fn set_export_policy(&mut self, policy: RouteMap) {
        for shard in &mut self.shards {
            shard.set_export_policy(policy.clone());
        }
        self.export_policy = policy;
    }

    /// The export route-map currently in force.
    pub fn export_policy(&self) -> &RouteMap {
        &self.export_policy
    }

    /// The local AS number.
    pub fn local_asn(&self) -> Asn {
        self.local_asn
    }

    /// The local BGP identifier.
    pub fn local_id(&self) -> RouterId {
        self.local_id
    }

    /// Registers a neighbor on every shard and returns its id.
    ///
    /// # Panics
    ///
    /// As for [`RibEngine::add_peer`]: panics on a duplicate id.
    pub fn add_peer(&mut self, info: PeerInfo) -> PeerId {
        self.peers.push(info);
        let mut id = info.id();
        for shard in &mut self.shards {
            id = shard.add_peer(info);
        }
        id
    }

    /// Removes a neighbor and withdraws everything learned from it.
    /// Outcomes are reported in shard order (see
    /// [`ShardedRibEngine::purge_peer`] for why that is sufficient).
    ///
    /// # Errors
    ///
    /// Returns [`RibError::UnknownPeer`] for an unregistered id.
    pub fn remove_peer(&mut self, peer: PeerId) -> Result<Vec<PrefixOutcome>, RibError> {
        let outcomes = self.purge_peer(peer)?;
        self.peers.retain(|info| info.id() != peer);
        for shard in &mut self.shards {
            let _ = shard.remove_peer(peer);
        }
        Ok(outcomes)
    }

    /// Withdraws everything learned from `peer` while keeping it
    /// registered (session flap). Outcomes concatenate in shard order;
    /// each prefix appears at most once, so consumers that apply the
    /// FIB directives or count transactions see the same result as the
    /// single engine, whose own iteration order over the table is
    /// likewise unspecified.
    ///
    /// # Errors
    ///
    /// Returns [`RibError::UnknownPeer`] for an unregistered id.
    pub fn purge_peer(&mut self, peer: PeerId) -> Result<Vec<PrefixOutcome>, RibError> {
        if self.shards.len() == 1 {
            return self.shards[0].purge_peer(peer);
        }
        if !self.knows_peer(peer) {
            return Err(RibError::UnknownPeer(peer.0));
        }
        let mut outcomes = Vec::new();
        for shard in &mut self.shards {
            outcomes.extend(shard.purge_peer(peer)?);
        }
        Ok(outcomes)
    }

    /// The registered peers, in registration order.
    pub fn peers(&self) -> impl Iterator<Item = &PeerInfo> {
        self.peers.iter()
    }

    /// A view of a peer's Adj-RIB-In across all shards, or `None` for
    /// an unknown peer.
    pub fn adj_rib_in(&self, peer: PeerId) -> Option<ShardedAdjRibIn<'_>> {
        self.knows_peer(peer).then_some(ShardedAdjRibIn {
            shards: &self.shards,
            peer,
        })
    }

    /// A view of the Loc-RIB across all shards.
    pub fn loc_rib(&self) -> ShardedLocRib<'_> {
        ShardedLocRib {
            shards: &self.shards,
        }
    }

    /// Accumulated statistics merged across shards. Counters sum; the
    /// point-in-time table sizes dedup by *value* across the per-shard
    /// stores, which reproduces the single engine's numbers exactly: a
    /// store holds precisely the attribute values its shard's routes
    /// reference, so the union over shards is the set of values the
    /// whole table references — the single store's contents.
    pub fn stats(&self) -> RibStats {
        if self.shards.len() == 1 {
            let mut stats = self.shards[0].stats();
            stats.updates += self.updates;
            return stats;
        }
        let mut merged = RibStats {
            updates: self.updates,
            ..RibStats::default()
        };
        for shard in &self.shards {
            let stats = shard.stats();
            merged.updates += stats.updates;
            merged.announcements += stats.announcements;
            merged.withdrawals += stats.withdrawals;
            merged.best_changed += stats.best_changed;
            merged.fib_installs += stats.fib_installs;
            merged.fib_removes += stats.fib_removes;
            merged.policy_rejected += stats.policy_rejected;
            merged.loop_rejected += stats.loop_rejected;
            merged.dampened += stats.dampened;
        }
        merged.attr_store_entries = self.attr_store_len() as u64;
        let mut groups: FxHashSet<&RouteAttributes> = FxHashSet::default();
        for shard in &self.shards {
            for attrs in shard.distinct_best_attrs() {
                groups.insert(attrs);
            }
        }
        merged.adj_out_groups = groups.len() as u64;
        merged
    }

    /// Number of distinct attribute *values* interned across all
    /// shards (equals [`crate::AttrStore::len`] at one shard).
    pub fn attr_store_len(&self) -> usize {
        if self.shards.len() == 1 {
            return self.shards[0].attr_store().len();
        }
        let mut values: FxHashSet<&RouteAttributes> = FxHashSet::default();
        for shard in &self.shards {
            for arc in shard.attr_store().iter() {
                values.insert(arc);
            }
        }
        values.len()
    }

    /// Summed interner hit/miss/release counters across shards.
    pub fn attr_store_stats(&self) -> AttrStoreStats {
        let mut merged = AttrStoreStats::default();
        for shard in &self.shards {
            let stats = shard.attr_store().stats();
            merged.hits += stats.hits;
            merged.misses += stats.misses;
            merged.released += stats.released;
        }
        merged
    }

    /// Pre-sizes every shard's routing table for about `prefixes`
    /// routes total (split evenly — the shard hash distributes
    /// uniformly).
    pub fn reserve(&mut self, prefixes: usize) {
        let per_shard = prefixes.div_ceil(self.shards.len());
        for shard in &mut self.shards {
            shard.reserve(per_shard);
        }
    }

    /// Processes one UPDATE from `peer` (see
    /// [`RibEngine::apply_update`]). Outcomes come back in message
    /// order regardless of shard count.
    ///
    /// # Errors
    ///
    /// As for [`RibEngine::apply_update`].
    pub fn apply_update(
        &mut self,
        peer: PeerId,
        update: &UpdateMessage,
    ) -> Result<Vec<PrefixOutcome>, RibError> {
        self.apply_update_at(peer, update, 0.0)
    }

    /// [`ShardedRibEngine::apply_update`] with an explicit clock
    /// (seconds) against which route-flap damping penalties decay.
    ///
    /// # Errors
    ///
    /// As for [`RibEngine::apply_update`].
    pub fn apply_update_at(
        &mut self,
        peer: PeerId,
        update: &UpdateMessage,
        now_secs: f64,
    ) -> Result<Vec<PrefixOutcome>, RibError> {
        if self.shards.len() == 1 {
            // Wholesale delegation: telemetry, error paths, and stats
            // all come from the single engine unmodified. The flight
            // recorder still gets a shard-0 busy span so single-shard
            // runs produce a RIB shard track.
            let _trace = telemetry::trace_span(
                TraceEventId::ShardApply,
                0,
                update.transaction_count() as u64,
            );
            return self.shards[0].apply_update_at(peer, update, now_secs);
        }
        if telemetry::disabled() {
            return self.fan_out_update(peer, update, now_secs);
        }
        let _span = telemetry::span(SpanId::RibApplyUpdate);
        let start = std::time::Instant::now();
        let attrs_before = self.attr_store_stats();
        let result = self.fan_out_update(peer, update, now_secs);
        record_apply_telemetry(
            peer,
            update,
            start.elapsed().as_nanos() as u64,
            attrs_before,
            self.attr_store_stats(),
            self.attr_store_len() as u64,
            self.loc_rib().len() as u64,
            result.as_deref(),
        );
        result
    }

    /// The multi-shard per-update path: partition, apply per shard on
    /// the calling thread, merge back into message order. One UPDATE
    /// is far too little work to amortize a thread hand-off — batch
    /// parallelism lives in [`ShardedRibEngine::apply_update_train`].
    fn fan_out_update(
        &mut self,
        peer: PeerId,
        update: &UpdateMessage,
        now_secs: f64,
    ) -> Result<Vec<PrefixOutcome>, RibError> {
        if !self.knows_peer(peer) {
            return Err(RibError::UnknownPeer(peer.0));
        }
        self.updates += 1;
        let shards = self.shards.len();
        let mut withdrawn: Vec<Vec<Prefix>> = vec![Vec::new(); shards];
        for prefix in update.withdrawn() {
            withdrawn[shard_of(prefix, shards)].push(*prefix);
        }
        let mut per_shard: Vec<Vec<PrefixOutcome>> = vec![Vec::new(); shards];
        for (index, prefixes) in withdrawn.iter().enumerate() {
            if !prefixes.is_empty() {
                let _busy = telemetry::trace_span(
                    TraceEventId::ShardApply,
                    index as u64,
                    prefixes.len() as u64,
                );
                self.shards[index].apply_withdrawals(
                    peer,
                    prefixes,
                    now_secs,
                    &mut per_shard[index],
                );
            }
        }
        if update.nlri().is_empty() {
            return Ok(merge_in_message_order(update, shards, per_shard));
        }
        // Decoded once here; each owning shard clones the set and
        // interns it in its own store. The `?` sits *after* the
        // withdrawals above, matching the single engine: a malformed
        // attribute block still applies the message's withdrawals.
        let attrs = RouteAttributes::from_wire(update.attributes())?;
        let mut nlri: Vec<Vec<Prefix>> = vec![Vec::new(); shards];
        for prefix in update.nlri() {
            nlri[shard_of(prefix, shards)].push(*prefix);
        }
        for (index, prefixes) in nlri.iter().enumerate() {
            if !prefixes.is_empty() {
                let _busy = telemetry::trace_span(
                    TraceEventId::ShardApply,
                    index as u64,
                    prefixes.len() as u64,
                );
                self.shards[index].apply_announcements(
                    peer,
                    prefixes,
                    attrs.clone(),
                    now_secs,
                    &mut per_shard[index],
                );
            }
        }
        Ok(merge_in_message_order(update, shards, per_shard))
    }

    /// Applies a train of UPDATEs from `peer`, processing shards in
    /// parallel on scoped threads, and returns per-update outcome
    /// vectors — element `i` is exactly what
    /// [`ShardedRibEngine::apply_update`] would have returned for
    /// `updates[i]`.
    ///
    /// Every message's attributes are decoded once up front; each
    /// shard then runs its sub-batches in train order, so per-shard
    /// state evolves exactly as under sequential application. The
    /// calling thread works shard 0 while `shards - 1` scoped workers
    /// take the rest; one fork/join per *train*, not per update, is
    /// what lets 4 shards pay off even at sub-microsecond per-update
    /// cost.
    ///
    /// Runs at clock zero, like [`ShardedRibEngine::apply_update`] —
    /// damping users should feed timestamped updates one at a time.
    ///
    /// # Errors
    ///
    /// As for [`RibEngine::apply_update`]; on a malformed message the
    /// train falls back to sequential application so updates before
    /// the failing one are applied and the error surfaces at the same
    /// point.
    pub fn apply_update_train(
        &mut self,
        peer: PeerId,
        updates: &[UpdateMessage],
    ) -> Result<Vec<Vec<PrefixOutcome>>, RibError> {
        telemetry::trace_instant(
            TraceEventId::TrainBegin,
            updates.len() as u64,
            self.shards.len() as u64,
        );
        let mut decoded: Vec<Option<RouteAttributes>> = Vec::with_capacity(updates.len());
        let mut all_ok = true;
        for update in updates {
            if update.nlri().is_empty() {
                decoded.push(None);
                continue;
            }
            match RouteAttributes::from_wire(update.attributes()) {
                Ok(attrs) => decoded.push(Some(attrs)),
                Err(_) => {
                    all_ok = false;
                    break;
                }
            }
        }
        if !all_ok || self.shards.len() == 1 || updates.len() <= 1 {
            let mut outcomes = Vec::with_capacity(updates.len());
            for update in updates {
                outcomes.push(self.apply_update(peer, update)?);
            }
            return Ok(outcomes);
        }
        if !self.knows_peer(peer) {
            return Err(RibError::UnknownPeer(peer.0));
        }
        self.updates += updates.len() as u64;
        let shards = self.shards.len();

        // Partition every message once, remembering each prefix's
        // shard so the merge below is a queue pop, not a rehash.
        let mut work: Vec<Vec<(Vec<Prefix>, Vec<Prefix>)>> =
            vec![Vec::with_capacity(updates.len()); shards];
        let mut plans: Vec<Vec<u8>> = Vec::with_capacity(updates.len());
        for (index, update) in updates.iter().enumerate() {
            for batches in &mut work {
                batches.push((Vec::new(), Vec::new()));
            }
            let mut plan = Vec::with_capacity(update.transaction_count());
            for prefix in update.withdrawn() {
                let shard = shard_of(prefix, shards);
                plan.push(shard as u8);
                work[shard][index].0.push(*prefix);
            }
            for prefix in update.nlri() {
                let shard = shard_of(prefix, shards);
                plan.push(shard as u8);
                work[shard][index].1.push(*prefix);
            }
            plans.push(plan);
        }

        // One race-detector cell per shard's outcome slot: the worker
        // writes it, the merge reads it, and the scoped join is the
        // only thing ordering the two.
        #[cfg(feature = "check-sync")]
        let train_cells: Vec<u64> = (0..shards)
            .map(|_| parking_lot::sync_check::next_cell_id())
            .collect();

        // Aggregate-telemetry pre-state; the fallback path above gets
        // this per update from `apply_update` instead.
        let train_start = if telemetry::enabled() {
            Some((std::time::Instant::now(), self.attr_store_stats()))
        } else {
            None
        };

        let decoded = &decoded;
        #[cfg(feature = "check-sync")]
        let train_cells_ref = &train_cells;
        let run_shard = |shard_index: usize,
                         engine: &mut RibEngine,
                         batches: &[(Vec<Prefix>, Vec<Prefix>)]|
         -> Vec<Vec<PrefixOutcome>> {
            // Recorded from whichever thread runs the shard, so the
            // exported timeline shows per-shard busy intervals (and
            // their imbalance) directly.
            let _busy = if telemetry::trace_enabled() {
                let prefixes: usize = batches.iter().map(|(w, n)| w.len() + n.len()).sum();
                telemetry::trace_span(TraceEventId::ShardBusy, shard_index as u64, prefixes as u64)
            } else {
                None
            };
            let mut per_update = Vec::with_capacity(batches.len());
            for (index, (withdrawn, nlri)) in batches.iter().enumerate() {
                let mut outcomes = Vec::with_capacity(withdrawn.len() + nlri.len());
                if !withdrawn.is_empty() {
                    engine.apply_withdrawals(peer, withdrawn, 0.0, &mut outcomes);
                }
                if !nlri.is_empty() {
                    if let Some(attrs) = &decoded[index] {
                        engine.apply_announcements(peer, nlri, attrs.clone(), 0.0, &mut outcomes);
                    }
                }
                per_update.push(outcomes);
            }
            #[cfg(feature = "check-sync")]
            parking_lot::sync_check::record_cell_write(
                train_cells_ref[shard_index],
                "rib::shard::train_worker",
            );
            per_update
        };

        // On a single-CPU host scoped workers only timeshare the one
        // core, so the fork/join is pure loss; run the same per-shard
        // closure on the caller thread instead. Output is bit-identical
        // either way — shards never observe each other.
        let parallel = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            > 1;
        let shard_results: Vec<Vec<Vec<PrefixOutcome>>> = if !parallel {
            self.shards
                .iter_mut()
                .zip(&work)
                .enumerate()
                .map(|(index, (engine, batches))| run_shard(index, engine, batches))
                .collect()
        } else {
            let (first_shard, rest_shards) = match self.shards.split_first_mut() {
                Some(split) => split,
                None => return Ok(Vec::new()), // unreachable: shards >= 1
            };
            let (first_work, rest_work) = match work.split_first() {
                Some(split) => split,
                None => return Ok(Vec::new()),
            };
            let run_shard = &run_shard;
            std::thread::scope(|scope| {
                #[cfg(feature = "check-sync")]
                let mut spawn_tokens: Vec<u64> = Vec::with_capacity(shards - 1);
                let handles: Vec<_> = rest_shards
                    .iter_mut()
                    .zip(rest_work)
                    .enumerate()
                    .map(|(offset, (engine, batches))| {
                        #[cfg(feature = "check-sync")]
                        let token = {
                            let token = parking_lot::sync_check::next_task_token();
                            parking_lot::sync_check::on_task_spawn(token);
                            spawn_tokens.push(token);
                            token
                        };
                        scope.spawn(move || {
                            #[cfg(feature = "check-sync")]
                            parking_lot::sync_check::on_task_start(token);
                            let result = run_shard(offset + 1, engine, batches);
                            #[cfg(feature = "check-sync")]
                            parking_lot::sync_check::on_task_end(token);
                            result
                        })
                    })
                    .collect();
                let mut results = Vec::with_capacity(shards);
                results.push(run_shard(0, first_shard, first_work));
                for handle in handles {
                    match handle.join() {
                        Ok(result) => results.push(result),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                #[cfg(feature = "check-sync")]
                for token in spawn_tokens {
                    parking_lot::sync_check::on_task_join(token);
                }
                results
            })
        };

        // Merge: per update, walk the recorded shard sequence (message
        // order) and pop that shard's next outcome.
        #[cfg(feature = "check-sync")]
        for cell in &train_cells {
            parking_lot::sync_check::record_cell_read(*cell, "rib::shard::train_merge");
        }
        let mut queues: Vec<Vec<std::vec::IntoIter<PrefixOutcome>>> = shard_results
            .into_iter()
            .map(|per_update| per_update.into_iter().map(Vec::into_iter).collect())
            .collect();
        let mut merged = Vec::with_capacity(updates.len());
        {
            let _merge_span = telemetry::trace_span(
                TraceEventId::TrainMerge,
                updates.len() as u64,
                shards as u64,
            );
            let mut queued: u64 = if telemetry::trace_enabled() {
                plans.iter().map(|p| p.len() as u64).sum()
            } else {
                0
            };
            for (index, plan) in plans.iter().enumerate() {
                let mut outcomes = Vec::with_capacity(plan.len());
                for &shard in plan {
                    if let Some(outcome) = queues[shard as usize][index].next() {
                        outcomes.push(outcome);
                    }
                }
                debug_assert_eq!(outcomes.len(), plan.len());
                merged.push(outcomes);
                if telemetry::trace_enabled() {
                    queued = queued.saturating_sub(plan.len() as u64);
                    telemetry::trace_counter(TraceEventId::MergeQueueDepth, queued);
                }
            }
        }
        if let Some((start, attrs_before)) = train_start {
            record_train_telemetry(
                peer,
                updates,
                start.elapsed().as_nanos() as u64,
                attrs_before,
                self.attr_store_stats(),
                self.attr_store_len() as u64,
                self.loc_rib().len() as u64,
                &merged,
            );
        }
        Ok(merged)
    }

    /// Computes the routes to advertise to `peer` (see
    /// [`RibEngine::export_routes`]): per-shard exports concatenated
    /// and re-sorted into the single engine's global prefix order.
    pub fn export_routes(
        &self,
        peer: PeerId,
        local_address: Ipv4Addr,
    ) -> Vec<(Prefix, Arc<RouteAttributes>)> {
        if self.shards.len() == 1 {
            return self.shards[0].export_routes(peer, local_address);
        }
        let mut routes = Vec::new();
        for shard in &self.shards {
            routes.extend(shard.export_routes(peer, local_address));
        }
        routes.sort_by_key(|(prefix, _)| *prefix);
        routes
    }
}

/// Merges per-shard outcome subsequences back into the original
/// message order (withdrawn prefixes, then NLRI).
fn merge_in_message_order(
    update: &UpdateMessage,
    shards: usize,
    per_shard: Vec<Vec<PrefixOutcome>>,
) -> Vec<PrefixOutcome> {
    let mut queues: Vec<std::vec::IntoIter<PrefixOutcome>> =
        per_shard.into_iter().map(Vec::into_iter).collect();
    let mut merged = Vec::with_capacity(update.transaction_count());
    for prefix in update.withdrawn().iter().chain(update.nlri()) {
        if let Some(outcome) = queues[shard_of(prefix, shards)].next() {
            merged.push(outcome);
        }
    }
    debug_assert_eq!(merged.len(), update.transaction_count());
    merged
}

/// A read view of one peer's Adj-RIB-In across every shard.
#[derive(Debug, Clone, Copy)]
pub struct ShardedAdjRibIn<'a> {
    shards: &'a [RibEngine],
    peer: PeerId,
}

impl<'a> ShardedAdjRibIn<'a> {
    /// Number of routes learned from the peer.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .filter_map(|shard| shard.adj_rib_in(self.peer))
            .map(|view| view.len())
            .sum()
    }

    /// Whether the peer contributed no routes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The peer's route for `prefix`, if any.
    pub fn get(&self, prefix: &Prefix) -> Option<&'a Arc<RouteAttributes>> {
        self.shards[shard_of(prefix, self.shards.len())]
            .adj_rib_in(self.peer)
            .and_then(|view| view.get(prefix))
    }

    /// Iterates the peer's routes, shard by shard (order within a
    /// shard is unspecified, as for the single engine).
    pub fn iter(&self) -> impl Iterator<Item = (&'a Prefix, &'a Arc<RouteAttributes>)> + 'a {
        let peer = self.peer;
        self.shards
            .iter()
            .filter_map(move |shard| shard.adj_rib_in(peer))
            .flat_map(|view| view.iter())
    }
}

/// A read view of the Loc-RIB across every shard.
#[derive(Debug, Clone, Copy)]
pub struct ShardedLocRib<'a> {
    shards: &'a [RibEngine],
}

impl<'a> ShardedLocRib<'a> {
    /// Number of prefixes with a selected best route.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.loc_rib().len()).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|shard| shard.loc_rib().is_empty())
    }

    /// The selected best route for `prefix`, if any.
    pub fn get(&self, prefix: &Prefix) -> Option<Route> {
        self.shards[shard_of(prefix, self.shards.len())]
            .loc_rib()
            .get(prefix)
    }

    /// Iterates the selected best routes, shard by shard (order within
    /// a shard is unspecified, as for the single engine).
    pub fn iter(&self) -> impl Iterator<Item = Route> + 'a {
        self.shards.iter().flat_map(|shard| shard.loc_rib().iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RouteChange;
    use bgpbench_wire::{AsPath, Origin};

    fn prefix(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// The shard key is a pure function of the prefix's value bits —
    /// these pins document the exact assignment so an accidental
    /// change to the hash (which would silently re-partition every
    /// scenario's allocation pattern) fails loudly.
    #[test]
    fn shard_key_is_stable() {
        let cases = [
            ("10.0.0.0/8", [1, 1, 3, 7]),
            ("192.168.0.0/16", [0, 0, 2, 2]),
            ("192.0.2.0/24", [1, 0, 1, 5]),
            ("0.0.0.0/0", [0, 0, 0, 0]),
        ];
        for (text, expected) in cases {
            for (counts, want) in [2usize, 3, 4, 8].iter().zip(expected) {
                assert_eq!(
                    shard_of(&prefix(text), *counts),
                    want,
                    "{text} at {counts} shards"
                );
            }
        }
    }

    fn two_peer_engine(shards: usize) -> ShardedRibEngine {
        let mut engine = ShardedRibEngine::new(Asn(65000), RouterId(1));
        engine.add_peer(PeerInfo::new(
            PeerId(1),
            Asn(65001),
            RouterId(2),
            Ipv4Addr::new(10, 0, 0, 2),
        ));
        engine.add_peer(PeerInfo::new(
            PeerId(2),
            Asn(65002),
            RouterId(3),
            Ipv4Addr::new(10, 0, 0, 3),
        ));
        engine.set_shards(shards);
        engine
    }

    fn announce(prefixes: &[&str], asn: u16) -> UpdateMessage {
        let attrs = RouteAttributes::new(
            Origin::Igp,
            AsPath::from_sequence([Asn(asn)]),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let mut builder = UpdateMessage::builder();
        for attr in attrs.to_wire() {
            builder = builder.attribute(attr);
        }
        builder
            .announce_all(prefixes.iter().map(|p| prefix(p)))
            .build()
    }

    #[test]
    fn fan_out_merge_restores_message_order() {
        let prefixes = ["10.0.0.0/8", "192.168.0.0/16", "192.0.2.0/24", "0.0.0.0/0"];
        let update = announce(&prefixes, 65001);
        let mut single = two_peer_engine(1);
        let mut sharded = two_peer_engine(4);
        let want = single.apply_update(PeerId(1), &update).unwrap();
        let got = sharded.apply_update(PeerId(1), &update).unwrap();
        assert_eq!(got, want);
        assert_eq!(
            got.iter().map(|o| o.prefix).collect::<Vec<_>>(),
            prefixes.iter().map(|p| prefix(p)).collect::<Vec<_>>(),
            "outcomes must come back in message order"
        );
        assert!(got.iter().all(|o| o.change == RouteChange::Installed));
        assert_eq!(single.stats(), sharded.stats());
        assert_eq!(single.attr_store_len(), sharded.attr_store_len());
    }

    #[test]
    fn set_shards_repartitions_an_empty_engine() {
        let mut engine = two_peer_engine(1);
        engine.set_shards(8);
        assert_eq!(engine.shard_count(), 8);
        engine.set_shards(2);
        let update = announce(&["10.0.0.0/8"], 65001);
        assert_eq!(
            engine.apply_update(PeerId(1), &update).unwrap().len(),
            1,
            "peers must survive repartitioning"
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn set_shards_refuses_a_loaded_engine() {
        let mut engine = two_peer_engine(1);
        engine
            .apply_update(PeerId(1), &announce(&["10.0.0.0/8"], 65001))
            .unwrap();
        engine.set_shards(4);
    }

    #[test]
    fn exports_are_bit_identical_across_shard_counts() {
        let prefixes = ["10.0.0.0/8", "192.168.0.0/16", "192.0.2.0/24"];
        let update = announce(&prefixes, 65001);
        let mut single = two_peer_engine(1);
        let mut sharded = two_peer_engine(4);
        single.apply_update(PeerId(1), &update).unwrap();
        sharded.apply_update(PeerId(1), &update).unwrap();
        let local = Ipv4Addr::new(10, 0, 0, 1);
        let a = single.export_routes(PeerId(2), local);
        let b = sharded.export_routes(PeerId(2), local);
        assert_eq!(a.len(), b.len());
        for ((ap, aa), (bp, ba)) in a.iter().zip(&b) {
            assert_eq!(ap, bp);
            assert_eq!(aa.as_ref(), ba.as_ref());
        }
    }
}
