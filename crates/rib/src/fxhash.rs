//! A fast, deterministic hasher for the engine's internal tables.
//!
//! The RIB hot path is dominated by hash-map operations keyed on small
//! fixed-size values (`Prefix`, `PeerId`, attribute-set pointers).
//! SipHash's DoS resistance buys nothing there — the keys come from
//! benchmark workloads, not attackers — so the engine uses the
//! multiply-rotate scheme popularized by rustc's `FxHasher` instead.
//! The function is deterministic across runs and platforms of the same
//! pointer width, which the repeatability-sensitive benchmarks rely on.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiply constant (derived from the golden ratio, as in
/// rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The multiply-rotate hasher. Not cryptographic and not DoS-hardened;
/// use only for trusted keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let remainder = chunks.remainder();
        if !remainder.is_empty() {
            let mut word = [0u8; 8];
            word[..remainder.len()].copy_from_slice(remainder);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add_to_hash(u64::from(value));
    }

    #[inline]
    fn write_u16(&mut self, value: u16) {
        self.add_to_hash(u64::from(value));
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add_to_hash(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add_to_hash(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add_to_hash(value as u64);
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(f: impl Fn(&mut FxHasher)) -> u64 {
        let mut hasher = FxHasher::default();
        f(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        let a = hash_of(|h| h.write_u32(0x0A00_0001));
        let b = hash_of(|h| h.write_u32(0x0A00_0001));
        assert_eq!(a, b);
        assert_ne!(a, hash_of(|h| h.write_u32(0x0A00_0002)));
    }

    #[test]
    fn byte_slices_cover_chunks_and_remainders() {
        let long = hash_of(|h| h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]));
        let short = hash_of(|h| h.write(&[1, 2, 3]));
        assert_ne!(long, short);
        // Byte order matters within the zero-padded remainder word.
        // (Trailing zeros alone are invisible to the padding — std's
        // `Hash` impls hash a length prefix for variable-length keys,
        // which is what disambiguates those.)
        assert_ne!(hash_of(|h| h.write(&[0, 1])), hash_of(|h| h.write(&[1, 0])));
    }

    #[test]
    fn maps_work_with_composite_keys() {
        let mut map: FxHashMap<(u32, u8), &str> = FxHashMap::default();
        map.insert((167_772_160, 8), "10.0.0.0/8");
        map.insert((184_549_376, 8), "11.0.0.0/8");
        assert_eq!(map.get(&(167_772_160, 8)), Some(&"10.0.0.0/8"));
        assert_eq!(map.len(), 2);
    }
}
