//! Route-flap damping (RFC 2439).
//!
//! The paper motivates the benchmark with BGP instability — "routers
//! need to continuously process BGP updates from their neighbors" and
//! worm events multiply that load by orders of magnitude. Flap damping
//! is the standard mechanism deployed against exactly that pathology:
//! each flap adds a penalty to the route; above the *suppress*
//! threshold the route is withheld from the decision process; the
//! penalty decays exponentially and the route is reused below the
//! *reuse* threshold.
//!
//! This module implements the RFC 2439 penalty machinery over
//! simulated or wall-clock time supplied by the caller (seconds), so
//! the same code serves the simulator and the live daemon.

use bgpbench_wire::Prefix;

use crate::fxhash::FxHashMap;
use crate::PeerId;

/// Damping parameters (RFC 2439 §4.2; defaults follow the classic
/// Cisco values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DampingConfig {
    /// Penalty added per withdrawal flap.
    pub withdraw_penalty: f64,
    /// Penalty added per re-announcement flap.
    pub announce_penalty: f64,
    /// Penalty added per attribute change.
    pub attribute_change_penalty: f64,
    /// Routes with penalty above this are suppressed.
    pub suppress_threshold: f64,
    /// Suppressed routes with penalty decayed below this are reused.
    pub reuse_threshold: f64,
    /// Exponential-decay half life, in seconds.
    pub half_life_secs: f64,
    /// Penalty ceiling (bounds maximum suppression time).
    pub max_penalty: f64,
}

impl Default for DampingConfig {
    fn default() -> Self {
        DampingConfig {
            withdraw_penalty: 1000.0,
            announce_penalty: 0.0,
            attribute_change_penalty: 500.0,
            suppress_threshold: 2000.0,
            reuse_threshold: 750.0,
            half_life_secs: 900.0,
            max_penalty: 12_000.0,
        }
    }
}

/// The kind of flap being recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlapKind {
    /// The route was withdrawn.
    Withdraw,
    /// The route was re-announced after a withdrawal.
    Reannounce,
    /// The route's attributes changed.
    AttributeChange,
}

/// Per-(peer, prefix) damping state.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FlapState {
    penalty: f64,
    last_update_secs: f64,
    suppressed: bool,
}

/// Tracks flap penalties and suppression for routes learned from each
/// peer.
///
/// ```
/// use bgpbench_rib::{DampingConfig, FlapKind, PeerId, RouteDamper};
///
/// let mut damper = RouteDamper::new(DampingConfig::default());
/// let peer = PeerId(1);
/// let prefix = "10.0.0.0/8".parse().unwrap();
/// // Three quick withdraw flaps push the penalty past 2000.
/// damper.record_flap(peer, prefix, FlapKind::Withdraw, 0.0);
/// damper.record_flap(peer, prefix, FlapKind::Withdraw, 1.0);
/// damper.record_flap(peer, prefix, FlapKind::Withdraw, 2.0);
/// assert!(damper.is_suppressed(peer, &prefix, 2.0));
/// // After a few half-lives the route is reusable again.
/// assert!(!damper.is_suppressed(peer, &prefix, 4000.0));
/// ```
#[derive(Debug, Clone)]
pub struct RouteDamper {
    config: DampingConfig,
    states: FxHashMap<(PeerId, Prefix), FlapState>,
}

impl RouteDamper {
    /// Creates a damper with the given parameters.
    pub fn new(config: DampingConfig) -> Self {
        RouteDamper {
            config,
            states: FxHashMap::default(),
        }
    }

    /// The configured parameters.
    pub fn config(&self) -> &DampingConfig {
        &self.config
    }

    /// Number of (peer, prefix) pairs currently tracked.
    pub fn tracked(&self) -> usize {
        self.states.len()
    }

    /// Records a flap at time `now_secs` and returns the updated
    /// penalty.
    pub fn record_flap(
        &mut self,
        peer: PeerId,
        prefix: Prefix,
        kind: FlapKind,
        now_secs: f64,
    ) -> f64 {
        let added = match kind {
            FlapKind::Withdraw => self.config.withdraw_penalty,
            FlapKind::Reannounce => self.config.announce_penalty,
            FlapKind::AttributeChange => self.config.attribute_change_penalty,
        };
        let config = self.config;
        let state = self.states.entry((peer, prefix)).or_insert(FlapState {
            penalty: 0.0,
            last_update_secs: now_secs,
            suppressed: false,
        });
        decay(state, &config, now_secs);
        state.penalty = (state.penalty + added).min(config.max_penalty);
        if state.penalty >= config.suppress_threshold {
            state.suppressed = true;
        }
        state.penalty
    }

    /// Whether the route from `peer` is currently suppressed.
    ///
    /// Evaluating suppression decays the stored penalty to `now_secs`
    /// first, so callers may query at any cadence.
    pub fn is_suppressed(&mut self, peer: PeerId, prefix: &Prefix, now_secs: f64) -> bool {
        let config = self.config;
        let Some(state) = self.states.get_mut(&(peer, *prefix)) else {
            return false;
        };
        decay(state, &config, now_secs);
        if state.suppressed && state.penalty < config.reuse_threshold {
            state.suppressed = false;
        }
        state.suppressed
    }

    /// The current penalty for a route (decayed to `now_secs`).
    pub fn penalty(&mut self, peer: PeerId, prefix: &Prefix, now_secs: f64) -> f64 {
        let config = self.config;
        match self.states.get_mut(&(peer, *prefix)) {
            Some(state) => {
                decay(state, &config, now_secs);
                state.penalty
            }
            None => 0.0,
        }
    }

    /// Drops state whose penalty has decayed to insignificance
    /// (below half the reuse threshold, per RFC 2439 §4.4.3's "no
    /// longer needed" criterion).
    pub fn sweep(&mut self, now_secs: f64) {
        let config = self.config;
        self.states.retain(|_, state| {
            decay(state, &config, now_secs);
            state.penalty >= config.reuse_threshold / 2.0
        });
    }
}

fn decay(state: &mut FlapState, config: &DampingConfig, now_secs: f64) {
    if now_secs > state.last_update_secs {
        let elapsed = now_secs - state.last_update_secs;
        state.penalty *= 0.5_f64.powf(elapsed / config.half_life_secs);
        state.last_update_secs = now_secs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefix() -> Prefix {
        "10.0.0.0/8".parse().unwrap()
    }

    const PEER: PeerId = PeerId(1);

    #[test]
    fn single_flap_does_not_suppress() {
        let mut damper = RouteDamper::new(DampingConfig::default());
        damper.record_flap(PEER, prefix(), FlapKind::Withdraw, 0.0);
        assert!(!damper.is_suppressed(PEER, &prefix(), 0.0));
        assert_eq!(damper.penalty(PEER, &prefix(), 0.0), 1000.0);
    }

    #[test]
    fn rapid_flaps_suppress() {
        let mut damper = RouteDamper::new(DampingConfig::default());
        for i in 0..3 {
            damper.record_flap(PEER, prefix(), FlapKind::Withdraw, i as f64);
        }
        assert!(damper.is_suppressed(PEER, &prefix(), 3.0));
    }

    #[test]
    fn penalty_decays_with_half_life() {
        let mut damper = RouteDamper::new(DampingConfig::default());
        damper.record_flap(PEER, prefix(), FlapKind::Withdraw, 0.0);
        let after_one_half_life = damper.penalty(PEER, &prefix(), 900.0);
        assert!((after_one_half_life - 500.0).abs() < 1.0);
        let after_two = damper.penalty(PEER, &prefix(), 1800.0);
        assert!((after_two - 250.0).abs() < 1.0);
    }

    #[test]
    fn suppressed_route_reused_after_decay() {
        let mut damper = RouteDamper::new(DampingConfig::default());
        for i in 0..4 {
            damper.record_flap(PEER, prefix(), FlapKind::Withdraw, i as f64);
        }
        assert!(damper.is_suppressed(PEER, &prefix(), 4.0));
        // Penalty ~4000 must decay below 750: needs ~2.4 half lives.
        assert!(damper.is_suppressed(PEER, &prefix(), 900.0));
        assert!(!damper.is_suppressed(PEER, &prefix(), 4.0 + 3.0 * 900.0));
    }

    #[test]
    fn penalty_is_capped() {
        let mut damper = RouteDamper::new(DampingConfig::default());
        for i in 0..100 {
            damper.record_flap(PEER, prefix(), FlapKind::Withdraw, i as f64 * 0.01);
        }
        assert!(damper.penalty(PEER, &prefix(), 1.0) <= 12_000.0);
    }

    #[test]
    fn attribute_changes_penalize_less_than_withdrawals() {
        let config = DampingConfig::default();
        let mut damper = RouteDamper::new(config);
        damper.record_flap(PEER, prefix(), FlapKind::AttributeChange, 0.0);
        assert_eq!(damper.penalty(PEER, &prefix(), 0.0), 500.0);
        // Re-announcements carry no penalty under the defaults.
        damper.record_flap(PEER, prefix(), FlapKind::Reannounce, 0.0);
        assert_eq!(damper.penalty(PEER, &prefix(), 0.0), 500.0);
    }

    #[test]
    fn peers_are_tracked_independently() {
        let mut damper = RouteDamper::new(DampingConfig::default());
        for i in 0..3 {
            damper.record_flap(PeerId(1), prefix(), FlapKind::Withdraw, i as f64);
        }
        assert!(damper.is_suppressed(PeerId(1), &prefix(), 3.0));
        assert!(!damper.is_suppressed(PeerId(2), &prefix(), 3.0));
    }

    #[test]
    fn sweep_drops_cold_state() {
        let mut damper = RouteDamper::new(DampingConfig::default());
        damper.record_flap(PEER, prefix(), FlapKind::Withdraw, 0.0);
        assert_eq!(damper.tracked(), 1);
        // After many half-lives the penalty is negligible.
        damper.sweep(20.0 * 900.0);
        assert_eq!(damper.tracked(), 0);
    }

    #[test]
    fn unknown_routes_are_never_suppressed() {
        let mut damper = RouteDamper::new(DampingConfig::default());
        assert!(!damper.is_suppressed(PEER, &prefix(), 0.0));
        assert_eq!(damper.penalty(PEER, &prefix(), 0.0), 0.0);
    }
}
