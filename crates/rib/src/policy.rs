//! Import/export routing policy.
//!
//! The paper (§III.A) stresses that BGP route selection "is always
//! policy-based". This module provides the route-map-style policy
//! engine the benchmark's router models evaluate on every imported
//! route: ordered rules, each a matcher plus an action.

use bgpbench_wire::{Asn, Prefix};

use crate::route::RouteAttributes;

/// What part of a route a policy rule matches on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteMatcher {
    /// Matches every route.
    Any,
    /// Matches routes whose prefix equals or is more specific than the
    /// given prefix.
    PrefixWithin(Prefix),
    /// Matches routes whose prefix equals the given prefix exactly.
    PrefixExact(Prefix),
    /// Matches routes whose mask length lies within the closed range.
    PrefixLengthBetween(u8, u8),
    /// Matches routes whose AS path contains the given AS.
    AsPathContains(Asn),
    /// Matches routes originated by the given AS.
    OriginatedBy(Asn),
    /// Matches routes carrying the given community.
    HasCommunity(u32),
}

impl RouteMatcher {
    /// Whether a route matches.
    pub fn matches(&self, prefix: &Prefix, attrs: &RouteAttributes) -> bool {
        match self {
            RouteMatcher::Any => true,
            RouteMatcher::PrefixWithin(outer) => outer.covers(prefix),
            RouteMatcher::PrefixExact(exact) => exact == prefix,
            RouteMatcher::PrefixLengthBetween(lo, hi) => (*lo..=*hi).contains(&prefix.len()),
            RouteMatcher::AsPathContains(asn) => attrs.as_path().contains(*asn),
            RouteMatcher::OriginatedBy(asn) => attrs.as_path().origin_as() == Some(*asn),
            RouteMatcher::HasCommunity(community) => attrs.communities().contains(community),
        }
    }
}

/// What a matching rule does to the route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyAction {
    /// Accept the route as-is and stop evaluating rules.
    Accept,
    /// Reject the route and stop evaluating rules.
    Reject,
    /// Overwrite LOCAL_PREF and continue with the next rule.
    SetLocalPref(u32),
    /// Overwrite MED and continue with the next rule.
    SetMed(u32),
    /// Attach a community and continue with the next rule.
    AddCommunity(u32),
}

/// One ordered policy rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyRule {
    matcher: RouteMatcher,
    action: PolicyAction,
}

impl PolicyRule {
    /// Pairs a matcher with an action.
    pub fn new(matcher: RouteMatcher, action: PolicyAction) -> Self {
        PolicyRule { matcher, action }
    }

    /// The rule's matcher.
    pub fn matcher(&self) -> &RouteMatcher {
        &self.matcher
    }

    /// The rule's action.
    pub fn action(&self) -> PolicyAction {
        self.action
    }
}

/// An ordered list of policy rules evaluated first-match-modifies,
/// terminal on `Accept`/`Reject`, defaulting to accept.
///
/// ```
/// use bgpbench_rib::{PolicyAction, PolicyEngine, PolicyRule, RouteMatcher, RouteAttributes};
/// use bgpbench_wire::{AsPath, Asn, Origin};
/// use std::net::Ipv4Addr;
///
/// let engine = PolicyEngine::from_rules([
///     PolicyRule::new(
///         RouteMatcher::AsPathContains(Asn(666)),
///         PolicyAction::Reject,
///     ),
/// ]);
/// let bad = RouteAttributes::new(
///     Origin::Igp,
///     AsPath::from_sequence([Asn(666)]),
///     Ipv4Addr::new(10, 0, 0, 1),
/// );
/// let prefix = "10.0.0.0/8".parse().unwrap();
/// assert_eq!(engine.evaluate(&prefix, bad), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyEngine {
    rules: Vec<PolicyRule>,
}

impl PolicyEngine {
    /// An engine with no rules: everything is accepted unmodified.
    pub fn permit_all() -> Self {
        PolicyEngine::default()
    }

    /// Builds an engine from ordered rules.
    pub fn from_rules<I: IntoIterator<Item = PolicyRule>>(rules: I) -> Self {
        PolicyEngine {
            rules: rules.into_iter().collect(),
        }
    }

    /// Appends a rule at the lowest priority.
    pub fn push(&mut self, rule: PolicyRule) {
        self.rules.push(rule);
    }

    /// The configured rules, highest priority first.
    pub fn rules(&self) -> &[PolicyRule] {
        &self.rules
    }

    /// Number of rules a route must be evaluated against in the worst
    /// case (used by the simulator's cost model).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the engine has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluates a route. Returns the (possibly modified) attributes,
    /// or `None` if the route is rejected.
    pub fn evaluate(&self, prefix: &Prefix, mut attrs: RouteAttributes) -> Option<RouteAttributes> {
        for rule in &self.rules {
            if !rule.matcher.matches(prefix, &attrs) {
                continue;
            }
            match rule.action {
                PolicyAction::Accept => return Some(attrs),
                PolicyAction::Reject => return None,
                PolicyAction::SetLocalPref(value) => {
                    attrs = attrs.with_local_pref(value);
                }
                PolicyAction::SetMed(value) => {
                    attrs = attrs.with_med(value);
                }
                PolicyAction::AddCommunity(community) => {
                    let mut communities = attrs.communities().to_vec();
                    if !communities.contains(&community) {
                        communities.push(community);
                    }
                    attrs = attrs.with_communities(communities);
                }
            }
        }
        Some(attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpbench_wire::{AsPath, Origin};
    use std::net::Ipv4Addr;

    fn attrs_with_path(path: &[u16]) -> RouteAttributes {
        RouteAttributes::new(
            Origin::Igp,
            AsPath::from_sequence(path.iter().copied().map(Asn)),
            Ipv4Addr::new(10, 0, 0, 2),
        )
    }

    fn p(text: &str) -> Prefix {
        text.parse().unwrap()
    }

    #[test]
    fn permit_all_accepts_unmodified() {
        let engine = PolicyEngine::permit_all();
        let attrs = attrs_with_path(&[1, 2]);
        let result = engine.evaluate(&p("10.0.0.0/8"), attrs.clone()).unwrap();
        assert_eq!(result, attrs);
    }

    #[test]
    fn reject_rule_drops_matching_routes_only() {
        let engine = PolicyEngine::from_rules([PolicyRule::new(
            RouteMatcher::PrefixWithin(p("10.0.0.0/8")),
            PolicyAction::Reject,
        )]);
        assert_eq!(
            engine.evaluate(&p("10.1.0.0/16"), attrs_with_path(&[1])),
            None
        );
        assert!(engine
            .evaluate(&p("11.0.0.0/8"), attrs_with_path(&[1]))
            .is_some());
    }

    #[test]
    fn modifications_accumulate_until_terminal_action() {
        let engine = PolicyEngine::from_rules([
            PolicyRule::new(RouteMatcher::Any, PolicyAction::SetLocalPref(250)),
            PolicyRule::new(RouteMatcher::Any, PolicyAction::AddCommunity(77)),
            PolicyRule::new(RouteMatcher::Any, PolicyAction::Accept),
            // Never reached.
            PolicyRule::new(RouteMatcher::Any, PolicyAction::SetLocalPref(1)),
        ]);
        let result = engine
            .evaluate(&p("10.0.0.0/8"), attrs_with_path(&[1]))
            .unwrap();
        assert_eq!(result.local_pref(), Some(250));
        assert_eq!(result.communities(), &[77]);
    }

    #[test]
    fn matchers_cover_all_route_parts() {
        let attrs = attrs_with_path(&[100, 200]).with_communities(vec![42]);
        let prefix = p("10.1.0.0/16");
        let cases = [
            (RouteMatcher::Any, true),
            (RouteMatcher::PrefixWithin(p("10.0.0.0/8")), true),
            (RouteMatcher::PrefixWithin(p("10.1.0.0/24")), false),
            (RouteMatcher::PrefixExact(p("10.1.0.0/16")), true),
            (RouteMatcher::PrefixExact(p("10.0.0.0/8")), false),
            (RouteMatcher::PrefixLengthBetween(8, 16), true),
            (RouteMatcher::PrefixLengthBetween(17, 24), false),
            (RouteMatcher::AsPathContains(Asn(200)), true),
            (RouteMatcher::AsPathContains(Asn(300)), false),
            (RouteMatcher::OriginatedBy(Asn(200)), true),
            (RouteMatcher::OriginatedBy(Asn(100)), false),
            (RouteMatcher::HasCommunity(42), true),
            (RouteMatcher::HasCommunity(43), false),
        ];
        for (matcher, expected) in cases {
            assert_eq!(matcher.matches(&prefix, &attrs), expected, "{matcher:?}");
        }
    }

    #[test]
    fn add_community_is_idempotent() {
        let engine = PolicyEngine::from_rules([
            PolicyRule::new(RouteMatcher::Any, PolicyAction::AddCommunity(7)),
            PolicyRule::new(RouteMatcher::HasCommunity(7), PolicyAction::AddCommunity(7)),
        ]);
        let result = engine
            .evaluate(&p("10.0.0.0/8"), attrs_with_path(&[1]))
            .unwrap();
        assert_eq!(result.communities(), &[7]);
    }
}
