//! The RIB engine: Adj-RIB-In, Loc-RIB, and the update-processing
//! pipeline that classifies every prefix-level change.

use std::collections::HashMap;
use std::sync::Arc;

use bgpbench_wire::{Asn, Prefix, RouterId, UpdateMessage};

use crate::damping::{DampingConfig, FlapKind, RouteDamper};
use crate::decision::{compare_routes, DecisionConfig};
use crate::policy::PolicyEngine;
use crate::route::{PeerId, PeerInfo, Route, RouteAttributes};
use crate::RibError;

/// One peer's Adj-RIB-In: the unprocessed routes received from that
/// neighbor (RFC 4271 §3.2).
#[derive(Debug, Clone, Default)]
pub struct AdjRibIn {
    table: HashMap<Prefix, Arc<RouteAttributes>>,
}

impl AdjRibIn {
    /// Creates an empty table.
    pub fn new() -> Self {
        AdjRibIn::default()
    }

    /// Number of routes held.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The attributes stored for `prefix`, if any.
    pub fn get(&self, prefix: &Prefix) -> Option<&Arc<RouteAttributes>> {
        self.table.get(prefix)
    }

    /// Iterates over `(prefix, attributes)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Prefix, &Arc<RouteAttributes>)> {
        self.table.iter()
    }

    fn insert(&mut self, prefix: Prefix, attrs: Arc<RouteAttributes>) {
        self.table.insert(prefix, attrs);
    }

    fn remove(&mut self, prefix: &Prefix) -> Option<Arc<RouteAttributes>> {
        self.table.remove(prefix)
    }
}

/// The Loc-RIB: routes selected by the local decision process
/// (RFC 4271 §3.2). Distinct from the forwarding table — the paper
/// emphasizes that updating the FIB after a Loc-RIB change is a
/// separately costed operation.
#[derive(Debug, Clone, Default)]
pub struct LocRib {
    table: HashMap<Prefix, Route>,
}

impl LocRib {
    /// Creates an empty Loc-RIB.
    pub fn new() -> Self {
        LocRib::default()
    }

    /// Number of selected routes.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no routes are selected.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The selected route for `prefix`, if any.
    pub fn get(&self, prefix: &Prefix) -> Option<&Route> {
        self.table.get(prefix)
    }

    /// Iterates over selected routes in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Prefix, &Route)> {
        self.table.iter()
    }
}

/// What happened to one prefix as a result of an UPDATE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteChange {
    /// A route for a previously-unknown prefix was selected.
    Installed,
    /// The best route was replaced by a different one.
    Replaced {
        /// Whether the replacement changed the next hop, requiring a
        /// forwarding-table write (Scenario 7/8 territory).
        fib_changed: bool,
    },
    /// The announcement lost the decision process (or re-announced the
    /// same best route); the Loc-RIB best is unchanged (Scenario 5/6).
    Unchanged,
    /// The last route for the prefix was withdrawn.
    Withdrawn,
    /// A withdrawal for a route this peer never announced (no-op).
    WithdrawnUnknown,
    /// Import policy rejected the route.
    RejectedByPolicy,
    /// The AS path contained the local AS (loop prevention,
    /// RFC 4271 §9.1.2).
    RejectedAsLoop,
    /// Route-flap damping suppressed the announcement (RFC 2439); the
    /// route is withheld until its penalty decays below the reuse
    /// threshold.
    Dampened,
}

/// The forwarding-table write a [`PrefixOutcome`] requires, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FibDirective {
    /// Install (or overwrite) the route.
    Install {
        /// The destination prefix.
        prefix: Prefix,
        /// The BGP next hop to forward through.
        next_hop: std::net::Ipv4Addr,
    },
    /// Remove the route.
    Remove {
        /// The destination prefix.
        prefix: Prefix,
    },
}

/// Per-prefix result of [`RibEngine::apply_update`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixOutcome {
    /// The prefix this outcome describes.
    pub prefix: Prefix,
    /// What changed.
    pub change: RouteChange,
    /// The forwarding-table write to perform, if any.
    pub fib: Option<FibDirective>,
}

/// Aggregate counters kept by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RibStats {
    /// UPDATE messages processed.
    pub updates: u64,
    /// Announced prefixes processed.
    pub announcements: u64,
    /// Withdrawn prefixes processed.
    pub withdrawals: u64,
    /// Prefixes whose best route changed.
    pub best_changed: u64,
    /// Forwarding-table installs directed.
    pub fib_installs: u64,
    /// Forwarding-table removes directed.
    pub fib_removes: u64,
    /// Routes rejected by import policy.
    pub policy_rejected: u64,
    /// Routes rejected by AS-loop detection.
    pub loop_rejected: u64,
    /// Announcements suppressed by route-flap damping.
    pub dampened: u64,
}

/// A complete BGP routing-table engine: per-peer Adj-RIBs-In, the
/// decision process, import policy, and the Loc-RIB.
///
/// See the [crate-level documentation](crate) for a worked example.
#[derive(Debug)]
pub struct RibEngine {
    local_asn: Asn,
    local_id: RouterId,
    config: DecisionConfig,
    import_policy: PolicyEngine,
    peers: HashMap<PeerId, PeerInfo>,
    adj_in: HashMap<PeerId, AdjRibIn>,
    loc_rib: LocRib,
    stats: RibStats,
    damper: Option<RouteDamper>,
}

impl RibEngine {
    /// Creates an engine for a speaker with the given AS and identifier,
    /// default decision configuration, and permit-all import policy.
    pub fn new(local_asn: Asn, local_id: RouterId) -> Self {
        RibEngine {
            local_asn,
            local_id,
            config: DecisionConfig::default(),
            import_policy: PolicyEngine::permit_all(),
            peers: HashMap::new(),
            adj_in: HashMap::new(),
            loc_rib: LocRib::new(),
            stats: RibStats::default(),
            damper: None,
        }
    }

    /// Enables route-flap damping (RFC 2439).
    ///
    /// Semantics in this engine (a documented simplification of the
    /// RFC): withdrawals and attribute changes accrue penalty; while a
    /// (peer, prefix) is suppressed, announcements for it are refused
    /// admission to the Adj-RIB-In (reported as
    /// [`RouteChange::Dampened`]); withdrawals are always processed.
    /// Penalties decay against the timestamps passed to
    /// [`RibEngine::apply_update_at`].
    pub fn enable_damping(&mut self, config: DampingConfig) {
        self.damper = Some(RouteDamper::new(config));
    }

    /// Disables route-flap damping, forgetting all penalties.
    pub fn disable_damping(&mut self) {
        self.damper = None;
    }

    /// Whether damping is enabled.
    pub fn damping_enabled(&self) -> bool {
        self.damper.is_some()
    }

    /// Replaces the decision configuration.
    pub fn set_decision_config(&mut self, config: DecisionConfig) {
        self.config = config;
    }

    /// Replaces the import policy.
    pub fn set_import_policy(&mut self, policy: PolicyEngine) {
        self.import_policy = policy;
    }

    /// The import policy currently in force.
    pub fn import_policy(&self) -> &PolicyEngine {
        &self.import_policy
    }

    /// The local AS number.
    pub fn local_asn(&self) -> Asn {
        self.local_asn
    }

    /// The local BGP identifier.
    pub fn local_id(&self) -> RouterId {
        self.local_id
    }

    /// Registers a neighbor and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the peer id is already registered; peer ids are chosen
    /// by the caller and must be unique.
    pub fn add_peer(&mut self, info: PeerInfo) -> PeerId {
        let id = info.id();
        assert!(!self.peers.contains_key(&id), "peer {id} registered twice");
        self.peers.insert(id, info);
        self.adj_in.insert(id, AdjRibIn::new());
        id
    }

    /// Removes a neighbor and withdraws everything learned from it, as
    /// happens when a session drops. Returns the per-prefix outcomes.
    ///
    /// # Errors
    ///
    /// Returns [`RibError::UnknownPeer`] for an unregistered id.
    pub fn remove_peer(&mut self, peer: PeerId) -> Result<Vec<PrefixOutcome>, RibError> {
        if !self.peers.contains_key(&peer) {
            return Err(RibError::UnknownPeer(peer.0));
        }
        let prefixes: Vec<Prefix> = self
            .adj_in
            .get(&peer)
            .map(|rib| rib.iter().map(|(prefix, _)| *prefix).collect())
            .unwrap_or_default();
        let mut outcomes = Vec::with_capacity(prefixes.len());
        for prefix in prefixes {
            outcomes.push(self.withdraw_one(peer, prefix));
        }
        self.peers.remove(&peer);
        self.adj_in.remove(&peer);
        Ok(outcomes)
    }

    /// The registered peers.
    pub fn peers(&self) -> impl Iterator<Item = &PeerInfo> {
        self.peers.values()
    }

    /// A peer's Adj-RIB-In.
    pub fn adj_rib_in(&self, peer: PeerId) -> Option<&AdjRibIn> {
        self.adj_in.get(&peer)
    }

    /// The Loc-RIB.
    pub fn loc_rib(&self) -> &LocRib {
        &self.loc_rib
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> RibStats {
        self.stats
    }

    /// Processes one UPDATE from `peer`: withdrawals first, then
    /// announcements, per RFC 4271 §3.1. Returns one outcome per
    /// prefix, in message order.
    ///
    /// Equivalent to [`RibEngine::apply_update_at`] at time zero —
    /// fine while damping is disabled; with damping enabled, pass real
    /// timestamps so penalties decay.
    ///
    /// # Errors
    ///
    /// Returns [`RibError::UnknownPeer`] for an unregistered peer and
    /// [`RibError::MissingMandatoryAttribute`] if the message announces
    /// NLRI without the mandatory attributes.
    pub fn apply_update(
        &mut self,
        peer: PeerId,
        update: &UpdateMessage,
    ) -> Result<Vec<PrefixOutcome>, RibError> {
        self.apply_update_at(peer, update, 0.0)
    }

    /// [`RibEngine::apply_update`] with an explicit clock (seconds)
    /// against which route-flap damping penalties decay.
    ///
    /// # Errors
    ///
    /// As for [`RibEngine::apply_update`].
    pub fn apply_update_at(
        &mut self,
        peer: PeerId,
        update: &UpdateMessage,
        now_secs: f64,
    ) -> Result<Vec<PrefixOutcome>, RibError> {
        if !self.peers.contains_key(&peer) {
            return Err(RibError::UnknownPeer(peer.0));
        }
        self.stats.updates += 1;
        let mut outcomes = Vec::with_capacity(update.transaction_count());

        for prefix in update.withdrawn() {
            self.stats.withdrawals += 1;
            let had_route = self
                .adj_in
                .get(&peer)
                .is_some_and(|rib| rib.get(prefix).is_some());
            if had_route {
                if let Some(damper) = &mut self.damper {
                    damper.record_flap(peer, *prefix, FlapKind::Withdraw, now_secs);
                }
            }
            outcomes.push(self.withdraw_one(peer, *prefix));
        }

        if update.nlri().is_empty() {
            return Ok(outcomes);
        }

        let attrs = RouteAttributes::from_wire(update.attributes())?;
        // Loop prevention applies to the whole attribute set.
        if attrs.as_path().contains(self.local_asn) {
            for prefix in update.nlri() {
                self.stats.announcements += 1;
                self.stats.loop_rejected += 1;
                outcomes.push(PrefixOutcome {
                    prefix: *prefix,
                    change: RouteChange::RejectedAsLoop,
                    fib: None,
                });
            }
            return Ok(outcomes);
        }

        // Policy may rewrite attributes per prefix; cache the common
        // case where the result is prefix-independent (permit-all).
        let shared: Option<Arc<RouteAttributes>> = if self.import_policy.is_empty() {
            Some(Arc::new(attrs.clone()))
        } else {
            None
        };

        for prefix in update.nlri() {
            self.stats.announcements += 1;
            // Flap accounting and suppression check (RFC 2439).
            if let Some(damper) = &mut self.damper {
                let existing = self.adj_in.get(&peer).and_then(|rib| rib.get(prefix));
                let kind = match existing {
                    Some(old) if old.as_ref() != &attrs => Some(FlapKind::AttributeChange),
                    Some(_) => None, // identical re-announcement: no flap
                    None => Some(FlapKind::Reannounce),
                };
                if let Some(kind) = kind {
                    damper.record_flap(peer, *prefix, kind, now_secs);
                }
                if damper.is_suppressed(peer, prefix, now_secs) {
                    self.stats.dampened += 1;
                    outcomes.push(PrefixOutcome {
                        prefix: *prefix,
                        change: RouteChange::Dampened,
                        fib: None,
                    });
                    continue;
                }
            }
            let final_attrs = match &shared {
                Some(arc) => Some(arc.clone()),
                None => self
                    .import_policy
                    .evaluate(prefix, attrs.clone())
                    .map(Arc::new),
            };
            let outcome = match final_attrs {
                Some(final_attrs) => self.announce_one(peer, *prefix, final_attrs),
                None => {
                    self.stats.policy_rejected += 1;
                    PrefixOutcome {
                        prefix: *prefix,
                        change: RouteChange::RejectedByPolicy,
                        fib: None,
                    }
                }
            };
            outcomes.push(outcome);
        }
        Ok(outcomes)
    }

    /// Re-runs the decision process for `prefix` over all Adj-RIBs-In
    /// and returns the winning route, if any.
    fn decide(&self, prefix: &Prefix) -> Option<Route> {
        let mut best: Option<(&PeerInfo, &Arc<RouteAttributes>)> = None;
        for (peer_id, rib) in &self.adj_in {
            let Some(attrs) = rib.get(prefix) else {
                continue;
            };
            let info = &self.peers[peer_id];
            best = match best {
                None => Some((info, attrs)),
                Some((best_info, best_attrs)) => {
                    let ordering = compare_routes(
                        &self.config,
                        self.local_asn,
                        attrs,
                        info,
                        best_attrs,
                        best_info,
                    );
                    if ordering == std::cmp::Ordering::Greater {
                        Some((info, attrs))
                    } else {
                        Some((best_info, best_attrs))
                    }
                }
            };
        }
        best.map(|(info, attrs)| Route::new(*prefix, attrs.clone(), info.id()))
    }

    fn announce_one(
        &mut self,
        peer: PeerId,
        prefix: Prefix,
        attrs: Arc<RouteAttributes>,
    ) -> PrefixOutcome {
        self.adj_in
            .get_mut(&peer)
            .expect("peer checked by caller")
            .insert(prefix, attrs);
        self.reselect(prefix)
    }

    fn withdraw_one(&mut self, peer: PeerId, prefix: Prefix) -> PrefixOutcome {
        let removed = self
            .adj_in
            .get_mut(&peer)
            .and_then(|rib| rib.remove(&prefix));
        if removed.is_none() {
            return PrefixOutcome {
                prefix,
                change: RouteChange::WithdrawnUnknown,
                fib: None,
            };
        }
        self.reselect(prefix)
    }

    /// Recomputes the best route for `prefix` and classifies the change
    /// against the previous Loc-RIB entry.
    fn reselect(&mut self, prefix: Prefix) -> PrefixOutcome {
        let new_best = self.decide(&prefix);
        let old_best = self.loc_rib.table.get(&prefix);
        let (change, fib) = match (old_best, &new_best) {
            (None, None) => (RouteChange::Unchanged, None),
            (None, Some(new)) => (
                RouteChange::Installed,
                Some(FibDirective::Install {
                    prefix,
                    next_hop: new.attrs().next_hop(),
                }),
            ),
            (Some(old), None) => {
                let _ = old;
                (
                    RouteChange::Withdrawn,
                    Some(FibDirective::Remove { prefix }),
                )
            }
            (Some(old), Some(new)) => {
                if old.learned_from() == new.learned_from() && old.attrs() == new.attrs() {
                    (RouteChange::Unchanged, None)
                } else {
                    let fib_changed = old.attrs().next_hop() != new.attrs().next_hop();
                    let fib = fib_changed.then_some(FibDirective::Install {
                        prefix,
                        next_hop: new.attrs().next_hop(),
                    });
                    (RouteChange::Replaced { fib_changed }, fib)
                }
            }
        };
        match &fib {
            Some(FibDirective::Install { .. }) => self.stats.fib_installs += 1,
            Some(FibDirective::Remove { .. }) => self.stats.fib_removes += 1,
            None => {}
        }
        if !matches!(change, RouteChange::Unchanged) {
            self.stats.best_changed += 1;
        }
        match new_best {
            Some(route) => {
                self.loc_rib.table.insert(prefix, route);
            }
            None => {
                self.loc_rib.table.remove(&prefix);
            }
        }
        PrefixOutcome {
            prefix,
            change,
            fib,
        }
    }

    /// Computes the routes to advertise to `peer`: every Loc-RIB best
    /// not learned from that peer, in exported form (own AS prepended,
    /// next hop set to `local_address`). Attribute sets shared by many
    /// prefixes are transformed once.
    pub fn export_routes(
        &self,
        peer: PeerId,
        local_address: std::net::Ipv4Addr,
    ) -> Vec<(Prefix, Arc<RouteAttributes>)> {
        let mut cache: HashMap<*const RouteAttributes, Arc<RouteAttributes>> = HashMap::new();
        let mut routes: Vec<(Prefix, Arc<RouteAttributes>)> = self
            .loc_rib
            .iter()
            .filter(|(_, route)| route.learned_from() != peer)
            .map(|(prefix, route)| {
                let key = Arc::as_ptr(route.attrs());
                let exported = cache
                    .entry(key)
                    .or_insert_with(|| {
                        Arc::new(route.attrs().exported(self.local_asn, local_address))
                    })
                    .clone();
                (*prefix, exported)
            })
            .collect();
        routes.sort_by_key(|(prefix, _)| *prefix);
        routes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpbench_wire::{AsPath, Origin, PathAttribute};
    use std::net::Ipv4Addr;

    const LOCAL_ASN: Asn = Asn(65000);

    fn engine_with_two_peers() -> (RibEngine, PeerId, PeerId) {
        let mut engine = RibEngine::new(LOCAL_ASN, RouterId(1));
        let p1 = engine.add_peer(PeerInfo::new(
            PeerId(1),
            Asn(65001),
            RouterId(0x0A000002),
            Ipv4Addr::new(10, 0, 0, 2),
        ));
        let p2 = engine.add_peer(PeerInfo::new(
            PeerId(2),
            Asn(65002),
            RouterId(0x0A000003),
            Ipv4Addr::new(10, 0, 0, 3),
        ));
        (engine, p1, p2)
    }

    fn announce(path: &[u16], next_hop: Ipv4Addr, prefixes: &[&str]) -> UpdateMessage {
        let mut builder = UpdateMessage::builder()
            .attribute(PathAttribute::Origin(Origin::Igp))
            .attribute(PathAttribute::AsPath(AsPath::from_sequence(
                path.iter().copied().map(Asn),
            )))
            .attribute(PathAttribute::NextHop(next_hop));
        for prefix in prefixes {
            builder = builder.announce(prefix.parse().unwrap());
        }
        builder.build()
    }

    fn withdraw(prefixes: &[&str]) -> UpdateMessage {
        UpdateMessage::builder()
            .withdraw_all(prefixes.iter().map(|p| p.parse().unwrap()))
            .build()
    }

    const HOP1: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const HOP2: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);

    #[test]
    fn scenario_1_startup_announcements_install() {
        let (mut engine, p1, _) = engine_with_two_peers();
        let outcomes = engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8", "11.0.0.0/8"]))
            .unwrap();
        assert_eq!(outcomes.len(), 2);
        for outcome in &outcomes {
            assert_eq!(outcome.change, RouteChange::Installed);
            assert!(matches!(outcome.fib, Some(FibDirective::Install { .. })));
        }
        assert_eq!(engine.loc_rib().len(), 2);
        assert_eq!(engine.stats().fib_installs, 2);
    }

    #[test]
    fn scenario_3_withdrawals_remove_from_fib() {
        let (mut engine, p1, _) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8"]))
            .unwrap();
        let outcomes = engine.apply_update(p1, &withdraw(&["10.0.0.0/8"])).unwrap();
        assert_eq!(outcomes[0].change, RouteChange::Withdrawn);
        assert_eq!(
            outcomes[0].fib,
            Some(FibDirective::Remove {
                prefix: "10.0.0.0/8".parse().unwrap()
            })
        );
        assert!(engine.loc_rib().is_empty());
    }

    #[test]
    fn scenario_5_longer_path_loses_without_fib_change() {
        let (mut engine, p1, p2) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8"]))
            .unwrap();
        // Same prefix, longer AS path, from the other speaker.
        let outcomes = engine
            .apply_update(p2, &announce(&[65002, 65010, 65011], HOP2, &["10.0.0.0/8"]))
            .unwrap();
        assert_eq!(outcomes[0].change, RouteChange::Unchanged);
        assert_eq!(outcomes[0].fib, None);
        // But it is retained in the Adj-RIB-In.
        assert_eq!(engine.adj_rib_in(p2).unwrap().len(), 1);
        // The best is still peer 1's route.
        let best = engine
            .loc_rib()
            .get(&"10.0.0.0/8".parse().unwrap())
            .unwrap();
        assert_eq!(best.learned_from(), p1);
    }

    #[test]
    fn scenario_7_shorter_path_wins_and_changes_fib() {
        let (mut engine, p1, p2) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001, 65010], HOP1, &["10.0.0.0/8"]))
            .unwrap();
        let outcomes = engine
            .apply_update(p2, &announce(&[65002], HOP2, &["10.0.0.0/8"]))
            .unwrap();
        assert_eq!(
            outcomes[0].change,
            RouteChange::Replaced { fib_changed: true }
        );
        assert_eq!(
            outcomes[0].fib,
            Some(FibDirective::Install {
                prefix: "10.0.0.0/8".parse().unwrap(),
                next_hop: HOP2,
            })
        );
        let best = engine
            .loc_rib()
            .get(&"10.0.0.0/8".parse().unwrap())
            .unwrap();
        assert_eq!(best.learned_from(), p2);
    }

    #[test]
    fn withdrawal_falls_back_to_second_best() {
        let (mut engine, p1, p2) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8"]))
            .unwrap();
        engine
            .apply_update(p2, &announce(&[65002, 65010], HOP2, &["10.0.0.0/8"]))
            .unwrap();
        // Withdraw the best; the longer path from peer 2 takes over.
        let outcomes = engine.apply_update(p1, &withdraw(&["10.0.0.0/8"])).unwrap();
        assert_eq!(
            outcomes[0].change,
            RouteChange::Replaced { fib_changed: true }
        );
        let best = engine
            .loc_rib()
            .get(&"10.0.0.0/8".parse().unwrap())
            .unwrap();
        assert_eq!(best.learned_from(), p2);
    }

    #[test]
    fn withdrawing_unknown_prefix_is_a_noop() {
        let (mut engine, p1, _) = engine_with_two_peers();
        let outcomes = engine.apply_update(p1, &withdraw(&["10.0.0.0/8"])).unwrap();
        assert_eq!(outcomes[0].change, RouteChange::WithdrawnUnknown);
        assert_eq!(outcomes[0].fib, None);
    }

    #[test]
    fn reannouncing_identical_route_is_unchanged() {
        let (mut engine, p1, _) = engine_with_two_peers();
        let update = announce(&[65001], HOP1, &["10.0.0.0/8"]);
        engine.apply_update(p1, &update).unwrap();
        let outcomes = engine.apply_update(p1, &update).unwrap();
        assert_eq!(outcomes[0].change, RouteChange::Unchanged);
    }

    #[test]
    fn implicit_replacement_same_peer_new_next_hop() {
        let (mut engine, p1, _) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8"]))
            .unwrap();
        let new_hop = Ipv4Addr::new(10, 0, 0, 9);
        let outcomes = engine
            .apply_update(p1, &announce(&[65001], new_hop, &["10.0.0.0/8"]))
            .unwrap();
        assert_eq!(
            outcomes[0].change,
            RouteChange::Replaced { fib_changed: true }
        );
    }

    #[test]
    fn replacement_with_same_next_hop_needs_no_fib_write() {
        let (mut engine, p1, _) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001, 65010], HOP1, &["10.0.0.0/8"]))
            .unwrap();
        // Same peer, same next hop, shorter path: best changes but the
        // forwarding behaviour does not.
        let outcomes = engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8"]))
            .unwrap();
        assert_eq!(
            outcomes[0].change,
            RouteChange::Replaced { fib_changed: false }
        );
        assert_eq!(outcomes[0].fib, None);
    }

    #[test]
    fn as_loop_is_rejected() {
        let (mut engine, p1, _) = engine_with_two_peers();
        let outcomes = engine
            .apply_update(
                p1,
                &announce(&[65001, LOCAL_ASN.0, 65010], HOP1, &["10.0.0.0/8"]),
            )
            .unwrap();
        assert_eq!(outcomes[0].change, RouteChange::RejectedAsLoop);
        assert!(engine.loc_rib().is_empty());
        assert_eq!(engine.stats().loop_rejected, 1);
    }

    #[test]
    fn policy_rejection_is_reported() {
        use crate::{PolicyAction, PolicyRule, RouteMatcher};
        let (mut engine, p1, _) = engine_with_two_peers();
        engine.set_import_policy(PolicyEngine::from_rules([PolicyRule::new(
            RouteMatcher::PrefixWithin("10.0.0.0/8".parse().unwrap()),
            PolicyAction::Reject,
        )]));
        let outcomes = engine
            .apply_update(
                p1,
                &announce(&[65001], HOP1, &["10.1.0.0/16", "11.0.0.0/8"]),
            )
            .unwrap();
        assert_eq!(outcomes[0].change, RouteChange::RejectedByPolicy);
        assert_eq!(outcomes[1].change, RouteChange::Installed);
        assert_eq!(engine.stats().policy_rejected, 1);
    }

    #[test]
    fn unknown_peer_is_an_error() {
        let (mut engine, _, _) = engine_with_two_peers();
        let result = engine.apply_update(PeerId(99), &withdraw(&["10.0.0.0/8"]));
        assert_eq!(result, Err(RibError::UnknownPeer(99)));
    }

    #[test]
    fn remove_peer_withdraws_its_routes() {
        let (mut engine, p1, p2) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8", "11.0.0.0/8"]))
            .unwrap();
        engine
            .apply_update(p2, &announce(&[65002, 65010], HOP2, &["10.0.0.0/8"]))
            .unwrap();
        let outcomes = engine.remove_peer(p1).unwrap();
        assert_eq!(outcomes.len(), 2);
        // 10/8 falls back to peer 2; 11/8 disappears.
        let best = engine
            .loc_rib()
            .get(&"10.0.0.0/8".parse().unwrap())
            .unwrap();
        assert_eq!(best.learned_from(), p2);
        assert!(engine
            .loc_rib()
            .get(&"11.0.0.0/8".parse().unwrap())
            .is_none());
        assert!(engine.remove_peer(p1).is_err());
    }

    #[test]
    fn export_routes_excludes_learning_peer_and_transforms() {
        let (mut engine, p1, p2) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8", "11.0.0.0/8"]))
            .unwrap();
        let local_addr = Ipv4Addr::new(10, 0, 0, 1);
        // Toward peer 2: both routes, exported form.
        let toward_p2 = engine.export_routes(p2, local_addr);
        assert_eq!(toward_p2.len(), 2);
        for (_, attrs) in &toward_p2 {
            assert_eq!(attrs.next_hop(), local_addr);
            assert_eq!(attrs.as_path().first_as(), Some(LOCAL_ASN));
        }
        // Toward peer 1 (the learning peer): nothing.
        assert!(engine.export_routes(p1, local_addr).is_empty());
    }

    #[test]
    fn export_routes_shares_transformed_attribute_sets() {
        let (mut engine, p1, p2) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8", "11.0.0.0/8"]))
            .unwrap();
        let exported = engine.export_routes(p2, Ipv4Addr::new(10, 0, 0, 1));
        assert!(Arc::ptr_eq(&exported[0].1, &exported[1].1));
    }

    #[test]
    fn damping_suppresses_flapping_routes() {
        use crate::DampingConfig;
        let (mut engine, p1, _) = engine_with_two_peers();
        engine.enable_damping(DampingConfig::default());
        assert!(engine.damping_enabled());
        let ann = announce(&[65001], HOP1, &["10.0.0.0/8"]);
        let wd = withdraw(&["10.0.0.0/8"]);
        // Flap hard: each withdrawal adds 1000 penalty; after the
        // third withdrawal the penalty (~3000) exceeds the suppress
        // threshold (2000), so the next announcement is refused.
        engine.apply_update_at(p1, &ann, 0.0).unwrap();
        engine.apply_update_at(p1, &wd, 1.0).unwrap();
        engine.apply_update_at(p1, &ann, 2.0).unwrap();
        engine.apply_update_at(p1, &wd, 3.0).unwrap();
        engine.apply_update_at(p1, &ann, 4.0).unwrap();
        engine.apply_update_at(p1, &wd, 5.0).unwrap();
        let outcomes = engine.apply_update_at(p1, &ann, 6.0).unwrap();
        assert_eq!(outcomes[0].change, RouteChange::Dampened);
        assert!(engine.loc_rib().is_empty());
        assert_eq!(engine.stats().dampened, 1);

        // After several half-lives (default 900 s) the penalty decays
        // below the reuse threshold and the route is accepted again.
        let outcomes = engine.apply_update_at(p1, &ann, 6.0 + 4.0 * 900.0).unwrap();
        assert_eq!(outcomes[0].change, RouteChange::Installed);
        assert_eq!(engine.loc_rib().len(), 1);
    }

    #[test]
    fn damping_ignores_stable_routes() {
        use crate::DampingConfig;
        let (mut engine, p1, p2) = engine_with_two_peers();
        engine.enable_damping(DampingConfig::default());
        // A stable route announced once, plus a losing alternative:
        // no flaps, nothing suppressed.
        engine
            .apply_update_at(p1, &announce(&[65001], HOP1, &["10.0.0.0/8"]), 0.0)
            .unwrap();
        let outcomes = engine
            .apply_update_at(p2, &announce(&[65002, 9, 9], HOP2, &["10.0.0.0/8"]), 1.0)
            .unwrap();
        assert_eq!(outcomes[0].change, RouteChange::Unchanged);
        assert_eq!(engine.stats().dampened, 0);
        // Identical re-announcement adds no penalty.
        let outcomes = engine
            .apply_update_at(p1, &announce(&[65001], HOP1, &["10.0.0.0/8"]), 2.0)
            .unwrap();
        assert_eq!(outcomes[0].change, RouteChange::Unchanged);
        engine.disable_damping();
        assert!(!engine.damping_enabled());
    }

    #[test]
    fn stats_track_the_full_lifecycle() {
        let (mut engine, p1, _) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8"]))
            .unwrap();
        engine.apply_update(p1, &withdraw(&["10.0.0.0/8"])).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.updates, 2);
        assert_eq!(stats.announcements, 1);
        assert_eq!(stats.withdrawals, 1);
        assert_eq!(stats.fib_installs, 1);
        assert_eq!(stats.fib_removes, 1);
        assert_eq!(stats.best_changed, 2);
    }
}
