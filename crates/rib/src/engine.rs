//! The RIB engine: Adj-RIB-In, Loc-RIB, and the update-processing
//! pipeline that classifies every prefix-level change.
//!
//! Internally the engine keeps a *single* prefix-keyed table whose
//! entries hold every peer's route for that prefix plus the index of
//! the decision winner — the shared-entry layout production stacks
//! use. One hash probe per prefix then covers "look up the peer's old
//! route", "store the new one", and "consult the current best", where
//! the textbook per-peer-map-plus-Loc-RIB-map arrangement needs three.
//! [`AdjRibIn`] and [`LocRib`] remain available as borrowing views
//! over that table, so the RFC 4271 §3.2 structure is still visible at
//! the API.

use std::cmp::Ordering;
use std::sync::Arc;

use bgpbench_telemetry::{self as telemetry, EventKind, MetricId, SpanId};
use bgpbench_wire::{Asn, Prefix, RouterId, UpdateMessage};

use crate::attr_store::AttrStore;
use crate::damping::{DampingConfig, FlapKind, RouteDamper};
use crate::decision::{compare_routes, DecisionConfig};
use crate::fxhash::FxHashMap;
use crate::policy::RouteMap;
use crate::route::{PeerId, PeerInfo, Route, RouteAttributes};
use crate::RibError;

/// One peer's contribution to a prefix entry.
type PeerRoute = (PeerId, Arc<RouteAttributes>);

/// Everything the engine knows about one prefix: each peer's route
/// (the Adj-RIB-In slices) and which of them the decision process
/// selected (the Loc-RIB slice). `rest` stays empty — and therefore
/// allocation-free — in the common case of a prefix announced by a
/// single peer, so installing a fresh route costs one table slot and
/// nothing else.
#[derive(Debug, Clone)]
struct PrefixEntry {
    first: PeerRoute,
    rest: Vec<PeerRoute>,
    /// Index of the selected best: 0 is `first`, `i` is `rest[i - 1]`.
    best: u32,
}

impl PrefixEntry {
    fn new(peer: PeerId, attrs: Arc<RouteAttributes>) -> Self {
        PrefixEntry {
            first: (peer, attrs),
            rest: Vec::new(),
            best: 0,
        }
    }

    fn len(&self) -> u32 {
        1 + self.rest.len() as u32
    }

    fn route(&self, index: u32) -> &PeerRoute {
        if index == 0 {
            &self.first
        } else {
            &self.rest[index as usize - 1]
        }
    }

    fn route_mut(&mut self, index: u32) -> &mut PeerRoute {
        if index == 0 {
            &mut self.first
        } else {
            &mut self.rest[index as usize - 1]
        }
    }

    fn best_route(&self) -> &PeerRoute {
        self.route(self.best)
    }

    fn position(&self, peer: PeerId) -> Option<u32> {
        if self.first.0 == peer {
            return Some(0);
        }
        self.rest
            .iter()
            .position(|(candidate, _)| *candidate == peer)
            .map(|i| i as u32 + 1)
    }

    fn get(&self, peer: PeerId) -> Option<&Arc<RouteAttributes>> {
        if self.first.0 == peer {
            return Some(&self.first.1);
        }
        self.rest
            .iter()
            .find(|(candidate, _)| *candidate == peer)
            .map(|(_, attrs)| attrs)
    }

    fn push(&mut self, peer: PeerId, attrs: Arc<RouteAttributes>) -> u32 {
        self.rest.push((peer, attrs));
        self.rest.len() as u32
    }

    /// Removes the route at `index`, preserving the order of the
    /// others. The caller is responsible for fixing up `best`.
    fn remove(&mut self, index: u32) -> PeerRoute {
        if index == 0 {
            let promoted = self.rest.remove(0);
            std::mem::replace(&mut self.first, promoted)
        } else {
            self.rest.remove(index as usize - 1)
        }
    }

    fn into_only(self) -> PeerRoute {
        debug_assert!(self.rest.is_empty());
        self.first
    }
}

/// Re-runs the decision process over one entry's routes and returns
/// the index of the winner. First-seen wins a tie, which cannot arise
/// between distinct peers: [`compare_routes`] breaks exact attribute
/// ties by router id.
fn best_index(
    config: &DecisionConfig,
    local_asn: Asn,
    peers: &FxHashMap<PeerId, PeerInfo>,
    entry: &PrefixEntry,
) -> u32 {
    let mut best = 0;
    for index in 1..entry.len() {
        let (peer, attrs) = entry.route(index);
        let (best_peer, best_attrs) = entry.route(best);
        if compare_routes(
            config,
            local_asn,
            attrs,
            &peers[peer],
            best_attrs,
            &peers[best_peer],
        ) == Ordering::Greater
        {
            best = index;
        }
    }
    best
}

/// Lets the (non-best) route at `index` challenge the current best:
/// if it wins the comparison it becomes the best and the change is a
/// replacement; otherwise nothing changes. `compare_routes` is a total
/// order, so a route that loses to the maximum leaves it untouched —
/// this is the Scenario 5/6 "no FIB change" fast path.
fn challenge(
    config: &DecisionConfig,
    local_asn: Asn,
    peers: &FxHashMap<PeerId, PeerInfo>,
    prefix: Prefix,
    entry: &mut PrefixEntry,
    index: u32,
) -> (RouteChange, Option<FibDirective>) {
    let (peer, attrs) = entry.route(index);
    let (best_peer, best_attrs) = entry.best_route();
    if compare_routes(
        config,
        local_asn,
        attrs,
        &peers[peer],
        best_attrs,
        &peers[best_peer],
    ) != Ordering::Greater
    {
        return (RouteChange::Unchanged, None);
    }
    // One route per peer per prefix, so a winning challenger is
    // necessarily from a different peer than the previous best.
    let fib_changed = best_attrs.next_hop() != attrs.next_hop();
    let next_hop = attrs.next_hop();
    entry.best = index;
    let fib = fib_changed.then_some(FibDirective::Install { prefix, next_hop });
    (RouteChange::Replaced { fib_changed }, fib)
}

/// Classifies the transition from the previously selected
/// `(old_peer, old_attrs)` to the entry's new best.
fn classify_replacement(
    prefix: Prefix,
    old_peer: PeerId,
    old_attrs: &Arc<RouteAttributes>,
    new_peer: PeerId,
    new_attrs: &Arc<RouteAttributes>,
) -> (RouteChange, Option<FibDirective>) {
    let same_attrs = Arc::ptr_eq(old_attrs, new_attrs) || old_attrs == new_attrs;
    if old_peer == new_peer && same_attrs {
        return (RouteChange::Unchanged, None);
    }
    let fib_changed = old_attrs.next_hop() != new_attrs.next_hop();
    let fib = fib_changed.then_some(FibDirective::Install {
        prefix,
        next_hop: new_attrs.next_hop(),
    });
    (RouteChange::Replaced { fib_changed }, fib)
}

/// A read-only view of one peer's Adj-RIB-In: the unprocessed routes
/// received from that neighbor (RFC 4271 §3.2).
///
/// Obtained from [`RibEngine::adj_rib_in`]. The engine stores every
/// peer's routes in one shared prefix-keyed table; this view filters
/// it down to a single peer, so [`AdjRibIn::get`] is one lookup while
/// [`AdjRibIn::len`] and [`AdjRibIn::iter`] walk the table.
#[derive(Debug, Clone, Copy)]
pub struct AdjRibIn<'a> {
    rib: &'a FxHashMap<Prefix, PrefixEntry>,
    peer: PeerId,
}

impl<'a> AdjRibIn<'a> {
    /// Number of routes held for this peer.
    pub fn len(&self) -> usize {
        let peer = self.peer;
        self.rib
            .values()
            .filter(|entry| entry.get(peer).is_some())
            .count()
    }

    /// Whether the peer contributed no routes.
    pub fn is_empty(&self) -> bool {
        let peer = self.peer;
        !self.rib.values().any(|entry| entry.get(peer).is_some())
    }

    /// The attributes stored for `prefix`, if any.
    pub fn get(&self, prefix: &Prefix) -> Option<&'a Arc<RouteAttributes>> {
        self.rib.get(prefix).and_then(|entry| entry.get(self.peer))
    }

    /// Iterates over `(prefix, attributes)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&'a Prefix, &'a Arc<RouteAttributes>)> + 'a {
        let peer = self.peer;
        self.rib
            .iter()
            .filter_map(move |(prefix, entry)| entry.get(peer).map(|attrs| (prefix, attrs)))
    }
}

/// A read-only view of the Loc-RIB: the routes selected by the local
/// decision process (RFC 4271 §3.2). Distinct from the forwarding
/// table — the paper emphasizes that updating the FIB after a Loc-RIB
/// change is a separately costed operation.
///
/// Obtained from [`RibEngine::loc_rib`]. Every entry in the engine's
/// shared table carries its selected best, so [`LocRib::len`] is the
/// table length and [`LocRib::get`] is one lookup; it returns an owned
/// [`Route`] (two `Copy` fields plus an `Arc` bump).
#[derive(Debug, Clone, Copy)]
pub struct LocRib<'a> {
    rib: &'a FxHashMap<Prefix, PrefixEntry>,
}

impl<'a> LocRib<'a> {
    /// Number of selected routes.
    pub fn len(&self) -> usize {
        self.rib.len()
    }

    /// Whether no routes are selected.
    pub fn is_empty(&self) -> bool {
        self.rib.is_empty()
    }

    /// The selected route for `prefix`, if any.
    pub fn get(&self, prefix: &Prefix) -> Option<Route> {
        self.rib.get(prefix).map(|entry| {
            let (peer, attrs) = entry.best_route();
            Route::new(*prefix, attrs.clone(), *peer)
        })
    }

    /// Iterates over selected routes in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = Route> + 'a {
        self.rib.iter().map(|(prefix, entry)| {
            let (peer, attrs) = entry.best_route();
            Route::new(*prefix, attrs.clone(), *peer)
        })
    }
}

/// What happened to one prefix as a result of an UPDATE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteChange {
    /// A route for a previously-unknown prefix was selected.
    Installed,
    /// The best route was replaced by a different one.
    Replaced {
        /// Whether the replacement changed the next hop, requiring a
        /// forwarding-table write (Scenario 7/8 territory).
        fib_changed: bool,
    },
    /// The announcement lost the decision process (or re-announced the
    /// same best route); the Loc-RIB best is unchanged (Scenario 5/6).
    Unchanged,
    /// The last route for the prefix was withdrawn.
    Withdrawn,
    /// A withdrawal for a route this peer never announced (no-op).
    WithdrawnUnknown,
    /// Import policy rejected the route.
    RejectedByPolicy,
    /// The AS path contained the local AS (loop prevention,
    /// RFC 4271 §9.1.2).
    RejectedAsLoop,
    /// Route-flap damping suppressed the announcement (RFC 2439); the
    /// route is withheld until its penalty decays below the reuse
    /// threshold.
    Dampened,
}

/// The forwarding-table write a [`PrefixOutcome`] requires, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FibDirective {
    /// Install (or overwrite) the route.
    Install {
        /// The destination prefix.
        prefix: Prefix,
        /// The BGP next hop to forward through.
        next_hop: std::net::Ipv4Addr,
    },
    /// Remove the route.
    Remove {
        /// The destination prefix.
        prefix: Prefix,
    },
}

/// Per-prefix result of [`RibEngine::apply_update`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixOutcome {
    /// The prefix this outcome describes.
    pub prefix: Prefix,
    /// What changed.
    pub change: RouteChange,
    /// The forwarding-table write to perform, if any.
    pub fib: Option<FibDirective>,
}

/// Aggregate counters kept by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RibStats {
    /// UPDATE messages processed.
    pub updates: u64,
    /// Announced prefixes processed.
    pub announcements: u64,
    /// Withdrawn prefixes processed.
    pub withdrawals: u64,
    /// Prefixes whose best route changed.
    pub best_changed: u64,
    /// Forwarding-table installs directed.
    pub fib_installs: u64,
    /// Forwarding-table removes directed.
    pub fib_removes: u64,
    /// Routes rejected by import policy.
    pub policy_rejected: u64,
    /// Routes rejected by AS-loop detection.
    pub loop_rejected: u64,
    /// Announcements suppressed by route-flap damping.
    pub dampened: u64,
    /// Distinct attribute sets currently interned by the engine's
    /// store (a point-in-time size, not a running count).
    pub attr_store_entries: u64,
    /// Attribute groups a full-table Adj-RIB-Out export would pack:
    /// the number of distinct best-route attribute sets in the
    /// Loc-RIB (also point-in-time).
    pub adj_out_groups: u64,
}

/// A complete BGP routing-table engine: per-peer Adj-RIBs-In, the
/// decision process, import policy, and the Loc-RIB.
///
/// See the [crate-level documentation](crate) for a worked example.
#[derive(Debug)]
pub struct RibEngine {
    local_asn: Asn,
    local_id: RouterId,
    config: DecisionConfig,
    import_policy: RouteMap,
    export_policy: RouteMap,
    peers: FxHashMap<PeerId, PeerInfo>,
    rib: FxHashMap<Prefix, PrefixEntry>,
    attr_store: AttrStore,
    stats: RibStats,
    damper: Option<RouteDamper>,
}

impl RibEngine {
    /// Creates an engine for a speaker with the given AS and identifier,
    /// default decision configuration, and permit-all import policy.
    pub fn new(local_asn: Asn, local_id: RouterId) -> Self {
        RibEngine {
            local_asn,
            local_id,
            config: DecisionConfig::default(),
            import_policy: RouteMap::permit_all(),
            export_policy: RouteMap::permit_all(),
            peers: FxHashMap::default(),
            rib: FxHashMap::default(),
            attr_store: AttrStore::new(),
            stats: RibStats::default(),
            damper: None,
        }
    }

    /// Enables route-flap damping (RFC 2439).
    ///
    /// Semantics in this engine (a documented simplification of the
    /// RFC): withdrawals and attribute changes accrue penalty; while a
    /// (peer, prefix) is suppressed, announcements for it are refused
    /// admission to the Adj-RIB-In (reported as
    /// [`RouteChange::Dampened`]); withdrawals are always processed.
    /// Penalties decay against the timestamps passed to
    /// [`RibEngine::apply_update_at`].
    pub fn enable_damping(&mut self, config: DampingConfig) {
        self.damper = Some(RouteDamper::new(config));
    }

    /// Disables route-flap damping, forgetting all penalties.
    pub fn disable_damping(&mut self) {
        self.damper = None;
    }

    /// Whether damping is enabled.
    pub fn damping_enabled(&self) -> bool {
        self.damper.is_some()
    }

    /// Replaces the decision configuration.
    pub fn set_decision_config(&mut self, config: DecisionConfig) {
        self.config = config;
    }

    /// Replaces the import route-map, evaluated per prefix before the
    /// decision process.
    pub fn set_import_policy(&mut self, policy: RouteMap) {
        self.import_policy = policy;
    }

    /// The import route-map currently in force.
    pub fn import_policy(&self) -> &RouteMap {
        &self.import_policy
    }

    /// Replaces the export route-map, evaluated per prefix when routes
    /// are staged for an Adj-RIB-Out via [`RibEngine::export_routes`].
    pub fn set_export_policy(&mut self, policy: RouteMap) {
        self.export_policy = policy;
    }

    /// The export route-map currently in force.
    pub fn export_policy(&self) -> &RouteMap {
        &self.export_policy
    }

    /// The local AS number.
    pub fn local_asn(&self) -> Asn {
        self.local_asn
    }

    /// The local BGP identifier.
    pub fn local_id(&self) -> RouterId {
        self.local_id
    }

    /// Registers a neighbor and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the peer id is already registered; peer ids are chosen
    /// by the caller and must be unique.
    pub fn add_peer(&mut self, info: PeerInfo) -> PeerId {
        let id = info.id();
        assert!(!self.peers.contains_key(&id), "peer {id} registered twice");
        self.peers.insert(id, info);
        id
    }

    /// Removes a neighbor and withdraws everything learned from it, as
    /// happens when a session drops. Returns the per-prefix outcomes.
    ///
    /// # Errors
    ///
    /// Returns [`RibError::UnknownPeer`] for an unregistered id.
    pub fn remove_peer(&mut self, peer: PeerId) -> Result<Vec<PrefixOutcome>, RibError> {
        let outcomes = self.purge_peer(peer)?;
        self.peers.remove(&peer);
        Ok(outcomes)
    }

    /// Withdraws everything learned from `peer` — re-running best-path
    /// selection per affected prefix — while keeping the peer
    /// registered, as happens when a session flaps and is expected to
    /// re-establish. Returns the per-prefix outcomes (each carrying
    /// the FIB directive for the new best path, if any).
    ///
    /// Equivalent to the peer withdrawing its whole Adj-RIB-In one
    /// prefix at a time (see the `purge_equals_withdraw_all` proptest).
    ///
    /// # Errors
    ///
    /// Returns [`RibError::UnknownPeer`] for an unregistered id.
    pub fn purge_peer(&mut self, peer: PeerId) -> Result<Vec<PrefixOutcome>, RibError> {
        if !self.peers.contains_key(&peer) {
            return Err(RibError::UnknownPeer(peer.0));
        }
        let prefixes: Vec<Prefix> = self
            .rib
            .iter()
            .filter(|(_, entry)| entry.get(peer).is_some())
            .map(|(prefix, _)| *prefix)
            .collect();
        let mut outcomes = Vec::with_capacity(prefixes.len());
        for prefix in prefixes {
            outcomes.push(self.withdraw_one(peer, prefix));
        }
        Ok(outcomes)
    }

    /// The registered peers.
    pub fn peers(&self) -> impl Iterator<Item = &PeerInfo> {
        self.peers.values()
    }

    /// A view of a peer's Adj-RIB-In, or `None` for an unknown peer.
    pub fn adj_rib_in(&self, peer: PeerId) -> Option<AdjRibIn<'_>> {
        self.peers.contains_key(&peer).then_some(AdjRibIn {
            rib: &self.rib,
            peer,
        })
    }

    /// A view of the Loc-RIB.
    pub fn loc_rib(&self) -> LocRib<'_> {
        LocRib { rib: &self.rib }
    }

    /// Accumulated statistics, with the point-in-time table sizes
    /// (`attr_store_entries`, `adj_out_groups`) filled in at call time.
    pub fn stats(&self) -> RibStats {
        let mut stats = self.stats;
        stats.attr_store_entries = self.attr_store.len() as u64;
        let mut groups: crate::fxhash::FxHashSet<*const RouteAttributes> =
            crate::fxhash::FxHashSet::default();
        for entry in self.rib.values() {
            groups.insert(Arc::as_ptr(&entry.best_route().1));
        }
        stats.adj_out_groups = groups.len() as u64;
        stats
    }

    /// The path-attribute interner backing this engine's RIBs.
    pub fn attr_store(&self) -> &AttrStore {
        &self.attr_store
    }

    /// The distinct best-route attribute sets currently selected in the
    /// Loc-RIB, deduplicated by interned pointer. The sharded engine
    /// merges these across shards (by value) to compute
    /// [`RibStats::adj_out_groups`].
    pub(crate) fn distinct_best_attrs(&self) -> Vec<&Arc<RouteAttributes>> {
        let mut seen: crate::fxhash::FxHashSet<*const RouteAttributes> =
            crate::fxhash::FxHashSet::default();
        let mut out = Vec::new();
        for entry in self.rib.values() {
            let attrs = &entry.best_route().1;
            if seen.insert(Arc::as_ptr(attrs)) {
                out.push(attrs);
            }
        }
        out
    }

    /// Pre-sizes the routing table for about `prefixes` routes,
    /// avoiding incremental rehashing during a full-table load.
    /// Production BGP speakers know the expected table size (a
    /// configured maximum or the current Internet table size); calling
    /// this before the initial flood is the moral equivalent of those
    /// pre-sized allocations.
    pub fn reserve(&mut self, prefixes: usize) {
        self.rib.reserve(prefixes.saturating_sub(self.rib.len()));
    }

    /// Processes one UPDATE from `peer`: withdrawals first, then
    /// announcements, per RFC 4271 §3.1. Returns one outcome per
    /// prefix, in message order.
    ///
    /// Equivalent to [`RibEngine::apply_update_at`] at time zero —
    /// fine while damping is disabled; with damping enabled, pass real
    /// timestamps so penalties decay.
    ///
    /// # Errors
    ///
    /// Returns [`RibError::UnknownPeer`] for an unregistered peer and
    /// [`RibError::MissingMandatoryAttribute`] if the message announces
    /// NLRI without the mandatory attributes.
    pub fn apply_update(
        &mut self,
        peer: PeerId,
        update: &UpdateMessage,
    ) -> Result<Vec<PrefixOutcome>, RibError> {
        self.apply_update_at(peer, update, 0.0)
    }

    /// [`RibEngine::apply_update`] with an explicit clock (seconds)
    /// against which route-flap damping penalties decay.
    ///
    /// # Errors
    ///
    /// As for [`RibEngine::apply_update`].
    pub fn apply_update_at(
        &mut self,
        peer: PeerId,
        update: &UpdateMessage,
        now_secs: f64,
    ) -> Result<Vec<PrefixOutcome>, RibError> {
        // The disabled path pays one relaxed load and a predicted
        // branch; everything else (spans, the host clock, counter
        // deltas, journal entries) lives behind it.
        if telemetry::disabled() {
            return self.apply_update_inner(peer, update, now_secs);
        }
        let _span = telemetry::span(SpanId::RibApplyUpdate);
        let start = std::time::Instant::now();
        let attrs_before = self.attr_store.stats();
        let result = self.apply_update_inner(peer, update, now_secs);
        record_apply_telemetry(
            peer,
            update,
            start.elapsed().as_nanos() as u64,
            attrs_before,
            self.attr_store.stats(),
            self.attr_store.len() as u64,
            self.rib.len() as u64,
            result.as_deref(),
        );
        result
    }

    /// The uninstrumented body of [`RibEngine::apply_update_at`].
    fn apply_update_inner(
        &mut self,
        peer: PeerId,
        update: &UpdateMessage,
        now_secs: f64,
    ) -> Result<Vec<PrefixOutcome>, RibError> {
        if !self.peers.contains_key(&peer) {
            return Err(RibError::UnknownPeer(peer.0));
        }
        self.stats.updates += 1;
        let mut outcomes = Vec::with_capacity(update.transaction_count());
        self.apply_withdrawals(peer, update.withdrawn(), now_secs, &mut outcomes);
        if update.nlri().is_empty() {
            return Ok(outcomes);
        }
        let attrs = RouteAttributes::from_wire(update.attributes())?;
        self.apply_announcements(peer, update.nlri(), attrs, now_secs, &mut outcomes);
        Ok(outcomes)
    }

    /// Processes a batch of withdrawals in order, appending one outcome
    /// per prefix. Shared by the single-engine path and the sharded
    /// fan-out (each shard receives the message's sub-slice for its
    /// prefixes); deliberately does *not* bump [`RibStats::updates`] —
    /// the caller accounts for whole messages.
    pub(crate) fn apply_withdrawals(
        &mut self,
        peer: PeerId,
        withdrawn: &[Prefix],
        now_secs: f64,
        outcomes: &mut Vec<PrefixOutcome>,
    ) {
        for prefix in withdrawn {
            self.stats.withdrawals += 1;
            if self.damper.is_some() {
                let had_route = self
                    .rib
                    .get(prefix)
                    .is_some_and(|entry| entry.get(peer).is_some());
                if had_route {
                    if let Some(damper) = &mut self.damper {
                        damper.record_flap(peer, *prefix, FlapKind::Withdraw, now_secs);
                    }
                }
            }
            outcomes.push(self.withdraw_one(peer, *prefix));
        }
    }

    /// Processes a batch of announcements sharing one decoded attribute
    /// set, appending one outcome per prefix. Shared by the
    /// single-engine path and the sharded fan-out; like
    /// [`RibEngine::apply_withdrawals`], does not bump
    /// [`RibStats::updates`].
    pub(crate) fn apply_announcements(
        &mut self,
        peer: PeerId,
        nlri: &[Prefix],
        attrs: RouteAttributes,
        now_secs: f64,
        outcomes: &mut Vec<PrefixOutcome>,
    ) {
        // Loop prevention applies to the whole attribute set.
        if attrs.as_path().contains(self.local_asn) {
            for prefix in nlri {
                self.stats.announcements += 1;
                self.stats.loop_rejected += 1;
                outcomes.push(PrefixOutcome {
                    prefix: *prefix,
                    change: RouteChange::RejectedAsLoop,
                    fib: None,
                });
            }
            return;
        }

        // The batched hot path: the packet's attribute set is decoded
        // once (by the caller) and interned once — every prefix below
        // shares the same canonical Arc, and attribute equality against
        // stored routes degenerates to pointer identity.
        let interned = self.attr_store.intern(attrs);
        // Policy may rewrite attributes per prefix; the permit-all
        // common case reuses the interned Arc without evaluation.
        let permit_all = self.import_policy.is_empty();
        // Grow the table once per batch, not mid-loop.
        self.rib.reserve(nlri.len());

        for prefix in nlri {
            self.stats.announcements += 1;
            // Flap accounting and suppression check (RFC 2439).
            if let Some(damper) = &mut self.damper {
                let existing = self.rib.get(prefix).and_then(|entry| entry.get(peer));
                let kind = match existing {
                    // Stored routes are interned, so pointer inequality
                    // is value inequality.
                    Some(old) if !Arc::ptr_eq(old, &interned) => Some(FlapKind::AttributeChange),
                    Some(_) => None, // identical re-announcement: no flap
                    None => Some(FlapKind::Reannounce),
                };
                if let Some(kind) = kind {
                    damper.record_flap(peer, *prefix, kind, now_secs);
                }
                if damper.is_suppressed(peer, prefix, now_secs) {
                    self.stats.dampened += 1;
                    outcomes.push(PrefixOutcome {
                        prefix: *prefix,
                        change: RouteChange::Dampened,
                        fib: None,
                    });
                    continue;
                }
            }
            let final_attrs = if permit_all {
                Some(interned.clone())
            } else {
                let verdict = self
                    .import_policy
                    .evaluate(prefix, (*interned).clone())
                    .map(|rewritten| self.attr_store.intern(rewritten));
                telemetry::trace_instant(
                    telemetry::TraceEventId::PolicyEval,
                    0,
                    u64::from(verdict.is_some()),
                );
                verdict
            };
            let outcome = match final_attrs {
                Some(final_attrs) => self.announce_one(peer, *prefix, final_attrs),
                None => {
                    self.stats.policy_rejected += 1;
                    PrefixOutcome {
                        prefix: *prefix,
                        change: RouteChange::RejectedByPolicy,
                        fib: None,
                    }
                }
            };
            outcomes.push(outcome);
        }
        // Drop the batch's working reference; if nothing admitted the
        // set (all dampened/rejected), this evicts it from the store.
        self.attr_store.release(interned);
    }

    fn announce_one(
        &mut self,
        peer: PeerId,
        prefix: Prefix,
        attrs: Arc<RouteAttributes>,
    ) -> PrefixOutcome {
        use std::collections::hash_map::Entry;
        let (change, fib, old) = match self.rib.entry(prefix) {
            Entry::Vacant(slot) => {
                // First route for the prefix: it wins by definition,
                // with no comparison and no further lookup.
                let next_hop = attrs.next_hop();
                slot.insert(PrefixEntry::new(peer, attrs));
                (
                    RouteChange::Installed,
                    Some(FibDirective::Install { prefix, next_hop }),
                    None,
                )
            }
            Entry::Occupied(slot) => {
                let entry = slot.into_mut();
                match entry.position(peer) {
                    Some(index) => {
                        // Identical re-announcement (interned sets are
                        // value-equal iff pointer-equal): the route set
                        // did not change, so the decision outcome
                        // cannot change either.
                        if Arc::ptr_eq(&entry.route(index).1, &attrs) {
                            (RouteChange::Unchanged, None, None)
                        } else {
                            let old = std::mem::replace(&mut entry.route_mut(index).1, attrs);
                            let (change, fib) = if entry.best == index {
                                // The best route's attributes changed:
                                // any route may now win — rescan.
                                entry.best =
                                    best_index(&self.config, self.local_asn, &self.peers, entry);
                                let (new_peer, new_attrs) = entry.best_route();
                                classify_replacement(prefix, peer, &old, *new_peer, new_attrs)
                            } else {
                                challenge(
                                    &self.config,
                                    self.local_asn,
                                    &self.peers,
                                    prefix,
                                    entry,
                                    index,
                                )
                            };
                            (change, fib, Some(old))
                        }
                    }
                    None => {
                        let index = entry.push(peer, attrs);
                        let (change, fib) = challenge(
                            &self.config,
                            self.local_asn,
                            &self.peers,
                            prefix,
                            entry,
                            index,
                        );
                        (change, fib, None)
                    }
                }
            }
        };
        if let Some(old) = old {
            self.attr_store.release(old);
        }
        self.finish(prefix, change, fib)
    }

    fn withdraw_one(&mut self, peer: PeerId, prefix: Prefix) -> PrefixOutcome {
        use std::collections::hash_map::Entry;
        let Entry::Occupied(slot) = self.rib.entry(prefix) else {
            return PrefixOutcome {
                prefix,
                change: RouteChange::WithdrawnUnknown,
                fib: None,
            };
        };
        let Some(index) = slot.get().position(peer) else {
            return PrefixOutcome {
                prefix,
                change: RouteChange::WithdrawnUnknown,
                fib: None,
            };
        };
        let (change, fib, old) = if slot.get().len() == 1 {
            // Last route for the prefix: drop the whole entry.
            let (_, old) = slot.remove().into_only();
            (
                RouteChange::Withdrawn,
                Some(FibDirective::Remove { prefix }),
                old,
            )
        } else {
            let entry = slot.into_mut();
            let was_best = entry.best == index;
            let (_, old) = entry.remove(index);
            let (change, fib) = if was_best {
                entry.best = best_index(&self.config, self.local_asn, &self.peers, entry);
                let (new_peer, new_attrs) = entry.best_route();
                classify_replacement(prefix, peer, &old, *new_peer, new_attrs)
            } else {
                // Removing a losing route cannot change the best; just
                // repair the index shifted by the removal.
                if entry.best > index {
                    entry.best -= 1;
                }
                (RouteChange::Unchanged, None)
            };
            (change, fib, old)
        };
        self.attr_store.release(old);
        self.finish(prefix, change, fib)
    }

    /// Folds a classified change into the statistics and wraps it in
    /// the per-prefix outcome.
    fn finish(
        &mut self,
        prefix: Prefix,
        change: RouteChange,
        fib: Option<FibDirective>,
    ) -> PrefixOutcome {
        match &fib {
            Some(FibDirective::Install { .. }) => self.stats.fib_installs += 1,
            Some(FibDirective::Remove { .. }) => self.stats.fib_removes += 1,
            None => {}
        }
        if !matches!(change, RouteChange::Unchanged) {
            self.stats.best_changed += 1;
        }
        PrefixOutcome {
            prefix,
            change,
            fib,
        }
    }

    /// Computes the routes to advertise to `peer`: every Loc-RIB best
    /// not learned from that peer, passed through the export route-map,
    /// in exported form (own AS prepended, next hop set to
    /// `local_address`). Attribute sets shared by many prefixes are
    /// transformed once; routes the export policy denies are omitted.
    pub fn export_routes(
        &self,
        peer: PeerId,
        local_address: std::net::Ipv4Addr,
    ) -> Vec<(Prefix, Arc<RouteAttributes>)> {
        let _span = telemetry::span(SpanId::ExportRoutes);
        let mut cache: FxHashMap<*const RouteAttributes, Arc<RouteAttributes>> =
            FxHashMap::default();
        let permit_all = self.export_policy.is_empty();
        // The export route-map can rewrite per prefix, which would break
        // the pointer-keyed sharing above; a value-keyed table re-groups
        // rewritten sets so Adj-RIB-Out packing still sees shared Arcs.
        let mut rewritten_cache: FxHashMap<RouteAttributes, Arc<RouteAttributes>> =
            FxHashMap::default();
        let mut routes: Vec<(Prefix, Arc<RouteAttributes>)> = self
            .rib
            .iter()
            .filter(|(_, entry)| entry.best_route().0 != peer)
            .filter_map(|(prefix, entry)| {
                let attrs = &entry.best_route().1;
                let exported = cache
                    .entry(Arc::as_ptr(attrs))
                    .or_insert_with(|| Arc::new(attrs.exported(self.local_asn, local_address)))
                    .clone();
                if permit_all {
                    return Some((*prefix, exported));
                }
                let rewritten = self.export_policy.evaluate(prefix, (*exported).clone());
                telemetry::trace_instant(
                    telemetry::TraceEventId::PolicyEval,
                    1,
                    u64::from(rewritten.is_some()),
                );
                let rewritten = rewritten?;
                let shared = match rewritten_cache.get(&rewritten) {
                    Some(arc) => arc.clone(),
                    None => {
                        let arc = Arc::new(rewritten.clone());
                        rewritten_cache.insert(rewritten, Arc::clone(&arc));
                        arc
                    }
                };
                Some((*prefix, shared))
            })
            .collect();
        routes.sort_by_key(|(prefix, _)| *prefix);
        routes
    }
}

/// Records the per-update metrics, counter deltas, gauges, and
/// journal events for one applied UPDATE. Shared by
/// [`RibEngine::apply_update_at`] and the sharded engine's fan-out
/// path so both emit an identical telemetry shape.
#[allow(clippy::too_many_arguments)]
pub(crate) fn record_apply_telemetry(
    peer: PeerId,
    update: &UpdateMessage,
    host_ns: u64,
    attrs_before: crate::attr_store::AttrStoreStats,
    attrs_after: crate::attr_store::AttrStoreStats,
    attr_store_entries: u64,
    loc_rib_prefixes: u64,
    result: Result<&[PrefixOutcome], &RibError>,
) {
    telemetry::observe(MetricId::ApplyHostNs, host_ns);
    telemetry::observe(MetricId::UpdatePrefixes, update.transaction_count() as u64);
    telemetry::incr(MetricId::RibUpdates);
    telemetry::add(
        MetricId::AttrStoreHits,
        attrs_after.hits - attrs_before.hits,
    );
    telemetry::add(
        MetricId::AttrStoreMisses,
        attrs_after.misses - attrs_before.misses,
    );
    telemetry::add(
        MetricId::AttrStoreReleased,
        attrs_after.released - attrs_before.released,
    );
    telemetry::gauge(MetricId::AttrStoreEntries, attr_store_entries);
    telemetry::gauge(MetricId::LocRibPrefixes, loc_rib_prefixes);
    if let Ok(outcomes) = result {
        telemetry::add(MetricId::RibPrefixes, outcomes.len() as u64);
        for outcome in outcomes {
            let packed =
                telemetry::pack_prefix(outcome.prefix.network_bits(), outcome.prefix.len());
            let peer_bits = u64::from(peer.0);
            match outcome.change {
                RouteChange::Installed => {
                    telemetry::incr(MetricId::RibBestChanged);
                    telemetry::event(EventKind::BestInstalled, packed, peer_bits);
                }
                RouteChange::Replaced { .. } => {
                    telemetry::incr(MetricId::RibBestChanged);
                    telemetry::event(EventKind::BestReplaced, packed, peer_bits);
                }
                RouteChange::Withdrawn => {
                    telemetry::incr(MetricId::RibBestChanged);
                    telemetry::event(EventKind::BestWithdrawn, packed, peer_bits);
                }
                RouteChange::Dampened => {
                    telemetry::incr(MetricId::RibDampened);
                    telemetry::event(EventKind::Dampened, packed, peer_bits);
                }
                RouteChange::Unchanged
                | RouteChange::WithdrawnUnknown
                | RouteChange::RejectedByPolicy
                | RouteChange::RejectedAsLoop => {}
            }
        }
    }
}

/// Records the train-path equivalent of [`record_apply_telemetry`]:
/// one `RibApplyUpdate` span occurrence plus one per-update metric
/// set per message, so a multi-shard train is indistinguishable in
/// telemetry *counts* from sequential application (the span-count
/// parity the fig. 3–4 breakdown relies on). The train's wall time is
/// attributed evenly across its updates; attribute-store deltas are
/// charged to the first update, since the train decodes and interns
/// up front.
#[allow(clippy::too_many_arguments)]
pub(crate) fn record_train_telemetry(
    peer: PeerId,
    updates: &[UpdateMessage],
    host_ns: u64,
    attrs_before: crate::attr_store::AttrStoreStats,
    attrs_after: crate::attr_store::AttrStoreStats,
    attr_store_entries: u64,
    loc_rib_prefixes: u64,
    merged: &[Vec<PrefixOutcome>],
) {
    let n = updates.len() as u64;
    if n == 0 {
        return;
    }
    let per_update_ns = host_ns / n;
    let remainder_ns = host_ns % n;
    for (index, update) in updates.iter().enumerate() {
        let slice_ns = per_update_ns + if index == 0 { remainder_ns } else { 0 };
        let (before, after) = if index == 0 {
            (attrs_before, attrs_after)
        } else {
            (attrs_after, attrs_after)
        };
        // Virtual duration is zero, matching a span that opens and
        // closes within one simulator tick.
        telemetry::global().span_record(SpanId::RibApplyUpdate, slice_ns, 0);
        record_apply_telemetry(
            peer,
            update,
            slice_ns,
            before,
            after,
            attr_store_entries,
            loc_rib_prefixes,
            Ok(merged.get(index).map(Vec::as_slice).unwrap_or(&[])),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpbench_wire::{AsPath, Origin, PathAttribute};
    use std::net::Ipv4Addr;

    const LOCAL_ASN: Asn = Asn(65000);

    fn engine_with_two_peers() -> (RibEngine, PeerId, PeerId) {
        let mut engine = RibEngine::new(LOCAL_ASN, RouterId(1));
        let p1 = engine.add_peer(PeerInfo::new(
            PeerId(1),
            Asn(65001),
            RouterId(0x0A000002),
            Ipv4Addr::new(10, 0, 0, 2),
        ));
        let p2 = engine.add_peer(PeerInfo::new(
            PeerId(2),
            Asn(65002),
            RouterId(0x0A000003),
            Ipv4Addr::new(10, 0, 0, 3),
        ));
        (engine, p1, p2)
    }

    fn announce(path: &[u16], next_hop: Ipv4Addr, prefixes: &[&str]) -> UpdateMessage {
        let mut builder = UpdateMessage::builder()
            .attribute(PathAttribute::Origin(Origin::Igp))
            .attribute(PathAttribute::AsPath(AsPath::from_sequence(
                path.iter().copied().map(Asn),
            )))
            .attribute(PathAttribute::NextHop(next_hop));
        for prefix in prefixes {
            builder = builder.announce(prefix.parse().unwrap());
        }
        builder.build()
    }

    fn withdraw(prefixes: &[&str]) -> UpdateMessage {
        UpdateMessage::builder()
            .withdraw_all(prefixes.iter().map(|p| p.parse().unwrap()))
            .build()
    }

    const HOP1: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const HOP2: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);

    #[test]
    fn scenario_1_startup_announcements_install() {
        let (mut engine, p1, _) = engine_with_two_peers();
        let outcomes = engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8", "11.0.0.0/8"]))
            .unwrap();
        assert_eq!(outcomes.len(), 2);
        for outcome in &outcomes {
            assert_eq!(outcome.change, RouteChange::Installed);
            assert!(matches!(outcome.fib, Some(FibDirective::Install { .. })));
        }
        assert_eq!(engine.loc_rib().len(), 2);
        assert_eq!(engine.stats().fib_installs, 2);
    }

    #[test]
    fn scenario_3_withdrawals_remove_from_fib() {
        let (mut engine, p1, _) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8"]))
            .unwrap();
        let outcomes = engine.apply_update(p1, &withdraw(&["10.0.0.0/8"])).unwrap();
        assert_eq!(outcomes[0].change, RouteChange::Withdrawn);
        assert_eq!(
            outcomes[0].fib,
            Some(FibDirective::Remove {
                prefix: "10.0.0.0/8".parse().unwrap()
            })
        );
        assert!(engine.loc_rib().is_empty());
    }

    #[test]
    fn scenario_5_longer_path_loses_without_fib_change() {
        let (mut engine, p1, p2) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8"]))
            .unwrap();
        // Same prefix, longer AS path, from the other speaker.
        let outcomes = engine
            .apply_update(p2, &announce(&[65002, 65010, 65011], HOP2, &["10.0.0.0/8"]))
            .unwrap();
        assert_eq!(outcomes[0].change, RouteChange::Unchanged);
        assert_eq!(outcomes[0].fib, None);
        // But it is retained in the Adj-RIB-In.
        assert_eq!(engine.adj_rib_in(p2).unwrap().len(), 1);
        // The best is still peer 1's route.
        let best = engine
            .loc_rib()
            .get(&"10.0.0.0/8".parse().unwrap())
            .unwrap();
        assert_eq!(best.learned_from(), p1);
    }

    #[test]
    fn scenario_7_shorter_path_wins_and_changes_fib() {
        let (mut engine, p1, p2) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001, 65010], HOP1, &["10.0.0.0/8"]))
            .unwrap();
        let outcomes = engine
            .apply_update(p2, &announce(&[65002], HOP2, &["10.0.0.0/8"]))
            .unwrap();
        assert_eq!(
            outcomes[0].change,
            RouteChange::Replaced { fib_changed: true }
        );
        assert_eq!(
            outcomes[0].fib,
            Some(FibDirective::Install {
                prefix: "10.0.0.0/8".parse().unwrap(),
                next_hop: HOP2,
            })
        );
        let best = engine
            .loc_rib()
            .get(&"10.0.0.0/8".parse().unwrap())
            .unwrap();
        assert_eq!(best.learned_from(), p2);
    }

    #[test]
    fn withdrawal_falls_back_to_second_best() {
        let (mut engine, p1, p2) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8"]))
            .unwrap();
        engine
            .apply_update(p2, &announce(&[65002, 65010], HOP2, &["10.0.0.0/8"]))
            .unwrap();
        // Withdraw the best; the longer path from peer 2 takes over.
        let outcomes = engine.apply_update(p1, &withdraw(&["10.0.0.0/8"])).unwrap();
        assert_eq!(
            outcomes[0].change,
            RouteChange::Replaced { fib_changed: true }
        );
        let best = engine
            .loc_rib()
            .get(&"10.0.0.0/8".parse().unwrap())
            .unwrap();
        assert_eq!(best.learned_from(), p2);
    }

    #[test]
    fn withdrawing_unknown_prefix_is_a_noop() {
        let (mut engine, p1, _) = engine_with_two_peers();
        let outcomes = engine.apply_update(p1, &withdraw(&["10.0.0.0/8"])).unwrap();
        assert_eq!(outcomes[0].change, RouteChange::WithdrawnUnknown);
        assert_eq!(outcomes[0].fib, None);
    }

    #[test]
    fn reannouncing_identical_route_is_unchanged() {
        let (mut engine, p1, _) = engine_with_two_peers();
        let update = announce(&[65001], HOP1, &["10.0.0.0/8"]);
        engine.apply_update(p1, &update).unwrap();
        let outcomes = engine.apply_update(p1, &update).unwrap();
        assert_eq!(outcomes[0].change, RouteChange::Unchanged);
    }

    #[test]
    fn implicit_replacement_same_peer_new_next_hop() {
        let (mut engine, p1, _) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8"]))
            .unwrap();
        let new_hop = Ipv4Addr::new(10, 0, 0, 9);
        let outcomes = engine
            .apply_update(p1, &announce(&[65001], new_hop, &["10.0.0.0/8"]))
            .unwrap();
        assert_eq!(
            outcomes[0].change,
            RouteChange::Replaced { fib_changed: true }
        );
    }

    #[test]
    fn replacement_with_same_next_hop_needs_no_fib_write() {
        let (mut engine, p1, _) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001, 65010], HOP1, &["10.0.0.0/8"]))
            .unwrap();
        // Same peer, same next hop, shorter path: best changes but the
        // forwarding behaviour does not.
        let outcomes = engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8"]))
            .unwrap();
        assert_eq!(
            outcomes[0].change,
            RouteChange::Replaced { fib_changed: false }
        );
        assert_eq!(outcomes[0].fib, None);
    }

    #[test]
    fn as_loop_is_rejected() {
        let (mut engine, p1, _) = engine_with_two_peers();
        let outcomes = engine
            .apply_update(
                p1,
                &announce(&[65001, LOCAL_ASN.0, 65010], HOP1, &["10.0.0.0/8"]),
            )
            .unwrap();
        assert_eq!(outcomes[0].change, RouteChange::RejectedAsLoop);
        assert!(engine.loc_rib().is_empty());
        assert_eq!(engine.stats().loop_rejected, 1);
    }

    #[test]
    fn policy_rejection_is_reported() {
        use crate::policy::{MatchClause, PrefixList, PrefixMatch, RouteMapEntry};
        let (mut engine, p1, _) = engine_with_two_peers();
        engine.set_import_policy(RouteMap::new([
            RouteMapEntry::deny(10).matching(MatchClause::Prefix(PrefixList::new([(
                true,
                PrefixMatch::within("10.0.0.0/8".parse().unwrap()),
            )]))),
            RouteMapEntry::permit(20),
        ]));
        let outcomes = engine
            .apply_update(
                p1,
                &announce(&[65001], HOP1, &["10.1.0.0/16", "11.0.0.0/8"]),
            )
            .unwrap();
        assert_eq!(outcomes[0].change, RouteChange::RejectedByPolicy);
        assert_eq!(outcomes[1].change, RouteChange::Installed);
        assert_eq!(engine.stats().policy_rejected, 1);
    }

    #[test]
    fn import_policy_rewrites_are_interned() {
        use crate::policy::{RouteMapEntry, SetClause};
        let (mut engine, p1, p2) = engine_with_two_peers();
        engine.set_import_policy(RouteMap::new([
            RouteMapEntry::permit(10).set(SetClause::LocalPref(300))
        ]));
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8"]))
            .unwrap();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["11.0.0.0/8"]))
            .unwrap();
        let _ = p2;
        let rib = engine.loc_rib();
        let a = rib.get(&"10.0.0.0/8".parse().unwrap()).unwrap();
        let b = rib.get(&"11.0.0.0/8".parse().unwrap()).unwrap();
        assert_eq!(a.attrs().local_pref(), Some(300));
        // The rewritten sets are re-interned: equal values share one Arc.
        assert!(Arc::ptr_eq(a.attrs(), b.attrs()));
    }

    #[test]
    fn export_policy_filters_and_rewrites() {
        use crate::policy::{MatchClause, PrefixList, PrefixMatch, RouteMapEntry, SetClause};
        let (mut engine, p1, p2) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8", "11.0.0.0/8"]))
            .unwrap();
        engine.set_export_policy(RouteMap::new([
            RouteMapEntry::deny(10).matching(MatchClause::Prefix(PrefixList::new([(
                true,
                PrefixMatch::exact("11.0.0.0/8".parse().unwrap()),
            )]))),
            RouteMapEntry::permit(20).set(SetClause::AddCommunity(0x0001_0002)),
        ]));
        let exported = engine.export_routes(p2, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(exported.len(), 1);
        let (prefix, attrs) = &exported[0];
        assert_eq!(*prefix, "10.0.0.0/8".parse().unwrap());
        assert!(attrs.communities().contains(&0x0001_0002));
        // Export transform still applied under the policy.
        assert_eq!(attrs.as_path().first_as(), Some(LOCAL_ASN));
    }

    #[test]
    fn unknown_peer_is_an_error() {
        let (mut engine, _, _) = engine_with_two_peers();
        let result = engine.apply_update(PeerId(99), &withdraw(&["10.0.0.0/8"]));
        assert_eq!(result, Err(RibError::UnknownPeer(99)));
    }

    #[test]
    fn remove_peer_withdraws_its_routes() {
        let (mut engine, p1, p2) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8", "11.0.0.0/8"]))
            .unwrap();
        engine
            .apply_update(p2, &announce(&[65002, 65010], HOP2, &["10.0.0.0/8"]))
            .unwrap();
        let outcomes = engine.remove_peer(p1).unwrap();
        assert_eq!(outcomes.len(), 2);
        // 10/8 falls back to peer 2; 11/8 disappears.
        let best = engine
            .loc_rib()
            .get(&"10.0.0.0/8".parse().unwrap())
            .unwrap();
        assert_eq!(best.learned_from(), p2);
        assert!(engine
            .loc_rib()
            .get(&"11.0.0.0/8".parse().unwrap())
            .is_none());
        assert!(engine.remove_peer(p1).is_err());
    }

    #[test]
    fn export_routes_excludes_learning_peer_and_transforms() {
        let (mut engine, p1, p2) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8", "11.0.0.0/8"]))
            .unwrap();
        let local_addr = Ipv4Addr::new(10, 0, 0, 1);
        // Toward peer 2: both routes, exported form.
        let toward_p2 = engine.export_routes(p2, local_addr);
        assert_eq!(toward_p2.len(), 2);
        for (_, attrs) in &toward_p2 {
            assert_eq!(attrs.next_hop(), local_addr);
            assert_eq!(attrs.as_path().first_as(), Some(LOCAL_ASN));
        }
        // Toward peer 1 (the learning peer): nothing.
        assert!(engine.export_routes(p1, local_addr).is_empty());
    }

    #[test]
    fn export_routes_shares_transformed_attribute_sets() {
        let (mut engine, p1, p2) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8", "11.0.0.0/8"]))
            .unwrap();
        let exported = engine.export_routes(p2, Ipv4Addr::new(10, 0, 0, 1));
        assert!(Arc::ptr_eq(&exported[0].1, &exported[1].1));
    }

    #[test]
    fn damping_suppresses_flapping_routes() {
        use crate::DampingConfig;
        let (mut engine, p1, _) = engine_with_two_peers();
        engine.enable_damping(DampingConfig::default());
        assert!(engine.damping_enabled());
        let ann = announce(&[65001], HOP1, &["10.0.0.0/8"]);
        let wd = withdraw(&["10.0.0.0/8"]);
        // Flap hard: each withdrawal adds 1000 penalty; after the
        // third withdrawal the penalty (~3000) exceeds the suppress
        // threshold (2000), so the next announcement is refused.
        engine.apply_update_at(p1, &ann, 0.0).unwrap();
        engine.apply_update_at(p1, &wd, 1.0).unwrap();
        engine.apply_update_at(p1, &ann, 2.0).unwrap();
        engine.apply_update_at(p1, &wd, 3.0).unwrap();
        engine.apply_update_at(p1, &ann, 4.0).unwrap();
        engine.apply_update_at(p1, &wd, 5.0).unwrap();
        let outcomes = engine.apply_update_at(p1, &ann, 6.0).unwrap();
        assert_eq!(outcomes[0].change, RouteChange::Dampened);
        assert!(engine.loc_rib().is_empty());
        assert_eq!(engine.stats().dampened, 1);

        // After several half-lives (default 900 s) the penalty decays
        // below the reuse threshold and the route is accepted again.
        let outcomes = engine.apply_update_at(p1, &ann, 6.0 + 4.0 * 900.0).unwrap();
        assert_eq!(outcomes[0].change, RouteChange::Installed);
        assert_eq!(engine.loc_rib().len(), 1);
    }

    #[test]
    fn damping_ignores_stable_routes() {
        use crate::DampingConfig;
        let (mut engine, p1, p2) = engine_with_two_peers();
        engine.enable_damping(DampingConfig::default());
        // A stable route announced once, plus a losing alternative:
        // no flaps, nothing suppressed.
        engine
            .apply_update_at(p1, &announce(&[65001], HOP1, &["10.0.0.0/8"]), 0.0)
            .unwrap();
        let outcomes = engine
            .apply_update_at(p2, &announce(&[65002, 9, 9], HOP2, &["10.0.0.0/8"]), 1.0)
            .unwrap();
        assert_eq!(outcomes[0].change, RouteChange::Unchanged);
        assert_eq!(engine.stats().dampened, 0);
        // Identical re-announcement adds no penalty.
        let outcomes = engine
            .apply_update_at(p1, &announce(&[65001], HOP1, &["10.0.0.0/8"]), 2.0)
            .unwrap();
        assert_eq!(outcomes[0].change, RouteChange::Unchanged);
        engine.disable_damping();
        assert!(!engine.damping_enabled());
    }

    #[test]
    fn stats_track_the_full_lifecycle() {
        let (mut engine, p1, _) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8"]))
            .unwrap();
        engine.apply_update(p1, &withdraw(&["10.0.0.0/8"])).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.updates, 2);
        assert_eq!(stats.announcements, 1);
        assert_eq!(stats.withdrawals, 1);
        assert_eq!(stats.fib_installs, 1);
        assert_eq!(stats.fib_removes, 1);
        assert_eq!(stats.best_changed, 2);
    }

    #[test]
    fn attributes_are_interned_across_prefixes_and_messages() {
        let (mut engine, p1, _) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8", "11.0.0.0/8"]))
            .unwrap();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["12.0.0.0/8"]))
            .unwrap();
        // Three prefixes, one attribute set: one allocation.
        assert_eq!(engine.attr_store().len(), 1);
        let rib = engine.adj_rib_in(p1).unwrap();
        let a = rib.get(&"10.0.0.0/8".parse().unwrap()).unwrap();
        let b = rib.get(&"12.0.0.0/8".parse().unwrap()).unwrap();
        assert!(Arc::ptr_eq(a, b));
        // The Loc-RIB best shares the same allocation.
        let best = engine
            .loc_rib()
            .get(&"10.0.0.0/8".parse().unwrap())
            .unwrap();
        assert!(Arc::ptr_eq(best.attrs(), a));
    }

    #[test]
    fn attr_store_drains_after_withdraw_storm() {
        let (mut engine, p1, p2) = engine_with_two_peers();
        let prefixes: Vec<String> = (0..64).map(|i| format!("10.{i}.0.0/16")).collect();
        let prefix_refs: Vec<&str> = prefixes.iter().map(String::as_str).collect();
        for round in 0..10u16 {
            engine
                .apply_update(p1, &announce(&[65001, 64000 + round], HOP1, &prefix_refs))
                .unwrap();
            engine
                .apply_update(p2, &announce(&[65002, 64000 + round], HOP2, &prefix_refs))
                .unwrap();
            engine.apply_update(p1, &withdraw(&prefix_refs)).unwrap();
            engine.apply_update(p2, &withdraw(&prefix_refs)).unwrap();
        }
        // Every round's attribute sets were fully withdrawn: the store
        // must not accumulate dead entries.
        assert_eq!(engine.attr_store().len(), 0);
        assert!(engine.loc_rib().is_empty());
        assert_eq!(engine.attr_store().stats().released, 20);
    }

    #[test]
    fn remove_peer_releases_interned_attributes() {
        let (mut engine, p1, p2) = engine_with_two_peers();
        engine
            .apply_update(p1, &announce(&[65001], HOP1, &["10.0.0.0/8"]))
            .unwrap();
        engine
            .apply_update(p2, &announce(&[65002, 65001], HOP2, &["10.0.0.0/8"]))
            .unwrap();
        assert_eq!(engine.attr_store().len(), 2);
        engine.remove_peer(p1).unwrap();
        engine.remove_peer(p2).unwrap();
        assert_eq!(engine.attr_store().len(), 0);
    }
}
