use std::error::Error;
use std::fmt;

/// Errors produced while processing routes into the RIBs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RibError {
    /// The update announced prefixes but lacked a mandatory attribute
    /// (RFC 4271 §6.3 "missing well-known attribute").
    MissingMandatoryAttribute {
        /// Name of the missing attribute.
        attribute: &'static str,
    },
    /// An operation referenced a peer the engine does not know.
    UnknownPeer(u32),
    /// A peer was registered twice.
    DuplicatePeer(u32),
}

impl fmt::Display for RibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RibError::MissingMandatoryAttribute { attribute } => {
                write!(f, "update missing mandatory attribute {attribute}")
            }
            RibError::UnknownPeer(id) => write!(f, "unknown peer {id}"),
            RibError::DuplicatePeer(id) => write!(f, "peer {id} already registered"),
        }
    }
}

impl Error for RibError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        assert_eq!(
            RibError::MissingMandatoryAttribute {
                attribute: "AS_PATH"
            }
            .to_string(),
            "update missing mandatory attribute AS_PATH"
        );
        assert_eq!(RibError::UnknownPeer(3).to_string(), "unknown peer 3");
    }
}
