//! Import/export routing policy: route-maps over compiled match
//! structures.
//!
//! The paper (§III.A) stresses that BGP route selection "is always
//! policy-based". This module provides the route-map engine the
//! benchmark's router models evaluate between the Adj-RIB-In and the
//! decision process (import) and between the Loc-RIB and each
//! Adj-RIB-Out (export): ordered permit/deny entries, each pairing a
//! conjunction of match clauses with a list of set actions.
//!
//! Semantics follow the vendor convention:
//!
//! * entries are evaluated in ascending sequence order; the **first
//!   entry whose clauses all match** decides the route;
//! * a `permit` entry applies its set actions and accepts;
//! * a `deny` entry rejects;
//! * a non-empty route-map ends in an **implicit deny**; the empty
//!   route-map ([`RouteMap::permit_all`]) accepts everything untouched.
//!
//! Match structures are compiled at construction (see
//! [`PrefixList`]), so the per-route cost on the hot path is the
//! ordered scan itself — measurable, not accidental.

mod prefix_list;

pub use prefix_list::{PrefixList, PrefixMatch};

use std::net::Ipv4Addr;

use bgpbench_wire::{Asn, LargeCommunity, Origin, Prefix};

use crate::route::RouteAttributes;

/// One condition of a route-map entry; an entry matches when **all**
/// its clauses do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchClause {
    /// The prefix satisfies a compiled prefix list.
    Prefix(PrefixList),
    /// The AS path contains the given AS anywhere.
    AsPathContains(Asn),
    /// The route was originated by the given AS.
    OriginatedBy(Asn),
    /// The AS-path comparison length is at most the given bound.
    PathLengthAtMost(u8),
    /// The ORIGIN attribute equals the given value.
    Origin(Origin),
    /// The route carries the given community.
    HasCommunity(u32),
    /// The route carries at least one of the given communities.
    HasAnyCommunity(Vec<u32>),
    /// The route carries the given large community (RFC 8092).
    HasLargeCommunity(LargeCommunity),
    /// The MULTI_EXIT_DISC is present and at least the given value.
    MedAtLeast(u32),
}

impl MatchClause {
    /// Whether a route satisfies this clause.
    pub fn matches(&self, prefix: &Prefix, attrs: &RouteAttributes) -> bool {
        match self {
            MatchClause::Prefix(list) => list.permits(prefix),
            MatchClause::AsPathContains(asn) => attrs.as_path().contains(*asn),
            MatchClause::OriginatedBy(asn) => attrs.as_path().origin_as() == Some(*asn),
            MatchClause::PathLengthAtMost(bound) => attrs.as_path().length() <= usize::from(*bound),
            MatchClause::Origin(origin) => attrs.origin() == *origin,
            MatchClause::HasCommunity(community) => attrs.communities().contains(community),
            MatchClause::HasAnyCommunity(communities) => communities
                .iter()
                .any(|community| attrs.communities().contains(community)),
            MatchClause::HasLargeCommunity(lc) => attrs.large_communities().contains(lc),
            MatchClause::MedAtLeast(bound) => attrs.med().is_some_and(|med| med >= *bound),
        }
    }
}

/// One action a matching `permit` entry applies to the route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetClause {
    /// Overwrite LOCAL_PREF.
    LocalPref(u32),
    /// Overwrite MED.
    Med(u32),
    /// Overwrite NEXT_HOP.
    NextHop(Ipv4Addr),
    /// Prepend the AS the given number of times.
    PrependAsPath(Asn, u8),
    /// Attach a community (idempotent).
    AddCommunity(u32),
    /// Remove a community if present.
    DeleteCommunity(u32),
    /// Replace the whole community list.
    SetCommunities(Vec<u32>),
    /// Attach a large community (idempotent).
    AddLargeCommunity(LargeCommunity),
    /// Remove every large community with the given global
    /// administrator.
    DeleteLargeCommunitiesOf(u32),
}

impl SetClause {
    fn apply(&self, attrs: &mut RouteAttributes) {
        match self {
            SetClause::LocalPref(value) => attrs.set_local_pref(*value),
            SetClause::Med(value) => attrs.set_med(*value),
            SetClause::NextHop(addr) => attrs.set_next_hop(*addr),
            SetClause::PrependAsPath(asn, count) => attrs.prepend_as(*asn, *count),
            SetClause::AddCommunity(community) => attrs.add_community(*community),
            SetClause::DeleteCommunity(community) => attrs.delete_community(*community),
            SetClause::SetCommunities(communities) => {
                attrs.set_communities(communities.clone());
            }
            SetClause::AddLargeCommunity(lc) => attrs.add_large_community(*lc),
            SetClause::DeleteLargeCommunitiesOf(global) => {
                attrs.delete_large_communities_of(*global);
            }
        }
    }
}

/// One sequenced permit/deny entry of a [`RouteMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteMapEntry {
    seq: u16,
    permit: bool,
    matches: Vec<MatchClause>,
    sets: Vec<SetClause>,
}

impl RouteMapEntry {
    /// Starts a `permit` entry at the given sequence number.
    pub fn permit(seq: u16) -> Self {
        RouteMapEntry {
            seq,
            permit: true,
            matches: Vec::new(),
            sets: Vec::new(),
        }
    }

    /// Starts a `deny` entry at the given sequence number.
    pub fn deny(seq: u16) -> Self {
        RouteMapEntry {
            seq,
            permit: false,
            matches: Vec::new(),
            sets: Vec::new(),
        }
    }

    /// Adds a match clause (the entry matches when all clauses do; an
    /// entry with no clauses matches every route).
    pub fn matching(mut self, clause: MatchClause) -> Self {
        self.matches.push(clause);
        self
    }

    /// Adds a set action (applied only by `permit` entries).
    pub fn set(mut self, clause: SetClause) -> Self {
        self.sets.push(clause);
        self
    }

    /// The sequence number.
    pub fn seq(&self) -> u16 {
        self.seq
    }

    /// Whether this entry permits.
    pub fn is_permit(&self) -> bool {
        self.permit
    }

    /// The match clauses.
    pub fn match_clauses(&self) -> &[MatchClause] {
        &self.matches
    }

    /// The set actions.
    pub fn set_clauses(&self) -> &[SetClause] {
        &self.sets
    }

    fn matches_route(&self, prefix: &Prefix, attrs: &RouteAttributes) -> bool {
        self.matches.iter().all(|m| m.matches(prefix, attrs))
    }
}

/// A route-map: the ordered permit/deny policy evaluated per route at
/// import and export.
///
/// ```
/// use bgpbench_rib::{MatchClause, RouteAttributes, RouteMap, RouteMapEntry, SetClause};
/// use bgpbench_wire::{AsPath, Asn, Origin};
/// use std::net::Ipv4Addr;
///
/// let map = RouteMap::new([
///     RouteMapEntry::deny(10).matching(MatchClause::AsPathContains(Asn(666))),
///     RouteMapEntry::permit(20).set(SetClause::LocalPref(200)),
/// ]);
/// let bad = RouteAttributes::new(
///     Origin::Igp,
///     AsPath::from_sequence([Asn(666)]),
///     Ipv4Addr::new(10, 0, 0, 1),
/// );
/// let good = RouteAttributes::new(
///     Origin::Igp,
///     AsPath::from_sequence([Asn(65001)]),
///     Ipv4Addr::new(10, 0, 0, 1),
/// );
/// let prefix = "10.0.0.0/8".parse().unwrap();
/// assert_eq!(map.evaluate(&prefix, bad), None);
/// assert_eq!(
///     map.evaluate(&prefix, good).unwrap().local_pref(),
///     Some(200),
/// );
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteMap {
    entries: Vec<RouteMapEntry>,
}

impl RouteMap {
    /// The empty route-map: everything is accepted unmodified.
    pub fn permit_all() -> Self {
        RouteMap::default()
    }

    /// Builds a route-map, ordering entries by sequence number (stable
    /// for equal sequence numbers).
    pub fn new<I: IntoIterator<Item = RouteMapEntry>>(entries: I) -> Self {
        let mut entries: Vec<RouteMapEntry> = entries.into_iter().collect();
        entries.sort_by_key(RouteMapEntry::seq);
        RouteMap { entries }
    }

    /// The entries in evaluation order.
    pub fn entries(&self) -> &[RouteMapEntry] {
        &self.entries
    }

    /// Number of entries a route is evaluated against in the worst
    /// case (used by the simulator's cost model).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries (and therefore accepts
    /// everything unmodified).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Evaluates a route: the first entry whose clauses all match
    /// decides. Returns the (possibly rewritten) attributes, or `None`
    /// if the route is rejected — by a `deny` entry or by the implicit
    /// deny at the end of a non-empty map.
    pub fn evaluate(&self, prefix: &Prefix, mut attrs: RouteAttributes) -> Option<RouteAttributes> {
        if self.entries.is_empty() {
            return Some(attrs);
        }
        for entry in &self.entries {
            if !entry.matches_route(prefix, &attrs) {
                continue;
            }
            if !entry.permit {
                return None;
            }
            for set in &entry.sets {
                set.apply(&mut attrs);
            }
            return Some(attrs);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpbench_wire::AsPath;
    use std::net::Ipv4Addr;

    fn attrs_with_path(path: &[u16]) -> RouteAttributes {
        RouteAttributes::new(
            Origin::Igp,
            AsPath::from_sequence(path.iter().copied().map(Asn)),
            Ipv4Addr::new(10, 0, 0, 2),
        )
    }

    fn p(text: &str) -> Prefix {
        text.parse().unwrap()
    }

    #[test]
    fn permit_all_accepts_unmodified() {
        let map = RouteMap::permit_all();
        let attrs = attrs_with_path(&[1, 2]);
        let result = map.evaluate(&p("10.0.0.0/8"), attrs.clone()).unwrap();
        assert_eq!(result, attrs);
    }

    #[test]
    fn non_empty_map_ends_in_implicit_deny() {
        let map =
            RouteMap::new(
                [RouteMapEntry::permit(10).matching(MatchClause::AsPathContains(Asn(1)))],
            );
        assert!(map
            .evaluate(&p("10.0.0.0/8"), attrs_with_path(&[1]))
            .is_some());
        assert!(map
            .evaluate(&p("10.0.0.0/8"), attrs_with_path(&[2]))
            .is_none());
    }

    #[test]
    fn entries_evaluate_in_sequence_order() {
        // Built out of order; sequence numbers decide.
        let map = RouteMap::new([
            RouteMapEntry::permit(20).set(SetClause::LocalPref(20)),
            RouteMapEntry::permit(10).set(SetClause::LocalPref(10)),
        ]);
        let result = map
            .evaluate(&p("10.0.0.0/8"), attrs_with_path(&[1]))
            .unwrap();
        assert_eq!(result.local_pref(), Some(10));
    }

    #[test]
    fn first_matching_entry_decides() {
        let map = RouteMap::new([
            RouteMapEntry::deny(10).matching(MatchClause::HasCommunity(666)),
            RouteMapEntry::permit(20)
                .matching(MatchClause::AsPathContains(Asn(1)))
                .set(SetClause::AddCommunity(100)),
            RouteMapEntry::permit(30),
        ]);
        let tagged = map
            .evaluate(&p("10.0.0.0/8"), attrs_with_path(&[1, 2]))
            .unwrap();
        assert_eq!(tagged.communities(), &[100]);
        let plain = map
            .evaluate(&p("10.0.0.0/8"), attrs_with_path(&[3]))
            .unwrap();
        assert!(plain.communities().is_empty());
    }

    #[test]
    fn all_match_clauses_must_hold() {
        let map = RouteMap::new([RouteMapEntry::permit(10)
            .matching(MatchClause::AsPathContains(Asn(1)))
            .matching(MatchClause::PathLengthAtMost(2))]);
        assert!(map
            .evaluate(&p("10.0.0.0/8"), attrs_with_path(&[1, 2]))
            .is_some());
        // Contains 1 but too long.
        assert!(map
            .evaluate(&p("10.0.0.0/8"), attrs_with_path(&[1, 2, 3]))
            .is_none());
    }

    #[test]
    fn deny_entries_ignore_set_clauses() {
        let map = RouteMap::new([
            RouteMapEntry::deny(10).set(SetClause::LocalPref(999)),
            RouteMapEntry::permit(20),
        ]);
        assert!(map
            .evaluate(&p("10.0.0.0/8"), attrs_with_path(&[1]))
            .is_none());
    }

    #[test]
    fn set_clauses_apply_in_order() {
        let map = RouteMap::new([RouteMapEntry::permit(10)
            .set(SetClause::SetCommunities(vec![1, 2, 3]))
            .set(SetClause::DeleteCommunity(2))
            .set(SetClause::AddCommunity(7))
            .set(SetClause::AddCommunity(7))
            .set(SetClause::LocalPref(250))
            .set(SetClause::Med(30))
            .set(SetClause::NextHop(Ipv4Addr::new(192, 0, 2, 1)))
            .set(SetClause::PrependAsPath(Asn(65000), 2))]);
        let result = map
            .evaluate(&p("10.0.0.0/8"), attrs_with_path(&[1]))
            .unwrap();
        assert_eq!(result.communities(), &[1, 3, 7]);
        assert_eq!(result.local_pref(), Some(250));
        assert_eq!(result.med(), Some(30));
        assert_eq!(result.next_hop(), Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(
            result.as_path(),
            &AsPath::from_sequence([Asn(65000), Asn(65000), Asn(1)])
        );
    }

    #[test]
    fn large_community_set_and_match() {
        let lc = LargeCommunity::new(65000, 1, 2);
        let tagging =
            RouteMap::new([RouteMapEntry::permit(10).set(SetClause::AddLargeCommunity(lc))]);
        let tagged = tagging
            .evaluate(&p("10.0.0.0/8"), attrs_with_path(&[1]))
            .unwrap();
        assert_eq!(tagged.large_communities(), &[lc]);

        let matching = RouteMap::new([
            RouteMapEntry::deny(10).matching(MatchClause::HasLargeCommunity(lc)),
            RouteMapEntry::permit(20),
        ]);
        assert!(matching.evaluate(&p("10.0.0.0/8"), tagged).is_none());

        let scrubbing = RouteMap::new([
            RouteMapEntry::permit(10).set(SetClause::DeleteLargeCommunitiesOf(65000))
        ]);
        let tagged = tagging
            .evaluate(&p("10.0.0.0/8"), attrs_with_path(&[1]))
            .unwrap();
        let scrubbed = scrubbing.evaluate(&p("10.0.0.0/8"), tagged).unwrap();
        assert!(scrubbed.large_communities().is_empty());
    }

    #[test]
    fn match_clauses_cover_all_route_parts() {
        let attrs = RouteAttributes::builder()
            .origin(Origin::Igp)
            .as_path(AsPath::from_sequence([Asn(100), Asn(200)]))
            .next_hop(Ipv4Addr::new(10, 0, 0, 2))
            .med(50)
            .communities(vec![42])
            .large_communities(vec![LargeCommunity::new(100, 1, 2)])
            .build();
        let prefix = p("10.1.0.0/16");
        let cases = [
            (
                MatchClause::Prefix(PrefixList::new([(
                    true,
                    PrefixMatch::within(p("10.0.0.0/8")),
                )])),
                true,
            ),
            (
                MatchClause::Prefix(PrefixList::new([(
                    true,
                    PrefixMatch::exact(p("10.0.0.0/8")),
                )])),
                false,
            ),
            (MatchClause::AsPathContains(Asn(200)), true),
            (MatchClause::AsPathContains(Asn(300)), false),
            (MatchClause::OriginatedBy(Asn(200)), true),
            (MatchClause::OriginatedBy(Asn(100)), false),
            (MatchClause::PathLengthAtMost(2), true),
            (MatchClause::PathLengthAtMost(1), false),
            (MatchClause::Origin(Origin::Igp), true),
            (MatchClause::Origin(Origin::Egp), false),
            (MatchClause::HasCommunity(42), true),
            (MatchClause::HasCommunity(43), false),
            (MatchClause::HasAnyCommunity(vec![1, 42]), true),
            (MatchClause::HasAnyCommunity(vec![1, 2]), false),
            (
                MatchClause::HasLargeCommunity(LargeCommunity::new(100, 1, 2)),
                true,
            ),
            (
                MatchClause::HasLargeCommunity(LargeCommunity::new(100, 1, 3)),
                false,
            ),
            (MatchClause::MedAtLeast(50), true),
            (MatchClause::MedAtLeast(51), false),
        ];
        for (clause, expected) in cases {
            assert_eq!(clause.matches(&prefix, &attrs), expected, "{clause:?}");
        }
    }
}
