//! Compiled prefix lists.
//!
//! A prefix list is an ordered set of permit/deny entries, each
//! matching a covering prefix plus a mask-length range — the
//! `ip prefix-list NAME permit 10.0.0.0/8 ge 16 le 24` idiom. Because
//! the route-map hot path consults prefix lists once per announced
//! prefix, the list is *compiled* at construction: entries whose
//! covering prefix is at least /8 are bucketed by first octet, so a
//! lookup scans only the handful of entries that could possibly match
//! instead of the whole list.

use bgpbench_wire::Prefix;

/// One prefix-list term: a covering prefix and an inclusive
/// mask-length range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixMatch {
    prefix: Prefix,
    min_len: u8,
    max_len: u8,
}

impl PrefixMatch {
    /// Matches exactly this prefix.
    pub fn exact(prefix: Prefix) -> Self {
        PrefixMatch {
            prefix,
            min_len: prefix.len(),
            max_len: prefix.len(),
        }
    }

    /// Matches this prefix and every more-specific prefix inside it.
    pub fn within(prefix: Prefix) -> Self {
        PrefixMatch {
            prefix,
            min_len: prefix.len(),
            max_len: 32,
        }
    }

    /// Matches prefixes inside `prefix` whose mask length lies in the
    /// inclusive `[ge, le]` range (clamped to sane bounds).
    pub fn range(prefix: Prefix, ge: u8, le: u8) -> Self {
        PrefixMatch {
            prefix,
            min_len: ge.max(prefix.len()),
            max_len: le.min(32),
        }
    }

    /// The covering prefix.
    pub fn prefix(&self) -> Prefix {
        self.prefix
    }

    /// Whether `candidate` satisfies this term.
    pub fn matches(&self, candidate: &Prefix) -> bool {
        (self.min_len..=self.max_len).contains(&candidate.len()) && self.prefix.covers(candidate)
    }
}

/// One ordered entry of a [`PrefixList`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PrefixListEntry {
    permit: bool,
    term: PrefixMatch,
}

/// An ordered permit/deny prefix list, compiled for fast lookup.
///
/// Semantics follow the vendor convention: entries are evaluated in
/// order, the first matching entry decides, and a non-empty list ends
/// in an implicit deny. The empty list permits everything.
///
/// ```
/// use bgpbench_rib::{PrefixList, PrefixMatch};
///
/// let list = PrefixList::new([
///     (false, PrefixMatch::within("10.13.0.0/16".parse().unwrap())),
///     (true, PrefixMatch::range("10.0.0.0/8".parse().unwrap(), 8, 24)),
/// ]);
/// assert!(!list.permits(&"10.13.7.0/24".parse().unwrap())); // denied by term 1
/// assert!(list.permits(&"10.64.0.0/16".parse().unwrap())); // permitted by term 2
/// assert!(!list.permits(&"192.0.2.0/24".parse().unwrap())); // implicit deny
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixList {
    entries: Vec<PrefixListEntry>,
    /// Entry indices per first octet, for entries whose covering prefix
    /// is /8 or longer (they can only match prefixes sharing their
    /// first octet). Lazily sized: indices are ascending.
    buckets: Vec<Vec<u32>>,
    /// Indices of entries with a covering prefix shorter than /8; these
    /// can match anywhere, so every lookup merges them in.
    wild: Vec<u32>,
}

impl PrefixList {
    /// Compiles an ordered `(permit, term)` list.
    pub fn new<I: IntoIterator<Item = (bool, PrefixMatch)>>(terms: I) -> Self {
        let entries: Vec<PrefixListEntry> = terms
            .into_iter()
            .map(|(permit, term)| PrefixListEntry { permit, term })
            .collect();
        let mut buckets = vec![Vec::new(); 256];
        let mut wild = Vec::new();
        for (index, entry) in entries.iter().enumerate() {
            if entry.term.prefix().len() >= 8 {
                let octet = entry.term.prefix().network().octets()[0];
                buckets[usize::from(octet)].push(index as u32);
            } else {
                wild.push(index as u32);
            }
        }
        PrefixList {
            entries,
            buckets,
            wild,
        }
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list has no terms (and therefore permits everything).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Evaluates the list: the first matching term decides; a
    /// non-empty list denies unmatched prefixes, the empty list
    /// permits everything.
    pub fn permits(&self, prefix: &Prefix) -> bool {
        if self.entries.is_empty() {
            return true;
        }
        let bucket = &self.buckets[usize::from(prefix.network().octets()[0])];
        // Merge the per-octet bucket with the wildcard entries in
        // ascending entry order, preserving first-match semantics.
        let mut b = 0;
        let mut w = 0;
        loop {
            let next = match (bucket.get(b), self.wild.get(w)) {
                (Some(&x), Some(&y)) => {
                    if x < y {
                        b += 1;
                        x
                    } else {
                        w += 1;
                        y
                    }
                }
                (Some(&x), None) => {
                    b += 1;
                    x
                }
                (None, Some(&y)) => {
                    w += 1;
                    y
                }
                (None, None) => return false, // implicit deny
            };
            let entry = &self.entries[next as usize];
            if entry.term.matches(prefix) {
                return entry.permit;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(text: &str) -> Prefix {
        text.parse().unwrap()
    }

    #[test]
    fn empty_list_permits_everything() {
        let list = PrefixList::new([]);
        assert!(list.is_empty());
        assert!(list.permits(&p("10.0.0.0/8")));
        assert!(list.permits(&p("0.0.0.0/0")));
    }

    #[test]
    fn first_match_wins_across_buckets_and_wildcards() {
        // Wildcard deny sits between two bucketed permits; order must
        // be preserved when merging.
        let list = PrefixList::new([
            (true, PrefixMatch::exact(p("10.1.0.0/16"))),
            (false, PrefixMatch::range(p("0.0.0.0/0"), 16, 16)),
            (true, PrefixMatch::within(p("10.0.0.0/8"))),
        ]);
        assert!(list.permits(&p("10.1.0.0/16"))); // term 1
        assert!(!list.permits(&p("10.2.0.0/16"))); // term 2 (wildcard deny)
        assert!(list.permits(&p("10.2.0.0/24"))); // term 3
        assert!(!list.permits(&p("192.0.2.0/24"))); // implicit deny
    }

    #[test]
    fn range_terms_bound_mask_length() {
        let term = PrefixMatch::range(p("10.0.0.0/8"), 16, 24);
        assert!(!term.matches(&p("10.0.0.0/8")));
        assert!(term.matches(&p("10.7.0.0/16")));
        assert!(term.matches(&p("10.7.7.0/24")));
        assert!(!term.matches(&p("10.7.7.128/25")));
        assert!(!term.matches(&p("11.0.0.0/16")));
    }

    #[test]
    fn exact_and_within_terms() {
        assert!(PrefixMatch::exact(p("10.0.0.0/8")).matches(&p("10.0.0.0/8")));
        assert!(!PrefixMatch::exact(p("10.0.0.0/8")).matches(&p("10.1.0.0/16")));
        assert!(PrefixMatch::within(p("10.0.0.0/8")).matches(&p("10.1.0.0/16")));
        assert!(!PrefixMatch::within(p("10.0.0.0/8")).matches(&p("11.0.0.0/8")));
    }

    #[test]
    fn short_covering_prefixes_are_wildcards() {
        let list = PrefixList::new([(true, PrefixMatch::range(p("0.0.0.0/0"), 0, 32))]);
        assert!(list.permits(&p("203.0.113.0/24")));
        assert!(list.permits(&p("0.0.0.0/0")));
    }
}
