//! BGP routing information bases and the decision process.
//!
//! RFC 4271 structures a BGP speaker's routing state into three RIBs
//! (§3.2), all implemented here:
//!
//! * [`AdjRibIn`] — unprocessed routes received from each neighbor;
//! * [`LocRib`] — the routes selected by the local decision process;
//! * [`AdjRibOut`] — the per-neighbor subset staged for advertisement.
//!
//! The [`RibEngine`] ties them together: feed it UPDATE messages with
//! [`RibEngine::apply_update`] and it returns, per prefix, exactly what
//! happened — including whether the *forwarding table* must change.
//! That distinction is the crux of the paper's benchmark: Scenarios 5/6
//! send announcements that lose the decision process (no FIB change),
//! while Scenarios 7/8 send announcements that win it (FIB change).
//!
//! # Examples
//!
//! ```
//! use bgpbench_rib::{PeerId, PeerInfo, RibEngine, RouteChange};
//! use bgpbench_wire::{Asn, AsPath, Origin, PathAttribute, RouterId, UpdateMessage};
//! use std::net::Ipv4Addr;
//!
//! let mut engine = RibEngine::new(Asn(65000), RouterId(0x0A000001));
//! let peer = engine.add_peer(PeerInfo::new(
//!     PeerId(1),
//!     Asn(65001),
//!     RouterId(0x0A000002),
//!     Ipv4Addr::new(10, 0, 0, 2),
//! ));
//! let update = UpdateMessage::builder()
//!     .attribute(PathAttribute::Origin(Origin::Igp))
//!     .attribute(PathAttribute::AsPath(AsPath::from_sequence([Asn(65001)])))
//!     .attribute(PathAttribute::NextHop(Ipv4Addr::new(10, 0, 0, 2)))
//!     .announce("10.7.0.0/16".parse().unwrap())
//!     .build();
//! let outcomes = engine.apply_update(peer, &update)?;
//! assert!(matches!(outcomes[0].change, RouteChange::Installed));
//! # Ok::<(), bgpbench_rib::RibError>(())
//! ```

#![forbid(unsafe_code)]

mod adj_out;
mod attr_store;
mod damping;
mod decision;
mod engine;
mod error;
pub mod fxhash;
mod policy;
mod route;
mod shard;

pub use adj_out::{AdjRibOut, ExportAction};
pub use attr_store::{AttrStore, AttrStoreStats};
pub use damping::{DampingConfig, FlapKind, RouteDamper};
pub use decision::{compare_routes, DecisionConfig};
pub use engine::{AdjRibIn, FibDirective, LocRib, PrefixOutcome, RibEngine, RibStats, RouteChange};
pub use error::RibError;
pub use policy::{MatchClause, PrefixList, PrefixMatch, RouteMap, RouteMapEntry, SetClause};
pub use route::{
    Aggregator, PeerId, PeerInfo, Route, RouteAttributes, RouteAttributesBuilder, UnknownTransitive,
};
pub use shard::{ShardedAdjRibIn, ShardedLocRib, ShardedRibEngine, MAX_RIB_SHARDS};
