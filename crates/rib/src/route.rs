//! Routes and their decomposed attribute sets.

use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

use bgpbench_wire::{AsPath, Asn, Origin, PathAttribute, Prefix, RouterId};

use crate::RibError;

/// Identifies a configured neighbor within a [`crate::RibEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u32);

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer#{}", self.0)
    }
}

/// Static facts about a configured neighbor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerInfo {
    id: PeerId,
    asn: Asn,
    router_id: RouterId,
    address: Ipv4Addr,
}

impl PeerInfo {
    /// Describes a neighbor. Sessions to a different AS are eBGP; the
    /// engine derives iBGP/eBGP from the AS numbers.
    pub fn new(id: PeerId, asn: Asn, router_id: RouterId, address: Ipv4Addr) -> Self {
        PeerInfo {
            id,
            asn,
            router_id,
            address,
        }
    }

    /// The engine-local identifier.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The neighbor's AS number.
    pub fn asn(&self) -> Asn {
        self.asn
    }

    /// The neighbor's BGP identifier.
    pub fn router_id(&self) -> RouterId {
        self.router_id
    }

    /// The neighbor's session address.
    pub fn address(&self) -> Ipv4Addr {
        self.address
    }
}

/// The decomposed path-attribute set shared by every prefix announced
/// in one UPDATE.
///
/// Attribute sets are immutable once built and shared via [`Arc`], the
/// same "path attribute interning" real BGP implementations use to keep
/// per-prefix memory small. [`crate::AttrStore`] hash-conses them, so
/// the `Hash` implementation must stay consistent with `Eq`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RouteAttributes {
    origin: Origin,
    as_path: AsPath,
    next_hop: Ipv4Addr,
    med: Option<u32>,
    local_pref: Option<u32>,
    atomic_aggregate: bool,
    communities: Vec<u32>,
}

impl RouteAttributes {
    /// Default LOCAL_PREF applied when a route carries none
    /// (the near-universal vendor default).
    pub const DEFAULT_LOCAL_PREF: u32 = 100;

    /// Builds an attribute set directly (primarily for tests and
    /// workload generators).
    pub fn new(origin: Origin, as_path: AsPath, next_hop: Ipv4Addr) -> Self {
        RouteAttributes {
            origin,
            as_path,
            next_hop,
            med: None,
            local_pref: None,
            atomic_aggregate: false,
            communities: Vec::new(),
        }
    }

    /// Sets the MULTI_EXIT_DISC, returning `self` for chaining.
    pub fn with_med(mut self, med: u32) -> Self {
        self.med = Some(med);
        self
    }

    /// Sets the LOCAL_PREF, returning `self` for chaining.
    pub fn with_local_pref(mut self, local_pref: u32) -> Self {
        self.local_pref = Some(local_pref);
        self
    }

    /// Sets the communities, returning `self` for chaining.
    pub fn with_communities(mut self, communities: Vec<u32>) -> Self {
        self.communities = communities;
        self
    }

    /// Extracts an attribute set from the attributes of an UPDATE that
    /// announces NLRI.
    ///
    /// Clones each attribute value exactly once; when the caller owns
    /// the attribute vector, [`RouteAttributes::from_wire_owned`]
    /// avoids even that.
    ///
    /// # Errors
    ///
    /// Returns [`RibError::MissingMandatoryAttribute`] if ORIGIN,
    /// AS_PATH, or NEXT_HOP is absent (RFC 4271 §6.3).
    pub fn from_wire(attrs: &[PathAttribute]) -> Result<Self, RibError> {
        Self::from_wire_owned(attrs.iter().cloned())
    }

    /// [`RouteAttributes::from_wire`] over owned attributes: the AS
    /// path and community vectors are moved into the result instead of
    /// cloned.
    ///
    /// # Errors
    ///
    /// As for [`RouteAttributes::from_wire`].
    pub fn from_wire_owned<I>(attrs: I) -> Result<Self, RibError>
    where
        I: IntoIterator<Item = PathAttribute>,
    {
        let mut origin = None;
        let mut as_path = None;
        let mut next_hop = None;
        let mut med = None;
        let mut local_pref = None;
        let mut atomic_aggregate = false;
        let mut communities = Vec::new();
        for attr in attrs {
            match attr {
                PathAttribute::Origin(value) => origin = Some(value),
                PathAttribute::AsPath(value) => as_path = Some(value),
                PathAttribute::NextHop(value) => next_hop = Some(value),
                PathAttribute::Med(value) => med = Some(value),
                PathAttribute::LocalPref(value) => local_pref = Some(value),
                PathAttribute::AtomicAggregate => atomic_aggregate = true,
                PathAttribute::Communities(values) => communities = values,
                PathAttribute::Aggregator { .. } | PathAttribute::Unknown { .. } => {}
            }
        }
        Ok(RouteAttributes {
            origin: origin.ok_or(RibError::MissingMandatoryAttribute {
                attribute: "ORIGIN",
            })?,
            as_path: as_path.ok_or(RibError::MissingMandatoryAttribute {
                attribute: "AS_PATH",
            })?,
            next_hop: next_hop.ok_or(RibError::MissingMandatoryAttribute {
                attribute: "NEXT_HOP",
            })?,
            med,
            local_pref,
            atomic_aggregate,
            communities,
        })
    }

    /// Serializes back into wire path attributes (cloning the AS path
    /// and community vectors; [`RouteAttributes::into_wire`] moves
    /// them instead).
    pub fn to_wire(&self) -> Vec<PathAttribute> {
        self.clone().into_wire()
    }

    /// Consumes the set, serializing into wire path attributes without
    /// cloning the AS path or community vectors.
    pub fn into_wire(self) -> Vec<PathAttribute> {
        let mut attrs = vec![
            PathAttribute::Origin(self.origin),
            PathAttribute::AsPath(self.as_path),
            PathAttribute::NextHop(self.next_hop),
        ];
        if let Some(med) = self.med {
            attrs.push(PathAttribute::Med(med));
        }
        if let Some(local_pref) = self.local_pref {
            attrs.push(PathAttribute::LocalPref(local_pref));
        }
        if self.atomic_aggregate {
            attrs.push(PathAttribute::AtomicAggregate);
        }
        if !self.communities.is_empty() {
            attrs.push(PathAttribute::Communities(self.communities));
        }
        attrs
    }

    /// The ORIGIN attribute.
    pub fn origin(&self) -> Origin {
        self.origin
    }

    /// The AS_PATH attribute.
    pub fn as_path(&self) -> &AsPath {
        &self.as_path
    }

    /// The NEXT_HOP attribute.
    pub fn next_hop(&self) -> Ipv4Addr {
        self.next_hop
    }

    /// The MULTI_EXIT_DISC, if present.
    pub fn med(&self) -> Option<u32> {
        self.med
    }

    /// The LOCAL_PREF, if present.
    pub fn local_pref(&self) -> Option<u32> {
        self.local_pref
    }

    /// LOCAL_PREF with the default applied.
    pub fn effective_local_pref(&self) -> u32 {
        self.local_pref.unwrap_or(Self::DEFAULT_LOCAL_PREF)
    }

    /// Whether ATOMIC_AGGREGATE is set.
    pub fn atomic_aggregate(&self) -> bool {
        self.atomic_aggregate
    }

    /// The communities attached to the route.
    pub fn communities(&self) -> &[u32] {
        &self.communities
    }

    /// Returns the attribute set as advertised over an eBGP session:
    /// own AS prepended, next hop rewritten to the advertising address,
    /// and non-transitive attributes (MED, LOCAL_PREF) stripped
    /// (RFC 4271 §5.1.2, §5.1.3).
    pub fn exported(&self, local_asn: Asn, next_hop: Ipv4Addr) -> RouteAttributes {
        RouteAttributes {
            origin: self.origin,
            as_path: self.as_path.prepend(local_asn),
            next_hop,
            med: None,
            local_pref: None,
            atomic_aggregate: self.atomic_aggregate,
            communities: self.communities.clone(),
        }
    }
}

/// A route: a prefix bound to an attribute set learned from a peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    prefix: Prefix,
    attrs: Arc<RouteAttributes>,
    learned_from: PeerId,
}

impl Route {
    /// Binds a prefix to an attribute set learned from `peer`.
    pub fn new(prefix: Prefix, attrs: Arc<RouteAttributes>, learned_from: PeerId) -> Self {
        Route {
            prefix,
            attrs,
            learned_from,
        }
    }

    /// The destination prefix.
    pub fn prefix(&self) -> Prefix {
        self.prefix
    }

    /// The shared attribute set.
    pub fn attrs(&self) -> &Arc<RouteAttributes> {
        &self.attrs
    }

    /// The peer the route was learned from.
    pub fn learned_from(&self) -> PeerId {
        self.learned_from
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} via {} path [{}] from {}",
            self.prefix,
            self.attrs.next_hop(),
            self.attrs.as_path(),
            self.learned_from
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_attrs() -> Vec<PathAttribute> {
        vec![
            PathAttribute::Origin(Origin::Igp),
            PathAttribute::AsPath(AsPath::from_sequence([Asn(65001), Asn(65002)])),
            PathAttribute::NextHop(Ipv4Addr::new(10, 0, 0, 2)),
        ]
    }

    #[test]
    fn from_wire_extracts_everything() {
        let mut attrs = base_attrs();
        attrs.push(PathAttribute::Med(50));
        attrs.push(PathAttribute::LocalPref(200));
        attrs.push(PathAttribute::AtomicAggregate);
        attrs.push(PathAttribute::Communities(vec![0xFFFF0001]));
        let parsed = RouteAttributes::from_wire(&attrs).unwrap();
        assert_eq!(parsed.origin(), Origin::Igp);
        assert_eq!(parsed.as_path().length(), 2);
        assert_eq!(parsed.next_hop(), Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(parsed.med(), Some(50));
        assert_eq!(parsed.local_pref(), Some(200));
        assert_eq!(parsed.effective_local_pref(), 200);
        assert!(parsed.atomic_aggregate());
        assert_eq!(parsed.communities(), &[0xFFFF0001]);
    }

    #[test]
    fn from_wire_requires_mandatory_attributes() {
        for missing in 0..3 {
            let mut attrs = base_attrs();
            attrs.remove(missing);
            assert!(matches!(
                RouteAttributes::from_wire(&attrs),
                Err(RibError::MissingMandatoryAttribute { .. })
            ));
        }
    }

    #[test]
    fn wire_roundtrip() {
        let attrs = RouteAttributes::new(
            Origin::Egp,
            AsPath::from_sequence([Asn(7)]),
            Ipv4Addr::new(192, 0, 2, 9),
        )
        .with_med(5)
        .with_local_pref(300)
        .with_communities(vec![1, 2]);
        let wire = attrs.to_wire();
        let back = RouteAttributes::from_wire(&wire).unwrap();
        assert_eq!(back, attrs);
    }

    #[test]
    fn owned_wire_roundtrip_matches_borrowed() {
        let mut wire = base_attrs();
        wire.push(PathAttribute::Communities(vec![7, 8, 9]));
        let borrowed = RouteAttributes::from_wire(&wire).unwrap();
        let owned = RouteAttributes::from_wire_owned(wire.clone()).unwrap();
        assert_eq!(borrowed, owned);
        assert_eq!(owned.clone().into_wire(), owned.to_wire());
        assert_eq!(owned.into_wire(), wire);
    }

    #[test]
    fn default_local_pref_is_100() {
        let attrs = RouteAttributes::new(Origin::Igp, AsPath::empty(), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(attrs.local_pref(), None);
        assert_eq!(attrs.effective_local_pref(), 100);
    }

    #[test]
    fn export_prepends_as_and_strips_session_attributes() {
        let attrs = RouteAttributes::new(
            Origin::Igp,
            AsPath::from_sequence([Asn(65001)]),
            Ipv4Addr::new(10, 0, 0, 2),
        )
        .with_med(9)
        .with_local_pref(500);
        let exported = attrs.exported(Asn(65000), Ipv4Addr::new(10, 9, 9, 1));
        assert_eq!(
            exported.as_path(),
            &AsPath::from_sequence([Asn(65000), Asn(65001)])
        );
        assert_eq!(exported.next_hop(), Ipv4Addr::new(10, 9, 9, 1));
        assert_eq!(exported.med(), None);
        assert_eq!(exported.local_pref(), None);
    }

    #[test]
    fn route_display_mentions_prefix_and_path() {
        let route = Route::new(
            "10.0.0.0/8".parse().unwrap(),
            Arc::new(RouteAttributes::new(
                Origin::Igp,
                AsPath::from_sequence([Asn(3)]),
                Ipv4Addr::new(10, 0, 0, 2),
            )),
            PeerId(4),
        );
        let text = route.to_string();
        assert!(text.contains("10.0.0.0/8"));
        assert!(text.contains("peer#4"));
    }
}
