//! Routes and their decomposed attribute sets.

use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

use bgpbench_wire::{AsPath, Asn, LargeCommunity, Origin, PathAttribute, Prefix, RouterId};

use crate::RibError;

/// Transitive flag bit of a path-attribute flag octet (RFC 4271 §4.3).
const FLAG_TRANSITIVE: u8 = 0x40;
/// Partial flag bit: set when an optional transitive attribute crossed
/// a speaker that did not recognize it (RFC 4271 §5).
const FLAG_PARTIAL: u8 = 0x20;

/// Identifies a configured neighbor within a [`crate::RibEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u32);

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer#{}", self.0)
    }
}

/// Static facts about a configured neighbor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerInfo {
    id: PeerId,
    asn: Asn,
    router_id: RouterId,
    address: Ipv4Addr,
}

impl PeerInfo {
    /// Describes a neighbor. Sessions to a different AS are eBGP; the
    /// engine derives iBGP/eBGP from the AS numbers.
    pub fn new(id: PeerId, asn: Asn, router_id: RouterId, address: Ipv4Addr) -> Self {
        PeerInfo {
            id,
            asn,
            router_id,
            address,
        }
    }

    /// The engine-local identifier.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The neighbor's AS number.
    pub fn asn(&self) -> Asn {
        self.asn
    }

    /// The neighbor's BGP identifier.
    pub fn router_id(&self) -> RouterId {
        self.router_id
    }

    /// The neighbor's session address.
    pub fn address(&self) -> Ipv4Addr {
        self.address
    }
}

/// The AGGREGATOR attribute carried with a route: the AS and router
/// that performed aggregation (RFC 4271 §5.1.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Aggregator {
    /// AS that performed the aggregation.
    pub asn: Asn,
    /// Router that performed the aggregation.
    pub router_id: Ipv4Addr,
}

/// An optional transitive attribute this stack does not model
/// structurally, carried byte-for-byte so it survives the trip through
/// the RIB and back onto the wire (RFC 4271 §5).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UnknownTransitive {
    /// The flag octet as seen on the wire.
    pub flags: u8,
    /// Attribute type code.
    pub type_code: u8,
    /// Raw attribute value.
    pub value: Vec<u8>,
}

/// The decomposed path-attribute set shared by every prefix announced
/// in one UPDATE.
///
/// Attribute sets are immutable once built and shared via [`Arc`], the
/// same "path attribute interning" real BGP implementations use to keep
/// per-prefix memory small. [`crate::AttrStore`] hash-conses them, so
/// the `Hash` implementation must stay consistent with `Eq`.
///
/// Construction goes through [`RouteAttributes::new`] for the three
/// mandatory attributes or [`RouteAttributes::builder`] for anything
/// richer; the fields themselves are private so every set in the system
/// is built through one of those two doors.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RouteAttributes {
    origin: Origin,
    as_path: AsPath,
    next_hop: Ipv4Addr,
    med: Option<u32>,
    local_pref: Option<u32>,
    atomic_aggregate: bool,
    aggregator: Option<Aggregator>,
    communities: Vec<u32>,
    large_communities: Vec<LargeCommunity>,
    unknown_transitive: Vec<UnknownTransitive>,
}

impl RouteAttributes {
    /// Default LOCAL_PREF applied when a route carries none
    /// (the near-universal vendor default).
    pub const DEFAULT_LOCAL_PREF: u32 = 100;

    /// Builds an attribute set carrying only the three mandatory
    /// attributes (primarily for tests and workload generators).
    pub fn new(origin: Origin, as_path: AsPath, next_hop: Ipv4Addr) -> Self {
        RouteAttributes {
            origin,
            as_path,
            next_hop,
            med: None,
            local_pref: None,
            atomic_aggregate: false,
            aggregator: None,
            communities: Vec::new(),
            large_communities: Vec::new(),
            unknown_transitive: Vec::new(),
        }
    }

    /// Starts a builder over the full attribute set.
    ///
    /// ```
    /// use bgpbench_rib::RouteAttributes;
    /// use bgpbench_wire::{AsPath, Asn};
    /// use std::net::Ipv4Addr;
    ///
    /// let attrs = RouteAttributes::builder()
    ///     .as_path(AsPath::from_sequence([Asn(65001)]))
    ///     .next_hop(Ipv4Addr::new(10, 0, 0, 2))
    ///     .local_pref(200)
    ///     .communities(vec![0xFFFF_0001])
    ///     .build();
    /// assert_eq!(attrs.local_pref(), Some(200));
    /// ```
    pub fn builder() -> RouteAttributesBuilder {
        RouteAttributesBuilder {
            inner: RouteAttributes::new(Origin::Igp, AsPath::empty(), Ipv4Addr::UNSPECIFIED),
        }
    }

    /// Extracts an attribute set from the attributes of an UPDATE that
    /// announces NLRI.
    ///
    /// Clones each attribute value exactly once; when the caller owns
    /// the attribute vector, [`RouteAttributes::from_wire_owned`]
    /// avoids even that.
    ///
    /// # Errors
    ///
    /// Returns [`RibError::MissingMandatoryAttribute`] if ORIGIN,
    /// AS_PATH, or NEXT_HOP is absent (RFC 4271 §6.3).
    pub fn from_wire(attrs: &[PathAttribute]) -> Result<Self, RibError> {
        Self::from_wire_owned(attrs.iter().cloned())
    }

    /// [`RouteAttributes::from_wire`] over owned attributes: the AS
    /// path and community vectors are moved into the result instead of
    /// cloned.
    ///
    /// Optional transitive attributes the stack does not model are
    /// preserved in [`RouteAttributes::unknown_transitive`]; optional
    /// non-transitive unknowns are quietly dropped (RFC 4271 §5).
    ///
    /// # Errors
    ///
    /// As for [`RouteAttributes::from_wire`].
    pub fn from_wire_owned<I>(attrs: I) -> Result<Self, RibError>
    where
        I: IntoIterator<Item = PathAttribute>,
    {
        let mut origin = None;
        let mut as_path = None;
        let mut next_hop = None;
        let mut med = None;
        let mut local_pref = None;
        let mut atomic_aggregate = false;
        let mut aggregator = None;
        let mut communities = Vec::new();
        let mut large_communities = Vec::new();
        let mut unknown_transitive = Vec::new();
        for attr in attrs {
            match attr {
                PathAttribute::Origin(value) => origin = Some(value),
                PathAttribute::AsPath(value) => as_path = Some(value),
                PathAttribute::NextHop(value) => next_hop = Some(value),
                PathAttribute::Med(value) => med = Some(value),
                PathAttribute::LocalPref(value) => local_pref = Some(value),
                PathAttribute::AtomicAggregate => atomic_aggregate = true,
                PathAttribute::Aggregator { asn, router_id } => {
                    aggregator = Some(Aggregator { asn, router_id });
                }
                PathAttribute::Communities(values) => communities = values,
                PathAttribute::LargeCommunities(values) => large_communities = values,
                PathAttribute::Unknown {
                    flags,
                    type_code,
                    value,
                } => {
                    if flags & FLAG_TRANSITIVE != 0 {
                        unknown_transitive.push(UnknownTransitive {
                            flags,
                            type_code,
                            value,
                        });
                    }
                }
            }
        }
        Ok(RouteAttributes {
            origin: origin.ok_or(RibError::MissingMandatoryAttribute {
                attribute: "ORIGIN",
            })?,
            as_path: as_path.ok_or(RibError::MissingMandatoryAttribute {
                attribute: "AS_PATH",
            })?,
            next_hop: next_hop.ok_or(RibError::MissingMandatoryAttribute {
                attribute: "NEXT_HOP",
            })?,
            med,
            local_pref,
            atomic_aggregate,
            aggregator,
            communities,
            large_communities,
            unknown_transitive,
        })
    }

    /// Serializes back into wire path attributes (cloning the AS path
    /// and community vectors; [`RouteAttributes::into_wire`] moves
    /// them instead).
    pub fn to_wire(&self) -> Vec<PathAttribute> {
        self.clone().into_wire()
    }

    /// Consumes the set, serializing into wire path attributes without
    /// cloning the AS path or community vectors.
    pub fn into_wire(self) -> Vec<PathAttribute> {
        let mut attrs = vec![
            PathAttribute::Origin(self.origin),
            PathAttribute::AsPath(self.as_path),
            PathAttribute::NextHop(self.next_hop),
        ];
        if let Some(med) = self.med {
            attrs.push(PathAttribute::Med(med));
        }
        if let Some(local_pref) = self.local_pref {
            attrs.push(PathAttribute::LocalPref(local_pref));
        }
        if self.atomic_aggregate {
            attrs.push(PathAttribute::AtomicAggregate);
        }
        if let Some(aggregator) = self.aggregator {
            attrs.push(PathAttribute::Aggregator {
                asn: aggregator.asn,
                router_id: aggregator.router_id,
            });
        }
        if !self.communities.is_empty() {
            attrs.push(PathAttribute::Communities(self.communities));
        }
        if !self.large_communities.is_empty() {
            attrs.push(PathAttribute::LargeCommunities(self.large_communities));
        }
        for unknown in self.unknown_transitive {
            attrs.push(PathAttribute::Unknown {
                flags: unknown.flags,
                type_code: unknown.type_code,
                value: unknown.value,
            });
        }
        attrs
    }

    /// The ORIGIN attribute.
    pub fn origin(&self) -> Origin {
        self.origin
    }

    /// The AS_PATH attribute.
    pub fn as_path(&self) -> &AsPath {
        &self.as_path
    }

    /// The NEXT_HOP attribute.
    pub fn next_hop(&self) -> Ipv4Addr {
        self.next_hop
    }

    /// The MULTI_EXIT_DISC, if present.
    pub fn med(&self) -> Option<u32> {
        self.med
    }

    /// The LOCAL_PREF, if present.
    pub fn local_pref(&self) -> Option<u32> {
        self.local_pref
    }

    /// LOCAL_PREF with the default applied.
    pub fn effective_local_pref(&self) -> u32 {
        self.local_pref.unwrap_or(Self::DEFAULT_LOCAL_PREF)
    }

    /// Whether ATOMIC_AGGREGATE is set.
    pub fn atomic_aggregate(&self) -> bool {
        self.atomic_aggregate
    }

    /// The AGGREGATOR attribute, if present.
    pub fn aggregator(&self) -> Option<Aggregator> {
        self.aggregator
    }

    /// The communities attached to the route.
    pub fn communities(&self) -> &[u32] {
        &self.communities
    }

    /// The large communities (RFC 8092) attached to the route.
    pub fn large_communities(&self) -> &[LargeCommunity] {
        &self.large_communities
    }

    /// Unmodeled optional transitive attributes riding along with the
    /// route.
    pub fn unknown_transitive(&self) -> &[UnknownTransitive] {
        &self.unknown_transitive
    }

    // Crate-private mutators: the policy engine rewrites attribute sets
    // through these before re-interning; outside the crate, attribute
    // sets stay immutable.

    pub(crate) fn set_local_pref(&mut self, value: u32) {
        self.local_pref = Some(value);
    }

    pub(crate) fn set_med(&mut self, value: u32) {
        self.med = Some(value);
    }

    pub(crate) fn set_next_hop(&mut self, value: Ipv4Addr) {
        self.next_hop = value;
    }

    pub(crate) fn prepend_as(&mut self, asn: Asn, count: u8) {
        for _ in 0..count {
            self.as_path = self.as_path.prepend(asn);
        }
    }

    pub(crate) fn add_community(&mut self, community: u32) {
        if !self.communities.contains(&community) {
            self.communities.push(community);
        }
    }

    pub(crate) fn delete_community(&mut self, community: u32) {
        self.communities.retain(|&c| c != community);
    }

    pub(crate) fn set_communities(&mut self, communities: Vec<u32>) {
        self.communities = communities;
    }

    pub(crate) fn add_large_community(&mut self, community: LargeCommunity) {
        if !self.large_communities.contains(&community) {
            self.large_communities.push(community);
        }
    }

    pub(crate) fn delete_large_communities_of(&mut self, global_admin: u32) {
        self.large_communities
            .retain(|lc| lc.global_admin != global_admin);
    }

    /// Returns the attribute set as advertised over an eBGP session:
    /// own AS prepended, next hop rewritten to the advertising address,
    /// non-transitive attributes (MED, LOCAL_PREF) stripped, and
    /// transitive ones — communities, large communities, AGGREGATOR,
    /// unmodeled transitive attributes — carried through (RFC 4271
    /// §5.1.2, §5.1.3; RFC 8092 §5). Unrecognized transitive
    /// attributes are marked partial on the way out (RFC 4271 §5).
    pub fn exported(&self, local_asn: Asn, next_hop: Ipv4Addr) -> RouteAttributes {
        RouteAttributes {
            origin: self.origin,
            as_path: self.as_path.prepend(local_asn),
            next_hop,
            med: None,
            local_pref: None,
            atomic_aggregate: self.atomic_aggregate,
            aggregator: self.aggregator,
            communities: self.communities.clone(),
            large_communities: self.large_communities.clone(),
            unknown_transitive: self
                .unknown_transitive
                .iter()
                .map(|unknown| UnknownTransitive {
                    flags: unknown.flags | FLAG_PARTIAL,
                    type_code: unknown.type_code,
                    value: unknown.value.clone(),
                })
                .collect(),
        }
    }
}

/// Builder for [`RouteAttributes`], the one construction path that
/// covers the full attribute set.
///
/// Unset mandatory attributes default to `Origin::Igp`, an empty AS
/// path, and an unspecified next hop — fine for workload generation,
/// where the builder replaces ad-hoc struct literals.
#[derive(Debug, Clone)]
pub struct RouteAttributesBuilder {
    inner: RouteAttributes,
}

impl RouteAttributesBuilder {
    /// Sets the ORIGIN attribute.
    pub fn origin(mut self, origin: Origin) -> Self {
        self.inner.origin = origin;
        self
    }

    /// Sets the AS_PATH attribute.
    pub fn as_path(mut self, as_path: AsPath) -> Self {
        self.inner.as_path = as_path;
        self
    }

    /// Sets the NEXT_HOP attribute.
    pub fn next_hop(mut self, next_hop: Ipv4Addr) -> Self {
        self.inner.next_hop = next_hop;
        self
    }

    /// Sets the MULTI_EXIT_DISC.
    pub fn med(mut self, med: u32) -> Self {
        self.inner.med = Some(med);
        self
    }

    /// Sets the LOCAL_PREF.
    pub fn local_pref(mut self, local_pref: u32) -> Self {
        self.inner.local_pref = Some(local_pref);
        self
    }

    /// Sets ATOMIC_AGGREGATE.
    pub fn atomic_aggregate(mut self, set: bool) -> Self {
        self.inner.atomic_aggregate = set;
        self
    }

    /// Sets the AGGREGATOR attribute.
    pub fn aggregator(mut self, asn: Asn, router_id: Ipv4Addr) -> Self {
        self.inner.aggregator = Some(Aggregator { asn, router_id });
        self
    }

    /// Sets the COMMUNITIES attribute.
    pub fn communities(mut self, communities: Vec<u32>) -> Self {
        self.inner.communities = communities;
        self
    }

    /// Sets the LARGE_COMMUNITIES attribute.
    pub fn large_communities(mut self, large_communities: Vec<LargeCommunity>) -> Self {
        self.inner.large_communities = large_communities;
        self
    }

    /// Appends an unmodeled optional transitive attribute.
    pub fn unknown_transitive(mut self, flags: u8, type_code: u8, value: Vec<u8>) -> Self {
        self.inner.unknown_transitive.push(UnknownTransitive {
            flags: flags | FLAG_TRANSITIVE,
            type_code,
            value,
        });
        self
    }

    /// Finishes the set.
    pub fn build(self) -> RouteAttributes {
        self.inner
    }
}

/// A route: a prefix bound to an attribute set learned from a peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    prefix: Prefix,
    attrs: Arc<RouteAttributes>,
    learned_from: PeerId,
}

impl Route {
    /// Binds a prefix to an attribute set learned from `peer`.
    pub fn new(prefix: Prefix, attrs: Arc<RouteAttributes>, learned_from: PeerId) -> Self {
        Route {
            prefix,
            attrs,
            learned_from,
        }
    }

    /// The destination prefix.
    pub fn prefix(&self) -> Prefix {
        self.prefix
    }

    /// The shared attribute set.
    pub fn attrs(&self) -> &Arc<RouteAttributes> {
        &self.attrs
    }

    /// The peer the route was learned from.
    pub fn learned_from(&self) -> PeerId {
        self.learned_from
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} via {} path [{}] from {}",
            self.prefix,
            self.attrs.next_hop(),
            self.attrs.as_path(),
            self.learned_from
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpbench_wire::LargeCommunity;

    fn base_attrs() -> Vec<PathAttribute> {
        vec![
            PathAttribute::Origin(Origin::Igp),
            PathAttribute::AsPath(AsPath::from_sequence([Asn(65001), Asn(65002)])),
            PathAttribute::NextHop(Ipv4Addr::new(10, 0, 0, 2)),
        ]
    }

    #[test]
    fn from_wire_extracts_everything() {
        let mut attrs = base_attrs();
        attrs.push(PathAttribute::Med(50));
        attrs.push(PathAttribute::LocalPref(200));
        attrs.push(PathAttribute::AtomicAggregate);
        attrs.push(PathAttribute::Aggregator {
            asn: Asn(65009),
            router_id: Ipv4Addr::new(192, 0, 2, 9),
        });
        attrs.push(PathAttribute::Communities(vec![0xFFFF0001]));
        attrs.push(PathAttribute::LargeCommunities(vec![LargeCommunity::new(
            65001, 7, 8,
        )]));
        attrs.push(PathAttribute::Unknown {
            flags: 0xC0,
            type_code: 77,
            value: vec![1, 2],
        });
        let parsed = RouteAttributes::from_wire(&attrs).unwrap();
        assert_eq!(parsed.origin(), Origin::Igp);
        assert_eq!(parsed.as_path().length(), 2);
        assert_eq!(parsed.next_hop(), Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(parsed.med(), Some(50));
        assert_eq!(parsed.local_pref(), Some(200));
        assert_eq!(parsed.effective_local_pref(), 200);
        assert!(parsed.atomic_aggregate());
        assert_eq!(
            parsed.aggregator(),
            Some(Aggregator {
                asn: Asn(65009),
                router_id: Ipv4Addr::new(192, 0, 2, 9),
            })
        );
        assert_eq!(parsed.communities(), &[0xFFFF0001]);
        assert_eq!(
            parsed.large_communities(),
            &[LargeCommunity::new(65001, 7, 8)]
        );
        assert_eq!(parsed.unknown_transitive().len(), 1);
        assert_eq!(parsed.unknown_transitive()[0].type_code, 77);
    }

    #[test]
    fn from_wire_drops_unknown_non_transitive() {
        let mut attrs = base_attrs();
        attrs.push(PathAttribute::Unknown {
            flags: 0x80, // optional, NOT transitive
            type_code: 88,
            value: vec![9],
        });
        let parsed = RouteAttributes::from_wire(&attrs).unwrap();
        assert!(parsed.unknown_transitive().is_empty());
    }

    #[test]
    fn from_wire_requires_mandatory_attributes() {
        for missing in 0..3 {
            let mut attrs = base_attrs();
            attrs.remove(missing);
            assert!(matches!(
                RouteAttributes::from_wire(&attrs),
                Err(RibError::MissingMandatoryAttribute { .. })
            ));
        }
    }

    #[test]
    fn wire_roundtrip() {
        let attrs = RouteAttributes::builder()
            .origin(Origin::Egp)
            .as_path(AsPath::from_sequence([Asn(7)]))
            .next_hop(Ipv4Addr::new(192, 0, 2, 9))
            .med(5)
            .local_pref(300)
            .aggregator(Asn(65001), Ipv4Addr::new(10, 0, 0, 9))
            .communities(vec![1, 2])
            .large_communities(vec![LargeCommunity::new(65001, 1, 2)])
            .unknown_transitive(0xC0, 77, vec![3, 4])
            .build();
        let wire = attrs.to_wire();
        let back = RouteAttributes::from_wire(&wire).unwrap();
        assert_eq!(back, attrs);
    }

    #[test]
    fn owned_wire_roundtrip_matches_borrowed() {
        let mut wire = base_attrs();
        wire.push(PathAttribute::Communities(vec![7, 8, 9]));
        let borrowed = RouteAttributes::from_wire(&wire).unwrap();
        let owned = RouteAttributes::from_wire_owned(wire.clone()).unwrap();
        assert_eq!(borrowed, owned);
        assert_eq!(owned.clone().into_wire(), owned.to_wire());
        assert_eq!(owned.into_wire(), wire);
    }

    #[test]
    fn default_local_pref_is_100() {
        let attrs = RouteAttributes::new(Origin::Igp, AsPath::empty(), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(attrs.local_pref(), None);
        assert_eq!(attrs.effective_local_pref(), 100);
    }

    #[test]
    fn builder_defaults_match_new() {
        assert_eq!(
            RouteAttributes::builder()
                .origin(Origin::Igp)
                .as_path(AsPath::empty())
                .next_hop(Ipv4Addr::UNSPECIFIED)
                .build(),
            RouteAttributes::new(Origin::Igp, AsPath::empty(), Ipv4Addr::UNSPECIFIED)
        );
    }

    #[test]
    fn export_prepends_as_and_strips_session_attributes() {
        let attrs = RouteAttributes::builder()
            .as_path(AsPath::from_sequence([Asn(65001)]))
            .next_hop(Ipv4Addr::new(10, 0, 0, 2))
            .med(9)
            .local_pref(500)
            .build();
        let exported = attrs.exported(Asn(65000), Ipv4Addr::new(10, 9, 9, 1));
        assert_eq!(
            exported.as_path(),
            &AsPath::from_sequence([Asn(65000), Asn(65001)])
        );
        assert_eq!(exported.next_hop(), Ipv4Addr::new(10, 9, 9, 1));
        assert_eq!(exported.med(), None);
        assert_eq!(exported.local_pref(), None);
    }

    #[test]
    fn export_carries_transitive_attributes_and_marks_partial() {
        let attrs = RouteAttributes::builder()
            .as_path(AsPath::from_sequence([Asn(65001)]))
            .next_hop(Ipv4Addr::new(10, 0, 0, 2))
            .aggregator(Asn(65001), Ipv4Addr::new(10, 0, 0, 9))
            .communities(vec![42])
            .large_communities(vec![LargeCommunity::new(65001, 0, 1)])
            .unknown_transitive(0xC0, 77, vec![5])
            .build();
        let exported = attrs.exported(Asn(65000), Ipv4Addr::new(10, 9, 9, 1));
        assert_eq!(exported.aggregator(), attrs.aggregator());
        assert_eq!(exported.communities(), attrs.communities());
        assert_eq!(exported.large_communities(), attrs.large_communities());
        assert_eq!(exported.unknown_transitive().len(), 1);
        // Partial bit set on the way out (RFC 4271 §5).
        assert_eq!(exported.unknown_transitive()[0].flags, 0xE0);
    }

    #[test]
    fn route_display_mentions_prefix_and_path() {
        let route = Route::new(
            "10.0.0.0/8".parse().unwrap(),
            Arc::new(RouteAttributes::new(
                Origin::Igp,
                AsPath::from_sequence([Asn(3)]),
                Ipv4Addr::new(10, 0, 0, 2),
            )),
            PeerId(4),
        );
        let text = route.to_string();
        assert!(text.contains("10.0.0.0/8"));
        assert!(text.contains("peer#4"));
    }
}
