//! Hash-consing of path-attribute sets.
//!
//! Real UPDATE streams share one attribute set across hundreds of
//! prefixes (the benchmark's 500-prefix "large packet" scenarios make
//! the ratio explicit), and even across messages: a full-table dump
//! from one peer reuses a few thousand distinct attribute sets over
//! hundreds of thousands of prefixes. The [`AttrStore`] exploits that:
//! every attribute set admitted to the RIB is canonicalized through
//! [`AttrStore::intern`], so
//!
//! * each distinct set is allocated exactly once per engine,
//! * equality between admitted sets degenerates to [`Arc::ptr_eq`], and
//! * Adj-RIB-Out grouping can key on pointer identity.
//!
//! The store owns one [`Arc`] per entry. When the engine drops a RIB
//! reference it calls [`AttrStore::release`]; an entry whose only
//! remaining owner is the store itself is removed, so withdraw storms
//! cannot grow the table without bound.

use std::sync::Arc;

use crate::fxhash::FxHashSet;
use crate::route::RouteAttributes;

/// Interning statistics, exposed for benchmarks and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttrStoreStats {
    /// `intern` calls that found an existing entry.
    pub hits: u64,
    /// `intern` calls that allocated a new entry.
    pub misses: u64,
    /// Entries dropped because the last RIB reference was released.
    pub released: u64,
}

impl AttrStoreStats {
    /// Fraction of `intern` calls served from the table (0 when the
    /// store was never used).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A hash-consing table mapping canonical [`RouteAttributes`] values to
/// shared [`Arc`] allocations.
///
/// ```
/// use bgpbench_rib::{AttrStore, RouteAttributes};
/// use bgpbench_wire::{AsPath, Asn, Origin};
/// use std::net::Ipv4Addr;
/// use std::sync::Arc;
///
/// let mut store = AttrStore::new();
/// let make = || RouteAttributes::new(
///     Origin::Igp,
///     AsPath::from_sequence([Asn(65001)]),
///     Ipv4Addr::new(10, 0, 0, 2),
/// );
/// let a = store.intern(make());
/// let b = store.intern(make());
/// assert!(Arc::ptr_eq(&a, &b));
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct AttrStore {
    table: FxHashSet<Arc<RouteAttributes>>,
    stats: AttrStoreStats,
}

impl AttrStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        AttrStore::default()
    }

    /// Number of distinct attribute sets currently interned.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no attribute sets are interned.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Accumulated hit/miss/release counters.
    pub fn stats(&self) -> AttrStoreStats {
        self.stats
    }

    /// Iterates over the interned attribute sets in arbitrary order.
    /// The sharded engine uses this to count distinct attribute
    /// *values* across per-shard stores (the same set interned in two
    /// shards is two entries but one value).
    pub fn iter(&self) -> impl Iterator<Item = &Arc<RouteAttributes>> {
        self.table.iter()
    }

    /// Canonicalizes `attrs`: returns the shared [`Arc`] for an
    /// existing equal entry, or allocates, records, and returns a new
    /// one. Two interned sets are value-equal iff they are pointer-equal.
    pub fn intern(&mut self, attrs: RouteAttributes) -> Arc<RouteAttributes> {
        if let Some(existing) = self.table.get(&attrs) {
            self.stats.hits += 1;
            return existing.clone();
        }
        self.stats.misses += 1;
        let arc = Arc::new(attrs);
        self.table.insert(arc.clone());
        arc
    }

    /// Returns a RIB reference to the store. If the caller's `Arc` was
    /// the last reference outside the store, the entry is dropped —
    /// this is what keeps the table from growing without bound across
    /// withdraw storms.
    ///
    /// Passing an `Arc` that did not come from this store is harmless:
    /// the pointer-identity check below refuses to remove anything else.
    pub fn release(&mut self, attrs: Arc<RouteAttributes>) {
        // Two owners left = the store's entry + the Arc being released.
        if Arc::strong_count(&attrs) != 2 {
            return;
        }
        let is_ours = self
            .table
            .get(&*attrs)
            .is_some_and(|entry| Arc::ptr_eq(entry, &attrs));
        if is_ours {
            self.table.remove(&*attrs);
            self.stats.released += 1;
        }
    }

    /// Sweeps every entry no RIB reference holds anymore. [`release`]
    /// collects eagerly, so this is only a safety valve for callers
    /// that drop interned `Arc`s without telling the store.
    ///
    /// [`release`]: AttrStore::release
    pub fn prune(&mut self) -> usize {
        let before = self.table.len();
        self.table.retain(|entry| Arc::strong_count(entry) > 1);
        let removed = before - self.table.len();
        self.stats.released += removed as u64;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpbench_wire::{AsPath, Asn, Origin};
    use std::net::Ipv4Addr;

    fn attrs(seed: u16) -> RouteAttributes {
        RouteAttributes::new(
            Origin::Igp,
            AsPath::from_sequence([Asn(seed)]),
            Ipv4Addr::new(10, 0, 0, 2),
        )
    }

    #[test]
    fn intern_dedups_equal_sets() {
        let mut store = AttrStore::new();
        let a = store.intern(attrs(1));
        let b = store.intern(attrs(1));
        let c = store.intern(attrs(2));
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().hits, 1);
        assert_eq!(store.stats().misses, 2);
    }

    #[test]
    fn release_drops_the_last_reference() {
        let mut store = AttrStore::new();
        let a = store.intern(attrs(1));
        let b = a.clone();
        // Two outside owners: releasing one keeps the entry.
        store.release(a);
        assert_eq!(store.len(), 1);
        // Releasing the last outside owner drops it.
        store.release(b);
        assert!(store.is_empty());
        assert_eq!(store.stats().released, 1);
    }

    #[test]
    fn release_ignores_foreign_arcs() {
        let mut store = AttrStore::new();
        let ours = store.intern(attrs(1));
        // Value-equal but separately allocated: must not evict the
        // entry other holders still share.
        let foreign = Arc::new(attrs(1));
        store.release(foreign);
        assert_eq!(store.len(), 1);
        drop(ours);
        assert_eq!(store.len(), 1); // dropped without release: prune's job
        assert_eq!(store.prune(), 1);
        assert!(store.is_empty());
    }

    #[test]
    fn prune_keeps_live_entries() {
        let mut store = AttrStore::new();
        let live = store.intern(attrs(1));
        let _dead = store.intern(attrs(2));
        drop(_dead);
        assert_eq!(store.prune(), 1);
        assert_eq!(store.len(), 1);
        assert!(Arc::ptr_eq(&store.intern(attrs(1)), &live));
    }
}
