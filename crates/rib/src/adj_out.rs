//! The Adj-RIB-Out: per-neighbor advertisement state and UPDATE
//! generation (RFC 4271 §3.2, §9.2).

use std::sync::Arc;

use bgpbench_telemetry::{self as telemetry, MetricId, SpanId};
use bgpbench_wire::{Prefix, UpdateMessage};

use crate::fxhash::FxHashMap;
use crate::route::RouteAttributes;

/// One advertisement-stream action toward a neighbor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportAction {
    /// Announce (or re-announce with new attributes) a prefix.
    Announce(Prefix, Arc<RouteAttributes>),
    /// Withdraw a previously advertised prefix.
    Withdraw(Prefix),
}

/// The per-neighbor Adj-RIB-Out: what has been advertised, plus diffing
/// against the desired state and packetization into UPDATE messages.
///
/// Packetization is where the benchmark's *small packet* / *large
/// packet* distinction lives: [`AdjRibOut::to_updates`] groups
/// announcements sharing an attribute set into messages carrying up to
/// `max_prefixes_per_update` prefixes each.
#[derive(Debug, Clone, Default)]
pub struct AdjRibOut {
    advertised: FxHashMap<Prefix, Arc<RouteAttributes>>,
}

impl AdjRibOut {
    /// Creates an empty Adj-RIB-Out.
    pub fn new() -> Self {
        AdjRibOut::default()
    }

    /// Number of currently advertised prefixes.
    pub fn len(&self) -> usize {
        self.advertised.len()
    }

    /// Whether nothing is advertised.
    pub fn is_empty(&self) -> bool {
        self.advertised.is_empty()
    }

    /// The attributes most recently advertised for `prefix`.
    pub fn get(&self, prefix: &Prefix) -> Option<&Arc<RouteAttributes>> {
        self.advertised.get(prefix)
    }

    /// Diffs the full desired advertisement set against what has been
    /// advertised, records the new state, and returns the actions that
    /// realize it (announcements for new/changed prefixes, withdrawals
    /// for disappeared ones).
    pub fn sync<I>(&mut self, desired: I) -> Vec<ExportAction>
    where
        I: IntoIterator<Item = (Prefix, Arc<RouteAttributes>)>,
    {
        let _span = telemetry::span(SpanId::AdjOutSync);
        let desired: FxHashMap<Prefix, Arc<RouteAttributes>> = desired.into_iter().collect();
        let mut actions = Vec::new();
        for (prefix, attrs) in &desired {
            let unchanged = self
                .advertised
                .get(prefix)
                .is_some_and(|old| Arc::ptr_eq(old, attrs) || old == attrs);
            if !unchanged {
                actions.push(ExportAction::Announce(*prefix, attrs.clone()));
            }
        }
        for prefix in self.advertised.keys() {
            if !desired.contains_key(prefix) {
                actions.push(ExportAction::Withdraw(*prefix));
            }
        }
        self.advertised = desired;
        // Deterministic order: withdrawals first (RFC message layout
        // convention), then announcements by prefix.
        actions.sort_by_key(|action| match action {
            ExportAction::Withdraw(prefix) => (0, *prefix),
            ExportAction::Announce(prefix, _) => (1, *prefix),
        });
        telemetry::add(MetricId::AdjOutActions, actions.len() as u64);
        actions
    }

    /// Updates the advertisement state for a single prefix and returns
    /// the action required, if any.
    pub fn sync_prefix(
        &mut self,
        prefix: Prefix,
        desired: Option<Arc<RouteAttributes>>,
    ) -> Option<ExportAction> {
        match desired {
            Some(attrs) => {
                let unchanged = self
                    .advertised
                    .get(&prefix)
                    .is_some_and(|old| Arc::ptr_eq(old, &attrs) || old == &attrs);
                if unchanged {
                    return None;
                }
                self.advertised.insert(prefix, attrs.clone());
                telemetry::incr(MetricId::AdjOutActions);
                Some(ExportAction::Announce(prefix, attrs))
            }
            None => self.advertised.remove(&prefix).map(|_| {
                telemetry::incr(MetricId::AdjOutActions);
                ExportAction::Withdraw(prefix)
            }),
        }
    }

    /// Packetizes actions into UPDATE messages.
    ///
    /// Withdrawals are batched up to `max_prefixes_per_update` per
    /// message. Announcements are grouped by attribute set (an UPDATE
    /// carries exactly one), then split to the same limit. The limit
    /// models the benchmark's packet sizes: 1 for small packets, 500
    /// for large ones.
    ///
    /// # Panics
    ///
    /// Panics if `max_prefixes_per_update` is zero.
    pub fn to_updates(
        actions: &[ExportAction],
        max_prefixes_per_update: usize,
    ) -> Vec<UpdateMessage> {
        assert!(max_prefixes_per_update > 0, "packet size must be positive");
        let _span = telemetry::span(SpanId::AdjOutPacketize);
        let mut updates = Vec::new();

        let withdrawals: Vec<Prefix> = actions
            .iter()
            .filter_map(|action| match action {
                ExportAction::Withdraw(prefix) => Some(*prefix),
                ExportAction::Announce(..) => None,
            })
            .collect();
        for chunk in withdrawals.chunks(max_prefixes_per_update) {
            updates.push(
                UpdateMessage::builder()
                    .withdraw_all(chunk.iter().copied())
                    .build(),
            );
        }

        // Group announcements by attribute set, preserving first-seen
        // order of each group. Interned attribute sets resolve through
        // the O(1) pointer-keyed map; the value-keyed map behind it
        // keeps grouping correct for value-equal sets allocated
        // separately (callers that bypass the interner), exactly as the
        // old linear scan did.
        let mut groups: Vec<(Arc<RouteAttributes>, Vec<Prefix>)> = Vec::new();
        let mut index_by_ptr: FxHashMap<*const RouteAttributes, usize> = FxHashMap::default();
        let mut index_by_value: FxHashMap<Arc<RouteAttributes>, usize> = FxHashMap::default();
        for action in actions {
            let ExportAction::Announce(prefix, attrs) = action else {
                continue;
            };
            let ptr = Arc::as_ptr(attrs);
            let index = match index_by_ptr.get(&ptr) {
                Some(&index) => index,
                None => {
                    let index = match index_by_value.get(attrs) {
                        Some(&index) => index,
                        None => {
                            let index = groups.len();
                            groups.push((attrs.clone(), Vec::new()));
                            index_by_value.insert(attrs.clone(), index);
                            index
                        }
                    };
                    index_by_ptr.insert(ptr, index);
                    index
                }
            };
            groups[index].1.push(*prefix);
        }
        telemetry::add(MetricId::AdjOutAttrGroups, groups.len() as u64);
        for (attrs, prefixes) in groups {
            let wire_attrs = attrs.to_wire();
            for chunk in prefixes.chunks(max_prefixes_per_update) {
                let mut builder = UpdateMessage::builder();
                for attr in &wire_attrs {
                    builder = builder.attribute(attr.clone());
                }
                updates.push(builder.announce_all(chunk.iter().copied()).build());
            }
        }
        telemetry::add(MetricId::AdjOutUpdates, updates.len() as u64);
        updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpbench_wire::{AsPath, Asn, Origin};
    use std::net::Ipv4Addr;

    fn attrs(seed: u16) -> Arc<RouteAttributes> {
        Arc::new(RouteAttributes::new(
            Origin::Igp,
            AsPath::from_sequence([Asn(seed)]),
            Ipv4Addr::new(10, 0, 0, 1),
        ))
    }

    fn p(text: &str) -> Prefix {
        text.parse().unwrap()
    }

    #[test]
    fn initial_sync_announces_everything() {
        let mut out = AdjRibOut::new();
        let a = attrs(1);
        let actions = out.sync([(p("10.0.0.0/8"), a.clone()), (p("11.0.0.0/8"), a)]);
        assert_eq!(actions.len(), 2);
        assert!(actions
            .iter()
            .all(|action| matches!(action, ExportAction::Announce(..))));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn resync_with_same_state_is_empty() {
        let mut out = AdjRibOut::new();
        let a = attrs(1);
        out.sync([(p("10.0.0.0/8"), a.clone())]);
        let actions = out.sync([(p("10.0.0.0/8"), a)]);
        assert!(actions.is_empty());
    }

    #[test]
    fn sync_detects_attribute_changes_and_disappearances() {
        let mut out = AdjRibOut::new();
        out.sync([(p("10.0.0.0/8"), attrs(1)), (p("11.0.0.0/8"), attrs(1))]);
        let actions = out.sync([(p("10.0.0.0/8"), attrs(2))]);
        assert_eq!(actions.len(), 2);
        assert_eq!(actions[0], ExportAction::Withdraw(p("11.0.0.0/8")));
        assert!(
            matches!(actions[1], ExportAction::Announce(prefix, _) if prefix == p("10.0.0.0/8"))
        );
    }

    #[test]
    fn sync_prefix_single_route_lifecycle() {
        let mut out = AdjRibOut::new();
        let a = attrs(1);
        assert!(matches!(
            out.sync_prefix(p("10.0.0.0/8"), Some(a.clone())),
            Some(ExportAction::Announce(..))
        ));
        // Unchanged: no action.
        assert_eq!(out.sync_prefix(p("10.0.0.0/8"), Some(a)), None);
        assert!(matches!(
            out.sync_prefix(p("10.0.0.0/8"), None),
            Some(ExportAction::Withdraw(_))
        ));
        // Withdrawing again: no action.
        assert_eq!(out.sync_prefix(p("10.0.0.0/8"), None), None);
    }

    #[test]
    fn to_updates_small_packets_one_prefix_each() {
        let a = attrs(1);
        let actions: Vec<ExportAction> = (0..5)
            .map(|i| ExportAction::Announce(p(&format!("{}.0.0.0/8", 10 + i)), a.clone()))
            .collect();
        let updates = AdjRibOut::to_updates(&actions, 1);
        assert_eq!(updates.len(), 5);
        assert!(updates.iter().all(|u| u.nlri().len() == 1));
    }

    #[test]
    fn to_updates_large_packets_batch_up_to_limit() {
        let a = attrs(1);
        let actions: Vec<ExportAction> = (0..1100u32)
            .map(|i| {
                let prefix =
                    Prefix::new_masked(Ipv4Addr::from(0x0A00_0000 | (i << 8)), 24).unwrap();
                ExportAction::Announce(prefix, a.clone())
            })
            .collect();
        let updates = AdjRibOut::to_updates(&actions, 500);
        assert_eq!(updates.len(), 3);
        assert_eq!(updates[0].nlri().len(), 500);
        assert_eq!(updates[1].nlri().len(), 500);
        assert_eq!(updates[2].nlri().len(), 100);
    }

    #[test]
    fn to_updates_groups_by_attribute_set() {
        let actions = vec![
            ExportAction::Announce(p("10.0.0.0/8"), attrs(1)),
            ExportAction::Announce(p("11.0.0.0/8"), attrs(2)),
            ExportAction::Announce(p("12.0.0.0/8"), attrs(1)),
        ];
        let updates = AdjRibOut::to_updates(&actions, 500);
        // Two attribute groups → two messages even though all fit in one.
        assert_eq!(updates.len(), 2);
        assert_eq!(updates[0].nlri().len(), 2);
        assert_eq!(updates[1].nlri().len(), 1);
    }

    #[test]
    fn to_updates_groups_value_equal_distinct_arcs() {
        let a = attrs(1);
        // Value-equal but separately allocated: must land in the same
        // group even though the pointer-keyed fast path misses.
        let b = Arc::new((*a).clone());
        let actions = vec![
            ExportAction::Announce(p("10.0.0.0/8"), a.clone()),
            ExportAction::Announce(p("11.0.0.0/8"), b),
            ExportAction::Announce(p("12.0.0.0/8"), a),
        ];
        let updates = AdjRibOut::to_updates(&actions, 500);
        assert_eq!(updates.len(), 1);
        assert_eq!(updates[0].nlri().len(), 3);
    }

    #[test]
    fn to_updates_mixes_withdrawals_and_announcements() {
        let actions = vec![
            ExportAction::Withdraw(p("9.0.0.0/8")),
            ExportAction::Announce(p("10.0.0.0/8"), attrs(1)),
        ];
        let updates = AdjRibOut::to_updates(&actions, 500);
        assert_eq!(updates.len(), 2);
        assert_eq!(updates[0].withdrawn().len(), 1);
        assert_eq!(updates[1].nlri().len(), 1);
    }

    #[test]
    #[should_panic(expected = "packet size must be positive")]
    fn to_updates_rejects_zero_packet_size() {
        AdjRibOut::to_updates(&[], 0);
    }
}
