//! The BGP decision process (RFC 4271 §9.1.2).

use std::cmp::Ordering;

use crate::route::{PeerInfo, RouteAttributes};
use bgpbench_wire::Asn;

/// Tunable knobs for the decision process.
///
/// The paper notes that "most vendors implement the best path selection
/// based on the length of AS path, although it is not specified in the
/// BGP RFC" — the default configuration matches that common vendor
/// behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionConfig {
    /// Compare MED between routes from *any* neighboring AS, not only
    /// between routes from the same AS (the `always-compare-med`
    /// vendor knob). Keeping this on makes the preference relation a
    /// total order, which the benchmark relies on for repeatability.
    pub always_compare_med: bool,
    /// Skip the AS-path-length step (pure-policy selection).
    pub ignore_as_path_length: bool,
}

impl Default for DecisionConfig {
    fn default() -> Self {
        DecisionConfig {
            always_compare_med: true,
            ignore_as_path_length: false,
        }
    }
}

/// Compares two candidate routes for the same prefix.
///
/// Returns [`Ordering::Greater`] when `(a, a_peer)` is *preferred* over
/// `(b, b_peer)`. The comparison applies, in order:
///
/// 1. higher LOCAL_PREF (degree of preference, §9.1.1);
/// 2. shorter AS path (the de-facto vendor step);
/// 3. lower ORIGIN (IGP < EGP < INCOMPLETE);
/// 4. lower MED (missing MED treated as 0, the common default);
/// 5. eBGP over iBGP (relative to `local_asn`);
/// 6. lower peer BGP identifier;
/// 7. lower peer address (final deterministic tie-break).
///
/// The relation is total and antisymmetric for distinct peers, so
/// selection is deterministic — a property the benchmark's
/// property-based tests assert.
pub fn compare_routes(
    config: &DecisionConfig,
    local_asn: Asn,
    a: &RouteAttributes,
    a_peer: &PeerInfo,
    b: &RouteAttributes,
    b_peer: &PeerInfo,
) -> Ordering {
    // 1. LOCAL_PREF: higher wins.
    let by_pref = a.effective_local_pref().cmp(&b.effective_local_pref());
    if by_pref != Ordering::Equal {
        return by_pref;
    }
    // 2. AS path length: shorter wins.
    if !config.ignore_as_path_length {
        let by_len = b.as_path().length().cmp(&a.as_path().length());
        if by_len != Ordering::Equal {
            return by_len;
        }
    }
    // 3. Origin: lower wins.
    let by_origin = (b.origin() as u8).cmp(&(a.origin() as u8));
    if by_origin != Ordering::Equal {
        return by_origin;
    }
    // 4. MED: lower wins (when comparable).
    let med_comparable =
        config.always_compare_med || a.as_path().first_as() == b.as_path().first_as();
    if med_comparable {
        let by_med = b.med().unwrap_or(0).cmp(&a.med().unwrap_or(0));
        if by_med != Ordering::Equal {
            return by_med;
        }
    }
    // 5. eBGP over iBGP.
    let a_ebgp = a_peer.asn() != local_asn;
    let b_ebgp = b_peer.asn() != local_asn;
    let by_session = a_ebgp.cmp(&b_ebgp);
    if by_session != Ordering::Equal {
        return by_session;
    }
    // 6. Lower router ID wins.
    let by_id = b_peer.router_id().cmp(&a_peer.router_id());
    if by_id != Ordering::Equal {
        return by_id;
    }
    // 7. Lower peer address wins.
    b_peer.address().cmp(&a_peer.address())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PeerId;
    use bgpbench_wire::{AsPath, Origin, RouterId};
    use std::net::Ipv4Addr;

    fn peer(id: u32, asn: u16, router_id: u32, last_octet: u8) -> PeerInfo {
        PeerInfo::new(
            PeerId(id),
            Asn(asn),
            RouterId(router_id),
            Ipv4Addr::new(10, 0, 0, last_octet),
        )
    }

    fn attrs(path: &[u16]) -> RouteAttributes {
        RouteAttributes::new(
            Origin::Igp,
            AsPath::from_sequence(path.iter().copied().map(Asn)),
            Ipv4Addr::new(10, 0, 0, 2),
        )
    }

    fn attrs_med(path: &[u16], med: u32) -> RouteAttributes {
        RouteAttributes::builder()
            .as_path(AsPath::from_sequence(path.iter().copied().map(Asn)))
            .next_hop(Ipv4Addr::new(10, 0, 0, 2))
            .med(med)
            .build()
    }

    fn attrs_pref(path: &[u16], local_pref: u32) -> RouteAttributes {
        RouteAttributes::builder()
            .as_path(AsPath::from_sequence(path.iter().copied().map(Asn)))
            .next_hop(Ipv4Addr::new(10, 0, 0, 2))
            .local_pref(local_pref)
            .build()
    }

    const LOCAL: Asn = Asn(65000);

    fn prefer(a: &RouteAttributes, ap: &PeerInfo, b: &RouteAttributes, bp: &PeerInfo) -> Ordering {
        compare_routes(&DecisionConfig::default(), LOCAL, a, ap, b, bp)
    }

    #[test]
    fn local_pref_dominates_everything() {
        let long_but_preferred = attrs_pref(&[1, 2, 3, 4, 5], 200);
        let short = attrs(&[1]);
        let p1 = peer(1, 65001, 1, 1);
        let p2 = peer(2, 65002, 2, 2);
        assert_eq!(
            prefer(&long_but_preferred, &p1, &short, &p2),
            Ordering::Greater
        );
    }

    #[test]
    fn shorter_as_path_wins() {
        let short = attrs(&[1, 2]);
        let long = attrs(&[1, 2, 3]);
        let p1 = peer(1, 65001, 1, 1);
        let p2 = peer(2, 65002, 2, 2);
        assert_eq!(prefer(&short, &p1, &long, &p2), Ordering::Greater);
        assert_eq!(prefer(&long, &p2, &short, &p1), Ordering::Less);
    }

    #[test]
    fn origin_breaks_equal_length_ties() {
        let igp = attrs(&[1, 2]);
        let incomplete = RouteAttributes::new(
            Origin::Incomplete,
            AsPath::from_sequence([Asn(3), Asn(4)]),
            Ipv4Addr::new(10, 0, 0, 3),
        );
        let p1 = peer(1, 65001, 1, 1);
        let p2 = peer(2, 65002, 2, 2);
        assert_eq!(prefer(&igp, &p1, &incomplete, &p2), Ordering::Greater);
    }

    #[test]
    fn lower_med_wins_when_rest_equal() {
        let cheap = attrs_med(&[1, 2], 10);
        let expensive = attrs_med(&[9, 8], 20);
        let p1 = peer(1, 65001, 1, 1);
        let p2 = peer(2, 65002, 2, 2);
        assert_eq!(prefer(&cheap, &p1, &expensive, &p2), Ordering::Greater);
    }

    #[test]
    fn missing_med_is_treated_as_zero() {
        let none = attrs(&[1, 2]);
        let some = attrs_med(&[3, 4], 1);
        let p1 = peer(1, 65001, 1, 1);
        let p2 = peer(2, 65002, 2, 2);
        assert_eq!(prefer(&none, &p1, &some, &p2), Ordering::Greater);
    }

    #[test]
    fn med_skipped_across_as_when_not_always_compare() {
        let config = DecisionConfig {
            always_compare_med: false,
            ..DecisionConfig::default()
        };
        let a = attrs_med(&[1, 2], 50);
        let b = attrs_med(&[3, 4], 10);
        // Different first AS → MED incomparable → falls through to
        // router-ID tie-break (peer 1 has the lower ID and wins).
        let p1 = peer(1, 65001, 1, 1);
        let p2 = peer(2, 65002, 2, 2);
        assert_eq!(
            compare_routes(&config, LOCAL, &a, &p1, &b, &p2),
            Ordering::Greater
        );
    }

    #[test]
    fn ebgp_preferred_over_ibgp() {
        let a = attrs(&[1, 2]);
        let b = attrs(&[3, 4]);
        let ebgp_peer = peer(1, 65001, 9, 9);
        let ibgp_peer = peer(2, LOCAL.0, 1, 1); // same AS as local
        assert_eq!(prefer(&a, &ebgp_peer, &b, &ibgp_peer), Ordering::Greater);
        assert_eq!(prefer(&b, &ibgp_peer, &a, &ebgp_peer), Ordering::Less);
    }

    #[test]
    fn router_id_then_address_tie_breaks() {
        let a = attrs(&[1, 2]);
        let b = attrs(&[3, 4]);
        let low_id = peer(1, 65001, 1, 5);
        let high_id = peer(2, 65002, 2, 4);
        assert_eq!(prefer(&a, &low_id, &b, &high_id), Ordering::Greater);

        let same_id_low_addr = peer(1, 65001, 7, 1);
        let same_id_high_addr = peer(2, 65002, 7, 2);
        assert_eq!(
            prefer(&a, &same_id_low_addr, &b, &same_id_high_addr),
            Ordering::Greater
        );
    }

    #[test]
    fn comparison_is_antisymmetric() {
        let a = attrs_med(&[1], 3);
        let b = attrs_pref(&[2, 3], 90);
        let p1 = peer(1, 65001, 1, 1);
        let p2 = peer(2, 65002, 2, 2);
        let forward = prefer(&a, &p1, &b, &p2);
        let backward = prefer(&b, &p2, &a, &p1);
        assert_eq!(forward, backward.reverse());
    }

    #[test]
    fn ignore_as_path_length_knob() {
        let config = DecisionConfig {
            ignore_as_path_length: true,
            ..DecisionConfig::default()
        };
        let long_cheap = attrs_med(&[1, 2, 3, 4], 0);
        let short_costly = attrs_med(&[1], 10);
        let p1 = peer(1, 65001, 1, 1);
        let p2 = peer(2, 65002, 2, 2);
        assert_eq!(
            compare_routes(&config, LOCAL, &long_cheap, &p1, &short_costly, &p2),
            Ordering::Greater
        );
    }
}
