//! Equivalence proptests: the interned, batched engine must behave
//! exactly like a naive reference implementation that clones attribute
//! sets per prefix and re-runs the full decision scan on every change
//! (the pre-interning semantics).
//!
//! The reference engine here deliberately avoids every fast path the
//! real engine uses: no hash-consing (fresh `RouteAttributes` value per
//! prefix), value-equality everywhere, `BTreeMap` tables, and a full
//! rescan of all Adj-RIBs-In after each announce/withdraw. If the real
//! engine's pointer-identity shortcuts or decision early-outs ever
//! diverge from plain value semantics, these tests catch it.
//!
//! The real side is a [`ShardedRibEngine`] whose shard count each case
//! draws from {1, 2, 3, 4, 8}: one shard is the wholesale-delegation
//! path (the original engine), more shards exercise the partition /
//! per-shard apply / message-order merge machinery — all against the
//! same single-table reference, so sharding is proven bit-invariant,
//! not just internally consistent.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use bgpbench_rib::{
    compare_routes, DampingConfig, DecisionConfig, FibDirective, FlapKind, MatchClause, PeerId,
    PeerInfo, PrefixList, PrefixMatch, PrefixOutcome, RibEngine, RibStats, RouteAttributes,
    RouteChange, RouteDamper, RouteMap, RouteMapEntry, SetClause, ShardedRibEngine,
};
use bgpbench_wire::{AsPath, Asn, Origin, Prefix, RouterId, UpdateMessage};
use proptest::prelude::*;

const LOCAL_ASN: Asn = Asn(65000);

/// The naive reference: value semantics, full rescans, no sharing.
struct RefEngine {
    local_asn: Asn,
    config: DecisionConfig,
    policy: RouteMap,
    peers: Vec<PeerInfo>,
    adj_in: BTreeMap<PeerId, BTreeMap<Prefix, RouteAttributes>>,
    loc_rib: BTreeMap<Prefix, (PeerId, RouteAttributes)>,
    damper: Option<RouteDamper>,
    stats: RibStats,
}

impl RefEngine {
    fn new(peers: Vec<PeerInfo>, policy: RouteMap, damping: Option<DampingConfig>) -> Self {
        let adj_in = peers
            .iter()
            .map(|info| (info.id(), BTreeMap::new()))
            .collect();
        RefEngine {
            local_asn: LOCAL_ASN,
            config: DecisionConfig::default(),
            policy,
            peers,
            adj_in,
            loc_rib: BTreeMap::new(),
            damper: damping.map(RouteDamper::new),
            stats: RibStats::default(),
        }
    }

    fn peer_info(&self, peer: PeerId) -> &PeerInfo {
        self.peers.iter().find(|info| info.id() == peer).unwrap()
    }

    fn apply_update_at(
        &mut self,
        peer: PeerId,
        update: &UpdateMessage,
        now_secs: f64,
    ) -> Vec<PrefixOutcome> {
        self.stats.updates += 1;
        let mut outcomes = Vec::new();

        for prefix in update.withdrawn() {
            self.stats.withdrawals += 1;
            let had_route = self.adj_in[&peer].contains_key(prefix);
            if had_route {
                if let Some(damper) = &mut self.damper {
                    damper.record_flap(peer, *prefix, FlapKind::Withdraw, now_secs);
                }
            }
            outcomes.push(self.withdraw_one(peer, *prefix));
        }

        if update.nlri().is_empty() {
            return outcomes;
        }
        let attrs = RouteAttributes::from_wire(update.attributes()).unwrap();
        if attrs.as_path().contains(self.local_asn) {
            for prefix in update.nlri() {
                self.stats.announcements += 1;
                self.stats.loop_rejected += 1;
                outcomes.push(PrefixOutcome {
                    prefix: *prefix,
                    change: RouteChange::RejectedAsLoop,
                    fib: None,
                });
            }
            return outcomes;
        }

        for prefix in update.nlri() {
            self.stats.announcements += 1;
            if let Some(damper) = &mut self.damper {
                let existing = self.adj_in[&peer].get(prefix);
                let kind = match existing {
                    Some(old) if old != &attrs => Some(FlapKind::AttributeChange),
                    Some(_) => None,
                    None => Some(FlapKind::Reannounce),
                };
                if let Some(kind) = kind {
                    damper.record_flap(peer, *prefix, kind, now_secs);
                }
                if damper.is_suppressed(peer, prefix, now_secs) {
                    self.stats.dampened += 1;
                    outcomes.push(PrefixOutcome {
                        prefix: *prefix,
                        change: RouteChange::Dampened,
                        fib: None,
                    });
                    continue;
                }
            }
            let outcome = match self.policy.evaluate(prefix, attrs.clone()) {
                Some(final_attrs) => {
                    self.adj_in
                        .get_mut(&peer)
                        .unwrap()
                        .insert(*prefix, final_attrs);
                    self.reselect(*prefix)
                }
                None => {
                    self.stats.policy_rejected += 1;
                    PrefixOutcome {
                        prefix: *prefix,
                        change: RouteChange::RejectedByPolicy,
                        fib: None,
                    }
                }
            };
            outcomes.push(outcome);
        }
        outcomes
    }

    fn withdraw_one(&mut self, peer: PeerId, prefix: Prefix) -> PrefixOutcome {
        if self
            .adj_in
            .get_mut(&peer)
            .unwrap()
            .remove(&prefix)
            .is_none()
        {
            return PrefixOutcome {
                prefix,
                change: RouteChange::WithdrawnUnknown,
                fib: None,
            };
        }
        self.reselect(prefix)
    }

    /// Full rescan of every Adj-RIB-In, exactly the pre-optimization
    /// classification.
    fn reselect(&mut self, prefix: Prefix) -> PrefixOutcome {
        let mut new_best: Option<(PeerId, RouteAttributes)> = None;
        for info in &self.peers {
            let Some(attrs) = self.adj_in[&info.id()].get(&prefix) else {
                continue;
            };
            new_best = match new_best {
                None => Some((info.id(), attrs.clone())),
                Some((best_peer, best_attrs)) => {
                    let ordering = compare_routes(
                        &self.config,
                        self.local_asn,
                        attrs,
                        info,
                        &best_attrs,
                        self.peer_info(best_peer),
                    );
                    if ordering == Ordering::Greater {
                        Some((info.id(), attrs.clone()))
                    } else {
                        Some((best_peer, best_attrs))
                    }
                }
            };
        }
        let old_best = self.loc_rib.get(&prefix);
        let (change, fib) = match (old_best, &new_best) {
            (None, None) => (RouteChange::Unchanged, None),
            (None, Some((_, new))) => (
                RouteChange::Installed,
                Some(FibDirective::Install {
                    prefix,
                    next_hop: new.next_hop(),
                }),
            ),
            (Some(_), None) => (
                RouteChange::Withdrawn,
                Some(FibDirective::Remove { prefix }),
            ),
            (Some((old_peer, old)), Some((new_peer, new))) => {
                if old_peer == new_peer && old == new {
                    (RouteChange::Unchanged, None)
                } else {
                    let fib_changed = old.next_hop() != new.next_hop();
                    let fib = fib_changed.then_some(FibDirective::Install {
                        prefix,
                        next_hop: new.next_hop(),
                    });
                    (RouteChange::Replaced { fib_changed }, fib)
                }
            }
        };
        match &fib {
            Some(FibDirective::Install { .. }) => self.stats.fib_installs += 1,
            Some(FibDirective::Remove { .. }) => self.stats.fib_removes += 1,
            None => {}
        }
        if !matches!(change, RouteChange::Unchanged) {
            self.stats.best_changed += 1;
        }
        match new_best {
            Some((peer, attrs)) => {
                self.loc_rib.insert(prefix, (peer, attrs));
            }
            None => {
                self.loc_rib.remove(&prefix);
            }
        }
        PrefixOutcome {
            prefix,
            change,
            fib,
        }
    }

    /// Point-in-time table sizes by value semantics: where the real
    /// engine counts interned entries and distinct best-route Arc
    /// pointers, the reference counts distinct attribute *values* —
    /// the two must agree if hash-consing upholds its invariant.
    fn stats(&self) -> RibStats {
        let mut stats = self.stats;
        let mut distinct: Vec<&RouteAttributes> = Vec::new();
        for rib in self.adj_in.values() {
            for attrs in rib.values() {
                if !distinct.contains(&attrs) {
                    distinct.push(attrs);
                }
            }
        }
        stats.attr_store_entries = distinct.len() as u64;
        let mut groups: Vec<&RouteAttributes> = Vec::new();
        for (_, attrs) in self.loc_rib.values() {
            if !groups.contains(&attrs) {
                groups.push(attrs);
            }
        }
        stats.adj_out_groups = groups.len() as u64;
        stats
    }
}

fn peer_pool() -> Vec<PeerInfo> {
    vec![
        PeerInfo::new(
            PeerId(1),
            Asn(65001),
            RouterId(0x0A00_0002),
            Ipv4Addr::new(10, 0, 0, 2),
        ),
        PeerInfo::new(
            PeerId(2),
            Asn(65002),
            RouterId(0x0A00_0003),
            Ipv4Addr::new(10, 0, 0, 3),
        ),
        PeerInfo::new(
            PeerId(3),
            Asn(65003),
            RouterId(0x0A00_0004),
            Ipv4Addr::new(10, 0, 0, 4),
        ),
    ]
}

fn arb_attrs() -> impl Strategy<Value = RouteAttributes> {
    (
        prop_oneof![
            Just(Origin::Igp),
            Just(Origin::Egp),
            Just(Origin::Incomplete)
        ],
        prop::collection::vec(1u16..9999, 1..5),
        any::<u32>(),
        prop::option::of(0u32..1000),
        prop::option::of(0u32..1000),
    )
        .prop_map(|(origin, path, hop, med, pref)| {
            let mut builder = RouteAttributes::builder()
                .origin(origin)
                .as_path(AsPath::from_sequence(path.into_iter().map(Asn)))
                .next_hop(Ipv4Addr::from(hop));
            if let Some(med) = med {
                builder = builder.med(med);
            }
            if let Some(pref) = pref {
                builder = builder.local_pref(pref);
            }
            builder.build()
        })
}

/// One step of an update stream: a subset of the prefix pool announced
/// with one attribute set from the pool, another subset withdrawn, from
/// one peer, some time after the previous step.
#[derive(Debug, Clone)]
struct Op {
    peer: usize,
    attr: prop::sample::Index,
    announce_mask: u8,
    withdraw_mask: u8,
    dt_secs: f64,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (
            0..3usize,
            any::<prop::sample::Index>(),
            any::<u8>(),
            any::<u8>(),
            0.0..30.0f64,
        )
            .prop_map(|(peer, attr, announce_mask, withdraw_mask, dt_secs)| Op {
                peer,
                attr,
                announce_mask,
                withdraw_mask,
                dt_secs,
            }),
        1..32,
    )
}

fn masked(pool: &[Prefix], mask: u8) -> Vec<Prefix> {
    pool.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << (i % 8)) != 0 && *i < 8)
        .map(|(_, prefix)| *prefix)
        .collect()
}

fn build_message(
    attrs: &RouteAttributes,
    announce: &[Prefix],
    withdraw: &[Prefix],
) -> UpdateMessage {
    let mut builder = UpdateMessage::builder().withdraw_all(withdraw.iter().copied());
    if !announce.is_empty() {
        for attr in attrs.to_wire() {
            builder = builder.attribute(attr);
        }
        builder = builder.announce_all(announce.iter().copied());
    }
    builder.build()
}

/// The shard counts every equivalence property samples: the delegation
/// path (1), counts that split the three-peer pools unevenly (2, 3),
/// and the benchmarked count plus one beyond it (4, 8).
fn arb_shards() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(3), Just(4), Just(8)]
}

/// Drives both engines through the same stream and asserts identical
/// outcome sequences, Loc-RIB contents, Adj-RIB-In contents, and stats.
fn check_equivalence(
    shards: usize,
    attr_pool: &[RouteAttributes],
    prefix_pool: &[Prefix],
    ops: &[Op],
    policy: RouteMap,
    damping: Option<DampingConfig>,
) -> Result<(), TestCaseError> {
    let peers = peer_pool();
    let mut real = ShardedRibEngine::new(LOCAL_ASN, RouterId(1));
    for info in &peers {
        real.add_peer(*info);
    }
    real.set_shards(shards);
    real.set_import_policy(policy.clone());
    if let Some(config) = damping {
        real.enable_damping(config);
    }
    let mut reference = RefEngine::new(peers.clone(), policy, damping);

    let mut now = 0.0f64;
    for op in ops {
        now += op.dt_secs;
        let peer = peers[op.peer].id();
        let attrs = &attr_pool[op.attr.index(attr_pool.len())];
        let announce = masked(prefix_pool, op.announce_mask);
        let withdraw = masked(prefix_pool, op.withdraw_mask);
        let update = build_message(attrs, &announce, &withdraw);

        let got = real.apply_update_at(peer, &update, now).unwrap();
        let want = reference.apply_update_at(peer, &update, now);
        prop_assert_eq!(&got, &want, "outcomes diverge at t={}", now);
    }

    // Loc-RIB: same prefixes, same selected peer, same attribute values.
    prop_assert_eq!(real.loc_rib().len(), reference.loc_rib.len());
    for (prefix, (want_peer, want_attrs)) in &reference.loc_rib {
        let route = real.loc_rib().get(prefix).expect("missing Loc-RIB entry");
        prop_assert_eq!(route.learned_from(), *want_peer);
        prop_assert_eq!(route.attrs().as_ref(), want_attrs);
    }
    // Adj-RIBs-In: identical contents by value.
    for info in &peer_pool() {
        let real_rib = real.adj_rib_in(info.id()).unwrap();
        let want_rib = &reference.adj_in[&info.id()];
        prop_assert_eq!(real_rib.len(), want_rib.len());
        for (prefix, want_attrs) in want_rib {
            let got = real_rib.get(prefix).expect("missing Adj-RIB-In entry");
            prop_assert_eq!(got.as_ref(), want_attrs);
        }
    }
    let stats = real.stats();
    prop_assert_eq!(stats, reference.stats());
    // The point-in-time sizes are internally consistent too: the store
    // backs every live Adj-RIB-In entry, and each export group is one
    // of its interned sets chosen as a best route.
    prop_assert_eq!(stats.attr_store_entries, real.attr_store_len() as u64);
    prop_assert!(stats.adj_out_groups <= stats.attr_store_entries);
    prop_assert!(stats.adj_out_groups <= real.loc_rib().len() as u64);
    if !reference.loc_rib.is_empty() {
        prop_assert!(stats.adj_out_groups >= 1);
    }
    Ok(())
}

fn arb_prefix_pool() -> impl Strategy<Value = Vec<Prefix>> {
    prop::collection::btree_set(any::<u16>(), 3..8).prop_map(|seeds| {
        seeds
            .into_iter()
            .map(|seed| Prefix::new_masked(Ipv4Addr::from(u32::from(seed) << 12), 20).unwrap())
            .collect()
    })
}

fn test_policy() -> RouteMap {
    RouteMap::new([
        RouteMapEntry::deny(10).matching(MatchClause::AsPathContains(Asn(666))),
        RouteMapEntry::permit(20)
            .matching(MatchClause::Prefix(PrefixList::new([(
                true,
                PrefixMatch::range("0.0.0.0/0".parse().unwrap(), 0, 20),
            )])))
            .set(SetClause::LocalPref(120))
            .set(SetClause::AddCommunity(0x0001_0002)),
        RouteMapEntry::permit(30).set(SetClause::AddCommunity(0x0001_0002)),
    ])
}

proptest! {
    /// Permit-all policy, no damping: the pure interned fast path.
    #[test]
    fn interned_engine_matches_reference(
        shards in arb_shards(),
        attr_pool in prop::collection::vec(arb_attrs(), 2..5),
        prefix_pool in arb_prefix_pool(),
        ops in arb_ops(),
    ) {
        check_equivalence(
            shards,
            &attr_pool,
            &prefix_pool,
            &ops,
            RouteMap::permit_all(),
            None,
        )?;
    }

    /// A rewriting/rejecting policy exercises the intern-after-policy
    /// path (rewritten attribute sets are interned separately) —
    /// per shard, under sharding.
    #[test]
    fn interned_engine_matches_reference_under_policy(
        shards in arb_shards(),
        attr_pool in prop::collection::vec(arb_attrs(), 2..5),
        prefix_pool in arb_prefix_pool(),
        ops in arb_ops(),
    ) {
        check_equivalence(shards, &attr_pool, &prefix_pool, &ops, test_policy(), None)?;
    }

    /// Damping on: flap-kind classification via pointer identity must
    /// match the reference's value comparisons, with each shard's
    /// damper seeing exactly its own prefixes' flap history.
    #[test]
    fn interned_engine_matches_reference_with_damping(
        shards in arb_shards(),
        attr_pool in prop::collection::vec(arb_attrs(), 2..5),
        prefix_pool in arb_prefix_pool(),
        ops in arb_ops(),
    ) {
        check_equivalence(
            shards,
            &attr_pool,
            &prefix_pool,
            &ops,
            RouteMap::permit_all(),
            Some(DampingConfig::default()),
        )?;
    }

    /// A whole train through the batch API must be indistinguishable
    /// from feeding the same messages one at a time: same per-update
    /// outcome vectors, same tables, same stats, same interned set
    /// count — at every shard count, which on a multi-core host drives
    /// the scoped-thread fan-out itself.
    #[test]
    fn update_train_matches_one_at_a_time(
        shards in arb_shards(),
        attr_pool in prop::collection::vec(arb_attrs(), 2..5),
        prefix_pool in arb_prefix_pool(),
        ops in arb_ops(),
    ) {
        let peers = peer_pool();
        let build = || {
            let mut engine = ShardedRibEngine::new(LOCAL_ASN, RouterId(1));
            for info in &peers {
                engine.add_peer(*info);
            }
            engine.set_shards(shards);
            engine.set_import_policy(test_policy());
            engine
        };
        let mut train = build();
        let mut sequential = build();
        // Trains run at clock zero from one peer, so damping and the
        // ops' peer/dt fields stay out of this property.
        let peer = peers[0].id();
        let updates: Vec<UpdateMessage> = ops
            .iter()
            .map(|op| {
                build_message(
                    &attr_pool[op.attr.index(attr_pool.len())],
                    &masked(&prefix_pool, op.announce_mask),
                    &masked(&prefix_pool, op.withdraw_mask),
                )
            })
            .collect();

        let got = train.apply_update_train(peer, &updates).unwrap();
        let mut want = Vec::with_capacity(updates.len());
        for update in &updates {
            want.push(sequential.apply_update(peer, update).unwrap());
        }
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(train.stats(), sequential.stats());
        prop_assert_eq!(train.attr_store_len(), sequential.attr_store_len());
        prop_assert_eq!(train.loc_rib().len(), sequential.loc_rib().len());
        for route in train.loc_rib().iter() {
            let other = sequential
                .loc_rib()
                .get(&route.prefix())
                .expect("missing Loc-RIB entry");
            prop_assert_eq!(other.learned_from(), route.learned_from());
            prop_assert_eq!(other.attrs().as_ref(), route.attrs().as_ref());
        }
    }

    /// A route-map whose single entry permits everything and rewrites
    /// nothing must be observationally identical to the *empty* map:
    /// the engine's permit-all fast path (which skips evaluation and
    /// reuses the interned Arc) may not be distinguishable from the
    /// evaluate-and-re-intern path.
    #[test]
    fn no_op_route_map_is_identity(
        attr_pool in prop::collection::vec(arb_attrs(), 2..5),
        prefix_pool in arb_prefix_pool(),
        ops in arb_ops(),
    ) {
        let peers = peer_pool();
        let build = |policy: RouteMap| {
            let mut engine = RibEngine::new(LOCAL_ASN, RouterId(1));
            for info in &peers {
                engine.add_peer(*info);
            }
            engine.set_import_policy(policy);
            engine
        };
        let mut fast = build(RouteMap::permit_all());
        let mut slow = build(RouteMap::new([RouteMapEntry::permit(10)]));

        let mut now = 0.0f64;
        for op in &ops {
            now += op.dt_secs;
            let peer = peers[op.peer].id();
            let attrs = &attr_pool[op.attr.index(attr_pool.len())];
            let update = build_message(
                attrs,
                &masked(&prefix_pool, op.announce_mask),
                &masked(&prefix_pool, op.withdraw_mask),
            );
            let a = fast.apply_update_at(peer, &update, now).unwrap();
            let b = slow.apply_update_at(peer, &update, now).unwrap();
            prop_assert_eq!(&a, &b, "outcomes diverge at t={}", now);
        }
        prop_assert_eq!(fast.stats(), slow.stats());
        prop_assert_eq!(fast.loc_rib().len(), slow.loc_rib().len());
        for route in fast.loc_rib().iter() {
            let other = slow
                .loc_rib()
                .get(&route.prefix())
                .expect("missing Loc-RIB entry");
            prop_assert_eq!(other.learned_from(), route.learned_from());
            prop_assert_eq!(other.attrs().as_ref(), route.attrs().as_ref());
        }
    }
}

/// Sustained churn must not leak interned attribute sets: after a full
/// withdraw of everything, the store is empty.
#[test]
fn attr_store_is_bounded_across_withdraw_storms() {
    let peers = peer_pool();
    let mut engine = RibEngine::new(LOCAL_ASN, RouterId(1));
    for info in &peers {
        engine.add_peer(*info);
    }
    let prefixes: Vec<Prefix> = (0..32u32)
        .map(|i| Prefix::new_masked(Ipv4Addr::from(i << 16), 16).unwrap())
        .collect();
    for round in 0..20u16 {
        for info in &peers {
            let attrs = RouteAttributes::new(
                Origin::Igp,
                AsPath::from_sequence([Asn(info.asn().0), Asn(1000 + round)]),
                info.address(),
            );
            let update = build_message(&attrs, &prefixes, &[]);
            engine.apply_update(info.id(), &update).unwrap();
        }
        // The store holds exactly one entry per announcing peer.
        assert_eq!(engine.attr_store().len(), peers.len());
        let withdraw = build_message(
            &RouteAttributes::new(
                Origin::Igp,
                AsPath::from_sequence([Asn(1)]),
                Ipv4Addr::UNSPECIFIED,
            ),
            &[],
            &prefixes,
        );
        for info in &peers {
            engine.apply_update(info.id(), &withdraw).unwrap();
        }
        assert_eq!(
            engine.attr_store().len(),
            0,
            "store leaked in round {round}"
        );
    }
    assert!(engine.loc_rib().is_empty());
}
