//! Property tests for the Adj-RIB-Out: applying the actions `sync`
//! emits to a mirror table must always reproduce the desired state,
//! and packetization must preserve every action.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use bgpbench_rib::{AdjRibOut, ExportAction, RouteAttributes};
use bgpbench_wire::{AsPath, Asn, Origin, Prefix};
use proptest::prelude::*;

fn arb_attrs() -> impl Strategy<Value = Arc<RouteAttributes>> {
    (1u16..50, any::<u32>()).prop_map(|(asn, hop)| {
        Arc::new(RouteAttributes::new(
            Origin::Igp,
            AsPath::from_sequence([Asn(asn)]),
            Ipv4Addr::from(hop),
        ))
    })
}

fn arb_state() -> impl Strategy<Value = Vec<(Prefix, Arc<RouteAttributes>)>> {
    prop::collection::btree_map(0u16..64, arb_attrs(), 0..32).prop_map(|map| {
        map.into_iter()
            .map(|(seed, attrs)| {
                let prefix = Prefix::new_masked(Ipv4Addr::from(u32::from(seed) << 16), 16).unwrap();
                (prefix, attrs)
            })
            .collect()
    })
}

/// A mirror of what the neighbor would hold after applying actions.
fn apply_actions(mirror: &mut HashMap<Prefix, Arc<RouteAttributes>>, actions: &[ExportAction]) {
    for action in actions {
        match action {
            ExportAction::Announce(prefix, attrs) => {
                mirror.insert(*prefix, attrs.clone());
            }
            ExportAction::Withdraw(prefix) => {
                mirror.remove(prefix);
            }
        }
    }
}

proptest! {
    /// After any sequence of desired-state syncs, the neighbor's
    /// mirror equals the last desired state.
    #[test]
    fn sync_converges_to_desired_state(
        states in prop::collection::vec(arb_state(), 1..6)
    ) {
        let mut adj_out = AdjRibOut::new();
        let mut mirror: HashMap<Prefix, Arc<RouteAttributes>> = HashMap::new();
        for desired in &states {
            let actions = adj_out.sync(desired.clone());
            apply_actions(&mut mirror, &actions);
            let expected: HashMap<Prefix, Arc<RouteAttributes>> =
                desired.iter().cloned().collect();
            prop_assert_eq!(mirror.len(), expected.len());
            for (prefix, attrs) in &expected {
                prop_assert_eq!(
                    mirror.get(prefix).map(|a| a.as_ref()),
                    Some(attrs.as_ref()),
                    "mismatch at {}", prefix
                );
            }
        }
    }

    /// A second sync against an unchanged desired state is empty
    /// (sync is idempotent).
    #[test]
    fn sync_is_idempotent(state in arb_state()) {
        let mut adj_out = AdjRibOut::new();
        adj_out.sync(state.clone());
        let again = adj_out.sync(state);
        prop_assert!(again.is_empty(), "second sync emitted {:?}", again);
    }

    /// Per-prefix sync and full-table sync agree.
    #[test]
    fn sync_prefix_agrees_with_full_sync(
        initial in arb_state(),
        target in arb_state(),
    ) {
        let mut full = AdjRibOut::new();
        full.sync(initial.clone());
        let mut incremental = AdjRibOut::new();
        incremental.sync(initial.clone());

        // Full sync to the target on one copy.
        let mut mirror_full: HashMap<Prefix, Arc<RouteAttributes>> =
            initial.iter().cloned().collect();
        apply_actions(&mut mirror_full, &full.sync(target.clone()));

        // Per-prefix sync on the other: touch the union of prefixes.
        let target_map: HashMap<Prefix, Arc<RouteAttributes>> =
            target.iter().cloned().collect();
        let mut mirror_incr: HashMap<Prefix, Arc<RouteAttributes>> =
            initial.iter().cloned().collect();
        let mut touched: Vec<Prefix> = initial.iter().map(|(p, _)| *p).collect();
        touched.extend(target.iter().map(|(p, _)| *p));
        touched.sort();
        touched.dedup();
        for prefix in touched {
            if let Some(action) =
                incremental.sync_prefix(prefix, target_map.get(&prefix).cloned())
            {
                apply_actions(&mut mirror_incr, std::slice::from_ref(&action));
            }
        }
        prop_assert_eq!(mirror_full.len(), mirror_incr.len());
        for (prefix, attrs) in &mirror_full {
            prop_assert_eq!(
                mirror_incr.get(prefix).map(|a| a.as_ref()),
                Some(attrs.as_ref())
            );
        }
    }

    /// Packetization never loses or duplicates a prefix, at any packet
    /// size.
    #[test]
    fn to_updates_preserves_all_actions(
        state in arb_state(),
        pkt in 1usize..600,
    ) {
        let mut adj_out = AdjRibOut::new();
        let actions = adj_out.sync(state.clone());
        let updates = AdjRibOut::to_updates(&actions, pkt);
        let announced: usize = updates.iter().map(|u| u.nlri().len()).sum();
        prop_assert_eq!(announced, state.len());
        for update in &updates {
            prop_assert!(update.nlri().len() <= pkt);
            prop_assert!(update.withdrawn().len() <= pkt);
        }
    }
}
