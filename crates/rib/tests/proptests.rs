//! Property-based tests for the decision process and RIB engine.

use std::cmp::Ordering;
use std::net::Ipv4Addr;

use bgpbench_rib::{compare_routes, DecisionConfig, PeerId, PeerInfo, RibEngine, RouteAttributes};
use bgpbench_wire::{AsPath, Asn, Origin, PathAttribute, Prefix, RouterId, UpdateMessage};
use proptest::prelude::*;

const LOCAL_ASN: Asn = Asn(65000);

fn arb_attrs() -> impl Strategy<Value = RouteAttributes> {
    (
        prop_oneof![
            Just(Origin::Igp),
            Just(Origin::Egp),
            Just(Origin::Incomplete)
        ],
        prop::collection::vec(1u16..9999, 1..6),
        any::<u32>(),
        prop::option::of(0u32..1000),
        prop::option::of(0u32..1000),
    )
        .prop_map(|(origin, path, hop, med, pref)| {
            let mut builder = RouteAttributes::builder()
                .origin(origin)
                .as_path(AsPath::from_sequence(path.into_iter().map(Asn)))
                .next_hop(Ipv4Addr::from(hop));
            if let Some(med) = med {
                builder = builder.med(med);
            }
            if let Some(pref) = pref {
                builder = builder.local_pref(pref);
            }
            builder.build()
        })
}

fn arb_peer(id: u32) -> impl Strategy<Value = PeerInfo> {
    (1u16..u16::MAX, 1u32..u32::MAX, any::<u32>()).prop_map(move |(asn, rid, addr)| {
        PeerInfo::new(PeerId(id), Asn(asn), RouterId(rid), Ipv4Addr::from(addr))
    })
}

proptest! {
    /// The preference relation must be antisymmetric: swapping the
    /// arguments reverses the ordering.
    #[test]
    fn decision_is_antisymmetric(
        a in arb_attrs(), b in arb_attrs(),
        pa in arb_peer(1), pb in arb_peer(2),
    ) {
        let config = DecisionConfig::default();
        let fwd = compare_routes(&config, LOCAL_ASN, &a, &pa, &b, &pb);
        let bwd = compare_routes(&config, LOCAL_ASN, &b, &pb, &a, &pa);
        prop_assert_eq!(fwd, bwd.reverse());
    }

    /// With distinct peer addresses the relation is total: equality can
    /// only arise when both routes come from the same peer state.
    #[test]
    fn decision_is_total_for_distinct_peers(
        a in arb_attrs(), b in arb_attrs(),
        pa in arb_peer(1), pb in arb_peer(2),
    ) {
        prop_assume!(pa.address() != pb.address() || pa.router_id() != pb.router_id());
        let config = DecisionConfig::default();
        let ordering = compare_routes(&config, LOCAL_ASN, &a, &pa, &b, &pb);
        prop_assert_ne!(ordering, Ordering::Equal);
    }

    /// The relation must be transitive so that "pick the max" is
    /// well-defined regardless of comparison order.
    #[test]
    fn decision_is_transitive(
        a in arb_attrs(), b in arb_attrs(), c in arb_attrs(),
        pa in arb_peer(1), pb in arb_peer(2), pc in arb_peer(3),
    ) {
        let config = DecisionConfig::default();
        let ab = compare_routes(&config, LOCAL_ASN, &a, &pa, &b, &pb);
        let bc = compare_routes(&config, LOCAL_ASN, &b, &pb, &c, &pc);
        let ac = compare_routes(&config, LOCAL_ASN, &a, &pa, &c, &pc);
        if ab == Ordering::Greater && bc == Ordering::Greater {
            prop_assert_eq!(ac, Ordering::Greater);
        }
        if ab == Ordering::Less && bc == Ordering::Less {
            prop_assert_eq!(ac, Ordering::Less);
        }
    }
}

fn build_update(attrs: &RouteAttributes, prefixes: &[Prefix]) -> UpdateMessage {
    let mut builder = UpdateMessage::builder();
    for attr in attrs.to_wire() {
        builder = builder.attribute(attr);
    }
    builder.announce_all(prefixes.iter().copied()).build()
}

proptest! {
    /// Feeding the same announcements in any order must converge to the
    /// same Loc-RIB (selection is order-independent).
    #[test]
    fn loc_rib_is_announcement_order_independent(
        attrs1 in arb_attrs(),
        attrs2 in arb_attrs(),
        prefixes in prop::collection::btree_set(any::<u16>(), 1..20),
    ) {
        let prefixes: Vec<Prefix> = prefixes
            .into_iter()
            .map(|seed| {
                Prefix::new_masked(Ipv4Addr::from(u32::from(seed) << 12), 20).unwrap()
            })
            .collect();

        let make_engine = || {
            let mut engine = RibEngine::new(LOCAL_ASN, RouterId(1));
            engine.add_peer(PeerInfo::new(
                PeerId(1), Asn(65001), RouterId(2), Ipv4Addr::new(10, 0, 0, 2),
            ));
            engine.add_peer(PeerInfo::new(
                PeerId(2), Asn(65002), RouterId(3), Ipv4Addr::new(10, 0, 0, 3),
            ));
            engine
        };

        prop_assume!(!attrs1.as_path().contains(LOCAL_ASN));
        prop_assume!(!attrs2.as_path().contains(LOCAL_ASN));

        let u1 = build_update(&attrs1, &prefixes);
        let u2 = build_update(&attrs2, &prefixes);

        let mut forward = make_engine();
        forward.apply_update(PeerId(1), &u1).unwrap();
        forward.apply_update(PeerId(2), &u2).unwrap();

        let mut backward = make_engine();
        backward.apply_update(PeerId(2), &u2).unwrap();
        backward.apply_update(PeerId(1), &u1).unwrap();

        for prefix in &prefixes {
            let a = forward.loc_rib().get(prefix).map(|r| r.learned_from());
            let b = backward.loc_rib().get(prefix).map(|r| r.learned_from());
            prop_assert_eq!(a, b, "selection differs for {}", prefix);
        }
    }

    /// Announce-then-withdraw from the same peer always returns the
    /// engine to an empty Loc-RIB, and the directed FIB operations
    /// balance out.
    #[test]
    fn announce_withdraw_roundtrip_empties_loc_rib(
        attrs in arb_attrs(),
        prefixes in prop::collection::btree_set(any::<u16>(), 1..30),
    ) {
        prop_assume!(!attrs.as_path().contains(LOCAL_ASN));
        let prefixes: Vec<Prefix> = prefixes
            .into_iter()
            .map(|seed| Prefix::new_masked(Ipv4Addr::from(u32::from(seed) << 12), 20).unwrap())
            .collect();
        let mut engine = RibEngine::new(LOCAL_ASN, RouterId(1));
        engine.add_peer(PeerInfo::new(
            PeerId(1), Asn(65001), RouterId(2), Ipv4Addr::new(10, 0, 0, 2),
        ));
        engine
            .apply_update(PeerId(1), &build_update(&attrs, &prefixes))
            .unwrap();
        prop_assert_eq!(engine.loc_rib().len(), prefixes.len());

        let withdraw = UpdateMessage::builder()
            .withdraw_all(prefixes.iter().copied())
            .build();
        engine.apply_update(PeerId(1), &withdraw).unwrap();
        prop_assert!(engine.loc_rib().is_empty());
        let stats = engine.stats();
        prop_assert_eq!(stats.fib_installs, prefixes.len() as u64);
        prop_assert_eq!(stats.fib_removes, prefixes.len() as u64);
    }

    /// Session-down purge must be indistinguishable from the peer
    /// withdrawing its whole table: same Loc-RIB, same per-prefix
    /// outcomes, same FIB traffic — and the peer stays registered and
    /// usable afterwards.
    #[test]
    fn purge_equals_withdraw_all(
        attrs1 in arb_attrs(),
        attrs2 in arb_attrs(),
        prefixes1 in prop::collection::btree_set(any::<u16>(), 1..24),
        prefixes2 in prop::collection::btree_set(any::<u16>(), 1..24),
    ) {
        prop_assume!(!attrs1.as_path().contains(LOCAL_ASN));
        prop_assume!(!attrs2.as_path().contains(LOCAL_ASN));
        let as_prefixes = |seeds: std::collections::BTreeSet<u16>| -> Vec<Prefix> {
            seeds
                .into_iter()
                .map(|seed| Prefix::new_masked(Ipv4Addr::from(u32::from(seed) << 12), 20).unwrap())
                .collect()
        };
        // Overlapping tables so purging peer 1 re-runs best-path onto
        // peer 2's routes for the shared prefixes.
        let prefixes1 = as_prefixes(prefixes1);
        let prefixes2 = as_prefixes(prefixes2);

        let make_engine = || {
            let mut engine = RibEngine::new(LOCAL_ASN, RouterId(1));
            engine.add_peer(PeerInfo::new(
                PeerId(1), Asn(65001), RouterId(2), Ipv4Addr::new(10, 0, 0, 2),
            ));
            engine.add_peer(PeerInfo::new(
                PeerId(2), Asn(65002), RouterId(3), Ipv4Addr::new(10, 0, 0, 3),
            ));
            engine
                .apply_update(PeerId(1), &build_update(&attrs1, &prefixes1))
                .unwrap();
            engine
                .apply_update(PeerId(2), &build_update(&attrs2, &prefixes2))
                .unwrap();
            engine
        };

        let mut purged = make_engine();
        let mut purge_outcomes = purged.purge_peer(PeerId(1)).unwrap();

        let mut withdrawn = make_engine();
        let withdraw = UpdateMessage::builder()
            .withdraw_all(prefixes1.iter().copied())
            .build();
        let mut withdraw_outcomes = withdrawn.apply_update(PeerId(1), &withdraw).unwrap();

        // Identical per-prefix outcomes (purge iterates in table order,
        // the withdraw in message order — prefixes are unique per set,
        // so sorting by prefix aligns them).
        purge_outcomes.sort_by_key(|o| o.prefix);
        withdraw_outcomes.sort_by_key(|o| o.prefix);
        prop_assert_eq!(&purge_outcomes, &withdraw_outcomes);

        // Identical Loc-RIB afterwards: peer 1's routes are gone and
        // every surviving prefix selected peer 2's route.
        prop_assert_eq!(purged.loc_rib().len(), withdrawn.loc_rib().len());
        for prefix in prefixes1.iter().chain(prefixes2.iter()) {
            let a = purged.loc_rib().get(prefix).map(|r| (r.learned_from(), r.attrs().clone()));
            let b = withdrawn.loc_rib().get(prefix).map(|r| (r.learned_from(), r.attrs().clone()));
            prop_assert_eq!(a.as_ref().map(|(p, _)| *p), b.as_ref().map(|(p, _)| *p));
            prop_assert_eq!(a.map(|(_, r)| r), b.map(|(_, r)| r));
            prop_assert_ne!(
                purged.loc_rib().get(prefix).map(|r| r.learned_from()),
                Some(PeerId(1))
            );
        }
        prop_assert_eq!(purged.stats().fib_removes, withdrawn.stats().fib_removes);
        prop_assert_eq!(purged.stats().fib_installs, withdrawn.stats().fib_installs);

        // Unlike remove_peer, the peer survives and can re-announce.
        prop_assert!(purged.adj_rib_in(PeerId(1)).is_some());
        purged
            .apply_update(PeerId(1), &build_update(&attrs1, &prefixes1))
            .unwrap();
        for prefix in &prefixes1 {
            prop_assert!(purged.loc_rib().get(prefix).is_some());
        }
    }

    /// The Loc-RIB winner must always be the maximum of the Adj-RIBs-In
    /// under the comparison function (engine/decision consistency).
    #[test]
    fn loc_rib_holds_the_decision_maximum(
        attrs1 in arb_attrs(),
        attrs2 in arb_attrs(),
    ) {
        prop_assume!(!attrs1.as_path().contains(LOCAL_ASN));
        prop_assume!(!attrs2.as_path().contains(LOCAL_ASN));
        let prefix: Prefix = "10.0.0.0/8".parse().unwrap();
        let p1 = PeerInfo::new(PeerId(1), Asn(65001), RouterId(2), Ipv4Addr::new(10, 0, 0, 2));
        let p2 = PeerInfo::new(PeerId(2), Asn(65002), RouterId(3), Ipv4Addr::new(10, 0, 0, 3));
        let mut engine = RibEngine::new(LOCAL_ASN, RouterId(1));
        engine.add_peer(p1);
        engine.add_peer(p2);
        engine.apply_update(PeerId(1), &build_update(&attrs1, &[prefix])).unwrap();
        engine.apply_update(PeerId(2), &build_update(&attrs2, &[prefix])).unwrap();

        let winner = engine.loc_rib().get(&prefix).unwrap().learned_from();
        let expected = match compare_routes(
            &DecisionConfig::default(), LOCAL_ASN, &attrs1, &p1, &attrs2, &p2,
        ) {
            Ordering::Greater | Ordering::Equal => PeerId(1),
            Ordering::Less => PeerId(2),
        };
        prop_assert_eq!(winner, expected);
    }
}

#[test]
fn update_with_announcement_requires_mandatory_attrs() {
    let mut engine = RibEngine::new(LOCAL_ASN, RouterId(1));
    engine.add_peer(PeerInfo::new(
        PeerId(1),
        Asn(65001),
        RouterId(2),
        Ipv4Addr::new(10, 0, 0, 2),
    ));
    let update = UpdateMessage::builder()
        .attribute(PathAttribute::Origin(Origin::Igp))
        .announce("10.0.0.0/8".parse().unwrap())
        .build();
    assert!(engine.apply_update(PeerId(1), &update).is_err());
}
