//! Telemetry-shape parity for the sharded train path: a train applied
//! through 4 shards must record exactly the same aggregate span and
//! counter *counts* as the same train through 1 shard, or the
//! fig. 3–4 breakdown under-attributes RIB work whenever
//! `rib_shards > 1`.
//!
//! This is deliberately the only test in this binary: it flips the
//! process-global telemetry switch, which parallel test threads in
//! the same process would race.

use std::net::Ipv4Addr;

use bgpbench_rib::{PeerId, PeerInfo, RouteAttributes, ShardedRibEngine};
use bgpbench_telemetry as telemetry;
use bgpbench_telemetry::{MetricId, SpanId};
use bgpbench_wire::{AsPath, Asn, Origin, Prefix, RouterId, UpdateMessage};

fn engine(shards: usize) -> ShardedRibEngine {
    let mut engine = ShardedRibEngine::new(Asn(65000), RouterId(1));
    engine.add_peer(PeerInfo::new(
        PeerId(1),
        Asn(65001),
        RouterId(2),
        Ipv4Addr::new(10, 0, 0, 2),
    ));
    engine.set_shards(shards);
    engine
}

fn train(updates: usize, prefixes_per_update: usize) -> Vec<UpdateMessage> {
    (0..updates)
        .map(|u| {
            let attrs = RouteAttributes::new(
                Origin::Igp,
                AsPath::from_sequence([Asn(65001), Asn(64000 + u as u16)]),
                Ipv4Addr::new(10, 0, 0, 2),
            );
            let mut builder = UpdateMessage::builder();
            for attr in attrs.to_wire() {
                builder = builder.attribute(attr);
            }
            builder
                .announce_all((0..prefixes_per_update).map(|p| {
                    let net = ((10 + u) as u32) << 24 | (p as u32) << 8;
                    Prefix::new(net.into(), 24).expect("constructed /24 is valid")
                }))
                .build()
        })
        .collect()
}

/// Applies the same train at a given shard count and returns the
/// telemetry delta it produced.
fn run_at(shards: usize) -> telemetry::Snapshot {
    let mut rib = engine(shards);
    let updates = train(16, 8);
    let before = telemetry::snapshot();
    rib.apply_update_train(PeerId(1), &updates)
        .expect("train applies");
    telemetry::snapshot().diff(&before)
}

#[test]
fn span_and_counter_counts_match_across_shard_counts() {
    telemetry::enable();
    let single = run_at(1);
    let sharded = run_at(4);
    telemetry::disable();

    let span_1 = single.span(SpanId::RibApplyUpdate);
    let span_4 = sharded.span(SpanId::RibApplyUpdate);
    assert_eq!(
        span_1.count, span_4.count,
        "RibApplyUpdate span count must not depend on shard count"
    );
    assert_eq!(span_1.count, 16, "one span per update in the train");
    assert!(span_4.host_ns > 0, "sharded spans carry attributed time");

    for id in [
        MetricId::RibUpdates,
        MetricId::RibPrefixes,
        MetricId::RibBestChanged,
    ] {
        assert_eq!(
            single.get(id),
            sharded.get(id),
            "{} must not depend on shard count",
            id.name()
        );
    }
    assert_eq!(single.get(MetricId::RibUpdates), 16);
    assert_eq!(single.get(MetricId::RibPrefixes), 16 * 8);

    let hist_1 = single.histogram(MetricId::UpdatePrefixes);
    let hist_4 = sharded.histogram(MetricId::UpdatePrefixes);
    assert_eq!(hist_1.count, hist_4.count, "one observation per update");
    assert_eq!(hist_1.sum, hist_4.sum, "prefix totals agree");
    assert_eq!(
        single.histogram(MetricId::ApplyHostNs).count,
        sharded.histogram(MetricId::ApplyHostNs).count,
        "per-update host-time observations stay per-update when sharded"
    );
}
