//! Property: `ShardedRibEngine::purge_peer` is shard-count
//! independent.
//!
//! A peer purge (session flap / peer removal) walks every shard and
//! withdraws the peer's routes. Outcomes concatenate in shard order —
//! an order the API deliberately leaves unspecified, matching the
//! single engine's own unspecified table-iteration order — so the
//! contract to hold is *set* equivalence: the same per-prefix outcome
//! multiset, and bit-identical surviving table state, for shards ∈
//! {1, 4, 8}.

use std::net::Ipv4Addr;

use bgpbench_rib::{PeerId, PeerInfo, PrefixOutcome, RouteAttributes, ShardedRibEngine};
use bgpbench_wire::{AsPath, Asn, Origin, Prefix, RouterId, UpdateMessage};
use proptest::prelude::*;

const LOCAL_ASN: Asn = Asn(65000);
const SHARD_COUNTS: [usize; 3] = [1, 4, 8];

/// The peers every engine registers. Peer 1 is always the purge
/// victim; peers 2 and 3 provide alternate routes that must survive
/// (and be promoted by) the purge identically across shard counts.
fn peer_roster() -> Vec<PeerInfo> {
    (1u32..=3)
        .map(|id| {
            PeerInfo::new(
                PeerId(id),
                Asn(65000 + id as u16),
                RouterId(id + 10),
                Ipv4Addr::from(0x0A00_0000 | id),
            )
        })
        .collect()
}

/// Distinct attribute sets per peer so best-route selection after the
/// purge has real work to do (different AS-path lengths break ties
/// differently per prefix owner).
fn attrs_for(peer: u32, pref_seed: u32) -> RouteAttributes {
    let path: Vec<Asn> = (0..=(peer as u16 % 3))
        .map(|hop| Asn(65000 + peer as u16 + hop))
        .collect();
    RouteAttributes::builder()
        .origin(Origin::Igp)
        .as_path(AsPath::from_sequence(path))
        .next_hop(Ipv4Addr::from(0x0A00_0000 | peer))
        .local_pref(100 + pref_seed % 3)
        .build()
}

fn announce(attrs: &RouteAttributes, prefixes: &[Prefix]) -> UpdateMessage {
    let mut builder = UpdateMessage::builder();
    for attr in attrs.to_wire() {
        builder = builder.attribute(attr);
    }
    builder.announce_all(prefixes.iter().copied()).build()
}

/// Builds an engine with `shards` shards, loads the generated
/// announcements, purges peer 1, and returns the purge outcomes plus
/// the surviving Loc-RIB as a sorted value snapshot.
fn run_purge(
    shards: usize,
    prefixes: &[Prefix],
    announcements: &[(u32, Vec<Prefix>)],
) -> (
    Vec<PrefixOutcome>,
    Vec<(Prefix, PeerId, RouteAttributes)>,
    usize,
) {
    let mut engine = ShardedRibEngine::new(LOCAL_ASN, RouterId(1));
    for info in peer_roster() {
        engine.add_peer(info);
    }
    engine.set_shards(shards);

    for (peer, announced) in announcements {
        if announced.is_empty() {
            continue;
        }
        let attrs = attrs_for(*peer, announced.len() as u32);
        engine
            .apply_update(PeerId(*peer), &announce(&attrs, announced))
            .expect("announcement applies");
    }

    let mut outcomes = engine.purge_peer(PeerId(1)).expect("peer 1 is registered");
    outcomes.sort_by(|a, b| a.prefix.cmp(&b.prefix));

    let mut survivors: Vec<(Prefix, PeerId, RouteAttributes)> = engine
        .loc_rib()
        .iter()
        .map(|route| {
            (
                route.prefix(),
                route.learned_from(),
                route.attrs().as_ref().clone(),
            )
        })
        .collect();
    survivors.sort_by(|a, b| a.0.cmp(&b.0));

    // Sanity: the partition must actually route prefixes to every
    // shard it can (vacuous multi-shard runs would prove nothing).
    let populated = engine
        .shards()
        .iter()
        .filter(|shard| !shard.loc_rib().is_empty())
        .count();
    let _ = prefixes;
    (outcomes, survivors, populated)
}

proptest! {
    /// Purging a peer yields the same outcome multiset and the same
    /// surviving Loc-RIB whether the table lives in 1, 4, or 8
    /// shards.
    #[test]
    fn purge_peer_is_shard_count_independent(
        prefix_seeds in prop::collection::btree_set(any::<u16>(), 1..40),
        // Per prefix: a 3-bit mask of which peers announce it.
        masks in prop::collection::vec(1u8..8, 40..41),
    ) {
        let prefixes: Vec<Prefix> = prefix_seeds
            .into_iter()
            .map(|seed| {
                Prefix::new_masked(Ipv4Addr::from(u32::from(seed) << 12), 20).unwrap()
            })
            .collect();

        // Assign each prefix to the peers its mask selects.
        let announcements: Vec<(u32, Vec<Prefix>)> = (1u32..=3)
            .map(|peer| {
                let owned: Vec<Prefix> = prefixes
                    .iter()
                    .zip(&masks)
                    .filter(|(_, mask)| *mask & (1 << (peer - 1)) != 0)
                    .map(|(prefix, _)| *prefix)
                    .collect();
                (peer, owned)
            })
            .collect();

        let (base_outcomes, base_survivors, _) =
            run_purge(SHARD_COUNTS[0], &prefixes, &announcements);
        for &shards in &SHARD_COUNTS[1..] {
            let (outcomes, survivors, _) = run_purge(shards, &prefixes, &announcements);
            prop_assert_eq!(
                &outcomes, &base_outcomes,
                "purge outcomes diverge at {} shards", shards
            );
            prop_assert_eq!(
                &survivors, &base_survivors,
                "surviving Loc-RIB diverges at {} shards", shards
            );
        }

        // Every purged prefix was one peer 1 announced; every prefix
        // peer 1 exclusively owned is gone from the survivors.
        let victim_prefixes = &announcements[0].1;
        for outcome in &base_outcomes {
            prop_assert!(victim_prefixes.contains(&outcome.prefix));
        }
        let exclusive: Vec<Prefix> = prefixes
            .iter()
            .zip(&masks)
            .filter(|(_, mask)| **mask == 0b001)
            .map(|(prefix, _)| *prefix)
            .collect();
        for prefix in &exclusive {
            prop_assert!(
                !base_survivors.iter().any(|(p, _, _)| p == prefix),
                "{} was only peer 1's and must not survive its purge", prefix
            );
        }
    }

    /// With enough prefixes the 8-shard engine genuinely spreads the
    /// table, so the equivalence above exercises the multi-shard
    /// concatenation path rather than a single populated shard.
    #[test]
    fn purge_equivalence_is_not_vacuous(
        prefix_seeds in prop::collection::btree_set(any::<u16>(), 30..60),
    ) {
        let prefixes: Vec<Prefix> = prefix_seeds
            .into_iter()
            .map(|seed| {
                Prefix::new_masked(Ipv4Addr::from(u32::from(seed) << 12), 20).unwrap()
            })
            .collect();
        let announcements = vec![(1u32, prefixes.clone())];
        let (outcomes, survivors, populated) = run_purge(8, &prefixes, &announcements);
        prop_assert!(populated == 0, "purge empties every shard");
        prop_assert!(survivors.is_empty());
        prop_assert_eq!(outcomes.len(), prefixes.len());

        // Before the purge the same table spans several shards: rebuild
        // and count. (Separate engine; purge above consumed the first.)
        let mut engine = ShardedRibEngine::new(LOCAL_ASN, RouterId(1));
        for info in peer_roster() {
            engine.add_peer(info);
        }
        engine.set_shards(8);
        let attrs = attrs_for(1, prefixes.len() as u32);
        engine
            .apply_update(PeerId(1), &announce(&attrs, &prefixes))
            .expect("announcement applies");
        let populated_before = engine
            .shards()
            .iter()
            .filter(|shard| !shard.loc_rib().is_empty())
            .count();
        prop_assert!(
            populated_before >= 4,
            "30+ prefixes landed on only {} of 8 shards", populated_before
        );
    }
}
