//! Calibrated cost tables.
//!
//! All costs are *reference cycles on the platform's own control CPU*
//! (whose speed is part of the [`crate::PlatformSpec`]). The values
//! are derived analytically from Table III of the paper — the
//! derivation is worked through in `EXPERIMENTS.md` — and then every
//! figure is produced from the same table with no per-figure tuning.

/// Per-operation costs of the XORP five-process pipeline.
///
/// Stage ownership: `pkt_base`, `parse_*`, and `decide` run in
/// `xorp_bgp`; `policy` in `xorp_policy`; `rib_*` in `xorp_rib`;
/// `fib_user_*` and `ipc_batch` in `xorp_fea`; `fib_kernel_*` in the
/// kernel (route table apply). `export_per_prefix` is Phase 2 work in
/// `xorp_bgp`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XorpCosts {
    /// Per-received-packet overhead (socket wakeup, framing, XRL
    /// dispatch).
    pub pkt_base: f64,
    /// Per announced prefix: NLRI + attribute parsing.
    pub parse_ann: f64,
    /// Per withdrawn prefix: withdrawn-routes parsing.
    pub parse_wd: f64,
    /// Per prefix: import policy evaluation.
    pub policy: f64,
    /// Per prefix: decision process (best-path comparison).
    pub decide: f64,
    /// Loc-RIB insert of a fresh best route.
    pub rib_insert: f64,
    /// Loc-RIB removal.
    pub rib_remove: f64,
    /// Loc-RIB replacement of the best route.
    pub rib_replace: f64,
    /// User-space (xorp_fea) share of a FIB install.
    pub fib_user_install: f64,
    /// User-space share of a FIB removal.
    pub fib_user_remove: f64,
    /// User-space share of a FIB replacement.
    pub fib_user_replace: f64,
    /// Kernel share of a FIB install (route-table apply).
    pub fib_kernel_install: f64,
    /// Kernel share of a FIB removal.
    pub fib_kernel_remove: f64,
    /// Kernel share of a FIB replacement.
    pub fib_kernel_replace: f64,
    /// Per-packet FIB transaction flush (charged once per packet that
    /// caused any FIB change — the dominant small-packet overhead in
    /// Scenarios 1/3/7).
    pub ipc_batch: f64,
    /// Per prefix advertised in Phase 2 (Adj-RIB-Out + encode).
    pub export_per_prefix: f64,
    /// Fraction of every tick consumed by `xorp_rtrmgr` housekeeping
    /// (sizeable only on the underpowered XScale — the Fig. 3c
    /// observation).
    pub rtrmgr_frac: f64,
}

/// Costs of the black-box IOS model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IosCosts {
    /// Wall-clock process-scheduling delay served per received packet
    /// before processing starts (the ~90 ms the Cisco 3620 exhibits;
    /// it is idle wait, not CPU, which is why small-packet rates are
    /// immune to cross-traffic in Fig. 5).
    pub pkt_delay_ns: u64,
    /// Per prefix: announcement that installs a route.
    pub ann_fib: f64,
    /// Per prefix: withdrawal.
    pub withdraw: f64,
    /// Per prefix: announcement that loses the decision process.
    pub nochange: f64,
    /// Per prefix: announcement that replaces the best route.
    pub replace: f64,
}

/// Cross-traffic coupling parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossCosts {
    /// Interrupt cycles per received cross-traffic packet.
    pub irq_per_pkt: f64,
    /// Kernel forwarding cycles per cross-traffic packet.
    pub kfwd_per_pkt: f64,
    /// Cross-traffic packet size in bytes (wire rate → packet rate).
    pub pkt_bytes: u32,
    /// Kernel queue depth (in per-tick batch jobs) before arrivals are
    /// dropped — the NIC ring / backlog bound that turns FIB-update
    /// blocking into the Fig. 6c packet loss.
    pub ring_cap_jobs: usize,
    /// The platform's maximum forwarding rate in Mbps (bus or port
    /// limited; Fig. 5 sweeps stop here).
    pub max_forward_mbps: f64,
    /// Whether forwarding runs on dedicated hardware that never touches
    /// the control CPU (true only for the IXP2400).
    pub dedicated_dataplane: bool,
}

impl XorpCosts {
    /// Pentium III cost table (cycles at 800 MHz), fit to Table III
    /// column 1.
    pub fn pentium3() -> Self {
        XorpCosts {
            pkt_base: 500_000.0,
            parse_ann: 60_000.0,
            parse_wd: 40_000.0,
            policy: 40_000.0,
            decide: 120_000.0,
            rib_insert: 500_000.0,
            rib_remove: 400_000.0,
            rib_replace: 600_000.0,
            fib_user_install: 1_472_000.0,
            fib_user_remove: 1_408_000.0,
            fib_user_replace: 4_480_000.0,
            fib_kernel_install: 368_000.0,
            fib_kernel_remove: 352_000.0,
            fib_kernel_replace: 1_120_000.0,
            ipc_batch: 1_260_000.0,
            export_per_prefix: 100_000.0,
            rtrmgr_frac: 0.005,
        }
    }

    /// Dual-core Xeon cost table (cycles at 3.0 GHz), fit to Table III
    /// column 2.
    pub fn xeon() -> Self {
        XorpCosts {
            pkt_base: 500_000.0,
            parse_ann: 80_000.0,
            parse_wd: 60_000.0,
            policy: 60_000.0,
            decide: 190_000.0,
            rib_insert: 700_000.0,
            rib_remove: 500_000.0,
            rib_replace: 900_000.0,
            fib_user_install: 1_068_000.0,
            fib_user_remove: 900_000.0,
            fib_user_replace: 4_320_000.0,
            fib_kernel_install: 220_000.0,
            fib_kernel_remove: 225_000.0,
            fib_kernel_replace: 1_080_000.0,
            ipc_batch: 90_000.0,
            export_per_prefix: 150_000.0,
            rtrmgr_frac: 0.003,
        }
    }

    /// IXP2400 XScale cost table (cycles at 600 MHz): the Pentium III
    /// table scaled by ×12 for compute-bound work and ×5.5 for
    /// memory/IPC-bound work (the XScale's weak memory system), plus a
    /// large `xorp_rtrmgr` background share.
    pub fn ixp2400() -> Self {
        let base = XorpCosts::pentium3();
        // Scale factors relative to the Pentium III table; the ×0.75
        // term converts 800 MHz cycles to 600 MHz cycles, so e.g.
        // compute work is 14.4× the Pentium III's cycle count per
        // operation (≈ 19× slower wall-clock at the lower clock).
        let compute = 14.4 * 0.75;
        let memory = 6.67 * 0.75;
        // Per-packet overhead hits the XScale hardest (syscall and
        // interrupt paths on the embedded core): its own factor.
        let per_packet = 8.75;
        XorpCosts {
            pkt_base: base.pkt_base * per_packet,
            parse_ann: base.parse_ann * compute,
            parse_wd: base.parse_wd * compute,
            policy: base.policy * compute,
            decide: base.decide * compute,
            rib_insert: base.rib_insert * memory,
            rib_remove: base.rib_remove * memory,
            rib_replace: base.rib_replace * memory,
            fib_user_install: base.fib_user_install * memory,
            fib_user_remove: base.fib_user_remove * memory,
            fib_user_replace: base.fib_user_replace * memory,
            fib_kernel_install: base.fib_kernel_install * memory,
            fib_kernel_remove: base.fib_kernel_remove * memory,
            fib_kernel_replace: base.fib_kernel_replace * memory,
            ipc_batch: base.ipc_batch * memory,
            export_per_prefix: base.export_per_prefix * memory,
            rtrmgr_frac: 0.08,
        }
    }
}

impl IosCosts {
    /// Cisco 3620 cost table (cycles at the model's 100 M reference
    /// cycles/s), fit to Table III column 4: solving the small/large
    /// pairs gives a ~92 ms per-packet delay plus per-prefix work.
    pub fn cisco3620() -> Self {
        IosCosts {
            pkt_delay_ns: 92_000_000,
            ann_fib: 22_000.0,
            withdraw: 16_000.0,
            nochange: 12_000.0,
            replace: 23_000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_costs_positive() {
        for costs in [
            XorpCosts::pentium3(),
            XorpCosts::xeon(),
            XorpCosts::ixp2400(),
        ] {
            for value in [
                costs.pkt_base,
                costs.parse_ann,
                costs.parse_wd,
                costs.policy,
                costs.decide,
                costs.rib_insert,
                costs.rib_remove,
                costs.rib_replace,
                costs.fib_user_install,
                costs.fib_user_remove,
                costs.fib_user_replace,
                costs.fib_kernel_install,
                costs.fib_kernel_remove,
                costs.fib_kernel_replace,
                costs.ipc_batch,
                costs.export_per_prefix,
            ] {
                assert!(value > 0.0);
            }
            assert!((0.0..1.0).contains(&costs.rtrmgr_frac));
        }
    }

    #[test]
    fn replace_is_the_most_expensive_fib_operation() {
        // The paper's fourth Table III observation: scenarios that
        // replace routes (7/8) are the slowest.
        for costs in [
            XorpCosts::pentium3(),
            XorpCosts::xeon(),
            XorpCosts::ixp2400(),
        ] {
            assert!(costs.fib_user_replace > costs.fib_user_install);
            assert!(costs.fib_user_replace > costs.fib_user_remove);
        }
        let ios = IosCosts::cisco3620();
        assert!(ios.replace > ios.nochange);
        assert!(ios.replace >= ios.ann_fib);
    }

    #[test]
    fn ixp_is_uniformly_slower_than_pentium3_per_cycle_budget() {
        let p3 = XorpCosts::pentium3();
        let ixp = XorpCosts::ixp2400();
        // Effective time = cycles / hz; IXP at 600 MHz vs P3 at 800 MHz.
        let ratio = |ixp_c: f64, p3_c: f64| (ixp_c / 0.6e9) / (p3_c / 0.8e9);
        assert!(ratio(ixp.decide, p3.decide) > 5.0);
        assert!(ratio(ixp.fib_user_install, p3.fib_user_install) > 4.0);
    }
}
