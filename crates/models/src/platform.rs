//! The four benchmarked platforms (paper Table II).

use bgpbench_simnet::CoreSpec;

use crate::costs::{CrossCosts, IosCosts, XorpCosts};

/// Which software model a platform runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlatformKind {
    /// The XORP five-process pipeline.
    Xorp(XorpCosts),
    /// The black-box IOS model.
    Ios(IosCosts),
}

/// A complete platform description: control CPU, software model, and
/// cross-traffic coupling.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformSpec {
    /// Display name matching the paper's Table II ("Pentium III",
    /// "Xeon", "IXP2400", "Cisco").
    pub name: &'static str,
    /// Control CPU core speed (reference cycles per second).
    pub core: CoreSpec,
    /// Number of control CPU cores.
    pub cores: usize,
    /// The software model and its cost table.
    pub kind: PlatformKind,
    /// Cross-traffic coupling parameters.
    pub cross: CrossCosts,
}

/// The uni-core router: 800 MHz Pentium III, 256 MB, Linux 2.6.18,
/// XORP 1.3, PCI32 NICs (forwarding tops out at 315 Mbps).
pub fn pentium3() -> PlatformSpec {
    PlatformSpec {
        name: "Pentium III",
        core: CoreSpec::ghz(0.8),
        cores: 1,
        kind: PlatformKind::Xorp(XorpCosts::pentium3()),
        cross: CrossCosts {
            irq_per_pkt: 4_000.0,
            kfwd_per_pkt: 4_000.0,
            pkt_bytes: 1_500,
            ring_cap_jobs: 6,
            max_forward_mbps: 315.0,
            dedicated_dataplane: false,
        },
    }
}

/// The dual-core router: 3.0 GHz dual-core Xeon, 2 GB, Linux 2.6.18,
/// XORP 1.3, PCI Express NICs (forwarding tops out at 784 Mbps).
pub fn xeon() -> PlatformSpec {
    PlatformSpec {
        name: "Xeon",
        core: CoreSpec::ghz(3.0),
        cores: 2,
        kind: PlatformKind::Xorp(XorpCosts::xeon()),
        cross: CrossCosts {
            irq_per_pkt: 6_000.0,
            kfwd_per_pkt: 6_000.0,
            pkt_bytes: 1_500,
            ring_cap_jobs: 6,
            max_forward_mbps: 784.0,
            dedicated_dataplane: false,
        },
    }
}

/// The network processor router: Intel IXP2400 — eight packet
/// processors forward at up to 940 Mbps while the 600 MHz XScale runs
/// XORP 1.3 on Linux 2.4.18. Forwarding never touches the control CPU.
pub fn ixp2400() -> PlatformSpec {
    PlatformSpec {
        name: "IXP2400",
        core: CoreSpec::ghz(0.6),
        cores: 1,
        kind: PlatformKind::Xorp(XorpCosts::ixp2400()),
        cross: CrossCosts {
            irq_per_pkt: 0.0,
            kfwd_per_pkt: 0.0,
            pkt_bytes: 1_500,
            ring_cap_jobs: 64,
            max_forward_mbps: 940.0,
            dedicated_dataplane: true,
        },
    }
}

/// The commercial router: Cisco 3620 running IOS 12.1(5)YB, treated as
/// a black box. 100 Mbps ports limit forwarding to 78 Mbps.
pub fn cisco3620() -> PlatformSpec {
    PlatformSpec {
        name: "Cisco",
        core: CoreSpec { hz: 0.1e9 },
        cores: 1,
        kind: PlatformKind::Ios(IosCosts::cisco3620()),
        cross: CrossCosts {
            irq_per_pkt: 500.0,
            kfwd_per_pkt: 14_500.0,
            pkt_bytes: 1_500,
            ring_cap_jobs: 6,
            max_forward_mbps: 78.0,
            dedicated_dataplane: false,
        },
    }
}

/// All four platforms in the paper's column order.
pub fn all_platforms() -> [PlatformSpec; 4] {
    [pentium3(), xeon(), ixp2400(), cisco3620()]
}

/// A hypothetical future platform for design-space exploration: the
/// Xeon's software stack on `cores` control cores, each `speedup`×
/// the 2007 Xeon's per-core speed.
///
/// The paper's §V.C asks what it would take to survive worm-scale
/// update storms (≥ 10 000 messages/s); this constructor lets the
/// `worm_survival` example answer that question within the model.
///
/// # Panics
///
/// Panics if `cores` is zero or `speedup` is not strictly positive.
pub fn hypothetical(cores: usize, speedup: f64) -> PlatformSpec {
    assert!(cores >= 1, "a platform needs at least one core");
    assert!(speedup > 0.0, "speedup must be positive");
    let base = xeon();
    PlatformSpec {
        name: "Hypothetical",
        core: CoreSpec {
            hz: base.core.hz * speedup,
        },
        cores,
        kind: base.kind,
        cross: base.cross,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_platforms_with_paper_names() {
        let names: Vec<&str> = all_platforms().iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["Pentium III", "Xeon", "IXP2400", "Cisco"]);
    }

    #[test]
    fn forwarding_limits_match_the_paper() {
        let limits: Vec<f64> = all_platforms()
            .iter()
            .map(|p| p.cross.max_forward_mbps)
            .collect();
        assert_eq!(limits, vec![315.0, 784.0, 940.0, 78.0]);
    }

    #[test]
    fn only_the_xeon_is_multicore() {
        for platform in all_platforms() {
            let expected = if platform.name == "Xeon" { 2 } else { 1 };
            assert_eq!(platform.cores, expected, "{}", platform.name);
        }
    }

    #[test]
    fn only_the_ixp_has_a_dedicated_dataplane() {
        for platform in all_platforms() {
            assert_eq!(
                platform.cross.dedicated_dataplane,
                platform.name == "IXP2400",
                "{}",
                platform.name
            );
        }
    }

    #[test]
    fn only_the_cisco_runs_ios() {
        for platform in all_platforms() {
            let is_ios = matches!(platform.kind, PlatformKind::Ios(_));
            assert_eq!(is_ios, platform.name == "Cisco", "{}", platform.name);
        }
    }
}
