//! The black-box commercial-router (IOS) model.

use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

use bgpbench_fib::{Fib, NextHop};
use bgpbench_rib::{
    AdjRibOut, FibDirective, PeerId, PeerInfo, RouteChange, RouteMap, ShardedRibEngine,
};
use bgpbench_simnet::{Job, Model, ProcessBuilder, ProcessId, SchedClass, TickContext};
use bgpbench_speaker::SpeakerScript;
use bgpbench_telemetry::{self as telemetry, MetricId, SpanId};
use bgpbench_wire::{Asn, RouterId, UpdateMessage};

use crate::costs::IosCosts;
use crate::crosstraffic::{CrossTraffic, JOB_KFWD};
use crate::faults::LinkFaults;
use crate::CrossCosts;

const JOB_MSG: u16 = 20;
const JOB_EXPORT: u16 = 21;

/// Messages buffered ahead of the serialized IOS BGP process.
const INPUT_LIMIT: usize = 4;

/// One attached test speaker and its link state.
#[derive(Debug)]
struct Speaker {
    peer: PeerId,
    script: Option<SpeakerScript>,
    rate_msgs_per_sec: Option<f64>,
    carry: f64,
    /// Session/link fault state (the topology engine's injection point).
    faults: LinkFaults,
}

/// The Cisco 3620 model (paper §IV.A.4 treats it as a black box).
///
/// Observed behaviour decomposes cleanly: every received UPDATE waits a
/// fixed process-scheduling delay (~92 ms — idle wait, not CPU) and
/// then consumes per-prefix processing cycles. Forwarding runs at
/// kernel priority on the same CPU, so cross-traffic starves the
/// per-prefix work (collapsing large-packet rates near the 78 Mbps port
/// limit) while leaving the fixed delay — and therefore small-packet
/// rates — untouched. Both Fig. 5 Cisco signatures fall out of this
/// one mechanism.
#[derive(Debug)]
pub struct IosModel {
    costs: IosCosts,
    ios: ProcessId,
    kernel: ProcessId,
    irq: ProcessId,
    engine: ShardedRibEngine,
    fib: Fib,
    speakers: Vec<Speaker>,
    pending: HashMap<u64, (u32, PeerId, Vec<FibDirective>)>,
    next_tag: u64,
    export_queue: VecDeque<UpdateMessage>,
    cross: CrossTraffic,
    tick_secs: f64,
    transactions_done: u64,
    exported_transactions: u64,
    local_address: Ipv4Addr,
}

impl IosModel {
    /// The default local AS of a simulated router under test.
    pub const LOCAL_ASN: Asn = Asn(65000);

    /// Builds the model, registering its processes and peers.
    pub fn new(
        costs: IosCosts,
        cross_costs: CrossCosts,
        tick_secs: f64,
        builder: &mut ProcessBuilder,
        speakers: &[PeerInfo],
    ) -> Self {
        Self::with_local_asn(
            costs,
            cross_costs,
            tick_secs,
            builder,
            speakers,
            Self::LOCAL_ASN,
        )
    }

    /// [`IosModel::new`] with an explicit local AS (for chained
    /// multi-router simulations).
    pub fn with_local_asn(
        costs: IosCosts,
        cross_costs: CrossCosts,
        tick_secs: f64,
        builder: &mut ProcessBuilder,
        speakers: &[PeerInfo],
        local_asn: Asn,
    ) -> Self {
        let ios = builder.add_process("ios_bgp", SchedClass::User);
        let kernel = builder.add_process("ios_fwd", SchedClass::Kernel);
        let irq = builder.add_process("interrupts", SchedClass::Interrupt);
        let local_address = Ipv4Addr::new(10, 0, 0, 1);
        let mut engine = ShardedRibEngine::new(local_asn, RouterId(u32::from(local_address)));
        let speakers = speakers
            .iter()
            .map(|info| Speaker {
                peer: engine.add_peer(*info),
                script: None,
                rate_msgs_per_sec: None,
                carry: 0.0,
                faults: LinkFaults::default(),
            })
            .collect();
        IosModel {
            costs,
            ios,
            kernel,
            irq,
            engine,
            fib: Fib::new(),
            speakers,
            pending: HashMap::new(),
            next_tag: 0,
            export_queue: VecDeque::new(),
            cross: CrossTraffic::new(cross_costs),
            tick_secs,
            transactions_done: 0,
            exported_transactions: 0,
            local_address,
        }
    }

    /// Assigns the message stream a speaker will send.
    pub fn load_script(&mut self, speaker: usize, script: SpeakerScript) {
        self.speakers[speaker].script = Some(script);
        self.speakers[speaker].rate_msgs_per_sec = None;
        self.speakers[speaker].carry = 0.0;
    }

    /// Like [`IosModel::load_script`], but paced to `msgs_per_sec`.
    pub fn load_script_rated(&mut self, speaker: usize, script: SpeakerScript, msgs_per_sec: f64) {
        assert!(msgs_per_sec > 0.0, "rate must be positive");
        self.speakers[speaker].script = Some(script);
        self.speakers[speaker].rate_msgs_per_sec = Some(msgs_per_sec);
        self.speakers[speaker].carry = 0.0;
    }

    /// Queues a Phase-2 export toward `speaker`; returns the number of
    /// UPDATE messages queued.
    pub fn queue_export(&mut self, speaker: usize, prefixes_per_update: usize) -> usize {
        let peer = self.speakers[speaker].peer;
        let routes = self.engine.export_routes(peer, self.local_address);
        let mut adj_out = AdjRibOut::new();
        let actions = adj_out.sync(routes);
        let updates = AdjRibOut::to_updates(&actions, prefixes_per_update);
        let n = updates.len();
        self.export_queue.extend(updates);
        n
    }

    /// Prefix-level transactions fully processed.
    pub fn transactions_done(&self) -> u64 {
        self.transactions_done
    }

    /// Prefix-level transactions advertised in Phase-2 exports.
    pub fn exported_transactions(&self) -> u64 {
        self.exported_transactions
    }

    /// Whether all loaded work has drained.
    pub fn is_quiescent(&self) -> bool {
        self.pending.is_empty()
            && self.export_queue.is_empty()
            && self
                .speakers
                .iter()
                .all(|s| s.script.as_ref().is_none_or(SpeakerScript::is_exhausted))
    }

    /// Gates speaker input on session state: while `false` the speaker
    /// link is down and its script is untouched.
    pub fn set_speaker_enabled(&mut self, speaker: usize, enabled: bool) {
        self.speakers[speaker].faults.enabled = enabled;
    }

    /// Arms the link to drop the speaker's next `n` messages (taken
    /// off the script, never processed).
    pub fn drop_next(&mut self, speaker: usize, n: u32) {
        self.speakers[speaker].faults.drop_next = n;
    }

    /// Holds the speaker's input back until simulated time `until_s`.
    pub fn delay_input_until(&mut self, speaker: usize, until_s: f64) {
        self.speakers[speaker].faults.delay_until_s = until_s;
    }

    /// Arms the link to swap the speaker's next `n` message pairs.
    pub fn reorder_next(&mut self, speaker: usize, n: u32) {
        self.speakers[speaker].faults.reorder_next = n;
    }

    /// Rewinds the speaker's script for a full re-advertisement (peer
    /// restart).
    pub fn reset_script(&mut self, speaker: usize) {
        if let Some(script) = self.speakers[speaker].script.as_mut() {
            script.reset();
        }
    }

    /// Prefix-level transactions the speaker's script has handed out
    /// since its last load or reset.
    pub fn speaker_transactions_taken(&self, speaker: usize) -> u64 {
        self.speakers[speaker]
            .script
            .as_ref()
            .map_or(0, |s| s.transactions_taken() as u64)
    }

    /// Session-down purge: withdraws everything learned from the
    /// speaker's peer and applies the FIB fallout immediately; stale
    /// directives from the peer's in-flight messages are cancelled.
    /// Returns the number of affected prefixes.
    pub fn purge_speaker(&mut self, speaker: usize) -> usize {
        let peer = self.speakers[speaker].peer;
        for (_, from, directives) in self.pending.values_mut() {
            if *from == peer {
                directives.clear();
            }
        }
        let Ok(outcomes) = self.engine.purge_peer(peer) else {
            return 0;
        };
        let _span = (!outcomes.is_empty())
            .then(|| telemetry::span(SpanId::FibApply))
            .flatten();
        for outcome in &outcomes {
            match outcome.fib {
                Some(FibDirective::Install { prefix, next_hop }) => {
                    telemetry::incr(MetricId::FibInstalls);
                    self.fib.insert(prefix, NextHop::new(next_hop, 0));
                }
                Some(FibDirective::Remove { prefix }) => {
                    telemetry::incr(MetricId::FibRemoves);
                    self.fib.remove(&prefix);
                }
                None => {}
            }
        }
        outcomes.len()
    }

    /// Sets the cross-traffic offered load.
    pub fn set_cross_rate_mbps(&mut self, mbps: f64) {
        self.cross.set_rate_mbps(mbps);
    }

    /// Cross-traffic accounting so far.
    pub fn cross_summary(&self) -> crate::CrossSummary {
        self.cross.summary()
    }

    /// The routing engine.
    pub fn engine(&self) -> &ShardedRibEngine {
        &self.engine
    }

    /// Repartitions the (still-empty) RIB into `shards` shards — a
    /// configuration-time knob; see
    /// [`crate::XorpModel::set_rib_shards`]. Black-box costs depend
    /// only on the per-prefix outcomes, which are bit-identical across
    /// shard counts.
    pub fn set_rib_shards(&mut self, shards: usize) {
        self.engine.set_shards(shards);
    }

    /// The forwarding table.
    pub fn fib(&self) -> &Fib {
        &self.fib
    }

    /// Installs the import route-map. The IOS model is black-box — its
    /// per-update costs come from measured totals, so a policy changes
    /// *which* outcome each route takes (a rejection prices as
    /// `nochange`) rather than scaling a separate policy process.
    pub fn set_import_policy(&mut self, policy: RouteMap) {
        self.engine.set_import_policy(policy);
    }

    /// Installs the export route-map.
    pub fn set_export_policy(&mut self, policy: RouteMap) {
        self.engine.set_export_policy(policy);
    }

    fn cost_of(&self, change: RouteChange, is_withdrawal: bool) -> f64 {
        match change {
            RouteChange::Installed => self.costs.ann_fib,
            RouteChange::Replaced { .. } => self.costs.replace,
            RouteChange::Withdrawn | RouteChange::WithdrawnUnknown => self.costs.withdraw,
            RouteChange::Unchanged if is_withdrawal => self.costs.withdraw,
            RouteChange::Unchanged
            | RouteChange::RejectedByPolicy
            | RouteChange::RejectedAsLoop
            | RouteChange::Dampened => self.costs.nochange,
        }
    }
}

impl Model for IosModel {
    fn on_tick(&mut self, ctx: &mut TickContext<'_>) {
        let kernel_backlog = ctx.queue_len(self.kernel);
        self.cross
            .on_tick(ctx, self.tick_secs, self.irq, self.kernel, kernel_backlog);

        let now = ctx.now().as_secs_f64();
        let mut room = INPUT_LIMIT.saturating_sub(ctx.queue_len(self.ios));
        for idx in 0..self.speakers.len() {
            // Down or delayed links accept no input and accrue no send
            // allowance — the speaker backs off with the session.
            if !self.speakers[idx].faults.enabled || now < self.speakers[idx].faults.delay_until_s {
                continue;
            }
            let mut allowance = match self.speakers[idx].rate_msgs_per_sec {
                Some(rate) => {
                    self.speakers[idx].carry += rate * self.tick_secs;
                    let whole = self.speakers[idx].carry.floor();
                    self.speakers[idx].carry -= whole;
                    whole as usize
                }
                None => usize::MAX,
            };
            while room > 0 && allowance > 0 {
                // Lossy link: messages arrive but are dropped before
                // the BGP process sees them — they consume the script
                // and the sender's allowance without being applied.
                if self.speakers[idx].faults.drop_next > 0 {
                    allowance -= 1;
                    let Some(script) = self.speakers[idx].script.as_mut() else {
                        break;
                    };
                    if script.take(1).is_empty() {
                        break;
                    }
                    self.speakers[idx].faults.drop_next -= 1;
                    continue;
                }
                // Reordering link: take the next pair and apply it in
                // reversed arrival order (needs room for both).
                let swap =
                    self.speakers[idx].faults.reorder_next > 0 && room >= 2 && allowance >= 2;
                let Some(script) = self.speakers[idx].script.as_mut() else {
                    break;
                };
                let mut batch = script.take(if swap { 2 } else { 1 }).to_vec();
                if batch.is_empty() {
                    break;
                }
                if swap && batch.len() == 2 {
                    self.speakers[idx].faults.reorder_next -= 1;
                    batch.reverse();
                }
                for update in batch {
                    allowance = allowance.saturating_sub(1);
                    room -= 1;
                    let peer = self.speakers[idx].peer;
                    let n_wd = update.withdrawn().len();
                    let outcomes = self
                        .engine
                        .apply_update(peer, &update)
                        .expect("benchmark updates are well-formed");
                    let mut cycles = 0.0;
                    let mut directives = Vec::new();
                    for (i, outcome) in outcomes.iter().enumerate() {
                        cycles += self.cost_of(outcome.change, i < n_wd);
                        if let Some(directive) = outcome.fib {
                            directives.push(directive);
                        }
                    }
                    let tag = self.next_tag;
                    self.next_tag += 1;
                    let count = outcomes.len() as u32;
                    self.pending.insert(tag, (count, peer, directives));
                    ctx.push(
                        self.ios,
                        Job::new(JOB_MSG, cycles)
                            .with_tag(tag)
                            .with_count(count)
                            .with_delay_ns(self.costs.pkt_delay_ns),
                    );
                }
            }
        }

        while room > 0 {
            let Some(update) = self.export_queue.pop_front() else {
                break;
            };
            let n = update.transaction_count() as u32;
            ctx.push(
                self.ios,
                Job::new(JOB_EXPORT, f64::from(n) * self.costs.nochange).with_count(n),
            );
            room -= 1;
        }
    }

    fn on_job_complete(&mut self, _pid: ProcessId, job: Job, _ctx: &mut TickContext<'_>) {
        match job.kind {
            JOB_MSG => {
                let (count, _peer, directives) = self
                    .pending
                    .remove(&job.tag)
                    .expect("completion without pending entry");
                let _span = (!directives.is_empty())
                    .then(|| telemetry::span(SpanId::FibApply))
                    .flatten();
                for directive in directives {
                    match directive {
                        FibDirective::Install { prefix, next_hop } => {
                            telemetry::incr(MetricId::FibInstalls);
                            self.fib.insert(prefix, NextHop::new(next_hop, 0));
                        }
                        FibDirective::Remove { prefix } => {
                            telemetry::incr(MetricId::FibRemoves);
                            self.fib.remove(&prefix);
                        }
                    }
                }
                self.transactions_done += u64::from(count);
            }
            JOB_EXPORT => {
                self.exported_transactions += u64::from(job.count);
            }
            JOB_KFWD => {
                self.cross.on_forwarded(job.count);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpbench_simnet::{SimConfig, SimDuration, Simulator};
    use bgpbench_speaker::{workload, TableGenerator};

    fn cisco_sim() -> Simulator<IosModel> {
        let spec = crate::cisco3620();
        let config = SimConfig::new(vec![spec.core; spec.cores]);
        let tick = config.tick.as_secs_f64();
        Simulator::new(config, |builder| {
            let crate::PlatformKind::Ios(costs) = spec.kind else {
                unreachable!()
            };
            IosModel::new(
                costs,
                spec.cross,
                tick,
                builder,
                &[
                    PeerInfo::new(
                        PeerId(1),
                        Asn(65001),
                        RouterId(0x0A00_0002),
                        Ipv4Addr::new(10, 0, 0, 2),
                    ),
                    PeerInfo::new(
                        PeerId(2),
                        Asn(65002),
                        RouterId(0x0A00_0003),
                        Ipv4Addr::new(10, 0, 0, 3),
                    ),
                ],
            )
        })
    }

    fn spec_for(pkt: usize) -> workload::AnnounceSpec {
        workload::AnnounceSpec {
            speaker_asn: Asn(65001),
            path_len: 3,
            next_hop: Ipv4Addr::new(10, 0, 0, 2),
            prefixes_per_update: pkt,
            seed: 1,
        }
    }

    #[test]
    fn small_packet_rate_is_near_eleven_per_second() {
        // The paper's signature Cisco result: ~10.7 transactions/s on
        // small packets regardless of scenario.
        let mut sim = cisco_sim();
        let table = TableGenerator::new(1).generate(30);
        sim.model_mut().load_script(
            0,
            SpeakerScript::new(workload::announcements(&table, &spec_for(1))),
        );
        let outcome = sim.run(SimDuration::from_secs(60));
        let tps = 30.0 / outcome.elapsed.as_secs_f64();
        assert!((8.0..13.0).contains(&tps), "small-packet rate {tps}");
    }

    #[test]
    fn large_packets_amortize_the_scheduling_delay() {
        let mut sim = cisco_sim();
        let table = TableGenerator::new(1).generate(2000);
        sim.model_mut().load_script(
            0,
            SpeakerScript::new(workload::announcements(&table, &spec_for(500))),
        );
        let outcome = sim.run(SimDuration::from_secs(60));
        let tps = 2000.0 / outcome.elapsed.as_secs_f64();
        assert!(
            (1800.0..3200.0).contains(&tps),
            "large-packet rate {tps} outside the calibrated band"
        );
        assert_eq!(sim.model().fib().len(), 2000);
    }

    #[test]
    fn cross_traffic_collapses_large_packet_rates_only() {
        let table = TableGenerator::new(1).generate(500);
        let rate = |pkt: usize, mbps: f64| {
            let mut sim = cisco_sim();
            sim.model_mut().set_cross_rate_mbps(mbps);
            sim.model_mut().load_script(
                0,
                SpeakerScript::new(workload::announcements(&table, &spec_for(pkt))),
            );
            let done = |m: &IosModel| m.transactions_done() >= 100;
            let outcome = sim.run_until(SimDuration::from_secs(200), done);
            sim.model().transactions_done() as f64 / outcome.elapsed.as_secs_f64()
        };
        let large_idle = rate(500, 0.0);
        let large_loaded = rate(500, 75.0);
        assert!(
            large_loaded < large_idle / 3.0,
            "large-packet rate must collapse: {large_idle} -> {large_loaded}"
        );
        let small_idle = rate(1, 0.0);
        let small_loaded = rate(1, 75.0);
        assert!(
            small_loaded > small_idle * 0.7,
            "small-packet rate must stay flat: {small_idle} -> {small_loaded}"
        );
    }
}
