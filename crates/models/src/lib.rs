//! Simulated models of the paper's four router platforms.
//!
//! Table II of the paper lists the systems under test; this crate
//! models each as a [`PlatformSpec`] — a control-CPU description plus a
//! calibrated cost table — executed on the [`bgpbench_simnet`]
//! scheduler:
//!
//! | Constructor | Paper system | Model |
//! |---|---|---|
//! | [`pentium3`] | 800 MHz Pentium III, Linux, XORP 1.3 | uni-core [`XorpModel`] |
//! | [`xeon`] | 3.0 GHz dual-core Xeon, Linux, XORP 1.3 | dual-core [`XorpModel`] |
//! | [`ixp2400`] | Intel IXP2400 (XScale control CPU), XORP 1.3 | uni-core [`XorpModel`] with a slow CPU, heavier `xorp_rtrmgr` overhead, and a dedicated data plane |
//! | [`cisco3620`] | Cisco 3620, IOS 12.1 | black-box [`IosModel`]: fixed per-packet scheduling latency + per-prefix cost |
//!
//! The XORP model is a faithful five-process pipeline (`xorp_bgp`,
//! `xorp_policy`, `xorp_rib`, `xorp_fea`, `xorp_rtrmgr`) that runs the
//! *real* [`bgpbench_rib`] decision process and [`bgpbench_fib`]
//! forwarding table, charging simulated cycles for each operation — so
//! functional correctness and timing fidelity come from the same run.
//!
//! Cross-traffic couples into the models through interrupt and
//! kernel-forwarding work on shared-CPU platforms
//! ([`CrossTraffic`]); the IXP2400's packet processors forward without
//! touching the XScale, which is what flattens its curves in Fig. 5.
//!
//! [`SimRouter`] wraps either model behind one interface for the
//! benchmark harness.

#![forbid(unsafe_code)]

mod costs;
mod crosstraffic;
mod faults;
mod ios;
mod platform;
mod router;
mod xorp;

pub use costs::{CrossCosts, IosCosts, XorpCosts};
pub use crosstraffic::{CrossSummary, CrossTraffic};
pub use ios::IosModel;
pub use platform::{
    all_platforms, cisco3620, hypothetical, ixp2400, pentium3, xeon, PlatformKind, PlatformSpec,
};
pub use router::{SimRouter, SpeakerHandle, SPEAKER_1, SPEAKER_2};
pub use xorp::XorpModel;
