//! Cross-traffic generation and accounting.

use bgpbench_simnet::{Job, ProcessId, TickContext};

use crate::costs::CrossCosts;

/// Job kind for interrupt batches (shared with the platform models).
pub(crate) const JOB_IRQ: u16 = 100;
/// Job kind for kernel forwarding batches.
pub(crate) const JOB_KFWD: u16 = 101;

/// Aggregate cross-traffic accounting for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CrossSummary {
    /// Packets offered to the router.
    pub offered_pkts: u64,
    /// Packets forwarded.
    pub forwarded_pkts: u64,
    /// Packets dropped (backlog overflow while the kernel was busy).
    pub dropped_pkts: u64,
}

impl CrossSummary {
    /// Forwarded fraction of offered traffic (1.0 when nothing was
    /// offered).
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered_pkts == 0 {
            1.0
        } else {
            self.forwarded_pkts as f64 / self.offered_pkts as f64
        }
    }
}

/// Injects cross-traffic load into a platform model and tracks the
/// achieved forwarding rate.
///
/// On shared-CPU platforms every arriving packet costs interrupt
/// cycles (highest priority) and kernel forwarding cycles. The kernel
/// process serializes forwarding with FIB applies, so heavy Phase-3
/// FIB churn delays forwarding batches; once the backlog exceeds the
/// ring bound, arrivals drop — reproducing Fig. 6(c). On the IXP2400
/// the packet processors forward without involving the control CPU at
/// all, so this type only does the accounting.
#[derive(Debug)]
pub struct CrossTraffic {
    costs: CrossCosts,
    rate_mbps: f64,
    carry_pkts: f64,
    summary: CrossSummary,
    /// Bits forwarded since the last rate sample.
    window_bits: f64,
    last_sample_s: f64,
    sample_period_s: f64,
}

impl CrossTraffic {
    /// Creates an idle (0 Mbps) cross-traffic source.
    pub fn new(costs: CrossCosts) -> Self {
        CrossTraffic {
            costs,
            rate_mbps: 0.0,
            carry_pkts: 0.0,
            summary: CrossSummary::default(),
            window_bits: 0.0,
            last_sample_s: 0.0,
            // One-second windows, matching the paper's Fig. 6(c)
            // granularity: sub-second FIB-lock outage bursts smooth
            // into the partial dip the paper plots.
            sample_period_s: 1.0,
        }
    }

    /// Sets the offered load. Rates beyond the platform's forwarding
    /// limit are clamped, matching the paper's measurement envelope.
    pub fn set_rate_mbps(&mut self, mbps: f64) {
        self.rate_mbps = mbps.clamp(0.0, self.costs.max_forward_mbps);
    }

    /// The current offered load in Mbps.
    pub fn rate_mbps(&self) -> f64 {
        self.rate_mbps
    }

    /// Accumulated accounting.
    pub fn summary(&self) -> CrossSummary {
        self.summary
    }

    /// Called by the owning model every tick: computes arrivals and
    /// pushes interrupt + kernel work (or forwards directly on a
    /// dedicated data plane). `kernel_queue_len` is the kernel
    /// process's current backlog in jobs.
    pub fn on_tick(
        &mut self,
        ctx: &mut TickContext<'_>,
        tick_secs: f64,
        irq: ProcessId,
        kernel: ProcessId,
        kernel_queue_len: usize,
    ) {
        if self.rate_mbps <= 0.0 {
            self.maybe_sample(ctx);
            return;
        }
        let pps = self.rate_mbps * 1e6 / (f64::from(self.costs.pkt_bytes) * 8.0);
        self.carry_pkts += pps * tick_secs;
        let arrivals = self.carry_pkts.floor() as u32;
        if arrivals == 0 {
            self.maybe_sample(ctx);
            return;
        }
        self.carry_pkts -= f64::from(arrivals);
        self.summary.offered_pkts += u64::from(arrivals);

        if self.costs.dedicated_dataplane {
            // Packet processors forward at line rate; the control CPU
            // never sees the traffic.
            self.summary.forwarded_pkts += u64::from(arrivals);
            self.window_bits += f64::from(arrivals) * f64::from(self.costs.pkt_bytes) * 8.0;
            self.maybe_sample(ctx);
            return;
        }

        // Interrupt work is unconditional: the NIC raises it whether or
        // not the packet is later dropped.
        if self.costs.irq_per_pkt > 0.0 {
            ctx.push(
                irq,
                Job::new(JOB_IRQ, f64::from(arrivals) * self.costs.irq_per_pkt)
                    .with_count(arrivals),
            );
        }
        // Kernel forwarding batches drop once the backlog exceeds the
        // ring bound (the paper's Fig. 6c loss mechanism).
        if kernel_queue_len >= self.costs.ring_cap_jobs {
            self.summary.dropped_pkts += u64::from(arrivals);
        } else {
            ctx.push(
                kernel,
                Job::new(JOB_KFWD, f64::from(arrivals) * self.costs.kfwd_per_pkt)
                    .with_count(arrivals),
            );
        }
        self.maybe_sample(ctx);
    }

    /// Called by the owning model when a kernel forwarding batch
    /// completes.
    pub fn on_forwarded(&mut self, count: u32) {
        self.summary.forwarded_pkts += u64::from(count);
        self.window_bits += f64::from(count) * f64::from(self.costs.pkt_bytes) * 8.0;
    }

    fn maybe_sample(&mut self, ctx: &mut TickContext<'_>) {
        let now = ctx.now().as_secs_f64();
        if now - self.last_sample_s >= self.sample_period_s {
            let window = now - self.last_sample_s;
            let mbps = self.window_bits / window / 1e6;
            ctx.record("fwd_mbps", mbps);
            self.window_bits = 0.0;
            self.last_sample_s = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs(dedicated: bool) -> CrossCosts {
        CrossCosts {
            irq_per_pkt: 1000.0,
            kfwd_per_pkt: 1000.0,
            pkt_bytes: 1500,
            ring_cap_jobs: 4,
            max_forward_mbps: 315.0,
            dedicated_dataplane: dedicated,
        }
    }

    #[test]
    fn rate_is_clamped_to_platform_limit() {
        let mut cross = CrossTraffic::new(costs(false));
        cross.set_rate_mbps(1000.0);
        assert_eq!(cross.rate_mbps(), 315.0);
        cross.set_rate_mbps(-5.0);
        assert_eq!(cross.rate_mbps(), 0.0);
    }

    #[test]
    fn delivery_ratio_defaults_to_one() {
        assert_eq!(CrossSummary::default().delivery_ratio(), 1.0);
        let summary = CrossSummary {
            offered_pkts: 100,
            forwarded_pkts: 75,
            dropped_pkts: 25,
        };
        assert_eq!(summary.delivery_ratio(), 0.75);
    }
}
