//! The XORP software-router model: five cooperating processes running
//! the real RIB engine and FIB, with calibrated per-stage cycle costs.

use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

use bgpbench_fib::{Fib, NextHop};
use bgpbench_rib::{
    AdjRibOut, FibDirective, PeerId, PeerInfo, RouteChange, RouteMap, ShardedRibEngine,
};
use bgpbench_simnet::{Job, Model, ProcessBuilder, ProcessId, SchedClass, TickContext};
use bgpbench_speaker::SpeakerScript;
use bgpbench_telemetry::{self as telemetry, MetricId, SpanId};
use bgpbench_wire::{Asn, RouterId, UpdateMessage};

use crate::costs::XorpCosts;
use crate::crosstraffic::{CrossTraffic, JOB_KFWD};
use crate::faults::LinkFaults;
use crate::CrossCosts;

const JOB_PARSE: u16 = 1;
const JOB_POLICY: u16 = 2;
const JOB_DECIDE: u16 = 3;
const JOB_RIB: u16 = 4;
const JOB_FEA: u16 = 5;
const JOB_KFIB: u16 = 6;
const JOB_EXPORT: u16 = 7;
const JOB_RTRMGR: u16 = 8;

/// How many received-but-unparsed messages the BGP process buffers
/// before TCP backpressure stops the speaker (socket receive buffer).
const INPUT_LIMIT: usize = 8;

/// Backlog cap for the periodic `xorp_rtrmgr` housekeeping.
const RTRMGR_BACKLOG: usize = 4;

/// Maximum UPDATE messages in flight across the whole pipeline —
/// XORP's bounded inter-process (XRL) queues. This is what makes the
/// paper's Fig. 4 contrast: with small packets the bound keeps
/// `xorp_bgp` pacing itself to the pipeline for the entire run, while
/// with large packets the same bound holds thousands of prefixes, so
/// parsing races ahead and finishes early.
const PIPELINE_LIMIT: usize = 16;

/// The process handles of the XORP model.
#[derive(Debug, Clone, Copy)]
struct Procs {
    bgp: ProcessId,
    policy: ProcessId,
    rib: ProcessId,
    fea: ProcessId,
    rtrmgr: ProcessId,
    kernel: ProcessId,
    irq: ProcessId,
}

/// Stage costs and bookkeeping for one in-flight UPDATE.
#[derive(Debug)]
struct Pending {
    peer: PeerId,
    transactions: u32,
    policy_cycles: f64,
    decide_cycles: f64,
    rib_cycles: f64,
    fea_cycles: f64,
    kfib_cycles: f64,
    directives: Vec<FibDirective>,
}

/// Per-speaker connection state.
#[derive(Debug)]
struct Speaker {
    peer: PeerId,
    script: Option<SpeakerScript>,
    /// Messages per second the speaker is throttled to (`None` =
    /// as fast as flow control allows, the benchmark default).
    rate_msgs_per_sec: Option<f64>,
    /// Fractional-message carry for rated injection.
    carry: f64,
    /// Session/link fault state (the topology engine's injection
    /// point).
    faults: LinkFaults,
}

/// The XORP 1.3 software model (paper §IV.B): `xorp_bgp`,
/// `xorp_policy`, `xorp_rib`, `xorp_fea`, and `xorp_rtrmgr` as
/// user-space processes, plus kernel forwarding/route-apply and
/// interrupt handling. Runs the real [`ShardedRibEngine`] and [`Fib`];
/// the cost table only decides *when* things happen, never *what*.
#[derive(Debug)]
pub struct XorpModel {
    costs: XorpCosts,
    cpu_hz: f64,
    tick_secs: f64,
    procs: Procs,
    engine: ShardedRibEngine,
    fib: Fib,
    speakers: Vec<Speaker>,
    inbox: HashMap<u64, (PeerId, UpdateMessage)>,
    pending: HashMap<u64, Pending>,
    next_tag: u64,
    export_queue: VecDeque<UpdateMessage>,
    cross: CrossTraffic,
    transactions_done: u64,
    exported_transactions: u64,
    local_address: Ipv4Addr,
    /// Last time (seconds) pipeline backlogs were sampled.
    last_backlog_sample_s: f64,
}

impl XorpModel {
    /// The default local AS of a simulated router under test.
    pub const LOCAL_ASN: Asn = Asn(65000);

    /// Builds the model, registering its seven processes with
    /// `builder` and one RIB peer per entry of `speakers`.
    pub fn new(
        costs: XorpCosts,
        cross_costs: CrossCosts,
        cpu_hz: f64,
        tick_secs: f64,
        builder: &mut ProcessBuilder,
        speakers: &[PeerInfo],
    ) -> Self {
        Self::with_local_asn(
            costs,
            cross_costs,
            cpu_hz,
            tick_secs,
            builder,
            speakers,
            Self::LOCAL_ASN,
        )
    }

    /// [`XorpModel::new`] with an explicit local AS — required when
    /// several simulated routers are chained (each AS must be distinct
    /// or loop prevention discards the re-exported routes).
    #[allow(clippy::too_many_arguments)]
    pub fn with_local_asn(
        costs: XorpCosts,
        cross_costs: CrossCosts,
        cpu_hz: f64,
        tick_secs: f64,
        builder: &mut ProcessBuilder,
        speakers: &[PeerInfo],
        local_asn: Asn,
    ) -> Self {
        let procs = Procs {
            bgp: builder.add_process("xorp_bgp", SchedClass::User),
            policy: builder.add_process("xorp_policy", SchedClass::User),
            rib: builder.add_process("xorp_rib", SchedClass::User),
            fea: builder.add_process("xorp_fea", SchedClass::User),
            rtrmgr: builder.add_process("xorp_rtrmgr", SchedClass::User),
            kernel: builder.add_process("kernel", SchedClass::Kernel),
            irq: builder.add_process("interrupts", SchedClass::Interrupt),
        };
        let local_address = Ipv4Addr::new(10, 0, 0, 1);
        let mut engine = ShardedRibEngine::new(local_asn, RouterId(u32::from(local_address)));
        let speakers = speakers
            .iter()
            .map(|info| Speaker {
                peer: engine.add_peer(*info),
                script: None,
                rate_msgs_per_sec: None,
                carry: 0.0,
                faults: LinkFaults::default(),
            })
            .collect();
        XorpModel {
            costs,
            cpu_hz,
            tick_secs,
            procs,
            engine,
            fib: Fib::new(),
            speakers,
            inbox: HashMap::new(),
            pending: HashMap::new(),
            next_tag: 0,
            export_queue: VecDeque::new(),
            cross: CrossTraffic::new(cross_costs),
            transactions_done: 0,
            exported_transactions: 0,
            local_address,
            last_backlog_sample_s: 0.0,
        }
    }

    /// Assigns the message stream a speaker will send. Replaces any
    /// unfinished previous script.
    pub fn load_script(&mut self, speaker: usize, script: SpeakerScript) {
        self.speakers[speaker].script = Some(script);
        self.speakers[speaker].rate_msgs_per_sec = None;
        self.speakers[speaker].carry = 0.0;
    }

    /// Like [`XorpModel::load_script`], but the speaker paces itself to
    /// `msgs_per_sec` instead of flooding — the steady-state operation
    /// the paper cites ("in the order of 100 BGP messages per second").
    pub fn load_script_rated(&mut self, speaker: usize, script: SpeakerScript, msgs_per_sec: f64) {
        assert!(msgs_per_sec > 0.0, "rate must be positive");
        self.speakers[speaker].script = Some(script);
        self.speakers[speaker].rate_msgs_per_sec = Some(msgs_per_sec);
        self.speakers[speaker].carry = 0.0;
    }

    /// Queues a Phase-2 full-table export toward `speaker`, packetized
    /// at `prefixes_per_update`. Returns the number of UPDATE messages
    /// queued.
    pub fn queue_export(&mut self, speaker: usize, prefixes_per_update: usize) -> usize {
        let peer = self.speakers[speaker].peer;
        let routes = self.engine.export_routes(peer, self.local_address);
        let mut adj_out = AdjRibOut::new();
        let actions = adj_out.sync(routes);
        let updates = AdjRibOut::to_updates(&actions, prefixes_per_update);
        let n = updates.len();
        self.export_queue.extend(updates);
        n
    }

    /// Prefix-level transactions fully processed (through the FIB when
    /// the scenario requires it) — the benchmark's counted unit.
    pub fn transactions_done(&self) -> u64 {
        self.transactions_done
    }

    /// Prefix-level transactions advertised in Phase-2 exports.
    pub fn exported_transactions(&self) -> u64 {
        self.exported_transactions
    }

    /// Whether all loaded scripts, exports, and in-flight work have
    /// drained.
    pub fn is_quiescent(&self) -> bool {
        self.inbox.is_empty()
            && self.pending.is_empty()
            && self.export_queue.is_empty()
            && self
                .speakers
                .iter()
                .all(|s| s.script.as_ref().is_none_or(SpeakerScript::is_exhausted))
    }

    /// Gates speaker input on session state: while `false` the speaker
    /// link is down and its script is untouched.
    pub fn set_speaker_enabled(&mut self, speaker: usize, enabled: bool) {
        self.speakers[speaker].faults.enabled = enabled;
    }

    /// Arms the link to drop the speaker's next `n` messages (taken
    /// off the script, never parsed).
    pub fn drop_next(&mut self, speaker: usize, n: u32) {
        self.speakers[speaker].faults.drop_next = n;
    }

    /// Holds the speaker's input back until simulated time `until_s`.
    pub fn delay_input_until(&mut self, speaker: usize, until_s: f64) {
        self.speakers[speaker].faults.delay_until_s = until_s;
    }

    /// Arms the link to swap the speaker's next `n` message pairs.
    pub fn reorder_next(&mut self, speaker: usize, n: u32) {
        self.speakers[speaker].faults.reorder_next = n;
    }

    /// Rewinds the speaker's script for a full re-advertisement (peer
    /// restart). The caller accounts for transactions already taken —
    /// [`SpeakerScript::reset`] zeroes the counter.
    pub fn reset_script(&mut self, speaker: usize) {
        if let Some(script) = self.speakers[speaker].script.as_mut() {
            script.reset();
        }
    }

    /// Prefix-level transactions the speaker's script has handed out
    /// since its last load or reset.
    pub fn speaker_transactions_taken(&self, speaker: usize) -> u64 {
        self.speakers[speaker]
            .script
            .as_ref()
            .map_or(0, |s| s.transactions_taken() as u64)
    }

    /// Session-down purge: withdraws everything learned from the
    /// speaker's peer, re-running best-path per affected prefix, and
    /// applies the resulting FIB changes immediately (the purge is a
    /// local control-plane action, not a scripted message). Stale FIB
    /// directives from the peer's still-in-flight messages are
    /// cancelled. Returns the number of affected prefixes.
    pub fn purge_speaker(&mut self, speaker: usize) -> usize {
        let peer = self.speakers[speaker].peer;
        self.inbox.retain(|_, (from, _)| *from != peer);
        for pending in self.pending.values_mut() {
            if pending.peer == peer {
                pending.directives.clear();
            }
        }
        let Ok(outcomes) = self.engine.purge_peer(peer) else {
            return 0;
        };
        let _span = (!outcomes.is_empty())
            .then(|| telemetry::span(SpanId::FibApply))
            .flatten();
        for outcome in &outcomes {
            match outcome.fib {
                Some(FibDirective::Install { prefix, next_hop }) => {
                    telemetry::incr(MetricId::FibInstalls);
                    self.fib.insert(prefix, NextHop::new(next_hop, 0));
                }
                Some(FibDirective::Remove { prefix }) => {
                    telemetry::incr(MetricId::FibRemoves);
                    self.fib.remove(&prefix);
                }
                None => {}
            }
        }
        outcomes.len()
    }

    /// Sets the cross-traffic offered load.
    pub fn set_cross_rate_mbps(&mut self, mbps: f64) {
        self.cross.set_rate_mbps(mbps);
    }

    /// Cross-traffic accounting so far.
    pub fn cross_summary(&self) -> crate::CrossSummary {
        self.cross.summary()
    }

    /// The routing engine (for inspecting RIB state after a run).
    pub fn engine(&self) -> &ShardedRibEngine {
        &self.engine
    }

    /// Repartitions the (still-empty) RIB into `shards` shards — a
    /// configuration-time knob, set before any script runs. Shard
    /// count never changes the *simulated* cost attribution: the
    /// platforms model 2007-era single-threaded daemons, so cycle
    /// charges depend only on the per-prefix outcomes, which are
    /// bit-identical across shard counts.
    pub fn set_rib_shards(&mut self, shards: usize) {
        self.engine.set_shards(shards);
    }

    /// The forwarding table.
    pub fn fib(&self) -> &Fib {
        &self.fib
    }

    /// Installs the import route-map (Adj-RIB-In → Loc-RIB). Each
    /// configured entry adds one evaluation pass to the policy
    /// process's per-announcement cost.
    pub fn set_import_policy(&mut self, policy: RouteMap) {
        self.engine.set_import_policy(policy);
    }

    /// Installs the export route-map (Loc-RIB → Adj-RIB-Out).
    pub fn set_export_policy(&mut self, policy: RouteMap) {
        self.engine.set_export_policy(policy);
    }

    fn classify(&mut self, tag: u64) -> Pending {
        let (peer, update) = self.inbox.remove(&tag).expect("parse without inbox entry");
        let n_ann = update.nlri().len() as u32;
        let n_wd = update.withdrawn().len() as u32;
        let outcomes = self
            .engine
            .apply_update(peer, &update)
            .expect("benchmark updates are well-formed");
        let costs = &self.costs;
        // Each configured route-map entry adds one evaluation pass on
        // top of the baseline policy cost, so an empty (permit-all)
        // map prices exactly as before policies existed.
        let policy_scale = 1.0 + self.engine.import_policy().len() as f64;
        let mut pending = Pending {
            peer,
            transactions: n_ann + n_wd,
            policy_cycles: f64::from(n_ann) * costs.policy * policy_scale,
            decide_cycles: f64::from(n_ann + n_wd) * costs.decide,
            rib_cycles: 0.0,
            fea_cycles: 0.0,
            kfib_cycles: 0.0,
            directives: Vec::new(),
        };
        for outcome in outcomes {
            match outcome.change {
                RouteChange::Installed => pending.rib_cycles += costs.rib_insert,
                RouteChange::Replaced { .. } => pending.rib_cycles += costs.rib_replace,
                RouteChange::Withdrawn => pending.rib_cycles += costs.rib_remove,
                RouteChange::Unchanged
                | RouteChange::WithdrawnUnknown
                | RouteChange::RejectedByPolicy
                | RouteChange::RejectedAsLoop
                | RouteChange::Dampened => {}
            }
            if let Some(directive) = outcome.fib {
                let (user, kernel) = match (&directive, outcome.change) {
                    (FibDirective::Install { .. }, RouteChange::Replaced { .. }) => {
                        (costs.fib_user_replace, costs.fib_kernel_replace)
                    }
                    (FibDirective::Install { .. }, _) => {
                        (costs.fib_user_install, costs.fib_kernel_install)
                    }
                    (FibDirective::Remove { .. }, _) => {
                        (costs.fib_user_remove, costs.fib_kernel_remove)
                    }
                };
                pending.fea_cycles += user;
                pending.kfib_cycles += kernel;
                pending.directives.push(directive);
            }
        }
        if !pending.directives.is_empty() {
            pending.fea_cycles += costs.ipc_batch;
        }
        pending
    }

    /// Advances a message to its next nonzero pipeline stage, or
    /// retires it.
    fn advance(&mut self, tag: u64, completed_kind: u16, ctx: &mut TickContext<'_>) {
        let Some(pending) = self.pending.get(&tag) else {
            return;
        };
        let count = pending.transactions;
        let stages = [
            (JOB_POLICY, self.procs.policy, pending.policy_cycles),
            (JOB_DECIDE, self.procs.bgp, pending.decide_cycles),
            (JOB_RIB, self.procs.rib, pending.rib_cycles),
            (JOB_FEA, self.procs.fea, pending.fea_cycles),
            (JOB_KFIB, self.procs.kernel, pending.kfib_cycles),
        ];
        let next_index = match completed_kind {
            JOB_PARSE => 0,
            JOB_POLICY => 1,
            JOB_DECIDE => 2,
            JOB_RIB => 3,
            JOB_FEA => 4,
            _ => stages.len(),
        };
        for &(kind, pid, cycles) in &stages[next_index..] {
            if cycles > 0.0 {
                ctx.push(pid, Job::new(kind, cycles).with_tag(tag).with_count(count));
                return;
            }
        }
        // Pipeline complete: apply the FIB writes and count.
        let pending = self.pending.remove(&tag).expect("checked above");
        let _span = (!pending.directives.is_empty())
            .then(|| telemetry::span(SpanId::FibApply))
            .flatten();
        for directive in pending.directives {
            match directive {
                FibDirective::Install { prefix, next_hop } => {
                    telemetry::incr(MetricId::FibInstalls);
                    self.fib.insert(prefix, NextHop::new(next_hop, 0));
                }
                FibDirective::Remove { prefix } => {
                    telemetry::incr(MetricId::FibRemoves);
                    self.fib.remove(&prefix);
                }
            }
        }
        self.transactions_done += u64::from(pending.transactions);
    }
}

impl Model for XorpModel {
    fn on_tick(&mut self, ctx: &mut TickContext<'_>) {
        // Periodic router-manager housekeeping: only while routing
        // work is in flight (its idle-state load is negligible and
        // gating it lets drained simulations terminate).
        if self.costs.rtrmgr_frac > 0.0
            && !self.is_quiescent()
            && ctx.queue_len(self.procs.rtrmgr) < RTRMGR_BACKLOG
        {
            let cycles = self.costs.rtrmgr_frac * self.cpu_hz * self.tick_secs;
            ctx.push(self.procs.rtrmgr, Job::new(JOB_RTRMGR, cycles));
        }

        // Pipeline-backlog diagnostics: job counts waiting at each
        // stage, sampled every 100 ms. These series expose the Fig. 4
        // mechanism directly — with large packets the downstream
        // stages (rib/fea) accumulate deep backlogs while xorp_bgp
        // idles; with small packets TCP backpressure keeps every queue
        // shallow.
        let now = ctx.now().as_secs_f64();
        if now - self.last_backlog_sample_s >= 0.1 {
            self.last_backlog_sample_s = now;
            let rib_backlog = ctx.queue_len(self.procs.rib) as f64;
            let fea_backlog = ctx.queue_len(self.procs.fea) as f64;
            ctx.record("backlog:xorp_rib", rib_backlog);
            ctx.record("backlog:xorp_fea", fea_backlog);
            let inflight_prefixes: u32 = self.pending.values().map(|p| p.transactions).sum::<u32>()
                + self
                    .inbox
                    .values()
                    .map(|(_, u)| u.transaction_count() as u32)
                    .sum::<u32>();
            ctx.record("inflight_prefixes", f64::from(inflight_prefixes));
        }

        // Cross-traffic arrivals.
        let kernel_backlog = ctx.queue_len(self.procs.kernel);
        self.cross.on_tick(
            ctx,
            self.tick_secs,
            self.procs.irq,
            self.procs.kernel,
            kernel_backlog,
        );

        // Speaker input with two levels of backpressure: the socket
        // buffer ahead of `xorp_bgp` (INPUT_LIMIT) and the bounded
        // inter-process queues across the pipeline (PIPELINE_LIMIT).
        let inflight_messages = self.inbox.len() + self.pending.len();
        let mut room = INPUT_LIMIT
            .saturating_sub(ctx.queue_len(self.procs.bgp))
            .min(PIPELINE_LIMIT.saturating_sub(inflight_messages));
        for idx in 0..self.speakers.len() {
            // Down or delayed links accept no input and accrue no send
            // allowance — the speaker backs off with the session.
            if !self.speakers[idx].faults.enabled || now < self.speakers[idx].faults.delay_until_s {
                continue;
            }
            // Rated speakers accrue an allowance per tick; flooding
            // speakers are bounded only by flow control.
            let mut allowance = match self.speakers[idx].rate_msgs_per_sec {
                Some(rate) => {
                    self.speakers[idx].carry += rate * self.tick_secs;
                    let whole = self.speakers[idx].carry.floor();
                    self.speakers[idx].carry -= whole;
                    whole as usize
                }
                None => usize::MAX,
            };
            while room > 0 && allowance > 0 {
                let peer = self.speakers[idx].peer;
                // Lossy link: messages arrive but are dropped before
                // parse — they consume the script and the sender's
                // allowance without entering the pipeline.
                if self.speakers[idx].faults.drop_next > 0 {
                    allowance -= 1;
                    let Some(script) = self.speakers[idx].script.as_mut() else {
                        break;
                    };
                    if script.take(1).is_empty() {
                        break;
                    }
                    self.speakers[idx].faults.drop_next -= 1;
                    continue;
                }
                // Reordering link: take the next pair and parse it in
                // reversed arrival order (needs room for both).
                let swap =
                    self.speakers[idx].faults.reorder_next > 0 && room >= 2 && allowance >= 2;
                let Some(script) = self.speakers[idx].script.as_mut() else {
                    break;
                };
                let mut batch = script.take(if swap { 2 } else { 1 }).to_vec();
                if batch.is_empty() {
                    break;
                }
                if swap && batch.len() == 2 {
                    self.speakers[idx].faults.reorder_next -= 1;
                    batch.reverse();
                }
                for update in batch {
                    allowance = allowance.saturating_sub(1);
                    room -= 1;
                    let n_ann = update.nlri().len() as u32;
                    let n_wd = update.withdrawn().len() as u32;
                    let cycles = self.costs.pkt_base
                        + f64::from(n_ann) * self.costs.parse_ann
                        + f64::from(n_wd) * self.costs.parse_wd;
                    let tag = self.next_tag;
                    self.next_tag += 1;
                    self.inbox.insert(tag, (peer, update));
                    ctx.push(
                        self.procs.bgp,
                        Job::new(JOB_PARSE, cycles)
                            .with_tag(tag)
                            .with_count(n_ann + n_wd),
                    );
                }
            }
        }

        // Phase-2 exports share the BGP process. Export route-map
        // entries scale the per-prefix cost like import entries do.
        let export_scale = 1.0 + self.engine.export_policy().len() as f64;
        while room > 0 {
            let Some(update) = self.export_queue.pop_front() else {
                break;
            };
            let n = update.transaction_count() as u32;
            let cycles =
                self.costs.pkt_base + f64::from(n) * self.costs.export_per_prefix * export_scale;
            ctx.push(self.procs.bgp, Job::new(JOB_EXPORT, cycles).with_count(n));
            room -= 1;
        }
    }

    fn on_job_complete(&mut self, _pid: ProcessId, job: Job, ctx: &mut TickContext<'_>) {
        match job.kind {
            // The inbox entry may have been purged by a session-down
            // event while the parse was in flight; such a parse
            // completes into the catch-all below.
            JOB_PARSE if self.inbox.contains_key(&job.tag) => {
                let pending = self.classify(job.tag);
                self.pending.insert(job.tag, pending);
                self.advance(job.tag, JOB_PARSE, ctx);
            }
            JOB_POLICY | JOB_DECIDE | JOB_RIB | JOB_FEA | JOB_KFIB => {
                self.advance(job.tag, job.kind, ctx);
            }
            JOB_EXPORT => {
                self.exported_transactions += u64::from(job.count);
            }
            JOB_KFWD => {
                self.cross.on_forwarded(job.count);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpbench_simnet::{SimConfig, SimDuration, Simulator};
    use bgpbench_speaker::{workload, TableGenerator};
    use bgpbench_wire::Prefix;

    fn two_speakers() -> Vec<PeerInfo> {
        vec![
            PeerInfo::new(
                PeerId(1),
                Asn(65001),
                RouterId(0x0A00_0002),
                Ipv4Addr::new(10, 0, 0, 2),
            ),
            PeerInfo::new(
                PeerId(2),
                Asn(65002),
                RouterId(0x0A00_0003),
                Ipv4Addr::new(10, 0, 0, 3),
            ),
        ]
    }

    fn pentium3_sim() -> Simulator<XorpModel> {
        let spec = crate::pentium3();
        let config = SimConfig::new(vec![spec.core; spec.cores]);
        let tick = config.tick.as_secs_f64();
        let hz = spec.core.hz;
        Simulator::new(config, |builder| {
            let crate::PlatformKind::Xorp(costs) = spec.kind else {
                unreachable!()
            };
            XorpModel::new(costs, spec.cross, hz, tick, builder, &two_speakers())
        })
    }

    fn spec_for(asn: u16, pkt: usize, path_len: usize) -> workload::AnnounceSpec {
        workload::AnnounceSpec {
            speaker_asn: Asn(asn),
            path_len,
            next_hop: Ipv4Addr::new(10, 0, 0, if asn == 65001 { 2 } else { 3 }),
            prefixes_per_update: pkt,
            seed: 1,
        }
    }

    #[test]
    fn startup_announcements_populate_rib_and_fib() {
        let mut sim = pentium3_sim();
        let table = TableGenerator::new(1).generate(200);
        let updates = workload::announcements(&table, &spec_for(65001, 500, 3));
        sim.model_mut().load_script(0, SpeakerScript::new(updates));
        let outcome = sim.run(SimDuration::from_secs(60));
        assert!(outcome.went_idle());
        let model = sim.model();
        assert_eq!(model.transactions_done(), 200);
        assert_eq!(model.engine().loc_rib().len(), 200);
        assert_eq!(model.fib().len(), 200);
        assert!(model.is_quiescent());
    }

    #[test]
    fn interning_shares_attributes_across_a_simulated_run() {
        // Attribute interning is a host-side optimization: the model
        // charges cycles per RouteChange classification, which the
        // calibrated-band tests pin. This test pins the other side —
        // after a full simulated startup, every prefix of the single
        // large update shares one interned allocation.
        let mut sim = pentium3_sim();
        let table = TableGenerator::new(1).generate(200);
        let updates = workload::announcements(&table, &spec_for(65001, 500, 3));
        assert_eq!(updates.len(), 1);
        sim.model_mut().load_script(0, SpeakerScript::new(updates));
        let outcome = sim.run(SimDuration::from_secs(60));
        assert!(outcome.went_idle());
        let model = sim.model();
        assert_eq!(model.engine().loc_rib().len(), 200);
        assert_eq!(model.engine().attr_store_len(), 1);
        let rib = model.engine().adj_rib_in(PeerId(1)).unwrap();
        let a = rib.get(&table[0]).unwrap();
        let b = rib.get(&table[199]).unwrap();
        assert!(std::sync::Arc::ptr_eq(a, b));
    }

    #[test]
    fn throughput_matches_the_calibrated_scenario_2_rate() {
        // Scenario 2 on the Pentium III: large-packet start-up
        // announcements; the paper reports 312.5 transactions/s.
        let mut sim = pentium3_sim();
        let table = TableGenerator::new(1).generate(1000);
        let updates = workload::announcements(&table, &spec_for(65001, 500, 3));
        sim.model_mut().load_script(0, SpeakerScript::new(updates));
        let outcome = sim.run(SimDuration::from_secs(60));
        let tps = 1000.0 / outcome.elapsed.as_secs_f64();
        assert!(
            (250.0..380.0).contains(&tps),
            "scenario-2 rate {tps} outside the calibrated band"
        );
    }

    #[test]
    fn losing_announcements_do_not_touch_the_fib() {
        // Scenario 5/6 situation: speaker 2 re-announces with a longer
        // path; Loc-RIB best and FIB stay put.
        let mut sim = pentium3_sim();
        let table = TableGenerator::new(1).generate(100);
        sim.model_mut().load_script(
            0,
            SpeakerScript::new(workload::announcements(&table, &spec_for(65001, 500, 3))),
        );
        sim.run(SimDuration::from_secs(60));
        let fib_gen_before = sim.model().fib().generation();

        sim.model_mut().load_script(
            1,
            SpeakerScript::new(workload::announcements(&table, &spec_for(65002, 500, 6))),
        );
        sim.run(SimDuration::from_secs(60));
        let model = sim.model();
        assert_eq!(model.transactions_done(), 200);
        assert_eq!(
            model.fib().generation(),
            fib_gen_before,
            "FIB must not change"
        );
    }

    #[test]
    fn winning_announcements_rewrite_the_fib() {
        // Scenario 7/8 situation: speaker 2 announces a shorter path.
        let mut sim = pentium3_sim();
        let table = TableGenerator::new(1).generate(50);
        sim.model_mut().load_script(
            0,
            SpeakerScript::new(workload::announcements(&table, &spec_for(65001, 500, 4))),
        );
        sim.run(SimDuration::from_secs(60));
        sim.model_mut().load_script(
            1,
            SpeakerScript::new(workload::announcements(&table, &spec_for(65002, 500, 2))),
        );
        sim.run(SimDuration::from_secs(120));
        let model = sim.model();
        // Every prefix now forwards toward speaker 2.
        let hop = model
            .fib()
            .lookup(table[0].network())
            .expect("route installed");
        assert_eq!(hop.gateway(), Ipv4Addr::new(10, 0, 0, 3));
    }

    #[test]
    fn withdrawals_empty_the_tables() {
        let mut sim = pentium3_sim();
        let table = TableGenerator::new(1).generate(100);
        sim.model_mut().load_script(
            0,
            SpeakerScript::new(workload::announcements(&table, &spec_for(65001, 500, 3))),
        );
        sim.run(SimDuration::from_secs(60));
        sim.model_mut()
            .load_script(0, SpeakerScript::new(workload::withdrawals(&table, 500)));
        sim.run(SimDuration::from_secs(60));
        let model = sim.model();
        assert_eq!(model.transactions_done(), 200);
        assert!(model.engine().loc_rib().is_empty());
        assert!(model.fib().is_empty());
    }

    #[test]
    fn export_phase_advertises_the_table() {
        let mut sim = pentium3_sim();
        let table = TableGenerator::new(1).generate(300);
        sim.model_mut().load_script(
            0,
            SpeakerScript::new(workload::announcements(&table, &spec_for(65001, 500, 3))),
        );
        sim.run(SimDuration::from_secs(60));
        let queued = sim.model_mut().queue_export(1, 500);
        assert!(queued >= 1);
        sim.run(SimDuration::from_secs(60));
        assert_eq!(sim.model().exported_transactions(), 300);
    }

    #[test]
    fn cross_traffic_slows_bgp_processing() {
        let table = TableGenerator::new(1).generate(300);
        let elapsed = |mbps: f64| {
            let mut sim = pentium3_sim();
            sim.model_mut().set_cross_rate_mbps(mbps);
            sim.model_mut().load_script(
                0,
                SpeakerScript::new(workload::announcements(&table, &spec_for(65001, 500, 3))),
            );
            let done = |m: &XorpModel| m.transactions_done() >= 300;
            let outcome = sim.run_until(SimDuration::from_secs(120), done);
            outcome.elapsed.as_secs_f64()
        };
        let idle = elapsed(0.0);
        let loaded = elapsed(300.0);
        assert!(
            loaded > idle * 1.1,
            "cross traffic must slow BGP: idle {idle}s vs loaded {loaded}s"
        );
    }

    #[test]
    fn cross_traffic_is_forwarded_when_cpu_allows() {
        let mut sim = pentium3_sim();
        sim.model_mut().set_cross_rate_mbps(100.0);
        sim.run_until(SimDuration::from_secs(2), |_| false);
        let summary = sim.model().cross_summary();
        assert!(summary.offered_pkts > 10_000);
        assert!(summary.delivery_ratio() > 0.99, "{summary:?}");
    }

    #[test]
    fn small_packets_are_slower_than_large() {
        let table = TableGenerator::new(1).generate(200);
        let run = |pkt: usize| {
            let mut sim = pentium3_sim();
            sim.model_mut().load_script(
                0,
                SpeakerScript::new(workload::announcements(&table, &spec_for(65001, pkt, 3))),
            );
            sim.run(SimDuration::from_secs(120)).elapsed.as_secs_f64()
        };
        let small = run(1);
        let large = run(500);
        assert!(
            small > large * 1.3,
            "small packets must be slower: {small}s vs {large}s"
        );
    }

    #[test]
    fn loop_poisoned_routes_are_rejected_without_fib_activity() {
        let mut sim = pentium3_sim();
        let prefix: Prefix = "20.0.0.0/8".parse().unwrap();
        let update = UpdateMessage::builder()
            .attribute(bgpbench_wire::PathAttribute::Origin(
                bgpbench_wire::Origin::Igp,
            ))
            .attribute(bgpbench_wire::PathAttribute::AsPath(
                bgpbench_wire::AsPath::from_sequence([Asn(65001), XorpModel::LOCAL_ASN]),
            ))
            .attribute(bgpbench_wire::PathAttribute::NextHop(Ipv4Addr::new(
                10, 0, 0, 2,
            )))
            .announce(prefix)
            .build();
        sim.model_mut()
            .load_script(0, SpeakerScript::new(vec![update]));
        sim.run(SimDuration::from_secs(10));
        let model = sim.model();
        assert_eq!(model.transactions_done(), 1);
        assert!(model.fib().is_empty());
        assert_eq!(model.engine().stats().loop_rejected, 1);
    }
}
