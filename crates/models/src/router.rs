//! A uniform front over the two platform models.

use std::net::Ipv4Addr;

use bgpbench_rib::{PeerId, PeerInfo, RouteMap};
use bgpbench_simnet::{Recorder, RunOutcome, SimConfig, SimDuration, Simulator};
use bgpbench_speaker::SpeakerScript;
use bgpbench_wire::{Asn, RouterId};

use crate::ios::IosModel;
use crate::platform::{PlatformKind, PlatformSpec};
use crate::xorp::XorpModel;
use crate::CrossSummary;

/// Index of a speaker attached to a [`SimRouter`] (0 = Speaker 1,
/// 1 = Speaker 2, matching the paper's Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeakerHandle(pub usize);

/// Speaker 1 of the benchmark setup.
pub const SPEAKER_1: SpeakerHandle = SpeakerHandle(0);
/// Speaker 2 of the benchmark setup.
pub const SPEAKER_2: SpeakerHandle = SpeakerHandle(1);

#[derive(Debug)]
enum Inner {
    Xorp(Simulator<XorpModel>),
    Ios(Simulator<IosModel>),
}

/// A simulated router under test: one of the four platforms wired to
/// the benchmark's two speakers.
///
/// ```
/// use bgpbench_models::{pentium3, SimRouter, SPEAKER_1};
/// use bgpbench_speaker::{workload, SpeakerScript, TableGenerator};
/// use bgpbench_wire::Asn;
/// use std::net::Ipv4Addr;
///
/// let mut router = SimRouter::new(&pentium3());
/// let table = TableGenerator::new(1).generate(100);
/// let updates = workload::announcements(&table, &workload::AnnounceSpec {
///     speaker_asn: Asn(65001),
///     path_len: 3,
///     next_hop: Ipv4Addr::new(10, 0, 0, 2),
///     prefixes_per_update: 500,
///     seed: 1,
/// });
/// router.load_script(SPEAKER_1, SpeakerScript::new(updates));
/// let elapsed = router.run_until_transactions(100, 60.0);
/// assert!(elapsed.is_some());
/// assert_eq!(router.fib_len(), 100);
/// ```
#[derive(Debug)]
pub struct SimRouter {
    spec: PlatformSpec,
    inner: Inner,
}

impl SimRouter {
    /// Builds a router of the given platform with the benchmark's two
    /// speakers attached (AS 65001 at 10.0.0.2 and AS 65002 at
    /// 10.0.0.3).
    pub fn new(spec: &PlatformSpec) -> Self {
        Self::with_local_asn(spec, Asn(65000))
    }

    /// [`SimRouter::new`] with an explicit local AS — needed when
    /// chaining several simulated routers (each must have a distinct
    /// AS, or loop prevention rejects re-exported routes).
    pub fn with_local_asn(spec: &PlatformSpec, local_asn: Asn) -> Self {
        let speakers = [
            PeerInfo::new(
                PeerId(1),
                Asn(65001),
                RouterId(0x0A00_0002),
                Ipv4Addr::new(10, 0, 0, 2),
            ),
            PeerInfo::new(
                PeerId(2),
                Asn(65002),
                RouterId(0x0A00_0003),
                Ipv4Addr::new(10, 0, 0, 3),
            ),
        ];
        Self::with_peers(spec, &speakers, local_asn)
    }

    /// Builds a router with an arbitrary set of attached speakers —
    /// the constructor behind multi-peer topologies. Speaker index `i`
    /// (as a [`SpeakerHandle`]) maps to `peers[i]`; peer IDs should be
    /// `PeerId(i + 1)` for [`SimRouter::export_messages`] to resolve
    /// handles.
    pub fn with_peers(spec: &PlatformSpec, peers: &[PeerInfo], local_asn: Asn) -> Self {
        let config = SimConfig::new(vec![spec.core; spec.cores]);
        let tick_secs = config.tick.as_secs_f64();
        let inner = match spec.kind {
            PlatformKind::Xorp(costs) => {
                let cross = spec.cross;
                let hz = spec.core.hz;
                Inner::Xorp(Simulator::new(config, |builder| {
                    XorpModel::with_local_asn(
                        costs, cross, hz, tick_secs, builder, peers, local_asn,
                    )
                }))
            }
            PlatformKind::Ios(costs) => {
                let cross = spec.cross;
                Inner::Ios(Simulator::new(config, |builder| {
                    IosModel::with_local_asn(costs, cross, tick_secs, builder, peers, local_asn)
                }))
            }
        };
        SimRouter {
            spec: spec.clone(),
            inner,
        }
    }

    /// Computes the UPDATE messages a Phase-2 export toward `speaker`
    /// would carry, without queueing any simulated work — the handoff
    /// point for chaining routers (hop k's exports become hop k+1's
    /// input script).
    pub fn export_messages(
        &self,
        speaker: SpeakerHandle,
        prefixes_per_update: usize,
    ) -> Vec<bgpbench_wire::UpdateMessage> {
        use bgpbench_rib::AdjRibOut;
        let local_address = Ipv4Addr::new(10, 0, 0, 1);
        let engine = match &self.inner {
            Inner::Xorp(sim) => sim.model().engine(),
            Inner::Ios(sim) => sim.model().engine(),
        };
        let peer = PeerId(speaker.0 as u32 + 1);
        let routes = engine.export_routes(peer, local_address);
        let mut adj_out = AdjRibOut::new();
        let actions = adj_out.sync(routes);
        AdjRibOut::to_updates(&actions, prefixes_per_update)
    }

    /// The platform this router models.
    pub fn spec(&self) -> &PlatformSpec {
        &self.spec
    }

    /// Assigns the stream a speaker sends next.
    pub fn load_script(&mut self, speaker: SpeakerHandle, script: SpeakerScript) {
        match &mut self.inner {
            Inner::Xorp(sim) => sim.model_mut().load_script(speaker.0, script),
            Inner::Ios(sim) => sim.model_mut().load_script(speaker.0, script),
        }
    }

    /// Assigns a stream the speaker paces to `msgs_per_sec` instead of
    /// flooding — for steady-state experiments at the paper's "order
    /// of 100 BGP messages per second" operating point.
    ///
    /// # Panics
    ///
    /// Panics if `msgs_per_sec` is not strictly positive.
    pub fn load_script_rated(
        &mut self,
        speaker: SpeakerHandle,
        script: SpeakerScript,
        msgs_per_sec: f64,
    ) {
        match &mut self.inner {
            Inner::Xorp(sim) => sim
                .model_mut()
                .load_script_rated(speaker.0, script, msgs_per_sec),
            Inner::Ios(sim) => sim
                .model_mut()
                .load_script_rated(speaker.0, script, msgs_per_sec),
        }
    }

    /// Mean CPU load (percent of one core) of a recorded process
    /// channel over `[from, to)` seconds — steady-state utilization
    /// readout.
    pub fn mean_cpu_pct(&self, process: &str, from: f64, to: f64) -> f64 {
        self.recorder()
            .series(&format!("cpu:{process}"))
            .map(|series| series.mean_between(from, to))
            .unwrap_or(0.0)
    }

    /// Queues a Phase-2 full-table export toward a speaker; returns
    /// the number of UPDATE messages queued.
    pub fn queue_export(&mut self, speaker: SpeakerHandle, prefixes_per_update: usize) -> usize {
        match &mut self.inner {
            Inner::Xorp(sim) => sim.model_mut().queue_export(speaker.0, prefixes_per_update),
            Inner::Ios(sim) => sim.model_mut().queue_export(speaker.0, prefixes_per_update),
        }
    }

    /// Sets the cross-traffic offered load in Mbps (clamped to the
    /// platform's forwarding limit).
    pub fn set_cross_traffic_mbps(&mut self, mbps: f64) {
        match &mut self.inner {
            Inner::Xorp(sim) => sim.model_mut().set_cross_rate_mbps(mbps),
            Inner::Ios(sim) => sim.model_mut().set_cross_rate_mbps(mbps),
        }
    }

    /// Prefix-level transactions fully processed so far.
    pub fn transactions_done(&self) -> u64 {
        match &self.inner {
            Inner::Xorp(sim) => sim.model().transactions_done(),
            Inner::Ios(sim) => sim.model().transactions_done(),
        }
    }

    /// Phase-2 transactions advertised so far.
    pub fn exported_transactions(&self) -> u64 {
        match &self.inner {
            Inner::Xorp(sim) => sim.model().exported_transactions(),
            Inner::Ios(sim) => sim.model().exported_transactions(),
        }
    }

    /// Runs until `target` total transactions have been processed.
    /// Returns the simulated seconds this call took, or `None` if
    /// `limit_secs` elapsed first.
    pub fn run_until_transactions(&mut self, target: u64, limit_secs: f64) -> Option<f64> {
        let limit = SimDuration::from_secs_f64(limit_secs);
        let outcome = match &mut self.inner {
            Inner::Xorp(sim) => sim.run_until(limit, |m| m.transactions_done() >= target),
            Inner::Ios(sim) => sim.run_until(limit, |m| m.transactions_done() >= target),
        };
        finished(outcome, target, self.transactions_done())
    }

    /// Runs until `target` total exported transactions have been sent.
    pub fn run_until_exports(&mut self, target: u64, limit_secs: f64) -> Option<f64> {
        let limit = SimDuration::from_secs_f64(limit_secs);
        let outcome = match &mut self.inner {
            Inner::Xorp(sim) => sim.run_until(limit, |m| m.exported_transactions() >= target),
            Inner::Ios(sim) => sim.run_until(limit, |m| m.exported_transactions() >= target),
        };
        finished(outcome, target, self.exported_transactions())
    }

    /// Runs for a fixed simulated duration regardless of progress.
    pub fn run_for(&mut self, secs: f64) {
        let limit = SimDuration::from_secs_f64(secs);
        match &mut self.inner {
            Inner::Xorp(sim) => sim.run_for(limit),
            Inner::Ios(sim) => sim.run_for(limit),
        }
    }

    /// Advances the simulation by exactly one tick — the granularity
    /// at which the topology engine interleaves FSM timers and fault
    /// injection with router work.
    pub fn step(&mut self) {
        match &mut self.inner {
            Inner::Xorp(sim) => sim.step(),
            Inner::Ios(sim) => sim.step(),
        }
    }

    /// Whether all loaded work (scripts, pipeline, exports) has
    /// drained.
    pub fn is_quiescent(&self) -> bool {
        match &self.inner {
            Inner::Xorp(sim) => sim.model().is_quiescent(),
            Inner::Ios(sim) => sim.model().is_quiescent(),
        }
    }

    /// Gates a speaker's input on session state: while `false` the
    /// link is down and the script is untouched.
    pub fn set_speaker_enabled(&mut self, speaker: SpeakerHandle, enabled: bool) {
        match &mut self.inner {
            Inner::Xorp(sim) => sim.model_mut().set_speaker_enabled(speaker.0, enabled),
            Inner::Ios(sim) => sim.model_mut().set_speaker_enabled(speaker.0, enabled),
        }
    }

    /// Arms the speaker's link to drop its next `n` messages.
    pub fn drop_next(&mut self, speaker: SpeakerHandle, n: u32) {
        match &mut self.inner {
            Inner::Xorp(sim) => sim.model_mut().drop_next(speaker.0, n),
            Inner::Ios(sim) => sim.model_mut().drop_next(speaker.0, n),
        }
    }

    /// Holds the speaker's input back until simulated time `until_s`.
    pub fn delay_input_until(&mut self, speaker: SpeakerHandle, until_s: f64) {
        match &mut self.inner {
            Inner::Xorp(sim) => sim.model_mut().delay_input_until(speaker.0, until_s),
            Inner::Ios(sim) => sim.model_mut().delay_input_until(speaker.0, until_s),
        }
    }

    /// Arms the speaker's link to swap its next `n` message pairs.
    pub fn reorder_next(&mut self, speaker: SpeakerHandle, n: u32) {
        match &mut self.inner {
            Inner::Xorp(sim) => sim.model_mut().reorder_next(speaker.0, n),
            Inner::Ios(sim) => sim.model_mut().reorder_next(speaker.0, n),
        }
    }

    /// Rewinds the speaker's script for a full re-advertisement (peer
    /// restart semantics).
    pub fn reset_script(&mut self, speaker: SpeakerHandle) {
        match &mut self.inner {
            Inner::Xorp(sim) => sim.model_mut().reset_script(speaker.0),
            Inner::Ios(sim) => sim.model_mut().reset_script(speaker.0),
        }
    }

    /// Prefix-level transactions the speaker's script has handed out
    /// since its last load or [`SimRouter::reset_script`].
    pub fn speaker_transactions_taken(&self, speaker: SpeakerHandle) -> u64 {
        match &self.inner {
            Inner::Xorp(sim) => sim.model().speaker_transactions_taken(speaker.0),
            Inner::Ios(sim) => sim.model().speaker_transactions_taken(speaker.0),
        }
    }

    /// Session-down purge of everything learned from the speaker's
    /// peer; returns the number of affected prefixes.
    pub fn purge_speaker(&mut self, speaker: SpeakerHandle) -> usize {
        match &mut self.inner {
            Inner::Xorp(sim) => sim.model_mut().purge_speaker(speaker.0),
            Inner::Ios(sim) => sim.model_mut().purge_speaker(speaker.0),
        }
    }

    /// Full simulator ticks elapsed so far — the virtual-time cost of
    /// the run, comparable across serial and parallel grid executions.
    pub fn ticks_elapsed(&self) -> u64 {
        match &self.inner {
            Inner::Xorp(sim) => sim.ticks_elapsed(),
            Inner::Ios(sim) => sim.ticks_elapsed(),
        }
    }

    /// Current simulated time in seconds.
    pub fn now_secs(&self) -> f64 {
        match &self.inner {
            Inner::Xorp(sim) => sim.now().as_secs_f64(),
            Inner::Ios(sim) => sim.now().as_secs_f64(),
        }
    }

    /// Number of routes selected into the Loc-RIB.
    pub fn loc_rib_len(&self) -> usize {
        match &self.inner {
            Inner::Xorp(sim) => sim.model().engine().loc_rib().len(),
            Inner::Ios(sim) => sim.model().engine().loc_rib().len(),
        }
    }

    /// Number of routes installed in the forwarding table.
    pub fn fib_len(&self) -> usize {
        match &self.inner {
            Inner::Xorp(sim) => sim.model().fib().len(),
            Inner::Ios(sim) => sim.model().fib().len(),
        }
    }

    /// The gateway currently installed for `prefix`, if any — lets the
    /// harness assert which speaker won the decision process.
    pub fn fib_gateway(&self, prefix: &bgpbench_wire::Prefix) -> Option<Ipv4Addr> {
        let hop = match &self.inner {
            Inner::Xorp(sim) => sim.model().fib().get(prefix),
            Inner::Ios(sim) => sim.model().fib().get(prefix),
        };
        hop.map(|hop| hop.gateway())
    }

    /// Repartitions the platform's (still-empty) RIB into `shards`
    /// shards. A configuration-time knob: call before any script runs.
    /// Results are bit-identical across shard counts; only host-side
    /// throughput changes.
    pub fn set_rib_shards(&mut self, shards: usize) {
        match &mut self.inner {
            Inner::Xorp(sim) => sim.model_mut().set_rib_shards(shards),
            Inner::Ios(sim) => sim.model_mut().set_rib_shards(shards),
        }
    }

    /// Installs the import route-map (Adj-RIB-In → Loc-RIB) on the
    /// platform's routing engine.
    pub fn set_import_policy(&mut self, policy: RouteMap) {
        match &mut self.inner {
            Inner::Xorp(sim) => sim.model_mut().set_import_policy(policy),
            Inner::Ios(sim) => sim.model_mut().set_import_policy(policy),
        }
    }

    /// Installs the export route-map (Loc-RIB → Adj-RIB-Out) on the
    /// platform's routing engine.
    pub fn set_export_policy(&mut self, policy: RouteMap) {
        match &mut self.inner {
            Inner::Xorp(sim) => sim.model_mut().set_export_policy(policy),
            Inner::Ios(sim) => sim.model_mut().set_export_policy(policy),
        }
    }

    /// Cross-traffic accounting.
    pub fn cross_summary(&self) -> CrossSummary {
        match &self.inner {
            Inner::Xorp(sim) => sim.model().cross_summary(),
            Inner::Ios(sim) => sim.model().cross_summary(),
        }
    }

    /// The recorder with CPU-load and forwarding-rate series.
    pub fn recorder(&self) -> &Recorder {
        match &self.inner {
            Inner::Xorp(sim) => sim.recorder(),
            Inner::Ios(sim) => sim.recorder(),
        }
    }

    /// Places a phase mark at the current simulated time.
    pub fn mark(&mut self, label: &str) {
        let now = self.now_secs();
        match &mut self.inner {
            Inner::Xorp(sim) => sim.recorder_mut().mark(label, now),
            Inner::Ios(sim) => sim.recorder_mut().mark(label, now),
        }
    }
}

fn finished(outcome: RunOutcome, target: u64, achieved: u64) -> Option<f64> {
    if achieved >= target {
        Some(outcome.elapsed.as_secs_f64())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{all_platforms, cisco3620, pentium3};
    use bgpbench_speaker::{workload, TableGenerator};

    fn announce_spec(pkt: usize, path_len: usize, asn: u16) -> workload::AnnounceSpec {
        workload::AnnounceSpec {
            speaker_asn: Asn(asn),
            path_len,
            next_hop: Ipv4Addr::new(10, 0, 0, if asn == 65001 { 2 } else { 3 }),
            prefixes_per_update: pkt,
            seed: 1,
        }
    }

    #[test]
    fn all_platforms_construct_and_process() {
        let table = TableGenerator::new(1).generate(20);
        for spec in all_platforms() {
            let mut router = SimRouter::new(&spec);
            router.load_script(
                SPEAKER_1,
                SpeakerScript::new(workload::announcements(
                    &table,
                    &announce_spec(500, 3, 65001),
                )),
            );
            let elapsed = router.run_until_transactions(20, 120.0);
            assert!(elapsed.is_some(), "{} timed out", spec.name);
            assert_eq!(router.fib_len(), 20, "{}", spec.name);
            assert_eq!(router.loc_rib_len(), 20, "{}", spec.name);
        }
    }

    #[test]
    fn phase_marks_are_recorded() {
        let mut router = SimRouter::new(&pentium3());
        router.mark("phase 1");
        router.run_for(0.5);
        router.mark("phase 2");
        assert_eq!(router.recorder().mark_time("phase 1"), Some(0.0));
        assert_eq!(router.recorder().mark_time("phase 2"), Some(0.5));
    }

    #[test]
    fn run_until_transactions_times_out_gracefully() {
        let mut router = SimRouter::new(&cisco3620());
        let table = TableGenerator::new(1).generate(100);
        router.load_script(
            SPEAKER_1,
            SpeakerScript::new(workload::announcements(&table, &announce_spec(1, 3, 65001))),
        );
        // 100 small packets on the Cisco take ~9 s; 1 s must time out.
        assert_eq!(router.run_until_transactions(100, 1.0), None);
        // But progress was made and can be completed afterwards.
        assert!(router.transactions_done() > 0);
        assert!(router.run_until_transactions(100, 60.0).is_some());
    }

    #[test]
    fn export_roundtrip_via_wrapper() {
        let mut router = SimRouter::new(&pentium3());
        let table = TableGenerator::new(1).generate(150);
        router.load_script(
            SPEAKER_1,
            SpeakerScript::new(workload::announcements(
                &table,
                &announce_spec(500, 3, 65001),
            )),
        );
        router.run_until_transactions(150, 60.0).unwrap();
        let queued = router.queue_export(SPEAKER_2, 500);
        assert!(queued >= 1);
        assert!(router.run_until_exports(150, 60.0).is_some());
    }
}
