//! Per-link fault state shared by the platform models.
//!
//! The topology engine injects faults *at the simnet layer*: each
//! simulated speaker link carries a [`LinkFaults`] record the model's
//! input loop consults before taking messages off the speaker script.
//! Faults are set by the engine between ticks, so the same seeded
//! fault plan produces the same message interleaving on every run.

/// Fault controls for one speaker link.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LinkFaults {
    /// Whether the session accepts input at all. A down session (flap,
    /// hold expiry, restart) blocks the speaker without consuming its
    /// script.
    pub enabled: bool,
    /// Messages to silently drop on arrival (consumed off the script,
    /// never parsed) — a lossy link.
    pub drop_next: u32,
    /// No input before this simulated time (seconds) — link delay.
    pub delay_until_s: f64,
    /// Message pairs to swap on arrival — link reordering.
    pub reorder_next: u32,
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults {
            enabled: true,
            drop_next: 0,
            delay_until_s: 0.0,
            reorder_next: 0,
        }
    }
}
