//! UPDATE-stream construction: packetization and AS-path shaping.
//!
//! The benchmark distinguishes *small packets* (one prefix per UPDATE)
//! from *large packets* (500 prefixes per UPDATE, Table I), and
//! Scenarios 5–8 hinge on Speaker 2 announcing the same prefixes with a
//! *longer* (losing) or *shorter* (winning) AS path than Speaker 1.
//! The functions here build exactly those streams.

use std::net::Ipv4Addr;

use bgpbench_telemetry::{self as telemetry, MetricId, SpanId};
use bgpbench_wire::{AsPath, Asn, Origin, PathAttribute, Prefix, UpdateMessage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's large-packet size: 500 prefixes per UPDATE.
pub const LARGE_PACKET_PREFIXES: usize = 500;

/// The paper's small-packet size: one prefix per UPDATE.
pub const SMALL_PACKET_PREFIXES: usize = 1;

/// Parameters for an announcement stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnounceSpec {
    /// The sending speaker's AS (first AS of every path).
    pub speaker_asn: Asn,
    /// Total AS-path length of every announced route.
    pub path_len: usize,
    /// NEXT_HOP carried in every announcement.
    pub next_hop: Ipv4Addr,
    /// Packetization: prefixes per UPDATE message.
    pub prefixes_per_update: usize,
    /// Seed for the filler ASes in generated paths.
    pub seed: u64,
}

/// Builds an announcement stream: `prefixes` chunked into UPDATEs of
/// `spec.prefixes_per_update`, each UPDATE carrying ORIGIN/AS_PATH/
/// NEXT_HOP attributes with an AS path of exactly `spec.path_len` ASes
/// beginning with the speaker's own AS.
///
/// # Panics
///
/// Panics if `spec.path_len` is zero or `spec.prefixes_per_update` is
/// zero.
pub fn announcements(prefixes: &[Prefix], spec: &AnnounceSpec) -> Vec<UpdateMessage> {
    assert!(spec.path_len >= 1, "AS path must contain the speaker's AS");
    assert!(
        spec.prefixes_per_update >= 1,
        "packet size must be positive"
    );
    let _span = telemetry::span(SpanId::WorkloadGen);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let updates: Vec<UpdateMessage> = prefixes
        .chunks(spec.prefixes_per_update)
        .map(|chunk| {
            let path = generate_path(&mut rng, spec.speaker_asn, spec.path_len);
            let mut builder = UpdateMessage::builder()
                .attribute(PathAttribute::Origin(Origin::Igp))
                .attribute(PathAttribute::AsPath(path))
                .attribute(PathAttribute::NextHop(spec.next_hop));
            for prefix in chunk {
                builder = builder.announce(*prefix);
            }
            builder.build()
        })
        .collect();
    telemetry::add(MetricId::SpeakerUpdatesGenerated, updates.len() as u64);
    updates
}

/// Builds a withdrawal stream for `prefixes`, chunked into UPDATEs of
/// `prefixes_per_update` (Scenarios 3/4).
///
/// # Panics
///
/// Panics if `prefixes_per_update` is zero.
pub fn withdrawals(prefixes: &[Prefix], prefixes_per_update: usize) -> Vec<UpdateMessage> {
    assert!(prefixes_per_update >= 1, "packet size must be positive");
    let _span = telemetry::span(SpanId::WorkloadGen);
    let updates: Vec<UpdateMessage> = prefixes
        .chunks(prefixes_per_update)
        .map(|chunk| {
            UpdateMessage::builder()
                .withdraw_all(chunk.iter().copied())
                .build()
        })
        .collect();
    telemetry::add(MetricId::SpeakerUpdatesGenerated, updates.len() as u64);
    updates
}

/// Builds a route-flap stream: alternating announce/withdraw rounds for
/// the same prefixes, the traffic pattern of the "network-wide events
/// (e.g., worm attacks)" the paper's introduction cites as the peak
/// load a router must survive.
pub fn flap_storm(prefixes: &[Prefix], spec: &AnnounceSpec, rounds: usize) -> Vec<UpdateMessage> {
    let mut updates = Vec::new();
    for round in 0..rounds {
        let round_spec = AnnounceSpec {
            seed: spec.seed.wrapping_add(round as u64),
            ..*spec
        };
        updates.extend(announcements(prefixes, &round_spec));
        updates.extend(withdrawals(prefixes, spec.prefixes_per_update));
    }
    updates
}

/// Builds a churn stream of *mixed* UPDATEs: each message withdraws
/// one batch of prefixes and announces the next (RFC 4271 §4.3 allows
/// both in one message). This is the steady-state shape of real BGP
/// feeds, where most messages carry both reachability changes.
///
/// The prefixes are consumed as a sliding window: message k withdraws
/// window k−1 and announces window k, so every prefix is announced
/// once and all but the final window withdrawn once.
///
/// # Panics
///
/// Panics if `window` is zero or `spec.path_len` is zero.
pub fn mixed_churn(prefixes: &[Prefix], spec: &AnnounceSpec, window: usize) -> Vec<UpdateMessage> {
    assert!(window >= 1, "window must be positive");
    assert!(spec.path_len >= 1, "AS path must contain the speaker's AS");
    let _span = telemetry::span(SpanId::WorkloadGen);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let windows: Vec<&[Prefix]> = prefixes.chunks(window).collect();
    let updates: Vec<UpdateMessage> = windows
        .iter()
        .enumerate()
        .map(|(k, announce)| {
            let path = generate_path(&mut rng, spec.speaker_asn, spec.path_len);
            let mut builder = UpdateMessage::builder()
                .attribute(PathAttribute::Origin(Origin::Igp))
                .attribute(PathAttribute::AsPath(path))
                .attribute(PathAttribute::NextHop(spec.next_hop));
            if k > 0 {
                builder = builder.withdraw_all(windows[k - 1].iter().copied());
            }
            builder.announce_all(announce.iter().copied()).build()
        })
        .collect();
    telemetry::add(MetricId::SpeakerUpdatesGenerated, updates.len() as u64);
    updates
}

/// Builds a MED-oscillation stream (Scenario 15): `rounds` full
/// re-announcements of the same prefixes with the *same* AS-path
/// length, alternating MULTI_EXIT_DISC between `high_med` (even
/// rounds) and 0 (odd rounds). Under a MED-sensitive import policy the
/// best path flips on every round, so each re-announcement is a
/// decision-process rerun plus a forwarding-table rewrite.
///
/// # Panics
///
/// Panics if `spec.path_len` or `spec.prefixes_per_update` is zero.
pub fn med_oscillation(
    prefixes: &[Prefix],
    spec: &AnnounceSpec,
    rounds: usize,
    high_med: u32,
) -> Vec<UpdateMessage> {
    assert!(spec.path_len >= 1, "AS path must contain the speaker's AS");
    assert!(
        spec.prefixes_per_update >= 1,
        "packet size must be positive"
    );
    let _span = telemetry::span(SpanId::WorkloadGen);
    let mut updates = Vec::new();
    for round in 0..rounds {
        let med = if round % 2 == 0 { high_med } else { 0 };
        // Same seed every round: the AS paths are identical, so only
        // the MED distinguishes one round's routes from the next.
        let mut rng = StdRng::seed_from_u64(spec.seed);
        updates.extend(prefixes.chunks(spec.prefixes_per_update).map(|chunk| {
            let path = generate_path(&mut rng, spec.speaker_asn, spec.path_len);
            let mut builder = UpdateMessage::builder()
                .attribute(PathAttribute::Origin(Origin::Igp))
                .attribute(PathAttribute::AsPath(path))
                .attribute(PathAttribute::NextHop(spec.next_hop))
                .attribute(PathAttribute::Med(med));
            for prefix in chunk {
                builder = builder.announce(*prefix);
            }
            builder.build()
        }));
    }
    telemetry::add(MetricId::SpeakerUpdatesGenerated, updates.len() as u64);
    updates
}

fn generate_path(rng: &mut StdRng, first: Asn, len: usize) -> AsPath {
    let mut asns = Vec::with_capacity(len);
    asns.push(first);
    for _ in 1..len {
        asns.push(Asn(rng.gen_range(1000..60_000)));
    }
    AsPath::from_sequence(asns)
}

/// Total prefix-level transactions in a stream (the denominator the
/// benchmark divides by elapsed time).
pub fn transaction_count(updates: &[UpdateMessage]) -> usize {
    updates.iter().map(UpdateMessage::transaction_count).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TableGenerator;

    fn spec(pkt: usize, path_len: usize) -> AnnounceSpec {
        AnnounceSpec {
            speaker_asn: Asn(65001),
            path_len,
            next_hop: Ipv4Addr::new(10, 0, 0, 2),
            prefixes_per_update: pkt,
            seed: 5,
        }
    }

    #[test]
    fn small_packets_carry_one_prefix_each() {
        let table = TableGenerator::new(1).generate(50);
        let updates = announcements(&table, &spec(SMALL_PACKET_PREFIXES, 3));
        assert_eq!(updates.len(), 50);
        assert!(updates.iter().all(|u| u.nlri().len() == 1));
        assert_eq!(transaction_count(&updates), 50);
    }

    #[test]
    fn large_packets_carry_up_to_500() {
        let table = TableGenerator::new(1).generate(1234);
        let updates = announcements(&table, &spec(LARGE_PACKET_PREFIXES, 3));
        assert_eq!(updates.len(), 3);
        assert_eq!(updates[0].nlri().len(), 500);
        assert_eq!(updates[2].nlri().len(), 234);
        assert_eq!(transaction_count(&updates), 1234);
    }

    #[test]
    fn paths_have_exact_length_and_start_with_speaker() {
        let table = TableGenerator::new(1).generate(20);
        for path_len in [1usize, 2, 3, 6] {
            let updates = announcements(&table, &spec(5, path_len));
            for update in &updates {
                let Some(PathAttribute::AsPath(path)) =
                    update.find_attribute(|a| matches!(a, PathAttribute::AsPath(_)))
                else {
                    panic!("missing AS path");
                };
                assert_eq!(path.length(), path_len);
                assert_eq!(path.first_as(), Some(Asn(65001)));
            }
        }
    }

    #[test]
    fn all_messages_fit_the_wire_limit() {
        use bgpbench_wire::Message;
        let table = TableGenerator::new(1).generate(2000);
        let updates = announcements(&table, &spec(LARGE_PACKET_PREFIXES, 6));
        for update in updates {
            let bytes = Message::Update(update).encode().expect("must fit 4096");
            assert!(bytes.len() <= 4096);
        }
    }

    #[test]
    fn withdrawals_cover_all_prefixes() {
        let table = TableGenerator::new(1).generate(777);
        let updates = withdrawals(&table, 500);
        assert_eq!(updates.len(), 2);
        assert_eq!(transaction_count(&updates), 777);
        assert!(updates.iter().all(|u| u.nlri().is_empty()));
    }

    #[test]
    fn flap_storm_alternates_rounds() {
        let table = TableGenerator::new(1).generate(10);
        let updates = flap_storm(&table, &spec(10, 3), 3);
        // Per round: 1 announce update + 1 withdraw update.
        assert_eq!(updates.len(), 6);
        assert_eq!(transaction_count(&updates), 60);
        assert!(!updates[0].nlri().is_empty());
        assert!(!updates[1].withdrawn().is_empty());
    }

    #[test]
    fn mixed_churn_slides_a_window() {
        let table = TableGenerator::new(1).generate(100);
        let updates = mixed_churn(&table, &spec(0, 3), 25);
        assert_eq!(updates.len(), 4);
        // First message announces only; later ones withdraw the
        // previous window and announce the next.
        assert!(updates[0].withdrawn().is_empty());
        assert_eq!(updates[0].nlri().len(), 25);
        for k in 1..4 {
            assert_eq!(updates[k].withdrawn(), &table[(k - 1) * 25..k * 25]);
            assert_eq!(updates[k].nlri(), &table[k * 25..(k + 1) * 25]);
        }
        // Transactions: 100 announcements + 75 withdrawals.
        assert_eq!(transaction_count(&updates), 175);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn mixed_churn_rejects_zero_window() {
        let _ = mixed_churn(&[], &spec(1, 3), 0);
    }

    #[test]
    fn med_oscillation_alternates_med_and_keeps_paths_fixed() {
        let table = TableGenerator::new(1).generate(40);
        let updates = med_oscillation(&table, &spec(20, 3), 2, 50);
        // Two rounds of two updates each.
        assert_eq!(updates.len(), 4);
        assert_eq!(transaction_count(&updates), 80);
        let med_of =
            |u: &UpdateMessage| match u.find_attribute(|a| matches!(a, PathAttribute::Med(_))) {
                Some(PathAttribute::Med(med)) => *med,
                _ => panic!("missing MED"),
            };
        assert_eq!(med_of(&updates[0]), 50);
        assert_eq!(med_of(&updates[1]), 50);
        assert_eq!(med_of(&updates[2]), 0);
        assert_eq!(med_of(&updates[3]), 0);
        // Rounds reuse the same seed, so paths match message-for-message.
        let path_of = |u: &UpdateMessage| {
            u.find_attribute(|a| matches!(a, PathAttribute::AsPath(_)))
                .cloned()
        };
        assert_eq!(path_of(&updates[0]), path_of(&updates[2]));
        assert_eq!(path_of(&updates[1]), path_of(&updates[3]));
    }

    #[test]
    fn streams_are_deterministic() {
        let table = TableGenerator::new(1).generate(100);
        let a = announcements(&table, &spec(10, 4));
        let b = announcements(&table, &spec(10, 4));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "packet size must be positive")]
    fn zero_packet_size_panics() {
        let _ = announcements(&[], &spec(0, 3));
    }

    #[test]
    #[should_panic(expected = "AS path must contain")]
    fn zero_path_len_panics() {
        let _ = announcements(&[], &spec(1, 0));
    }
}
