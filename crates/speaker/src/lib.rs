//! BGP benchmark load generation.
//!
//! The paper's methodology (§III.B) drives the router under test with
//! two BGP speakers. This crate provides everything those speakers
//! need:
//!
//! * [`TableGenerator`] — deterministic synthetic routing tables with a
//!   2007-era prefix-length mix (substitute for the real peering tables
//!   the authors injected);
//! * [`workload`] — packetization of announcements/withdrawals into
//!   UPDATE messages at the benchmark's two packet sizes (1 prefix per
//!   message for *small*, 500 for *large*) and the AS-path length
//!   manipulations Scenarios 5–8 rely on;
//! * [`SpeakerScript`] — a scripted message source with a cursor, the
//!   form the simulated harness consumes with flow control;
//! * [`LiveSpeaker`] — a real speaker over TCP for benchmarking an
//!   actual BGP daemon.
//!
//! # Examples
//!
//! ```
//! use bgpbench_speaker::{workload, TableGenerator};
//! use bgpbench_wire::Asn;
//! use std::net::Ipv4Addr;
//!
//! let table = TableGenerator::new(42).generate(1000);
//! assert_eq!(table.len(), 1000);
//! let updates = workload::announcements(
//!     &table,
//!     &workload::AnnounceSpec {
//!         speaker_asn: Asn(65001),
//!         path_len: 3,
//!         next_hop: Ipv4Addr::new(10, 0, 0, 2),
//!         prefixes_per_update: 500,
//!         seed: 7,
//!     },
//! );
//! assert_eq!(updates.len(), 2); // 1000 prefixes / 500 per update
//! ```

#![forbid(unsafe_code)]

mod generator;
mod live;
pub mod modern;
mod script;
mod source;
pub mod workload;

pub use generator::TableGenerator;
pub use live::{LiveSpeaker, LiveSpeakerConfig, SessionSummary};
pub use modern::{BurstSpec, ModernTableGenerator};
pub use script::SpeakerScript;
pub use source::{
    ModernInternetSource, MrtReplaySource, SyntheticSource, WorkloadError, WorkloadSource,
    WorkloadSpec,
};
