//! A real BGP speaker over TCP, for benchmarking live daemons.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use bgpbench_wire::{Asn, Message, OpenMessage, RouterId, StreamDecoder, UpdateMessage, WireError};

/// Session parameters for a [`LiveSpeaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveSpeakerConfig {
    /// Our AS number.
    pub local_asn: Asn,
    /// Our BGP identifier.
    pub router_id: RouterId,
    /// Hold time to propose (zero disables keepalives).
    pub hold_time_secs: u16,
}

impl Default for LiveSpeakerConfig {
    fn default() -> Self {
        LiveSpeakerConfig {
            local_asn: Asn(65001),
            router_id: RouterId(0x0A00_0001),
            hold_time_secs: 90,
        }
    }
}

/// What a listening speaker observed during a collection window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionSummary {
    /// UPDATE messages received.
    pub updates: usize,
    /// Prefixes announced across those updates.
    pub announced: usize,
    /// Prefixes withdrawn across those updates.
    pub withdrawn: usize,
}

/// A live BGP speaker: connects over TCP, completes the OPEN handshake,
/// and then floods or collects UPDATE messages.
///
/// This is the benchmark's Speaker 1 / Speaker 2 when the router under
/// test is a real daemon rather than a simulated platform. Message
/// framing and encoding go through [`bgpbench_wire`], so the same bytes
/// a hardware router would see cross the socket.
#[derive(Debug)]
pub struct LiveSpeaker {
    stream: TcpStream,
    decoder: StreamDecoder,
    peer_open: OpenMessage,
}

impl LiveSpeaker {
    /// Connects to a BGP listener and completes the session handshake:
    /// OPEN exchanged both ways and the peer's first KEEPALIVE
    /// received (session Established).
    ///
    /// # Errors
    ///
    /// Propagates socket errors; protocol violations surface as
    /// [`io::ErrorKind::InvalidData`], and a handshake exceeding
    /// `timeout` as [`io::ErrorKind::TimedOut`].
    pub fn connect(
        addr: impl ToSocketAddrs,
        config: &LiveSpeakerConfig,
        timeout: Duration,
    ) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        let mut speaker = LiveSpeaker {
            stream,
            decoder: StreamDecoder::new(),
            peer_open: OpenMessage::new(Asn(0), 0, RouterId(0)), // replaced below
        };

        let open = OpenMessage::new(config.local_asn, config.hold_time_secs, config.router_id)
            .with_capability(bgpbench_wire::Capability::RouteRefresh);
        speaker.send(&Message::Open(open))?;

        let deadline = Instant::now() + timeout;
        let mut got_open = false;
        let mut got_keepalive = false;
        while !(got_open && got_keepalive) {
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "BGP handshake timed out",
                ));
            }
            match speaker.recv()? {
                Some(Message::Open(peer_open)) => {
                    speaker.peer_open = peer_open;
                    got_open = true;
                    speaker.send(&Message::Keepalive)?;
                }
                Some(Message::Keepalive) => got_keepalive = true,
                Some(Message::Notification(note)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionRefused,
                        format!("peer sent notification during handshake: {note}"),
                    ));
                }
                Some(Message::Update(_) | Message::RouteRefresh { .. }) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "update received before session establishment",
                    ));
                }
                None => {}
            }
        }
        Ok(speaker)
    }

    /// The OPEN message the peer sent during the handshake.
    pub fn peer_open(&self) -> &OpenMessage {
        &self.peer_open
    }

    /// Raw access to the underlying socket, for failure-injection
    /// tests that need to write non-BGP bytes mid-session.
    pub fn raw_stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Sends one UPDATE.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and encoding failures.
    pub fn send_update(&mut self, update: &UpdateMessage) -> io::Result<()> {
        self.send(&Message::Update(update.clone()))
    }

    /// Sends every UPDATE in `updates`, answering any keepalives that
    /// arrive while sending. Returns the number of prefix-level
    /// transactions sent.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and encoding failures.
    pub fn flood(&mut self, updates: &[UpdateMessage]) -> io::Result<usize> {
        let mut transactions = 0;
        for update in updates {
            self.send_update(update)?;
            transactions += update.transaction_count();
        }
        Ok(transactions)
    }

    /// Sends a KEEPALIVE.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_keepalive(&mut self) -> io::Result<()> {
        self.send(&Message::Keepalive)
    }

    /// Sends an IPv4-unicast ROUTE-REFRESH request (RFC 2918), asking
    /// the peer to re-advertise its full Adj-RIB-Out.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn request_refresh(&mut self) -> io::Result<()> {
        self.send(&Message::RouteRefresh { afi: 1, safi: 1 })
    }

    /// Receives the next message, or `None` if nothing arrived within
    /// the socket's read timeout.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; wire violations surface as
    /// [`io::ErrorKind::InvalidData`]; a cleanly closed connection as
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn recv(&mut self) -> io::Result<Option<Message>> {
        loop {
            if let Some(message) = self.decoder.next_message().map_err(wire_to_io)? {
                return Ok(Some(message));
            }
            let mut buf = [0u8; 16 * 1024];
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed the session",
                    ))
                }
                Ok(n) => self.decoder.extend(&buf[..n]),
                Err(err)
                    if err.kind() == io::ErrorKind::WouldBlock
                        || err.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// Collects UPDATEs until `quiet` elapses with no traffic (or
    /// `max` overall), answering keepalives. This is how Speaker 2
    /// receives the router's full table in Phase 2.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn collect_routes(&mut self, quiet: Duration, max: Duration) -> io::Result<SessionSummary> {
        let start = Instant::now();
        let mut last_traffic = Instant::now();
        let mut summary = SessionSummary::default();
        while last_traffic.elapsed() < quiet && start.elapsed() < max {
            match self.recv()? {
                Some(Message::Update(update)) => {
                    summary.updates += 1;
                    summary.announced += update.nlri().len();
                    summary.withdrawn += update.withdrawn().len();
                    last_traffic = Instant::now();
                }
                Some(Message::Keepalive) => {
                    self.send_keepalive()?;
                    // Keepalives do not count as table traffic.
                }
                Some(Message::Notification(note)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        format!("peer sent notification: {note}"),
                    ));
                }
                Some(Message::Open(_)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unexpected OPEN on established session",
                    ));
                }
                Some(Message::RouteRefresh { .. }) => {
                    // This speaker keeps no Adj-RIB-Out; a refresh
                    // request from the peer is acknowledged by silence.
                }
                None => {}
            }
        }
        Ok(summary)
    }

    /// Collects UPDATEs until at least `min_announced` prefixes have
    /// been announced *and* `min_withdrawn` withdrawn (or `max`
    /// elapses), answering keepalives. Unlike
    /// [`LiveSpeaker::collect_routes`] this is robust to arbitrary
    /// gaps in the stream, at the price of needing the expected counts.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; returns [`io::ErrorKind::TimedOut`]
    /// if the counts are not reached within `max`.
    pub fn collect_routes_until(
        &mut self,
        min_announced: usize,
        min_withdrawn: usize,
        max: Duration,
    ) -> io::Result<SessionSummary> {
        let start = Instant::now();
        let mut summary = SessionSummary::default();
        while summary.announced < min_announced || summary.withdrawn < min_withdrawn {
            if start.elapsed() > max {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "received {}/{min_announced} announcements and \
                         {}/{min_withdrawn} withdrawals before timeout",
                        summary.announced, summary.withdrawn
                    ),
                ));
            }
            match self.recv()? {
                Some(Message::Update(update)) => {
                    summary.updates += 1;
                    summary.announced += update.nlri().len();
                    summary.withdrawn += update.withdrawn().len();
                }
                Some(Message::Keepalive) => self.send_keepalive()?,
                Some(Message::Notification(note)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        format!("peer sent notification: {note}"),
                    ));
                }
                Some(Message::Open(_)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unexpected OPEN on established session",
                    ));
                }
                Some(Message::RouteRefresh { .. }) => {
                    // This speaker keeps no Adj-RIB-Out; a refresh
                    // request from the peer is acknowledged by silence.
                }
                None => {}
            }
        }
        Ok(summary)
    }

    fn send(&mut self, message: &Message) -> io::Result<()> {
        let bytes = message.encode().map_err(wire_to_io)?;
        self.stream.write_all(&bytes)
    }
}

fn wire_to_io(err: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpbench_wire::{Origin, PathAttribute};
    use std::net::{Ipv4Addr, TcpListener};
    use std::thread;

    /// A minimal hand-rolled BGP responder for exercising the speaker.
    fn spawn_responder(
        respond_updates: usize,
    ) -> (std::net::SocketAddr, thread::JoinHandle<SessionSummary>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            stream.set_nodelay(true).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_millis(20)))
                .unwrap();
            let mut decoder = StreamDecoder::new();
            let mut summary = SessionSummary::default();
            // Handshake: send OPEN + KEEPALIVE immediately.
            let open = OpenMessage::new(Asn(65000), 90, RouterId(0x0A00_0064));
            stream
                .write_all(&Message::Open(open).encode().unwrap())
                .unwrap();
            stream
                .write_all(&Message::Keepalive.encode().unwrap())
                .unwrap();
            // Send the requested number of updates.
            for i in 0..respond_updates {
                let update = UpdateMessage::builder()
                    .attribute(PathAttribute::Origin(Origin::Igp))
                    .attribute(PathAttribute::AsPath(bgpbench_wire::AsPath::from_sequence(
                        [Asn(65000)],
                    )))
                    .attribute(PathAttribute::NextHop(Ipv4Addr::new(10, 0, 0, 100)))
                    .announce(
                        bgpbench_wire::Prefix::new_masked(
                            Ipv4Addr::from(0x0100_0000u32 + ((i as u32) << 8)),
                            24,
                        )
                        .unwrap(),
                    )
                    .build();
                stream
                    .write_all(&Message::Update(update).encode().unwrap())
                    .unwrap();
            }
            // Read whatever the speaker sends for a short while.
            let deadline = Instant::now() + Duration::from_millis(800);
            while Instant::now() < deadline {
                let mut buf = [0u8; 4096];
                match stream.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => {
                        decoder.extend(&buf[..n]);
                        while let Ok(Some(message)) = decoder.next_message() {
                            if let Message::Update(update) = message {
                                summary.updates += 1;
                                summary.announced += update.nlri().len();
                                summary.withdrawn += update.withdrawn().len();
                            }
                        }
                    }
                    Err(_) => {}
                }
            }
            summary
        });
        (addr, handle)
    }

    #[test]
    fn handshake_establishes_and_reports_peer_open() {
        let (addr, handle) = spawn_responder(0);
        let speaker =
            LiveSpeaker::connect(addr, &LiveSpeakerConfig::default(), Duration::from_secs(5))
                .unwrap();
        assert_eq!(speaker.peer_open().asn(), Asn(65000));
        drop(speaker);
        handle.join().unwrap();
    }

    #[test]
    fn collect_routes_counts_received_prefixes() {
        let (addr, handle) = spawn_responder(25);
        let mut speaker =
            LiveSpeaker::connect(addr, &LiveSpeakerConfig::default(), Duration::from_secs(5))
                .unwrap();
        let summary = speaker
            .collect_routes(Duration::from_millis(300), Duration::from_secs(5))
            .unwrap();
        assert_eq!(summary.updates, 25);
        assert_eq!(summary.announced, 25);
        assert_eq!(summary.withdrawn, 0);
        drop(speaker);
        handle.join().unwrap();
    }

    #[test]
    fn flood_delivers_all_updates() {
        let (addr, handle) = spawn_responder(0);
        let mut speaker =
            LiveSpeaker::connect(addr, &LiveSpeakerConfig::default(), Duration::from_secs(5))
                .unwrap();
        let updates: Vec<UpdateMessage> = (0..10u32)
            .map(|i| {
                UpdateMessage::builder()
                    .withdraw(
                        bgpbench_wire::Prefix::new_masked(Ipv4Addr::from(i << 24), 8).unwrap(),
                    )
                    .build()
            })
            .collect();
        let sent = speaker.flood(&updates).unwrap();
        assert_eq!(sent, 10);
        drop(speaker);
        let seen = handle.join().unwrap();
        assert_eq!(seen.updates, 10);
        assert_eq!(seen.withdrawn, 10);
    }

    #[test]
    fn connect_to_closed_port_fails() {
        // Bind and drop to get a (very likely) unused port.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let result = LiveSpeaker::connect(
            addr,
            &LiveSpeakerConfig::default(),
            Duration::from_millis(500),
        );
        assert!(result.is_err());
    }
}
