//! Modern-Internet synthetic workloads.
//!
//! The paper's tables are 2007-sized (~250k routes, /24 share ≈ 53%).
//! This module scales the synthesis to today's Internet: ~1M IPv4
//! prefixes with a 2020s prefix-length mix (the /24 share has grown to
//! ~60% and the /22–/23 band has filled in as the last /8s were carved
//! up), AS-path lengths drawn from the observed distribution (mean
//! ≈ 4.3) instead of a fixed value, and update *trains* whose
//! inter-arrival structure is bursty with long-range dependence, after
//! Kitsak et al.'s measurements of real BGP update dynamics.
//!
//! Long-range dependence is produced by a deterministic multiplicative
//! (binomial) cascade: total update mass is recursively split over
//! `2^k` time slots with a random left/right fraction at each node.
//! The resulting per-slot counts are multifractal — variance decays
//! much slower under aggregation than the `1/m` of any Poisson-like
//! process, which is exactly the Hurst-exponent signature the paper's
//! uniform generators cannot reproduce.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bgpbench_wire::{AsPath, Asn, Origin, PathAttribute, Prefix, UpdateMessage};

use crate::workload::AnnounceSpec;

/// Prefix-length weights for a modern (2020s) global IPv4 table, in
/// parts per 10 000. The /24 share is ~60% and the /22–/23 band holds
/// most of the remainder — compare the 2007 mix in
/// [`crate::TableGenerator`].
const LENGTH_WEIGHTS: [(u8, u32); 17] = [
    (8, 2),
    (9, 2),
    (10, 10),
    (11, 10),
    (12, 15),
    (13, 20),
    (14, 40),
    (15, 50),
    (16, 150),
    (17, 100),
    (18, 220),
    (19, 300),
    (20, 500),
    (21, 500),
    (22, 1100),
    (23, 950),
    (24, 6031),
];

/// AS-path length weights (parts per 1000) matching the observed
/// modern distribution: mode at 4 hops, mean ≈ 4.3, a thin tail out
/// to 12.
const PATH_LENGTH_WEIGHTS: [(u8, u32); 12] = [
    (1, 5),
    (2, 80),
    (3, 220),
    (4, 300),
    (5, 210),
    (6, 110),
    (7, 45),
    (8, 18),
    (9, 7),
    (10, 3),
    (11, 1),
    (12, 1),
];

/// Deterministic generator for modern-Internet routing tables.
///
/// Same contract as [`crate::TableGenerator`]: a given seed always
/// yields the same table, incremental calls never repeat a prefix.
///
/// ```
/// use bgpbench_speaker::ModernTableGenerator;
/// let table = ModernTableGenerator::new(7).generate(10_000);
/// assert_eq!(table.len(), 10_000);
/// ```
#[derive(Debug)]
pub struct ModernTableGenerator {
    rng: StdRng,
    seen: HashSet<Prefix>,
}

impl ModernTableGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        ModernTableGenerator {
            rng: StdRng::seed_from_u64(seed),
            seen: HashSet::new(),
        }
    }

    /// Generates `count` further unique prefixes.
    pub fn generate(&mut self, count: usize) -> Vec<Prefix> {
        let total_weight: u32 = LENGTH_WEIGHTS.iter().map(|&(_, w)| w).sum();
        let mut out = Vec::with_capacity(count);
        // The routable space is far larger than any requested table
        // (>14M /24s alone), so rejection sampling converges fast; the
        // attempt bound only guards against a logic error.
        let mut attempts: usize = 0;
        let max_attempts = count.saturating_add(1000).saturating_mul(100);
        while out.len() < count && attempts < max_attempts {
            attempts += 1;
            let mut pick = self.rng.gen_range(0..total_weight);
            let mut len = 24;
            for &(candidate, weight) in LENGTH_WEIGHTS.iter() {
                if pick < weight {
                    len = candidate;
                    break;
                }
                pick -= weight;
            }
            let addr: u32 = self.rng.gen();
            if !routable(addr) {
                continue;
            }
            let Ok(prefix) = Prefix::new_masked(Ipv4Addr::from(addr), len) else {
                continue;
            };
            if self.seen.insert(prefix) {
                out.push(prefix);
            }
        }
        out
    }
}

/// Whether an address falls in globally routable unicast space
/// (excludes RFC 1918, loopback, and class D/E — the same exclusions
/// the 2007 generator applies).
fn routable(addr: u32) -> bool {
    let first = addr >> 24;
    if !(1..=223).contains(&first) {
        return false;
    }
    if first == 10 || first == 127 {
        return false;
    }
    if addr & 0xFFF0_0000 == 0xAC10_0000 {
        return false; // 172.16.0.0/12
    }
    if addr & 0xFFFF_0000 == 0xC0A8_0000 {
        return false; // 192.168.0.0/16
    }
    true
}

/// Draws an AS-path length from the modern distribution.
pub fn sample_path_length(rng: &mut StdRng) -> u8 {
    let total: u32 = PATH_LENGTH_WEIGHTS.iter().map(|&(_, w)| w).sum();
    let mut pick = rng.gen_range(0..total);
    for &(len, weight) in PATH_LENGTH_WEIGHTS.iter() {
        if pick < weight {
            return len;
        }
        pick -= weight;
    }
    4
}

fn sample_path(rng: &mut StdRng, first: Asn) -> AsPath {
    let len = sample_path_length(rng);
    let mut asns = Vec::with_capacity(usize::from(len));
    asns.push(first);
    for _ in 1..len {
        asns.push(Asn(rng.gen_range(1000..60_000)));
    }
    AsPath::from_sequence(asns)
}

/// Packetizes a cold-start announcement of `table` with AS-path
/// lengths drawn per update from the modern distribution (the classic
/// [`crate::workload::announcements`] uses one fixed length).
pub fn announcements(table: &[Prefix], spec: &AnnounceSpec) -> Vec<UpdateMessage> {
    let per_update = spec.prefixes_per_update.max(1);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    table
        .chunks(per_update)
        .map(|chunk| {
            let mut builder = UpdateMessage::builder()
                .attribute(PathAttribute::Origin(Origin::Igp))
                .attribute(PathAttribute::AsPath(sample_path(
                    &mut rng,
                    spec.speaker_asn,
                )))
                .attribute(PathAttribute::NextHop(spec.next_hop));
            for &prefix in chunk {
                builder = builder.announce(prefix);
            }
            builder.build()
        })
        .collect()
}

/// Shape of a bursty update train.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstSpec {
    /// Time resolution: the train spans `2^slots_log2` slots.
    pub slots_log2: u32,
    /// Total prefix events (announcements + withdrawals) in the train.
    pub events: usize,
    /// Fraction of events that are withdrawals (the rest re-announce
    /// with fresh attributes).
    pub withdraw_fraction: f64,
}

impl Default for BurstSpec {
    fn default() -> Self {
        BurstSpec {
            slots_log2: 10,
            events: 10_000,
            withdraw_fraction: 0.25,
        }
    }
}

/// Distributes `spec.events` over `2^spec.slots_log2` slots with a
/// multiplicative binomial cascade, yielding long-range-correlated
/// per-slot counts. Deterministic in `seed`; the counts always sum to
/// exactly `spec.events`.
pub fn burst_profile(seed: u64, spec: &BurstSpec) -> Vec<usize> {
    let slots = 1usize << spec.slots_log2.min(20);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6275_7273_7421);
    let mut mass = vec![1.0f64];
    for _ in 0..spec.slots_log2.min(20) {
        let mut next = Vec::with_capacity(mass.len() * 2);
        for &m in &mass {
            // Conservative cascade: each node splits its mass with a
            // random fraction; the skew (0.15..0.85) sets the
            // burstiness of the limit measure.
            let left = rng.gen_range(0.15f64..0.85);
            next.push(m * left);
            next.push(m * (1.0 - left));
        }
        mass = next;
    }
    // Largest-remainder-free rounding: carry the running total so the
    // integer counts sum to exactly `events`.
    let total = spec.events as f64;
    let mut counts = Vec::with_capacity(slots);
    let mut running = 0.0f64;
    let mut emitted = 0usize;
    for &m in &mass {
        running += m * total;
        let target = running.round() as usize;
        counts.push(target.saturating_sub(emitted));
        emitted = target.max(emitted);
    }
    counts
}

/// Builds a bursty update train over `table`: per-slot event counts
/// come from [`burst_profile`], withdrawals and re-announcements are
/// interleaved per `spec.withdraw_fraction`, and messages are packed
/// up to `announce.prefixes_per_update` but never across a slot
/// boundary (a burst's messages arrive together; quiet slots emit
/// nothing).
pub fn update_train(
    table: &[Prefix],
    announce: &AnnounceSpec,
    burst: &BurstSpec,
) -> Vec<UpdateMessage> {
    if table.is_empty() {
        return Vec::new();
    }
    let per_update = announce.prefixes_per_update.max(1);
    let profile = burst_profile(announce.seed, burst);
    let mut rng = StdRng::seed_from_u64(announce.seed ^ 0x7472_6169_6e21);
    let mut messages = Vec::new();
    let mut cursor = 0usize;
    for &count in &profile {
        let mut withdraws: Vec<Prefix> = Vec::new();
        let mut announces: Vec<Prefix> = Vec::new();
        for _ in 0..count {
            let prefix = table[cursor % table.len()];
            cursor += 1;
            if rng.gen_bool(burst.withdraw_fraction) {
                withdraws.push(prefix);
            } else {
                announces.push(prefix);
            }
        }
        for chunk in withdraws.chunks(per_update) {
            messages.push(
                UpdateMessage::builder()
                    .withdraw_all(chunk.iter().copied())
                    .build(),
            );
        }
        for chunk in announces.chunks(per_update) {
            let mut builder = UpdateMessage::builder()
                .attribute(PathAttribute::Origin(Origin::Igp))
                .attribute(PathAttribute::AsPath(sample_path(
                    &mut rng,
                    announce.speaker_asn,
                )))
                .attribute(PathAttribute::NextHop(announce.next_hop));
            for &prefix in chunk {
                builder = builder.announce(prefix);
            }
            messages.push(builder.build());
        }
    }
    messages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    fn spec(seed: u64) -> AnnounceSpec {
        AnnounceSpec {
            speaker_asn: Asn(65001),
            path_len: 3,
            next_hop: Ipv4Addr::new(10, 0, 0, 2),
            prefixes_per_update: 500,
            seed,
        }
    }

    #[test]
    fn modern_table_is_deterministic_and_unique() {
        let a = ModernTableGenerator::new(9).generate(5000);
        let b = ModernTableGenerator::new(9).generate(5000);
        assert_eq!(a, b);
        let unique: HashSet<_> = a.iter().collect();
        assert_eq!(unique.len(), a.len());
    }

    #[test]
    fn modern_length_mix_matches_todays_table() {
        let table = ModernTableGenerator::new(11).generate(20_000);
        let share =
            |len: u8| table.iter().filter(|p| p.len() == len).count() as f64 / table.len() as f64;
        // /24 dominates at ~60%; /22+/23 together hold ~20%; nothing
        // longer than /24 and nothing shorter than /8 is generated.
        assert!((0.55..0.66).contains(&share(24)), "/24 share {}", share(24));
        let band = share(22) + share(23);
        assert!((0.14..0.28).contains(&band), "/22-/23 share {band}");
        assert!(table.iter().all(|p| (8..=24).contains(&p.len())));
    }

    #[test]
    fn path_lengths_center_on_the_modern_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: u64 = (0..n)
            .map(|_| u64::from(sample_path_length(&mut rng)))
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((3.9..4.7).contains(&mean), "mean path length {mean}");
    }

    #[test]
    fn burst_profile_conserves_events_and_is_deterministic() {
        let spec = BurstSpec {
            slots_log2: 10,
            events: 50_000,
            withdraw_fraction: 0.25,
        };
        let a = burst_profile(42, &spec);
        let b = burst_profile(42, &spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1024);
        assert_eq!(a.iter().sum::<usize>(), 50_000);
    }

    #[test]
    fn burst_profile_is_bursty_and_long_range_dependent() {
        let spec = BurstSpec {
            slots_log2: 10,
            events: 100_000,
            withdraw_fraction: 0.25,
        };
        let counts = burst_profile(7, &spec);
        let n = counts.len() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / n;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        // A Poisson train at this rate would have CV ≈ 0.1; the
        // cascade must be far burstier.
        let cv = var.sqrt() / mean;
        assert!(cv > 1.0, "coefficient of variation {cv} not bursty");

        // Variance-time check: aggregate in blocks of m=16. For a
        // short-range process the variance of block means decays like
        // 1/m; long-range dependence keeps it an order of magnitude
        // higher (slope 2H-2 with H near 1).
        let m = 16;
        let blocks: Vec<f64> = counts
            .chunks(m)
            .map(|c| c.iter().sum::<usize>() as f64 / m as f64)
            .collect();
        let bn = blocks.len() as f64;
        let bmean = blocks.iter().sum::<f64>() / bn;
        let bvar = blocks.iter().map(|&b| (b - bmean).powi(2)).sum::<f64>() / bn;
        assert!(
            bvar > 4.0 * var / m as f64,
            "aggregated variance {bvar} decays like short-range noise (slot var {var})"
        );
    }

    #[test]
    fn update_train_covers_events_and_respects_packetization() {
        let table = ModernTableGenerator::new(5).generate(2000);
        let burst = BurstSpec {
            slots_log2: 8,
            events: 5000,
            withdraw_fraction: 0.3,
        };
        let train = update_train(&table, &spec(21), &burst);
        assert_eq!(workload::transaction_count(&train), 5000);
        assert!(train.iter().all(|u| u.transaction_count() <= 500));
        let withdrawals: usize = train.iter().map(|u| u.withdrawn().len()).sum();
        let share = withdrawals as f64 / 5000.0;
        assert!((0.2..0.4).contains(&share), "withdraw share {share}");
        // Announcements must carry full attribute sets.
        assert!(train
            .iter()
            .filter(|u| !u.nlri().is_empty())
            .all(|u| u.attributes().len() == 3));
    }

    #[test]
    fn modern_announcements_vary_path_lengths() {
        let table = ModernTableGenerator::new(5).generate(5000);
        let updates = announcements(&table, &spec(33));
        assert_eq!(updates.len(), 10);
        let lengths: HashSet<usize> = updates
            .iter()
            .filter_map(|u| {
                u.find_attribute(|a| matches!(a, PathAttribute::AsPath(_)))
                    .map(|a| match a {
                        PathAttribute::AsPath(p) => p.length(),
                        _ => 0,
                    })
            })
            .collect();
        assert!(lengths.len() > 1, "all updates share one path length");
        // Determinism.
        assert_eq!(updates, announcements(&table, &spec(33)));
    }
}
