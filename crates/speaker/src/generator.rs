//! Synthetic routing-table generation.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use bgpbench_wire::Prefix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Prefix-length mix approximating the global BGP table around 2007
/// (when the paper reports "over 180,000" advertised prefixes): heavily
/// dominated by /24s, with secondary mass at /16 and /19–/22.
///
/// Entries are `(mask length, weight)`.
const LENGTH_WEIGHTS: [(u8, u32); 12] = [
    (8, 1),
    (13, 1),
    (14, 1),
    (15, 1),
    (16, 8),
    (17, 2),
    (18, 4),
    (19, 9),
    (20, 5),
    (21, 4),
    (22, 6),
    (24, 58),
];

/// Deterministic generator of unique synthetic prefixes.
///
/// The same seed always yields the same table, which is what makes the
/// benchmark repeatable ("repeatable performance measurements" is an
/// explicit design goal of the paper's benchmark).
///
/// ```
/// use bgpbench_speaker::TableGenerator;
/// let a = TableGenerator::new(1).generate(500);
/// let b = TableGenerator::new(1).generate(500);
/// assert_eq!(a, b);
/// let c = TableGenerator::new(2).generate(500);
/// assert_ne!(a, c);
/// ```
#[derive(Debug)]
pub struct TableGenerator {
    rng: StdRng,
}

impl TableGenerator {
    /// Creates a generator with a fixed seed.
    pub fn new(seed: u64) -> Self {
        TableGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates `count` unique prefixes.
    ///
    /// Prefixes are drawn from the public unicast space (first octet
    /// 1–223, excluding 10/8, 127/8, and 172.16/12 and 192.168/16
    /// private blocks so they never collide with the benchmark's
    /// session addressing).
    ///
    /// # Panics
    ///
    /// Panics if `count` is so large that unique prefixes cannot be
    /// found (well beyond any realistic table size).
    pub fn generate(&mut self, count: usize) -> Vec<Prefix> {
        let total_weight: u32 = LENGTH_WEIGHTS.iter().map(|&(_, w)| w).sum();
        let mut seen = HashSet::with_capacity(count);
        let mut prefixes = Vec::with_capacity(count);
        let mut attempts: u64 = 0;
        while prefixes.len() < count {
            attempts += 1;
            assert!(
                attempts < (count as u64 + 1000) * 100,
                "unable to generate {count} unique prefixes"
            );
            let mut pick = self.rng.gen_range(0..total_weight);
            let mut len = 24;
            for &(candidate, weight) in &LENGTH_WEIGHTS {
                if pick < weight {
                    len = candidate;
                    break;
                }
                pick -= weight;
            }
            let addr: u32 = self.rng.gen();
            let first_octet = (addr >> 24) as u8;
            if !(1..=223).contains(&first_octet)
                || first_octet == 10
                || first_octet == 127
                || (first_octet == 172 && (addr >> 20) & 0xF == 1)
                || (addr >> 16) == 0xC0A8
            {
                continue;
            }
            let prefix =
                Prefix::new_masked(Ipv4Addr::from(addr), len).expect("length from table is valid");
            if seen.insert(prefix) {
                prefixes.push(prefix);
            }
        }
        prefixes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_of_unique_prefixes() {
        let prefixes = TableGenerator::new(7).generate(5000);
        assert_eq!(prefixes.len(), 5000);
        let unique: HashSet<_> = prefixes.iter().collect();
        assert_eq!(unique.len(), 5000);
    }

    #[test]
    fn avoids_private_and_reserved_space() {
        let prefixes = TableGenerator::new(9).generate(5000);
        for prefix in &prefixes {
            let octets = prefix.network().octets();
            assert!((1..=223).contains(&octets[0]), "{prefix}");
            assert_ne!(octets[0], 10, "{prefix}");
            assert_ne!(octets[0], 127, "{prefix}");
            assert!(
                !(octets[0] == 172 && (16..32).contains(&octets[1])),
                "{prefix}"
            );
            assert!(!(octets[0] == 192 && octets[1] == 168), "{prefix}");
        }
    }

    #[test]
    fn length_distribution_is_dominated_by_slash24() {
        let prefixes = TableGenerator::new(3).generate(10_000);
        let slash24 = prefixes.iter().filter(|p| p.len() == 24).count();
        let share = slash24 as f64 / prefixes.len() as f64;
        assert!((0.5..0.7).contains(&share), "/24 share was {share}");
        // Everything within the advertised mix.
        for prefix in &prefixes {
            assert!(
                LENGTH_WEIGHTS.iter().any(|&(len, _)| len == prefix.len()),
                "unexpected length {}",
                prefix.len()
            );
        }
    }

    #[test]
    fn generation_is_incremental() {
        // Two calls on one generator continue the stream without
        // repeating prefixes.
        let mut generator = TableGenerator::new(11);
        let first = generator.generate(100);
        let second = generator.generate(100);
        let all: HashSet<_> = first.iter().chain(second.iter()).collect();
        assert_eq!(all.len(), 200);
    }
}
