//! `bgp-speaker` — a standalone benchmark speaker.
//!
//! Modes:
//!
//! ```text
//! bgp-speaker flood ADDR:PORT [--prefixes N] [--pkt N] [--asn N] [--seed N]
//!     connect, inject N announcements, report the send rate
//! bgp-speaker collect ADDR:PORT [--secs N] [--asn N]
//!     connect and count routes the peer advertises to us
//! bgp-speaker withdraw ADDR:PORT [--prefixes N] [--pkt N] [--asn N] [--seed N]
//!     announce N prefixes, then withdraw them all
//! ```

use std::net::Ipv4Addr;
use std::process::exit;
use std::time::{Duration, Instant};

use bgpbench_speaker::{workload, LiveSpeaker, LiveSpeakerConfig, TableGenerator};
use bgpbench_wire::{Asn, RouterId};

struct Options {
    mode: String,
    target: String,
    prefixes: usize,
    pkt: usize,
    asn: u16,
    seed: u64,
    secs: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: bgp-speaker <flood|collect|withdraw> ADDR:PORT \
         [--prefixes N] [--pkt N] [--asn N] [--seed N] [--secs N]"
    );
    exit(2);
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_else(|| usage());
    let target = args.next().unwrap_or_else(|| usage());
    let mut options = Options {
        mode,
        target,
        prefixes: 10_000,
        pkt: 500,
        asn: 65001,
        seed: 2007,
        secs: 10,
    };
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        let parsed: u64 = value.parse().unwrap_or_else(|_| usage());
        match flag.as_str() {
            "--prefixes" => options.prefixes = parsed as usize,
            "--pkt" => options.pkt = (parsed as usize).max(1),
            "--asn" => options.asn = parsed as u16,
            "--seed" => options.seed = parsed,
            "--secs" => options.secs = parsed,
            _ => usage(),
        }
    }
    options
}

fn main() {
    let options = parse_args();
    let config = LiveSpeakerConfig {
        local_asn: Asn(options.asn),
        router_id: RouterId(0x0A00_0000 | u32::from(options.asn & 0xFF)),
        hold_time_secs: 90,
    };
    let mut speaker = match LiveSpeaker::connect(&*options.target, &config, Duration::from_secs(10))
    {
        Ok(speaker) => speaker,
        Err(err) => {
            eprintln!(
                "bgp-speaker: cannot establish session with {}: {err}",
                options.target
            );
            exit(1);
        }
    };
    println!(
        "session established with {} ({})",
        options.target,
        speaker.peer_open().asn()
    );

    let spec = workload::AnnounceSpec {
        speaker_asn: Asn(options.asn),
        path_len: 3,
        next_hop: Ipv4Addr::new(127, 0, 0, 1),
        prefixes_per_update: options.pkt,
        seed: options.seed,
    };
    let result = match options.mode.as_str() {
        "flood" => {
            let table = TableGenerator::new(options.seed).generate(options.prefixes);
            let updates = workload::announcements(&table, &spec);
            let start = Instant::now();
            speaker.flood(&updates).map(|sent| {
                let secs = start.elapsed().as_secs_f64();
                println!(
                    "sent {sent} announcements in {secs:.3}s ({:.0} prefixes/s wire rate)",
                    sent as f64 / secs
                );
            })
        }
        "withdraw" => {
            let table = TableGenerator::new(options.seed).generate(options.prefixes);
            speaker
                .flood(&workload::announcements(&table, &spec))
                .and_then(|_| {
                    let start = Instant::now();
                    speaker
                        .flood(&workload::withdrawals(&table, options.pkt))
                        .map(|sent| {
                            let secs = start.elapsed().as_secs_f64();
                            println!(
                                "withdrew {sent} prefixes in {secs:.3}s ({:.0}/s wire rate)",
                                sent as f64 / secs
                            );
                        })
                })
        }
        "collect" => speaker
            .collect_routes(Duration::from_secs(options.secs), Duration::from_secs(600))
            .map(|summary| {
                println!(
                    "received {} updates: {} announced, {} withdrawn",
                    summary.updates, summary.announced, summary.withdrawn
                );
            }),
        _ => usage(),
    };
    if let Err(err) = result {
        eprintln!("bgp-speaker: {err}");
        exit(1);
    }
}
