//! The unified workload API.
//!
//! Before this module, each scenario wired its own generator calls
//! together ([`crate::TableGenerator`] here, [`crate::workload`]
//! functions there), so adding a new *kind* of workload — a bigger
//! synthetic table, or replay of a real collector dump — meant
//! touching every call site. [`WorkloadSource`] puts one streaming
//! interface in front of all of them: a source produces a routing
//! table and turns it into announcement, withdrawal, and update-train
//! message streams; the harness consumes those streams without knowing
//! where they came from.
//!
//! Three sources ship today:
//!
//! * [`SyntheticSource`] — the paper's 2007-era tables and uniform
//!   packetization (what every scenario used before);
//! * [`ModernInternetSource`] — ~1M-prefix modern tables and bursty
//!   long-range-dependent update trains ([`crate::modern`]);
//! * [`MrtReplaySource`] — tables and trains decoded from an RFC 6396
//!   MRT dump ([`bgpbench_wire::mrt`]).
//!
//! [`WorkloadSpec`] is the serializable selector configuration carries
//! (scenario configs, cell specs); `spec.source(seed)` instantiates
//! the source at run time.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use bgpbench_wire::mrt::{MrtReader, MrtRecord};
use bgpbench_wire::{PathAttribute, Prefix, UpdateMessage};

use crate::modern::{self, BurstSpec, ModernTableGenerator};
use crate::workload::{self, AnnounceSpec};
use crate::TableGenerator;

/// A stream of benchmark workload, independent of how it is produced.
///
/// Methods take `&mut self` because sources carry generator state
/// (RNGs, dedup sets, read cursors). The harness calls `table` once,
/// then derives message streams from the returned table.
pub trait WorkloadSource: Send {
    /// Human-readable description for reports and artifacts.
    fn describe(&self) -> String;

    /// Produces up to `count` prefixes. Synthetic sources always
    /// return exactly `count`; a replay source returns what its dump
    /// holds, so callers must size phase targets from the returned
    /// length, not from `count`.
    fn table(&mut self, count: usize) -> Vec<Prefix>;

    /// Packetizes a cold-start announcement of `table`.
    fn announcements(&mut self, table: &[Prefix], spec: &AnnounceSpec) -> Vec<UpdateMessage>;

    /// Packetizes a withdrawal of `table`.
    fn withdrawals(&mut self, table: &[Prefix], prefixes_per_update: usize) -> Vec<UpdateMessage>;

    /// Produces an incremental update train over `table` (the phase-3
    /// traffic of the replay scenarios).
    fn update_train(&mut self, table: &[Prefix], spec: &AnnounceSpec) -> Vec<UpdateMessage>;
}

/// The paper's synthetic workload: 2007 prefix-length mix, fixed
/// AS-path lengths, uniform (non-bursty) update trains.
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    seed: u64,
}

impl SyntheticSource {
    /// Creates the classic source with the given workload seed.
    pub fn new(seed: u64) -> Self {
        SyntheticSource { seed }
    }
}

impl WorkloadSource for SyntheticSource {
    fn describe(&self) -> String {
        format!("synthetic 2007 table (seed {})", self.seed)
    }

    fn table(&mut self, count: usize) -> Vec<Prefix> {
        TableGenerator::new(self.seed).generate(count)
    }

    fn announcements(&mut self, table: &[Prefix], spec: &AnnounceSpec) -> Vec<UpdateMessage> {
        workload::announcements(table, spec)
    }

    fn withdrawals(&mut self, table: &[Prefix], prefixes_per_update: usize) -> Vec<UpdateMessage> {
        workload::withdrawals(table, prefixes_per_update)
    }

    fn update_train(&mut self, table: &[Prefix], spec: &AnnounceSpec) -> Vec<UpdateMessage> {
        let window = (table.len() / 10).max(1);
        workload::mixed_churn(table, spec, window)
    }
}

/// Modern-Internet workload: ~1M-prefix tables, realistic AS-path
/// length distribution, long-range-dependent bursty trains.
#[derive(Debug, Clone)]
pub struct ModernInternetSource {
    seed: u64,
    burst: BurstSpec,
}

impl ModernInternetSource {
    /// Creates a modern source with the default burst shape.
    pub fn new(seed: u64) -> Self {
        ModernInternetSource {
            seed,
            burst: BurstSpec::default(),
        }
    }

    /// Overrides the burst shape of [`WorkloadSource::update_train`].
    pub fn with_burst(mut self, burst: BurstSpec) -> Self {
        self.burst = burst;
        self
    }
}

impl WorkloadSource for ModernInternetSource {
    fn describe(&self) -> String {
        format!("synthetic modern table (seed {})", self.seed)
    }

    fn table(&mut self, count: usize) -> Vec<Prefix> {
        ModernTableGenerator::new(self.seed).generate(count)
    }

    fn announcements(&mut self, table: &[Prefix], spec: &AnnounceSpec) -> Vec<UpdateMessage> {
        modern::announcements(table, spec)
    }

    fn withdrawals(&mut self, table: &[Prefix], prefixes_per_update: usize) -> Vec<UpdateMessage> {
        workload::withdrawals(table, prefixes_per_update)
    }

    fn update_train(&mut self, table: &[Prefix], spec: &AnnounceSpec) -> Vec<UpdateMessage> {
        // Scale the train to the table so small smoke configs stay
        // small: one event per table prefix, quarter withdrawals.
        let burst = BurstSpec {
            events: if self.burst.events == BurstSpec::default().events {
                table.len().max(1)
            } else {
                self.burst.events
            },
            ..self.burst
        };
        modern::update_train(table, spec, &burst)
    }
}

/// Replays a real MRT dump: the table comes from `RIB_IPV4_UNICAST`
/// records, the update train from `BGP4MP` messages, both in dump
/// order. NEXT_HOP attributes are rewritten to the benchmark session's
/// next hop so replayed routes resolve inside the simulated topology.
///
/// Decoding is tolerant the way a collector consumer has to be: the
/// reader streams until the first framing error and uses what it got.
#[derive(Debug, Clone)]
pub struct MrtReplaySource {
    bytes: Arc<Vec<u8>>,
    label: String,
}

impl MrtReplaySource {
    /// Wraps an in-memory MRT dump.
    pub fn new(bytes: Arc<Vec<u8>>) -> Self {
        let label = format!("mrt replay ({} bytes)", bytes.len());
        MrtReplaySource { bytes, label }
    }

    /// Reads an MRT dump from disk.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be read.
    pub fn from_file(path: &std::path::Path) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        let label = format!("mrt replay ({})", path.display());
        Ok(MrtReplaySource {
            bytes: Arc::new(bytes),
            label,
        })
    }

    fn rib_prefixes(&self, count: usize) -> Vec<Prefix> {
        let mut out = Vec::new();
        for record in MrtReader::new(&self.bytes).flatten() {
            if let MrtRecord::RibIpv4(rib) = record {
                out.push(rib.prefix);
                if out.len() == count {
                    break;
                }
            }
        }
        out
    }
}

/// Rewrites the NEXT_HOP attribute (if any) to `spec.next_hop`.
fn rehome_next_hop(update: UpdateMessage, spec: &AnnounceSpec) -> UpdateMessage {
    let mut builder = UpdateMessage::builder()
        .withdraw_all(update.withdrawn().iter().copied())
        .announce_all(update.nlri().iter().copied());
    for attr in update.attributes() {
        let attr = match attr {
            PathAttribute::NextHop(_) => PathAttribute::NextHop(spec.next_hop),
            other => other.clone(),
        };
        builder = builder.attribute(attr);
    }
    builder.build()
}

impl WorkloadSource for MrtReplaySource {
    fn describe(&self) -> String {
        self.label.clone()
    }

    fn table(&mut self, count: usize) -> Vec<Prefix> {
        self.rib_prefixes(count)
    }

    fn announcements(&mut self, table: &[Prefix], spec: &AnnounceSpec) -> Vec<UpdateMessage> {
        // Cold start replays the dumped table through the session's
        // own attributes — the RIB snapshot tells us *what* was
        // reachable; the session packetization is the benchmark's.
        workload::announcements(table, spec)
    }

    fn withdrawals(&mut self, table: &[Prefix], prefixes_per_update: usize) -> Vec<UpdateMessage> {
        workload::withdrawals(table, prefixes_per_update)
    }

    fn update_train(&mut self, _table: &[Prefix], spec: &AnnounceSpec) -> Vec<UpdateMessage> {
        MrtReader::new(&self.bytes)
            .flatten()
            .filter_map(|record| match record {
                MrtRecord::Update(update) => Some(rehome_next_hop(update.update, spec)),
                _ => None,
            })
            .collect()
    }
}

/// Serializable selector for a workload source — the form scenario
/// configuration carries. `source(seed)` instantiates the source.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// The paper's 2007-era synthetic workload.
    Classic,
    /// The modern-Internet synthetic workload.
    Modern,
    /// Replay of an MRT dump loaded from a file at run time.
    MrtFile(PathBuf),
    /// Replay of an in-memory MRT dump (tests, generated fixtures).
    MrtBytes(Arc<Vec<u8>>),
}

impl WorkloadSpec {
    /// Instantiates the source this spec selects.
    ///
    /// # Errors
    ///
    /// [`WorkloadSpec::MrtFile`] fails if the dump cannot be read.
    pub fn source(&self, seed: u64) -> Result<Box<dyn WorkloadSource>, WorkloadError> {
        match self {
            WorkloadSpec::Classic => Ok(Box::new(SyntheticSource::new(seed))),
            WorkloadSpec::Modern => Ok(Box::new(ModernInternetSource::new(seed))),
            WorkloadSpec::MrtFile(path) => MrtReplaySource::from_file(path)
                .map(|s| Box::new(s) as Box<dyn WorkloadSource>)
                .map_err(|err| WorkloadError {
                    path: path.clone(),
                    message: err.to_string(),
                }),
            WorkloadSpec::MrtBytes(bytes) => Ok(Box::new(MrtReplaySource::new(bytes.clone()))),
        }
    }
}

/// A workload source could not be instantiated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadError {
    /// The MRT dump that failed to load.
    pub path: PathBuf,
    /// The underlying I/O error text.
    pub message: String,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot load mrt workload {}: {}",
            self.path.display(),
            self.message
        )
    }
}

impl Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpbench_wire::mrt::{self, MrtPeer, PeerIndexTable, RibEntry, RibPrefix};
    use bgpbench_wire::{AsPath, Asn, Origin, RouterId};
    use std::net::Ipv4Addr;

    fn spec() -> AnnounceSpec {
        AnnounceSpec {
            speaker_asn: Asn(65001),
            path_len: 3,
            next_hop: Ipv4Addr::new(10, 0, 0, 2),
            prefixes_per_update: 500,
            seed: 7,
        }
    }

    fn sample_mrt() -> Arc<Vec<u8>> {
        let mut out = Vec::new();
        PeerIndexTable {
            collector_id: RouterId(1),
            view_name: String::new(),
            peers: vec![MrtPeer {
                bgp_id: RouterId(2),
                asn: Asn(65001),
                addr: Some(Ipv4Addr::new(10, 0, 0, 2)),
            }],
        }
        .encode(0, &mut out);
        for (i, text) in ["198.51.100.0/24", "203.0.113.0/24"].iter().enumerate() {
            RibPrefix {
                sequence: i as u32,
                prefix: text.parse().unwrap(),
                entries: vec![RibEntry {
                    peer_index: 0,
                    originated: 0,
                    attributes: vec![
                        PathAttribute::Origin(Origin::Igp),
                        PathAttribute::AsPath(AsPath::from_sequence([Asn(65001)])),
                        PathAttribute::NextHop(Ipv4Addr::new(192, 0, 2, 1)),
                    ],
                }],
            }
            .encode(0, &mut out);
        }
        let update = UpdateMessage::builder()
            .attribute(PathAttribute::Origin(Origin::Igp))
            .attribute(PathAttribute::AsPath(AsPath::from_sequence([Asn(65001)])))
            .attribute(PathAttribute::NextHop(Ipv4Addr::new(192, 0, 2, 1)))
            .announce("198.51.100.0/24".parse::<Prefix>().unwrap())
            .build();
        mrt::encode_bgp4mp_update(
            10,
            Asn(65001),
            Asn(65000),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
            &update,
            &mut out,
        );
        Arc::new(out)
    }

    #[test]
    fn synthetic_source_matches_the_legacy_constructors() {
        let mut source = SyntheticSource::new(2007);
        let table = source.table(1000);
        assert_eq!(table, TableGenerator::new(2007).generate(1000));
        let updates = source.announcements(&table, &spec());
        assert_eq!(updates, workload::announcements(&table, &spec()));
        assert_eq!(
            source.withdrawals(&table, 500),
            workload::withdrawals(&table, 500)
        );
    }

    #[test]
    fn modern_source_generates_modern_tables() {
        let mut source = ModernInternetSource::new(9);
        let table = source.table(4000);
        assert_eq!(table.len(), 4000);
        let train = source.update_train(&table, &spec());
        assert_eq!(workload::transaction_count(&train), 4000);
    }

    #[test]
    fn mrt_source_reads_table_and_train_from_the_dump() {
        let mut source = MrtReplaySource::new(sample_mrt());
        let table = source.table(10);
        assert_eq!(table.len(), 2, "dump holds two rib prefixes");
        let train = source.update_train(&table, &spec());
        assert_eq!(train.len(), 1);
        // NEXT_HOP must be rehomed to the session's next hop.
        let next_hop = train[0]
            .find_attribute(|a| matches!(a, PathAttribute::NextHop(_)))
            .unwrap();
        assert_eq!(
            *next_hop,
            PathAttribute::NextHop(Ipv4Addr::new(10, 0, 0, 2))
        );
    }

    #[test]
    fn workload_spec_instantiates_every_source() {
        assert!(WorkloadSpec::Classic.source(1).is_ok());
        assert!(WorkloadSpec::Modern.source(1).is_ok());
        assert!(WorkloadSpec::MrtBytes(sample_mrt()).source(1).is_ok());
        let missing = WorkloadSpec::MrtFile(PathBuf::from("/nonexistent/dump.mrt"));
        match missing.source(1) {
            Err(err) => assert!(err.to_string().contains("/nonexistent/dump.mrt")),
            Ok(_) => panic!("missing dump must not load"),
        }
    }
}
