//! A scripted message source with a cursor.

use bgpbench_wire::UpdateMessage;

/// A pre-built sequence of UPDATE messages consumed with flow control.
///
/// The simulated harness asks the script for as many messages as the
/// router's input queue has room for each tick; the live speaker just
/// floods it. Either way the script tracks how many prefix-level
/// transactions have been handed out.
///
/// ```
/// use bgpbench_speaker::{SpeakerScript, workload, TableGenerator};
/// let table = TableGenerator::new(1).generate(10);
/// let updates = workload::withdrawals(&table, 1);
/// let mut script = SpeakerScript::new(updates);
/// assert_eq!(script.remaining_messages(), 10);
/// let batch = script.take(3);
/// assert_eq!(batch.len(), 3);
/// assert_eq!(script.remaining_messages(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct SpeakerScript {
    updates: Vec<UpdateMessage>,
    cursor: usize,
    transactions_taken: usize,
}

impl SpeakerScript {
    /// Wraps a message sequence.
    pub fn new(updates: Vec<UpdateMessage>) -> Self {
        SpeakerScript {
            updates,
            cursor: 0,
            transactions_taken: 0,
        }
    }

    /// An empty script (for phases where a speaker is silent).
    pub fn empty() -> Self {
        SpeakerScript::new(Vec::new())
    }

    /// Total prefix-level transactions in the whole script.
    pub fn total_transactions(&self) -> usize {
        self.updates
            .iter()
            .map(UpdateMessage::transaction_count)
            .sum()
    }

    /// Messages not yet taken.
    pub fn remaining_messages(&self) -> usize {
        self.updates.len() - self.cursor
    }

    /// Whether every message has been taken.
    pub fn is_exhausted(&self) -> bool {
        self.cursor == self.updates.len()
    }

    /// Prefix-level transactions handed out so far.
    pub fn transactions_taken(&self) -> usize {
        self.transactions_taken
    }

    /// Takes up to `n` messages from the front of the script.
    pub fn take(&mut self, n: usize) -> &[UpdateMessage] {
        let end = (self.cursor + n).min(self.updates.len());
        let batch = &self.updates[self.cursor..end];
        self.cursor = end;
        self.transactions_taken += batch
            .iter()
            .map(UpdateMessage::transaction_count)
            .sum::<usize>();
        batch
    }

    /// Rewinds to the beginning (for repeated runs).
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.transactions_taken = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{workload, TableGenerator};
    use bgpbench_wire::Asn;
    use std::net::Ipv4Addr;

    fn script_of(n: usize, pkt: usize) -> SpeakerScript {
        let table = TableGenerator::new(1).generate(n);
        SpeakerScript::new(workload::announcements(
            &table,
            &workload::AnnounceSpec {
                speaker_asn: Asn(65001),
                path_len: 3,
                next_hop: Ipv4Addr::new(10, 0, 0, 2),
                prefixes_per_update: pkt,
                seed: 1,
            },
        ))
    }

    #[test]
    fn take_respects_bounds() {
        let mut script = script_of(10, 1);
        assert_eq!(script.take(4).len(), 4);
        assert_eq!(script.take(100).len(), 6);
        assert!(script.is_exhausted());
        assert_eq!(script.take(1).len(), 0);
    }

    #[test]
    fn transaction_accounting() {
        let mut script = script_of(1000, 500);
        assert_eq!(script.total_transactions(), 1000);
        script.take(1);
        assert_eq!(script.transactions_taken(), 500);
        script.take(1);
        assert_eq!(script.transactions_taken(), 1000);
    }

    #[test]
    fn reset_rewinds() {
        let mut script = script_of(5, 1);
        script.take(5);
        assert!(script.is_exhausted());
        script.reset();
        assert_eq!(script.remaining_messages(), 5);
        assert_eq!(script.transactions_taken(), 0);
    }

    #[test]
    fn empty_script_is_immediately_exhausted() {
        let mut script = SpeakerScript::empty();
        assert!(script.is_exhausted());
        assert_eq!(script.total_transactions(), 0);
        assert_eq!(script.take(10).len(), 0);
    }
}
