//! Shard-count invariance: the `rib_shards` knob changes how the
//! router under test partitions its decision process across host
//! cores, and must never change a single simulated number. Every
//! registered scenario runs at one and four shards and the full
//! [`bgpbench_core::ScenarioResult`] rows are compared bit for bit.

use bgpbench_core::{CellSpec, Scenario};
use bgpbench_models::xeon;

/// Quick sizing that still drives every scenario family: the paper's
/// eight, the S9–S12 fault grid, and the S13–S15 policy scenarios.
fn tiny(scenario: Scenario, rib_shards: usize) -> CellSpec {
    CellSpec::new(scenario, xeon())
        .prefixes(100)
        .seed(7)
        .peers(3)
        .hold_ticks(400)
        .flap_interval(800)
        .rib_shards(rib_shards)
}

#[test]
fn every_scenario_is_bit_identical_at_one_and_four_shards() {
    for scenario in Scenario::registered() {
        let single = tiny(scenario, 1).run();
        let sharded = tiny(scenario, 4).run();
        assert_eq!(
            single, sharded,
            "{scenario}: shard count changed the simulated result"
        );
        assert!(single.completed, "{scenario} did not complete");
    }
}

#[test]
fn odd_shard_counts_match_too() {
    // Uneven partitions (3 shards over a 100-prefix table) and a
    // count above the benchmarked four.
    let baseline = tiny(Scenario::S2, 1).run();
    for shards in [2, 3, 8] {
        let sharded = tiny(Scenario::S2, shards).run();
        assert_eq!(baseline, sharded, "S2 diverged at {shards} shards");
    }
}
