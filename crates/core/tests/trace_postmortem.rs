//! A panicking cell under a trace-armed [`GridRunner`] must leave a
//! Chrome trace-event JSON post-mortem at the configured path.
//!
//! This is deliberately the only test in this binary: it flips the
//! process-global flight-recorder switch, which parallel test threads
//! in the same process would race.

use bgpbench_core::{CellSpec, GridRunner, Scenario};
use bgpbench_models::xeon;
use bgpbench_telemetry::trace::export::validate_chrome_json;
use bgpbench_telemetry::TraceConfig;

#[test]
fn panicking_cell_writes_trace_postmortem() {
    let path =
        std::env::temp_dir().join(format!("bgpbench_postmortem_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let cells = vec![
        CellSpec::new(Scenario::S2, xeon()).prefixes(100).seed(1),
        CellSpec::new(Scenario::S2, xeon()).prefixes(100).seed(2),
    ];
    let mut runner =
        GridRunner::serial().with_trace(TraceConfig::with_capacity(4096).postmortem(path.clone()));
    let runs = runner.run_map(&cells, |cell| {
        // Leave something on the ring, then fail the second cell.
        bgpbench_telemetry::trace_instant(
            bgpbench_telemetry::TraceEventId::CellStart,
            cell.cell_seed(),
            cell.prefix_count() as u64,
        );
        if cell.cell_seed() == 2 {
            panic!("injected post-mortem fault");
        }
        cell.cell_seed()
    });
    assert!(runs[1].result.is_err(), "cell 2 must have failed");

    let body = std::fs::read_to_string(&path).expect("post-mortem file written");
    let stats = validate_chrome_json(&body).expect("post-mortem validates as Chrome trace JSON");
    assert!(stats.events >= 2, "both cell-start instants captured");
    let _ = std::fs::remove_file(&path);
    bgpbench_telemetry::disable_trace();
}
