//! Policy-engine guarantees at the grid level: the route-map scenarios
//! S13–S15 produce bit-identical results at any thread count, the
//! [`CellSpec`] policy knob matches the scenarios' built-in profiles,
//! and attaching an empty-impact profile leaves the paper's scenarios
//! untouched.

use bgpbench_core::{CellSpec, GridRunner, PolicyProfile, Scenario, ScenarioResult};
use bgpbench_models::{pentium3, xeon, PlatformSpec};

fn platforms() -> Vec<PlatformSpec> {
    vec![pentium3(), xeon()]
}

/// The S13–S15 × platform grid under quick sizing.
fn policy_cells() -> Vec<CellSpec> {
    Scenario::POLICY
        .iter()
        .flat_map(|&scenario| {
            platforms()
                .into_iter()
                .map(move |platform| CellSpec::new(scenario, platform).prefixes(400).seed(5))
        })
        .collect()
}

fn results(runs: Vec<bgpbench_core::CellRun>) -> Vec<ScenarioResult> {
    runs.into_iter()
        .map(|run| run.result.expect("policy cell must not panic"))
        .collect()
}

#[test]
fn policy_grid_is_bit_identical_serial_vs_parallel() {
    let cells = policy_cells();
    let serial = results(GridRunner::new(1).run_cells(&cells));
    let parallel = results(GridRunner::new(8).run_cells(&cells));
    assert_eq!(
        serial, parallel,
        "thread count must never change policy-scenario outcomes"
    );
    assert_eq!(serial.len(), Scenario::POLICY.len() * platforms().len());
    for result in &serial {
        assert!(result.completed, "{} timed out", result.scenario);
        assert!(result.tps() > 0.0, "{} produced zero tps", result.scenario);
        assert!(result.virtual_ticks > 0);
    }
}

#[test]
fn cell_policy_knob_reproduces_the_scenario_profile() {
    // S8 is S13's operation without the profile; attaching FilterChurn
    // through the knob must reproduce S13's numbers exactly.
    let s13 = CellSpec::new(Scenario::S13, xeon()).prefixes(400).seed(5);
    let knob = CellSpec::new(Scenario::S8, xeon())
        .prefixes(400)
        .seed(5)
        .policy(PolicyProfile::FilterChurn);
    let a = s13.run();
    let b = knob.run();
    assert_eq!(a.transactions, b.transactions);
    assert_eq!(a.virtual_ticks, b.virtual_ticks);
    assert!((a.elapsed_secs - b.elapsed_secs).abs() < 1e-12);
}

#[test]
fn import_policies_slow_the_no_change_scenario_down() {
    // S6's phase-3 routes lose the decision process and never touch
    // the RIB or FIB, so a route-map can only *add* work there: the
    // policed twin must cost strictly more virtual time. (On scenarios
    // with FIB churn a filter can win overall by skipping expensive
    // installs, so this is the clean A-B.)
    let unpoliced = CellSpec::new(Scenario::S6, xeon()).prefixes(400).seed(5);
    let policed = unpoliced.clone().policy(PolicyProfile::FilterChurn);
    let off = unpoliced.run();
    let on = policed.run();
    assert_eq!(off.transactions, on.transactions);
    assert!(
        on.virtual_ticks > off.virtual_ticks,
        "policy must cost cycles: {} vs {}",
        on.virtual_ticks,
        off.virtual_ticks
    );
}

#[test]
fn filtering_fib_churn_can_be_cheaper_than_installing_it() {
    // The counterpart observation: on S8 every phase-3 announcement
    // rewrites the FIB, and rejecting half of them at the policy stage
    // saves more install work than the map evaluation costs.
    let unpoliced = CellSpec::new(Scenario::S8, xeon()).prefixes(400).seed(5);
    let policed = unpoliced.clone().policy(PolicyProfile::FilterChurn);
    let off = unpoliced.run();
    let on = policed.run();
    assert_eq!(off.transactions, on.transactions);
    assert!(
        on.virtual_ticks < off.virtual_ticks,
        "filtering half the churn should be cheaper: {} vs {}",
        on.virtual_ticks,
        off.virtual_ticks
    );
}
