//! Fault-injection engine guarantees: the same seeded [`FaultPlan`]
//! produces bit-identical convergence artifacts at any thread count,
//! and every fault scenario S9–S12 completes under quick sizing.

use bgpbench_core::{convergence_report, flap_storm_figure, CellSpec, GridRunner, Scenario};
use bgpbench_models::{pentium3, xeon, PlatformSpec};

fn platforms() -> Vec<PlatformSpec> {
    vec![pentium3(), xeon()]
}

/// A base cell small enough to run the S9–S12 grid twice in a test.
fn tiny_base() -> CellSpec {
    CellSpec::new(Scenario::S9, xeon())
        .prefixes(100)
        .seed(7)
        .peers(3)
        .hold_ticks(400)
        .flap_interval(800)
}

#[test]
fn convergence_report_is_bit_identical_serial_vs_parallel() {
    let base = tiny_base();
    let serial = convergence_report(&mut GridRunner::new(1), &platforms(), &base);
    let parallel = convergence_report(&mut GridRunner::new(8), &platforms(), &base);
    assert_eq!(
        serial, parallel,
        "thread count must never change fault-scenario outcomes"
    );
    assert_eq!(
        serial.runs.len(),
        Scenario::FAULTS.len() * platforms().len()
    );
    for run in &serial.runs {
        assert!(
            run.outcome.converged,
            "{} on {}",
            run.scenario, run.platform
        );
    }
}

#[test]
fn flap_storm_figure_is_bit_identical_serial_vs_parallel() {
    let base = tiny_base();
    let intervals = [600, 1200];
    let serial = flap_storm_figure(&mut GridRunner::new(1), &platforms(), &intervals, &base);
    let parallel = flap_storm_figure(&mut GridRunner::new(8), &platforms(), &intervals, &base);
    assert_eq!(
        serial, parallel,
        "thread count must never change the flap-storm sweep"
    );
    // Two panels (ticks to converge, duplicate announcements), one
    // series per platform, one point per swept interval.
    assert_eq!(serial.panels.len(), 2);
    for panel in &serial.panels {
        assert_eq!(panel.series.len(), platforms().len());
        for (_, points) in &panel.series {
            assert_eq!(points.len(), intervals.len());
        }
    }
}

#[test]
fn every_fault_scenario_survives_the_standard_grid_path() {
    // S9–S12 also run through the plain `CellSpec::run` path used by
    // Table-III-style consumers, flattening to a `ScenarioResult`.
    for &scenario in &Scenario::FAULTS {
        let cell = tiny_base().with_scenario_platform(scenario, xeon());
        let result = cell.run();
        assert!(result.completed, "{scenario} did not converge");
        assert!(result.transactions >= 3 * 100, "{scenario} transactions");
        assert!(result.virtual_ticks > 0);
    }
}

#[test]
fn distinct_seeds_change_the_storm_but_not_determinism() {
    let a = tiny_base().run_churn();
    let b = tiny_base().run_churn();
    let c = tiny_base().seed(8).run_churn();
    assert_eq!(a, b, "same seed must be reproducible");
    // A different seed re-times the storm; the convergence tick is the
    // most sensitive output.
    assert_ne!(
        (a.outcome.ticks, a.outcome.duplicate_updates),
        (c.outcome.ticks, c.outcome.duplicate_updates),
        "seed must steer the fault plan"
    );
}
