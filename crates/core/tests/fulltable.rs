//! Internet-scale workload scenarios (S16–S18): quick-size smoke
//! runs, serial/parallel grid determinism, shard invariance, and the
//! `WorkloadSpec` override path (including MRT replay driving the
//! harness).

use std::net::Ipv4Addr;
use std::sync::Arc;

use bgpbench_core::{
    run_scenario, CellSpec, GridRunner, Scenario, ScenarioConfig, WorkloadKind, WorkloadSpec,
};
use bgpbench_models::xeon;
use bgpbench_wire::mrt::{self, MrtPeer, PeerIndexTable, RibEntry, RibPrefix};
use bgpbench_wire::{AsPath, Asn, Origin, PathAttribute, Prefix, RouterId};

/// Quick sizing for the full-table scenarios — same workload shape as
/// the 1M-prefix runs, scaled down to test time.
fn quick(scenario: Scenario) -> CellSpec {
    CellSpec::new(scenario, xeon()).prefixes(2000).seed(7)
}

#[test]
fn fulltable_scenarios_complete_at_quick_size() {
    for scenario in Scenario::FULLTABLE {
        assert_eq!(scenario.workload(), WorkloadKind::Modern);
        let result = quick(scenario).run();
        assert!(result.completed, "{scenario} timed out");
        assert!(result.tps() > 0.0, "{scenario} produced zero tps");
        assert!(
            result.transactions >= 1000,
            "{scenario} measured too few transactions: {}",
            result.transactions
        );
    }
}

#[test]
fn fulltable_grid_is_bit_identical_serial_vs_parallel() {
    let cells: Vec<CellSpec> = Scenario::FULLTABLE
        .into_iter()
        .flat_map(|s| [quick(s).seed(7), quick(s).seed(8)])
        .collect();
    let serial: Vec<_> = GridRunner::new(1)
        .run_cells(&cells)
        .into_iter()
        .map(|run| run.result.expect("cell must complete"))
        .collect();
    let parallel: Vec<_> = GridRunner::new(8)
        .run_cells(&cells)
        .into_iter()
        .map(|run| run.result.expect("cell must complete"))
        .collect();
    assert_eq!(
        serial, parallel,
        "thread count must never change a full-table result"
    );
}

#[test]
fn fulltable_is_bit_identical_at_one_and_four_shards() {
    for scenario in Scenario::FULLTABLE {
        let single = quick(scenario).rib_shards(1).run();
        let sharded = quick(scenario).rib_shards(4).run();
        assert_eq!(
            single, sharded,
            "{scenario}: shard count changed the simulated result"
        );
        assert!(single.completed, "{scenario} did not complete");
    }
}

#[test]
fn repeated_modern_runs_are_deterministic() {
    let config = ScenarioConfig::builder().prefixes(1500).seed(42).build();
    let first = run_scenario(&xeon(), Scenario::S17, &config);
    let second = run_scenario(&xeon(), Scenario::S17, &config);
    assert_eq!(first, second, "same seed must reproduce the same run");
}

#[test]
fn workload_override_swaps_the_generator_on_a_classic_scenario() {
    // S2 defaults to the 2007-era classic table; the override drives
    // it from the modern generator instead. Both must complete and
    // measure the full requested table.
    let classic = quick(Scenario::S2).run();
    let modern = quick(Scenario::S2).workload(WorkloadSpec::Modern).run();
    assert!(classic.completed && modern.completed);
    assert_eq!(classic.transactions, 2000);
    assert_eq!(modern.transactions, 2000);
}

/// A minimal TABLE_DUMP_V2 dump with `prefixes` RIB entries.
fn tiny_dump(prefixes: &[&str]) -> Vec<u8> {
    let mut out = Vec::new();
    let next_hop = Ipv4Addr::new(10, 0, 0, 2);
    PeerIndexTable {
        collector_id: RouterId(0xC000_0201),
        view_name: String::new(),
        peers: vec![MrtPeer {
            bgp_id: RouterId(0x0A00_0002),
            asn: Asn(65001),
            addr: Some(next_hop),
        }],
    }
    .encode(1_186_617_600, &mut out);
    for (seq, text) in prefixes.iter().enumerate() {
        RibPrefix {
            sequence: seq as u32,
            prefix: text.parse::<Prefix>().expect("test prefix"),
            entries: vec![RibEntry {
                peer_index: 0,
                originated: 1_186_610_000,
                attributes: vec![
                    PathAttribute::Origin(Origin::Igp),
                    PathAttribute::AsPath(AsPath::from_sequence([Asn(65001), Asn(3356)])),
                    PathAttribute::NextHop(next_hop),
                ],
            }],
        }
        .encode(1_186_617_600, &mut out);
    }
    out
}

#[test]
fn mrt_replay_sizes_the_run_from_the_dump_not_the_request() {
    let dump = tiny_dump(&[
        "198.51.100.0/24",
        "203.0.113.0/24",
        "192.0.2.0/25",
        "198.18.0.0/24",
        "198.19.0.0/24",
    ]);
    // Sanity: the dump decodes (1 peer index + 5 RIB records).
    assert_eq!(mrt::MrtReader::new(&dump).count(), 6);
    let config = ScenarioConfig::builder()
        .prefixes(1000) // asks for far more than the dump holds
        .seed(7)
        .workload(WorkloadSpec::MrtBytes(Arc::new(dump)))
        .build();
    let result = run_scenario(&xeon(), Scenario::S1, &config);
    assert!(result.completed);
    // Phase targets follow the dump's actual table size.
    assert_eq!(result.transactions, 5);
}
