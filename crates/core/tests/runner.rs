//! Engine guarantees: serial and parallel grid execution produce
//! bit-identical artifacts, and a panicking cell is contained to its
//! own slot.

use std::sync::atomic::{AtomicUsize, Ordering};

use bgpbench_core::experiments::{figure5, table3, ExperimentConfig};
use bgpbench_core::{CellSpec, GridRunner, Scenario};
use bgpbench_models::{pentium3, xeon};

/// Sizes small enough to run the full grid twice in a test.
fn tiny() -> ExperimentConfig {
    ExperimentConfig {
        small_prefixes: 60,
        large_prefixes: 400,
        seed: 2007,
        cross_points: 2,
    }
}

#[test]
fn table3_is_bit_identical_serial_vs_parallel() {
    let config = tiny();
    let serial = table3(&mut GridRunner::new(1), &config);
    let parallel = table3(&mut GridRunner::new(8), &config);
    assert_eq!(
        serial, parallel,
        "thread count must never change Table III cells"
    );
}

#[test]
fn figure5_is_bit_identical_serial_vs_parallel() {
    let config = tiny();
    let serial = figure5(&mut GridRunner::new(1), &config);
    let parallel = figure5(&mut GridRunner::new(8), &config);
    assert_eq!(
        serial, parallel,
        "thread count must never change Figure 5 data"
    );
}

#[test]
fn one_panicking_cell_does_not_lose_the_others() {
    let cells: Vec<CellSpec> = (0..6)
        .map(|i| {
            CellSpec::new(Scenario::S2, xeon())
                .prefixes(100)
                .seed(i as u64)
        })
        .collect();
    let poison = 3usize;
    let runs = GridRunner::new(4).run_map(&cells, |cell| {
        if cell.cell_seed() == poison as u64 {
            panic!("injected failure for seed {poison}");
        }
        cell.run()
    });
    assert_eq!(runs.len(), cells.len());
    for (index, run) in runs.iter().enumerate() {
        assert_eq!(run.index, index);
        if index == poison {
            let error = run
                .result
                .as_ref()
                .expect_err("poisoned cell must surface its panic");
            assert!(
                error.message.contains("injected failure"),
                "unexpected message: {}",
                error.message
            );
        } else {
            let result = run
                .result
                .as_ref()
                .expect("healthy cells must survive a sibling's panic");
            assert_eq!(result.transactions, 100);
            assert!(result.completed);
        }
    }
}

#[test]
fn a_zero_prefix_cell_reports_the_harness_panic_message() {
    // The harness's own assertion payload must travel through the
    // catch_unwind boundary intact.
    let cells = vec![
        CellSpec::new(Scenario::S2, pentium3()).prefixes(100),
        CellSpec::new(Scenario::S2, pentium3()).prefixes(0),
    ];
    let runs = GridRunner::new(2).run_cells(&cells);
    assert!(runs[0].result.is_ok());
    let error = runs[1].result.as_ref().unwrap_err();
    assert!(
        error.message.contains("at least one prefix"),
        "unexpected message: {}",
        error.message
    );
}

#[test]
fn observer_failure_reporting_matches_results() {
    struct Counter<'a> {
        started: &'a AtomicUsize,
        failed: &'a AtomicUsize,
        completed: &'a AtomicUsize,
    }
    impl bgpbench_core::RunObserver for Counter<'_> {
        fn on_cell_start(&mut self, _index: usize, _cell: &CellSpec) {
            self.started.fetch_add(1, Ordering::Relaxed);
        }
        fn on_cell_complete(
            &mut self,
            _index: usize,
            _cell: &CellSpec,
            error: Option<&bgpbench_core::CellError>,
            _wall: std::time::Duration,
            virtual_ticks: Option<u64>,
        ) {
            if error.is_some() {
                self.failed.fetch_add(1, Ordering::Relaxed);
            } else {
                // run_cells produces ScenarioResults, so every healthy
                // cell must report its virtual-clock cost.
                assert!(virtual_ticks.is_some_and(|ticks| ticks > 0));
            }
            self.completed.fetch_add(1, Ordering::Relaxed);
        }
    }

    static STARTED: AtomicUsize = AtomicUsize::new(0);
    static FAILED: AtomicUsize = AtomicUsize::new(0);
    static COMPLETED: AtomicUsize = AtomicUsize::new(0);
    let cells = vec![
        CellSpec::new(Scenario::S2, xeon()).prefixes(100),
        CellSpec::new(Scenario::S2, xeon()).prefixes(0),
        CellSpec::new(Scenario::S2, xeon()).prefixes(100).seed(9),
    ];
    let mut runner = GridRunner::new(2).with_observer(Box::new(Counter {
        started: &STARTED,
        failed: &FAILED,
        completed: &COMPLETED,
    }));
    let runs = runner.run_cells(&cells);
    assert_eq!(STARTED.load(Ordering::Relaxed), 3);
    assert_eq!(COMPLETED.load(Ordering::Relaxed), 3);
    assert_eq!(FAILED.load(Ordering::Relaxed), 1);
    assert_eq!(runs.iter().filter(|r| r.result.is_err()).count(), 1);
}
