//! Acceptance check for the measured Fig. 3–4 report: the paper's
//! qualitative decomposition must emerge from span data, not model
//! constants.
//!
//! This test lives alone in its own binary because [`fig34_breakdown`]
//! enables the process-global telemetry registry; sharing the process
//! with other scenario-running tests would blend their recordings into
//! the per-cell attribution diffs.

use bgpbench_core::breakdown::fig34_breakdown;
use bgpbench_core::experiments::ExperimentConfig;
use bgpbench_core::Scenario;

#[test]
fn measured_breakdown_reproduces_the_paper_shape() {
    let breakdown = fig34_breakdown(&ExperimentConfig::quick());
    eprintln!("{}", bgpbench_core::Render::text(&breakdown));
    assert_eq!(breakdown.rows.len(), 8);

    // Every row actually measured something through the spans.
    for row in &breakdown.rows {
        let total: u64 = row.span_host_ns.iter().sum();
        assert!(total > 0, "{}: no span time recorded", row.scenario);
        let cycles: u64 = row.sim_cycles.iter().sum();
        assert!(cycles > 0, "{}: no cycles attributed", row.scenario);
    }

    // The paper's shape: bgp dominates; fea share grows in the
    // forwarding-table-change scenarios.
    let violations = breakdown.check_shape();
    assert!(
        violations.is_empty(),
        "Fig. 3-4 shape not reproduced from instrumentation:\n{}",
        violations.join("\n")
    );

    // The simulator's (deterministic) cycle attribution agrees on the
    // fea contrast: the route-replacing scenarios burn strictly more
    // FEA cycles than their losing counterparts, because their timed
    // phase rewrites the forwarding table.
    for (lose, win) in [(Scenario::S5, Scenario::S7), (Scenario::S6, Scenario::S8)] {
        let lose_fea = breakdown.row(lose).sim_cycles[3];
        let win_fea = breakdown.row(win).sim_cycles[3];
        assert!(
            win_fea > lose_fea,
            "{win} fea cycles {win_fea} not above {lose} {lose_fea}"
        );
        // And the BGP process itself worked in both.
        assert!(breakdown.row(lose).sim_cycles[0] > 0);
        assert!(breakdown.row(win).sim_cycles[0] > 0);
    }

    // The replace scenarios actually wrote the FIB during the timed
    // phase; the losing ones did not add FIB writes beyond table load.
    let s6_fea = breakdown.row(Scenario::S6).span_count[1];
    let s8_fea = breakdown.row(Scenario::S8).span_count[1];
    assert!(
        s8_fea > s6_fea,
        "S8 fea spans {s8_fea} not above S6 {s6_fea}"
    );
}
