//! The BGP router benchmark of *Benchmarking BGP Routers* (IISWC
//! 2007): scenario definitions, the two-speaker/three-phase
//! methodology, the transactions-per-second metric, and the experiment
//! drivers that regenerate every table and figure of the paper.
//!
//! # The benchmark in one paragraph
//!
//! A router under test peers with two speakers (paper Fig. 1). In
//! Phase 1, Speaker 1 injects a full routing table; in Phase 2 the
//! router re-advertises its table to Speaker 2; in Phase 3 a speaker
//! sends incremental updates. Eight scenarios (Table I) cross the BGP
//! operation {start-up announce, ending withdraw, incremental announce
//! that loses the decision process, incremental announce that wins it}
//! with the packetization {1 prefix per UPDATE, 500 prefixes per
//! UPDATE}. Only the scenario's relevant phase is timed; the score is
//! prefix-level *transactions per second*.
//!
//! # Entry points
//!
//! * [`Scenario`] — the open scenario registry: the paper's eight
//!   ([`Scenario::ALL`]) plus the session-churn fault scenarios
//!   S9–S12 ([`Scenario::FAULTS`]), the route-map policy scenarios
//!   S13–S15 ([`Scenario::POLICY`], see [`PolicyProfile`]), and the
//!   Internet-scale full-table scenarios S16–S18
//!   ([`Scenario::FULLTABLE`], driven by a [`WorkloadSpec`] source);
//! * [`CellSpec`] — one scenario × platform cell as data, with a
//!   builder for sizing, seed, cross-traffic, and churn knobs;
//! * [`Topology`] — the multi-peer session engine: N speakers, a
//!   per-peer RFC 4271 FSM, and a seeded [`FaultPlan`] injected at the
//!   simnet layer (see [`topology`] and [`faults`]);
//! * [`GridRunner`] — executes cell grids across a thread pool with
//!   bit-identical serial/parallel results (see [`runner`]);
//! * [`experiments`] — drivers for Table III and Figures 3–6, all
//!   running on the grid engine;
//! * [`breakdown`] — the Fig. 3–4 per-process decomposition re-derived
//!   from telemetry spans and simulator cycle attribution instead of
//!   model constants;
//! * [`live`] — the same methodology against a real BGP daemon over
//!   TCP;
//! * [`report`] — the [`Render`] trait: text and CSV output for every
//!   table and figure, next to the paper's numbers.
//!
//! # Examples
//!
//! ```
//! use bgpbench_core::{run_scenario, Scenario, ScenarioConfig};
//! use bgpbench_models::xeon;
//!
//! let config = ScenarioConfig { prefixes: 500, seed: 1, ..ScenarioConfig::default() };
//! let result = run_scenario(&xeon(), Scenario::S2, &config);
//! assert_eq!(result.transactions, 500);
//! assert!(result.tps() > 100.0);
//! ```

#![forbid(unsafe_code)]

pub mod breakdown;
pub mod experiments;
pub mod extensions;
pub mod faults;
mod harness;
pub mod live;
pub mod policy;
pub mod report;
pub mod runner;
mod scenario;
pub mod topology;

pub use bgpbench_speaker::{BurstSpec, WorkloadError, WorkloadSource, WorkloadSpec};
pub use breakdown::{fig34_breakdown, BreakdownRow, Fig34Breakdown};
pub use faults::{FaultAction, FaultEvent, FaultPlan};
pub use harness::{
    run_churn, run_scenario, run_scenario_repeated, ChurnConfig, RepeatedResult, ScenarioConfig,
    ScenarioConfigBuilder, ScenarioResult,
};
pub use policy::PolicyProfile;
pub use report::{Render, StaticReport};
pub use runner::{
    CellError, CellRun, CellSpec, ExperimentSpec, GridRunner, NullObserver, RunObserver,
    StderrProgress,
};
pub use scenario::{BgpOperation, ChurnKind, PacketSize, Scenario, ScenarioSpec, WorkloadKind};
pub use topology::{
    convergence_report, flap_storm_figure, ConvergenceOutcome, ConvergenceReport, ConvergenceRun,
    Topology, TopologyConfig,
};
