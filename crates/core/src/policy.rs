//! Named policy profiles for the policy benchmark scenarios S13–S15.
//!
//! The paper's eight scenarios run with an empty policy (every route
//! permitted unmodified); the policy scenarios attach one of these
//! profiles to the router under test before Phase 1. Each profile is a
//! pair of [`RouteMap`]s — one evaluated at import (Adj-RIB-In →
//! Loc-RIB), one at export (Loc-RIB → Adj-RIB-Out) — built from the
//! `bgpbench-rib` route-map DSL.
//!
//! This module is on the workspace lint's `no-panic` list: profiles are
//! constructed inside measured scenario setup, and a panic there would
//! abort a whole grid cell instead of surfacing as a result.

use bgpbench_rib::{MatchClause, PrefixList, PrefixMatch, RouteMap, RouteMapEntry, SetClause};
use bgpbench_wire::{Asn, Prefix};
use std::net::Ipv4Addr;

/// Speaker 2's AS — the source of every incremental (Phase 3) stream.
const SPEAKER2_ASN: Asn = Asn(65002);

/// Community the export-rewrite profile stamps on every advertised
/// route: `65000:500` in the conventional `AS:value` encoding.
pub const EXPORT_COMMUNITY: u32 = (65000 << 16) | 500;

/// LOCAL_PREF the MED-oscillation profile assigns to routes carrying a
/// nonzero MED (above the default degree of preference, so such routes
/// win the decision process outright).
pub const OSCILLATION_LOCAL_PREF: u32 = 200;

/// A named import/export route-map pair a scenario (or a [`crate::CellSpec`]
/// knob) attaches to the router under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyProfile {
    /// S13: an import filter that denies Speaker 2's announcements for
    /// the half of the address space under `0.0.0.0/1`. Phase-3 churn
    /// splits into policy rejections (no FIB change) and decision-
    /// process wins (FIB rewrite), so the scenario measures the filter
    /// on the import hot path.
    FilterChurn,
    /// S14: an export route-map that stamps [`EXPORT_COMMUNITY`] on
    /// every route advertised to a peer. The import side stays empty,
    /// so Phase 1 is bit-identical to the unpoliced scenarios.
    CommunityRewrite,
    /// S15: an import map that raises LOCAL_PREF to
    /// [`OSCILLATION_LOCAL_PREF`] for routes carrying a nonzero MED.
    /// Re-announcing the same prefixes with MED toggling between high
    /// and zero flips the best path on every round.
    MedOscillation,
}

impl PolicyProfile {
    /// Every profile, in scenario order (S13, S14, S15).
    pub const ALL: [PolicyProfile; 3] = [
        PolicyProfile::FilterChurn,
        PolicyProfile::CommunityRewrite,
        PolicyProfile::MedOscillation,
    ];

    /// Short name used in reports and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            PolicyProfile::FilterChurn => "filter-churn",
            PolicyProfile::CommunityRewrite => "community-rewrite",
            PolicyProfile::MedOscillation => "med-oscillation",
        }
    }

    /// The route-map evaluated at import (Adj-RIB-In → Loc-RIB).
    pub fn import_map(self) -> RouteMap {
        match self {
            PolicyProfile::FilterChurn => RouteMap::new([
                RouteMapEntry::deny(10)
                    .matching(MatchClause::AsPathContains(SPEAKER2_ASN))
                    .matching(MatchClause::Prefix(PrefixList::new([(
                        true,
                        PrefixMatch::range(low_half(), 1, 32),
                    )]))),
                RouteMapEntry::permit(20),
            ]),
            PolicyProfile::CommunityRewrite => RouteMap::permit_all(),
            PolicyProfile::MedOscillation => RouteMap::new([
                RouteMapEntry::permit(10)
                    .matching(MatchClause::MedAtLeast(1))
                    .set(SetClause::LocalPref(OSCILLATION_LOCAL_PREF)),
                RouteMapEntry::permit(20),
            ]),
        }
    }

    /// The route-map evaluated at export (Loc-RIB → Adj-RIB-Out).
    pub fn export_map(self) -> RouteMap {
        match self {
            PolicyProfile::FilterChurn | PolicyProfile::MedOscillation => RouteMap::permit_all(),
            PolicyProfile::CommunityRewrite => RouteMap::new([
                RouteMapEntry::permit(10).set(SetClause::AddCommunity(EXPORT_COMMUNITY))
            ]),
        }
    }
}

/// `0.0.0.0/1` — the lower half of the IPv4 space (the synthetic table
/// draws first octets uniformly from 1–223, so this covers a bit over
/// half of any generated table).
fn low_half() -> Prefix {
    Prefix::new(Ipv4Addr::new(0, 0, 0, 0), 1).unwrap_or(Prefix::DEFAULT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpbench_rib::RouteAttributes;
    use bgpbench_wire::{AsPath, Origin};

    fn attrs(asns: &[u16], med: Option<u32>) -> RouteAttributes {
        let mut builder = RouteAttributes::builder()
            .origin(Origin::Igp)
            .as_path(AsPath::from_sequence(asns.iter().copied().map(Asn)))
            .next_hop(Ipv4Addr::new(10, 0, 0, 2));
        if let Some(med) = med {
            builder = builder.med(med);
        }
        builder.build()
    }

    fn prefix(text: &str) -> Prefix {
        text.parse().unwrap()
    }

    #[test]
    fn filter_churn_denies_speaker2_low_half_only() {
        let map = PolicyProfile::FilterChurn.import_map();
        let low = prefix("64.10.0.0/16");
        let high = prefix("200.10.0.0/16");
        let from_s2 = attrs(&[65002, 1000], None);
        let from_s1 = attrs(&[65001, 1000], None);
        assert!(map.evaluate(&low, from_s2.clone()).is_none());
        assert!(map.evaluate(&high, from_s2).is_some());
        assert!(map.evaluate(&low, from_s1.clone()).is_some());
        assert!(map.evaluate(&high, from_s1).is_some());
    }

    #[test]
    fn community_rewrite_tags_exports_and_leaves_imports_open() {
        assert!(PolicyProfile::CommunityRewrite.import_map().is_empty());
        let map = PolicyProfile::CommunityRewrite.export_map();
        let out = map
            .evaluate(&prefix("10.0.0.0/8"), attrs(&[65001], None))
            .expect("export map permits everything");
        assert_eq!(out.communities(), &[EXPORT_COMMUNITY]);
    }

    #[test]
    fn med_oscillation_boosts_nonzero_med() {
        let map = PolicyProfile::MedOscillation.import_map();
        let boosted = map
            .evaluate(&prefix("10.0.0.0/8"), attrs(&[65002], Some(50)))
            .expect("permitted");
        assert_eq!(boosted.effective_local_pref(), OSCILLATION_LOCAL_PREF);
        let plain = map
            .evaluate(&prefix("10.0.0.0/8"), attrs(&[65002], Some(0)))
            .expect("permitted");
        assert_ne!(plain.effective_local_pref(), OSCILLATION_LOCAL_PREF);
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = PolicyProfile::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            ["filter-churn", "community-rewrite", "med-oscillation"]
        );
    }
}
