//! The parallel experiment execution engine.
//!
//! Every artifact of the paper's evaluation — Table III, Figures 3–6,
//! the extension sweeps — is an embarrassingly parallel grid of
//! independent, deterministic cells. This module makes that grid the
//! core abstraction:
//!
//! * [`CellSpec`] — one cell (scenario × platform × sizing knobs) as
//!   data, with a builder API;
//! * [`ExperimentSpec`] — a whole grid of cells;
//! * [`GridRunner`] — executes cells across a configurable thread
//!   pool; results come back in grid order, so serial and parallel
//!   execution produce **bit-identical** output;
//! * [`RunObserver`] — progress, per-cell wall-clock, and failure
//!   reporting; a panic in one cell becomes a per-cell [`CellError`],
//!   not a whole-run abort.
//!
//! # Determinism
//!
//! Each cell carries its own seed and constructs its own simulated
//! router; no state is shared between cells. [`GridRunner`] assigns
//! results to slots by cell index, so `GridRunner::new(1)` and
//! `GridRunner::new(8)` return identical vectors for the same spec
//! (asserted by the `runner_determinism` integration test).
//!
//! # Example
//!
//! ```
//! use bgpbench_core::{CellSpec, GridRunner, Scenario};
//! use bgpbench_models::{pentium3, xeon};
//!
//! let cells = vec![
//!     CellSpec::new(Scenario::S2, xeon()).prefixes(500).seed(1),
//!     CellSpec::new(Scenario::S2, pentium3()).prefixes(500).seed(1),
//! ];
//! let runs = GridRunner::new(2).run_cells(&cells);
//! assert_eq!(runs.len(), 2);
//! let xeon_tps = runs[0].result.as_ref().unwrap().tps();
//! let p3_tps = runs[1].result.as_ref().unwrap().tps();
//! assert!(xeon_tps > p3_tps);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use bgpbench_models::PlatformSpec;
use bgpbench_telemetry::{self as telemetry, TraceConfig, TraceEventId};
use crossbeam::channel;

use crate::experiments::ExperimentConfig;
use crate::harness::{
    run_scenario_with_packetization, ChurnConfig, ScenarioConfig, ScenarioResult,
};
use crate::policy::PolicyProfile;
use crate::scenario::Scenario;
use bgpbench_models::SimRouter;
use bgpbench_speaker::WorkloadSpec;

/// One benchmark cell as data: which scenario runs on which platform,
/// with which table size, seed, cross-traffic level, and (optionally)
/// a packetization override.
///
/// Built fluently:
///
/// ```
/// use bgpbench_core::{CellSpec, Scenario};
/// use bgpbench_models::xeon;
///
/// let cell = CellSpec::new(Scenario::S2, xeon())
///     .prefixes(1000)
///     .seed(7)
///     .cross_traffic(300.0);
/// assert_eq!(cell.prefix_count(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    scenario: Scenario,
    platform: PlatformSpec,
    prefixes: usize,
    seed: u64,
    cross_traffic_mbps: f64,
    prefixes_per_update: Option<usize>,
    churn: ChurnConfig,
    policy: Option<PolicyProfile>,
    rib_shards: usize,
    workload: Option<WorkloadSpec>,
    trace: Option<TraceConfig>,
}

impl CellSpec {
    /// A cell with the default sizing: 4000 prefixes, seed 2007, no
    /// cross-traffic, the scenario's own packetization, and default
    /// churn knobs for fault scenarios.
    pub fn new(scenario: Scenario, platform: PlatformSpec) -> Self {
        CellSpec {
            scenario,
            platform,
            prefixes: 4000,
            seed: 2007,
            cross_traffic_mbps: 0.0,
            prefixes_per_update: None,
            churn: ChurnConfig::default(),
            policy: None,
            rib_shards: 1,
            workload: None,
            trace: None,
        }
    }

    /// Sets the routing-table size (prefixes injected and measured).
    pub fn prefixes(mut self, prefixes: usize) -> Self {
        self.prefixes = prefixes;
        self
    }

    /// Sets the workload seed (same seed → identical run).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the cross-traffic offered load during the timed phase.
    pub fn cross_traffic(mut self, mbps: f64) -> Self {
        self.cross_traffic_mbps = mbps;
        self
    }

    /// Overrides the timed phase's prefixes-per-UPDATE (the extension
    /// sweeps measure packetizations between the paper's endpoints).
    pub fn packetization(mut self, prefixes_per_update: usize) -> Self {
        self.prefixes_per_update = Some(prefixes_per_update);
        self
    }

    /// Sets the attached-peer count for session-churn scenarios.
    pub fn peers(mut self, peers: usize) -> Self {
        self.churn.peers = peers;
        self
    }

    /// Sets the mean flap spacing (ticks) for S9's storm plan — the
    /// flap-rate sweep's axis.
    pub fn flap_interval(mut self, ticks: u64) -> Self {
        self.churn.flap_interval_ticks = ticks;
        self
    }

    /// Sets the session hold time in ticks for churn scenarios.
    pub fn hold_ticks(mut self, ticks: u64) -> Self {
        self.churn.hold_ticks = ticks;
        self
    }

    /// Sets the RIB shard count on the router under test. Results are
    /// bit-identical for every value; 1 (the default) is the
    /// single-threaded engine.
    pub fn rib_shards(mut self, shards: usize) -> Self {
        self.rib_shards = shards;
        self
    }

    /// Arms the flight recorder for this cell: tracing is enabled
    /// (idempotently) when the cell runs, and the run opens with a
    /// `grid.cell_start` instant carrying the seed and table size.
    pub fn trace(mut self, config: TraceConfig) -> Self {
        self.trace = Some(config);
        self
    }

    /// Attaches a policy profile's route-maps to the router under
    /// test, overriding the scenario's own profile — the knob behind
    /// policy-on/off A-B comparisons on the paper's eight scenarios.
    pub fn policy(mut self, profile: PolicyProfile) -> Self {
        self.policy = Some(profile);
        self
    }

    /// Drives the cell from the given workload source (synthetic
    /// classic/modern table or an MRT replay) instead of the
    /// scenario's registered kind.
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.workload = Some(spec);
        self
    }

    /// The same cell retargeted at another scenario/platform pair —
    /// how grid builders stamp one sizing template across a grid.
    pub fn with_scenario_platform(mut self, scenario: Scenario, platform: PlatformSpec) -> Self {
        self.scenario = scenario;
        self.platform = platform;
        self
    }

    /// The scenario this cell runs.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// The platform this cell runs on.
    pub fn platform(&self) -> &PlatformSpec {
        &self.platform
    }

    /// The configured table size.
    pub fn prefix_count(&self) -> usize {
        self.prefixes
    }

    /// The configured workload seed.
    pub fn cell_seed(&self) -> u64 {
        self.seed
    }

    /// The configured cross-traffic level in Mbps.
    pub fn cross_traffic_mbps(&self) -> f64 {
        self.cross_traffic_mbps
    }

    /// The configured churn knobs (used by fault scenarios).
    pub fn churn_config(&self) -> ChurnConfig {
        self.churn
    }

    /// The harness configuration this cell resolves to.
    pub fn scenario_config(&self) -> ScenarioConfig {
        ScenarioConfig {
            prefixes: self.prefixes,
            seed: self.seed,
            cross_traffic_mbps: self.cross_traffic_mbps,
            churn: self.churn,
            policy: self.policy,
            rib_shards: self.rib_shards,
            workload: self.workload.clone(),
        }
    }

    /// Runs the cell on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if the table size is zero or an unmeasured setup phase
    /// exceeds the safety limit (under [`GridRunner`] such panics are
    /// captured as per-cell [`CellError`]s).
    pub fn run(&self) -> ScenarioResult {
        self.run_with_router().0
    }

    /// Runs the cell and hands back the simulated router for post-run
    /// inspection (figure experiments read its recorder).
    pub fn run_with_router(&self) -> (ScenarioResult, SimRouter) {
        self.arm_trace();
        run_scenario_with_packetization(
            &self.platform,
            self.scenario,
            &self.scenario_config(),
            self.prefixes_per_update,
        )
    }

    /// Runs a session-churn cell (S9–S12) through the topology engine
    /// and returns its full convergence row (flaps, duplicate updates,
    /// ticks to converge) instead of the flattened [`ScenarioResult`].
    ///
    /// # Panics
    ///
    /// Panics if the cell's scenario is not a fault scenario.
    pub fn run_churn(&self) -> crate::topology::ConvergenceRun {
        self.arm_trace();
        crate::harness::run_churn(&self.platform, self.scenario, &self.scenario_config())
    }

    fn arm_trace(&self) {
        if let Some(config) = &self.trace {
            telemetry::enable_trace(config);
            telemetry::trace_instant(TraceEventId::CellStart, self.seed, self.prefixes as u64);
        }
    }

    fn label(&self) -> String {
        if self.cross_traffic_mbps > 0.0 {
            format!(
                "{} on {} ({} prefixes, {:.0} Mbps cross)",
                self.scenario, self.platform.name, self.prefixes, self.cross_traffic_mbps
            )
        } else {
            format!(
                "{} on {} ({} prefixes)",
                self.scenario, self.platform.name, self.prefixes
            )
        }
    }
}

/// A grid of cells to execute — the experiment as data.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExperimentSpec {
    cells: Vec<CellSpec>,
}

impl ExperimentSpec {
    /// A spec over explicit cells.
    pub fn from_cells(cells: Vec<CellSpec>) -> Self {
        ExperimentSpec { cells }
    }

    /// The scenario × platform cross product (row-major: all platforms
    /// of scenario 1, then scenario 2, …), sized per `config`, without
    /// cross-traffic. This is Table III's grid when given all eight
    /// scenarios and all four platforms.
    pub fn grid(
        scenarios: &[Scenario],
        platforms: &[PlatformSpec],
        config: &ExperimentConfig,
    ) -> Self {
        let cells = scenarios
            .iter()
            .flat_map(|&scenario| {
                platforms.iter().map(move |platform| {
                    CellSpec::new(scenario, platform.clone())
                        .prefixes(config.prefixes_for(scenario))
                        .seed(config.seed)
                })
            })
            .collect();
        ExperimentSpec { cells }
    }

    /// Appends a cell.
    pub fn push(&mut self, cell: CellSpec) {
        self.cells.push(cell);
    }

    /// The cells in grid order.
    pub fn cells(&self) -> &[CellSpec] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// A captured failure of one cell (the payload of a panic in the
/// cell's scenario run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// The panic message.
    pub message: String,
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell panicked: {}", self.message)
    }
}

impl std::error::Error for CellError {}

/// The outcome of one executed cell.
#[derive(Debug, Clone)]
pub struct CellRun<T = ScenarioResult> {
    /// The cell's index in grid order.
    pub index: usize,
    /// The cell's product, or the captured failure.
    pub result: Result<T, CellError>,
    /// Wall-clock time the cell took on its worker thread.
    pub wall: Duration,
}

/// Progress and failure reporting for a grid run. All callbacks fire
/// on the thread that called the runner, in event order (cell starts
/// and completions interleave under parallel execution).
pub trait RunObserver {
    /// The run is about to execute `total` cells.
    fn on_run_start(&mut self, total: usize) {
        let _ = total;
    }

    /// A worker picked up cell `index`.
    fn on_cell_start(&mut self, index: usize, cell: &CellSpec) {
        let _ = (index, cell);
    }

    /// Cell `index` finished; `error` is the captured panic, if any.
    /// `virtual_ticks` is the cell's simulated-clock cost when the job
    /// produces a [`ScenarioResult`] (None for custom `run_map` jobs)
    /// — deterministic per cell, so serial and parallel runs report
    /// the same value.
    fn on_cell_complete(
        &mut self,
        index: usize,
        cell: &CellSpec,
        error: Option<&CellError>,
        wall: Duration,
        virtual_ticks: Option<u64>,
    ) {
        let _ = (index, cell, error, wall, virtual_ticks);
    }

    /// The whole grid finished.
    fn on_run_complete(&mut self, total: usize, failed: usize, wall: Duration) {
        let _ = (total, failed, wall);
    }
}

/// The do-nothing observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl RunObserver for NullObserver {}

/// An observer that prints one line per completed cell (and a summary
/// line) to stderr — what the bench binaries use.
#[derive(Debug, Default)]
pub struct StderrProgress {
    total: usize,
    done: usize,
}

impl RunObserver for StderrProgress {
    fn on_run_start(&mut self, total: usize) {
        self.total = total;
        self.done = 0;
    }

    fn on_cell_complete(
        &mut self,
        _index: usize,
        cell: &CellSpec,
        error: Option<&CellError>,
        wall: Duration,
        virtual_ticks: Option<u64>,
    ) {
        self.done += 1;
        match error {
            None => match virtual_ticks {
                Some(ticks) => eprintln!(
                    "[{}/{}] {} done in {:.2?} ({ticks} virtual ticks)",
                    self.done,
                    self.total,
                    cell.label(),
                    wall
                ),
                None => eprintln!(
                    "[{}/{}] {} done in {:.2?}",
                    self.done,
                    self.total,
                    cell.label(),
                    wall
                ),
            },
            Some(error) => {
                eprintln!(
                    "[{}/{}] {} FAILED after {:.2?}: {}",
                    self.done,
                    self.total,
                    cell.label(),
                    wall,
                    error.message
                );
                // Post-mortem: the most recent journal events (decision
                // outcomes, damping transitions, session churn) leading
                // up to the panic, when telemetry is recording.
                if telemetry::enabled() {
                    let dump = telemetry::journal_dump_text(32);
                    if !dump.is_empty() {
                        eprintln!("--- telemetry journal (most recent last) ---");
                        eprint!("{dump}");
                        eprintln!("--------------------------------------------");
                    }
                }
            }
        }
    }

    fn on_run_complete(&mut self, total: usize, failed: usize, wall: Duration) {
        if failed > 0 {
            eprintln!("{total} cells in {wall:.2?} ({failed} failed)");
        } else {
            eprintln!("{total} cells in {wall:.2?}");
        }
    }
}

enum Event<T> {
    Started(usize),
    Finished(CellRun<T>),
}

/// Executes experiment grids across a thread pool.
///
/// Results always come back in grid order with per-cell outcomes;
/// thread count affects wall-clock only, never values (see the module
/// docs on determinism).
pub struct GridRunner {
    threads: usize,
    observer: Box<dyn RunObserver>,
    trace: Option<TraceConfig>,
}

impl std::fmt::Debug for GridRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GridRunner")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl GridRunner {
    /// A runner over `threads` worker threads (0 is clamped to 1) with
    /// no progress reporting.
    pub fn new(threads: usize) -> Self {
        GridRunner {
            threads: threads.max(1),
            observer: Box::new(NullObserver),
            trace: None,
        }
    }

    /// A single-threaded runner: cells execute on the calling thread
    /// in grid order.
    pub fn serial() -> Self {
        GridRunner::new(1)
    }

    /// Replaces the progress observer.
    pub fn with_observer(mut self, observer: Box<dyn RunObserver>) -> Self {
        self.observer = observer;
        self
    }

    /// Arms the flight recorder for the whole run. When any cell
    /// panics and the config names a post-mortem path, the ring is
    /// exported there as Chrome trace JSON next to the journal dump.
    pub fn with_trace(mut self, config: TraceConfig) -> Self {
        self.trace = Some(config);
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every cell of `spec` through the standard scenario
    /// harness.
    pub fn run(&mut self, spec: &ExperimentSpec) -> Vec<CellRun> {
        self.run_cells(spec.cells())
    }

    /// Runs explicit cells through the standard scenario harness.
    pub fn run_cells(&mut self, cells: &[CellSpec]) -> Vec<CellRun> {
        self.run_map_inner(cells, CellSpec::run, |result| Some(result.virtual_ticks))
    }

    /// Runs `job` once per cell across the thread pool and returns the
    /// outcomes in grid order. This is the engine's primitive: the
    /// figure drivers pass jobs that extract recorder data from the
    /// simulated router before it is dropped.
    ///
    /// A panicking job is captured per cell: its slot holds
    /// `Err(CellError)` and every other cell's result is preserved.
    pub fn run_map<T, F>(&mut self, cells: &[CellSpec], job: F) -> Vec<CellRun<T>>
    where
        T: Send,
        F: Fn(&CellSpec) -> T + Sync,
    {
        self.run_map_inner(cells, job, |_| None)
    }

    /// The shared engine behind [`GridRunner::run_cells`] and
    /// [`GridRunner::run_map`]. `ticks_of` extracts the virtual-tick
    /// count the observer reports, when the job's product carries one.
    fn run_map_inner<T, F, V>(&mut self, cells: &[CellSpec], job: F, ticks_of: V) -> Vec<CellRun<T>>
    where
        T: Send,
        F: Fn(&CellSpec) -> T + Sync,
        V: Fn(&T) -> Option<u64>,
    {
        let started = Instant::now();
        if let Some(config) = &self.trace {
            telemetry::enable_trace(config);
        }
        self.observer.on_run_start(cells.len());
        let mut slots: Vec<Option<CellRun<T>>> = Vec::new();
        slots.resize_with(cells.len(), || None);

        if self.threads == 1 || cells.len() <= 1 {
            for (index, cell) in cells.iter().enumerate() {
                self.observer.on_cell_start(index, cell);
                let run = execute(index, cell, &job);
                let ticks = run.result.as_ref().ok().and_then(&ticks_of);
                self.observer.on_cell_complete(
                    index,
                    cell,
                    run.result.as_ref().err(),
                    run.wall,
                    ticks,
                );
                slots[index] = Some(run);
            }
        } else {
            let workers = self.threads.min(cells.len());
            let (work_tx, work_rx) = channel::unbounded::<usize>();
            let (event_tx, event_rx) = channel::unbounded::<Event<T>>();
            for index in 0..cells.len() {
                let _ = work_tx.send(index);
            }
            drop(work_tx);
            let observer = &mut self.observer;
            // One race-detector cell per result slot: the worker that
            // executes the cell writes it, the collecting main thread
            // reads it, and the `Finished` channel message is the only
            // thing ordering the two.
            #[cfg(feature = "check-sync")]
            let result_cells: Vec<u64> = (0..cells.len())
                .map(|_| parking_lot::sync_check::next_cell_id())
                .collect();
            #[cfg(feature = "check-sync")]
            let result_cells = &result_cells;
            #[cfg(feature = "check-sync")]
            let mut worker_tokens: Vec<u64> = Vec::with_capacity(workers);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let work_rx = work_rx.clone();
                    let event_tx = event_tx.clone();
                    let job = &job;
                    #[cfg(feature = "check-sync")]
                    let token = {
                        let token = parking_lot::sync_check::next_task_token();
                        parking_lot::sync_check::on_task_spawn(token);
                        worker_tokens.push(token);
                        token
                    };
                    scope.spawn(move || {
                        #[cfg(feature = "check-sync")]
                        parking_lot::sync_check::on_task_start(token);
                        while let Ok(index) = work_rx.recv() {
                            let _ = event_tx.send(Event::Started(index));
                            let run = execute(index, &cells[index], job);
                            #[cfg(feature = "check-sync")]
                            parking_lot::sync_check::record_cell_write(
                                result_cells[index],
                                "core::runner::worker_result",
                            );
                            let _ = event_tx.send(Event::Finished(run));
                        }
                        #[cfg(feature = "check-sync")]
                        parking_lot::sync_check::on_task_end(token);
                    });
                }
                drop(event_tx);
                for event in event_rx.iter() {
                    match event {
                        Event::Started(index) => {
                            observer.on_cell_start(index, &cells[index]);
                        }
                        Event::Finished(run) => {
                            let index = run.index;
                            #[cfg(feature = "check-sync")]
                            parking_lot::sync_check::record_cell_read(
                                result_cells[index],
                                "core::runner::collect",
                            );
                            let ticks = run.result.as_ref().ok().and_then(&ticks_of);
                            observer.on_cell_complete(
                                index,
                                &cells[index],
                                run.result.as_ref().err(),
                                run.wall,
                                ticks,
                            );
                            slots[index] = Some(run);
                        }
                    }
                }
            });
            #[cfg(feature = "check-sync")]
            for token in worker_tokens {
                parking_lot::sync_check::on_task_join(token);
            }
        }

        let runs: Vec<CellRun<T>> = slots
            .into_iter()
            .map(|slot| slot.expect("every cell reports exactly once"))
            .collect();
        let failed = runs.iter().filter(|run| run.result.is_err()).count();
        if failed > 0 {
            self.write_trace_postmortem();
        }
        self.observer
            .on_run_complete(cells.len(), failed, started.elapsed());
        runs
    }

    /// Dumps the flight-recorder ring as Chrome trace JSON to the
    /// configured post-mortem path — the timeline counterpart of the
    /// journal tail [`StderrProgress`] prints on a cell panic.
    fn write_trace_postmortem(&self) {
        let Some(path) = self
            .trace
            .as_ref()
            .and_then(|config| config.postmortem.as_deref())
        else {
            return;
        };
        if !telemetry::trace_enabled() {
            return;
        }
        let json = telemetry::trace::export::chrome_json(&telemetry::trace_dump());
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("trace post-mortem written to {}", path.display()),
            Err(error) => eprintln!(
                "failed to write trace post-mortem {}: {error}",
                path.display()
            ),
        }
    }
}

fn execute<T, F>(index: usize, cell: &CellSpec, job: &F) -> CellRun<T>
where
    F: Fn(&CellSpec) -> T,
{
    let started = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| job(cell))).map_err(|payload| {
        let message = if let Some(text) = payload.downcast_ref::<&str>() {
            (*text).to_owned()
        } else if let Some(text) = payload.downcast_ref::<String>() {
            text.clone()
        } else {
            "non-string panic payload".to_owned()
        };
        CellError { message }
    });
    CellRun {
        index,
        result,
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpbench_models::{pentium3, xeon};

    #[test]
    fn cell_spec_builder_sets_every_knob() {
        let cell = CellSpec::new(Scenario::S5, pentium3())
            .prefixes(250)
            .seed(11)
            .cross_traffic(120.0)
            .packetization(25);
        assert_eq!(cell.scenario(), Scenario::S5);
        assert_eq!(cell.platform().name, "Pentium III");
        assert_eq!(cell.prefix_count(), 250);
        assert_eq!(cell.cell_seed(), 11);
        assert_eq!(cell.cross_traffic_mbps(), 120.0);
        let config = cell.scenario_config();
        assert_eq!(config.prefixes, 250);
        assert_eq!(config.seed, 11);
        assert_eq!(config.cross_traffic_mbps, 120.0);
    }

    #[test]
    fn cell_run_matches_direct_harness_call() {
        let cell = CellSpec::new(Scenario::S2, xeon()).prefixes(400).seed(3);
        let direct = crate::harness::run_scenario(&xeon(), Scenario::S2, &cell.scenario_config());
        let via_cell = cell.run();
        assert_eq!(direct, via_cell);
    }

    #[test]
    fn grid_spec_is_row_major() {
        let config = ExperimentConfig::quick();
        let spec = ExperimentSpec::grid(
            &[Scenario::S1, Scenario::S2],
            &[pentium3(), xeon()],
            &config,
        );
        assert_eq!(spec.len(), 4);
        let cells = spec.cells();
        assert_eq!(cells[0].scenario(), Scenario::S1);
        assert_eq!(cells[0].platform().name, "Pentium III");
        assert_eq!(cells[1].scenario(), Scenario::S1);
        assert_eq!(cells[1].platform().name, "Xeon");
        assert_eq!(cells[2].scenario(), Scenario::S2);
        // Sizing follows the scenario's packet class.
        assert_eq!(cells[0].prefix_count(), config.small_prefixes);
        assert_eq!(cells[2].prefix_count(), config.large_prefixes);
    }

    #[test]
    fn runner_clamps_zero_threads() {
        assert_eq!(GridRunner::new(0).threads(), 1);
        assert_eq!(GridRunner::serial().threads(), 1);
    }

    #[test]
    fn observer_sees_every_cell_in_order_when_serial() {
        use std::cell::RefCell;
        use std::rc::Rc;

        struct Recording(Rc<RefCell<Vec<String>>>);
        impl RunObserver for Recording {
            fn on_run_start(&mut self, total: usize) {
                self.0.borrow_mut().push(format!("start {total}"));
            }
            fn on_cell_start(&mut self, index: usize, _cell: &CellSpec) {
                self.0.borrow_mut().push(format!("cell {index}"));
            }
            fn on_cell_complete(
                &mut self,
                index: usize,
                _cell: &CellSpec,
                error: Option<&CellError>,
                _wall: Duration,
                _virtual_ticks: Option<u64>,
            ) {
                self.0
                    .borrow_mut()
                    .push(format!("done {index} ok={}", error.is_none()));
            }
            fn on_run_complete(&mut self, total: usize, failed: usize, _wall: Duration) {
                self.0.borrow_mut().push(format!("end {total} {failed}"));
            }
        }

        let cells = vec![
            CellSpec::new(Scenario::S2, xeon()).prefixes(100).seed(1),
            CellSpec::new(Scenario::S2, xeon()).prefixes(100).seed(2),
        ];
        let events = Rc::new(RefCell::new(Vec::new()));
        let mut runner = GridRunner::serial().with_observer(Box::new(Recording(events.clone())));
        let runs = runner.run_map(&cells, |cell| cell.cell_seed());
        assert_eq!(runs.len(), 2);
        assert_eq!(
            *events.borrow(),
            vec![
                "start 2",
                "cell 0",
                "done 0 ok=true",
                "cell 1",
                "done 1 ok=true",
                "end 2 0",
            ]
        );
    }

    #[test]
    fn panicking_job_is_captured_per_cell() {
        let cells = vec![
            CellSpec::new(Scenario::S2, xeon()).seed(1),
            CellSpec::new(Scenario::S2, xeon()).seed(2),
            CellSpec::new(Scenario::S2, xeon()).seed(3),
        ];
        let runs = GridRunner::new(2).run_map(&cells, |cell| {
            if cell.cell_seed() == 2 {
                panic!("injected fault in cell seed 2");
            }
            cell.cell_seed() * 10
        });
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].result, Ok(10));
        assert_eq!(runs[2].result, Ok(30));
        let err = runs[1].result.as_ref().unwrap_err();
        assert!(err.message.contains("injected fault"), "got: {err}");
    }

    #[test]
    fn parallel_results_come_back_in_grid_order() {
        let cells: Vec<CellSpec> = (0..16)
            .map(|i| CellSpec::new(Scenario::S2, xeon()).seed(i))
            .collect();
        let runs = GridRunner::new(8).run_map(&cells, |cell| cell.cell_seed());
        let seeds: Vec<u64> = runs.into_iter().map(|run| run.result.unwrap()).collect();
        assert_eq!(seeds, (0..16).collect::<Vec<u64>>());
    }
}
