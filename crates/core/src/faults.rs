//! Seeded fault plans for the session-churn scenarios (S9–S12).
//!
//! A [`FaultPlan`] is a tick-ordered schedule of link and session
//! faults, built deterministically from a seed. The topology engine
//! ([`crate::Topology`]) injects each due event at the simnet layer
//! before stepping the router, so the same plan produces the same
//! message interleaving — and therefore bit-identical convergence
//! reports — on every run, serial or parallel.

use crate::scenario::ChurnKind;

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Immediate session reset of one peer (administrative flap). The
    /// peer reconnects on its own and re-advertises its full table.
    Flap {
        /// Index of the affected peer.
        peer: usize,
    },
    /// The peer's link goes dark until the given tick: no handshake
    /// progress, no keepalives, no input. Outlasting the hold timer
    /// forces an expiry-driven session reset.
    BlackoutUntil {
        /// Index of the affected peer.
        peer: usize,
        /// First tick at which the link carries traffic again.
        until_tick: u64,
    },
    /// Drop the peer's next `n` messages on the wire.
    Drop {
        /// Index of the affected peer.
        peer: usize,
        /// Messages to drop.
        n: u32,
    },
    /// Swap the peer's next `pairs` message pairs on the wire.
    Reorder {
        /// Index of the affected peer.
        peer: usize,
        /// Message pairs to swap.
        pairs: u32,
    },
}

/// A fault scheduled at an absolute simulation tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Tick at which the fault fires.
    pub at_tick: u64,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic, tick-ordered fault schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan (no faults — S11's startup convergence).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan over explicit events (sorted by tick on construction;
    /// same-tick events keep their given order).
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at_tick);
        FaultPlan { events }
    }

    /// S9: `flaps` session resets at seeded-random ticks across
    /// `peers` random peers, with mean spacing `interval_ticks`, plus
    /// occasional seeded message drops and reorders between them.
    pub fn flap_storm(seed: u64, peers: usize, flaps: usize, interval_ticks: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut events = Vec::new();
        let window = interval_ticks.max(1) * flaps as u64;
        for _ in 0..flaps {
            let at_tick = 50 + rng.below(window.max(1));
            let peer = rng.below(peers as u64) as usize;
            events.push(FaultEvent {
                at_tick,
                action: FaultAction::Flap { peer },
            });
            // Roughly every other flap rides with a wire fault on
            // another seeded peer: a short loss burst or a swap.
            match rng.below(4) {
                0 => events.push(FaultEvent {
                    at_tick: 50 + rng.below(window.max(1)),
                    action: FaultAction::Drop {
                        peer: rng.below(peers as u64) as usize,
                        n: 1 + rng.below(3) as u32,
                    },
                }),
                1 => events.push(FaultEvent {
                    at_tick: 50 + rng.below(window.max(1)),
                    action: FaultAction::Reorder {
                        peer: rng.below(peers as u64) as usize,
                        pairs: 1 + rng.below(2) as u32,
                    },
                }),
                _ => {}
            }
        }
        FaultPlan::from_events(events)
    }

    /// S10: staggered blackouts, one per peer, each long enough to
    /// expire the hold timer (`hold_ticks` plus margin), starting
    /// `hold_ticks / 2` apart so the expiries cascade instead of
    /// coinciding.
    pub fn hold_expiry_cascade(peers: usize, hold_ticks: u64) -> Self {
        let stagger = (hold_ticks / 2).max(1);
        let events = (0..peers)
            .map(|peer| {
                let start = 100 + peer as u64 * stagger;
                FaultEvent {
                    at_tick: start,
                    action: FaultAction::BlackoutUntil {
                        peer,
                        until_tick: start + hold_ticks + hold_ticks / 4 + 10,
                    },
                }
            })
            .collect();
        FaultPlan::from_events(events)
    }

    /// S12: one peer restarts at `at_tick` and re-advertises its full
    /// table on re-establishment.
    pub fn restart(peer: usize, at_tick: u64) -> Self {
        FaultPlan::from_events(vec![FaultEvent {
            at_tick,
            action: FaultAction::Flap { peer },
        }])
    }

    /// The plan a churn scenario runs, sized from the cell's knobs.
    pub fn for_churn(
        churn: ChurnKind,
        seed: u64,
        peers: usize,
        flap_interval_ticks: u64,
        hold_ticks: u64,
    ) -> Self {
        match churn {
            ChurnKind::FlapStorm => {
                FaultPlan::flap_storm(seed, peers, peers * 2, flap_interval_ticks)
            }
            ChurnKind::HoldExpiryCascade => FaultPlan::hold_expiry_cascade(peers, hold_ticks),
            ChurnKind::StartupConvergence => FaultPlan::none(),
            ChurnKind::RestartResync => FaultPlan::restart(0, hold_ticks.max(200)),
        }
    }

    /// The scheduled events, tick-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The last tick at which anything fires (blackouts count until
    /// they lift), or 0 for the empty plan.
    pub fn horizon(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e.action {
                FaultAction::BlackoutUntil { until_tick, .. } => e.at_tick.max(until_tick),
                _ => e.at_tick,
            })
            .max()
            .unwrap_or(0)
    }
}

/// SplitMix64 — the workspace's no-dependency seeded generator (the
/// speaker crate uses the same construction for workload synthesis).
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` 0 yields 0.
    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let a = FaultPlan::flap_storm(7, 4, 8, 1000);
        let b = FaultPlan::flap_storm(7, 4, 8, 1000);
        let c = FaultPlan::flap_storm(8, 4, 8, 1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn events_come_back_tick_ordered() {
        let plan = FaultPlan::flap_storm(3, 5, 10, 700);
        let ticks: Vec<u64> = plan.events().iter().map(|e| e.at_tick).collect();
        let mut sorted = ticks.clone();
        sorted.sort_unstable();
        assert_eq!(ticks, sorted);
    }

    #[test]
    fn cascade_covers_every_peer_and_outlasts_hold() {
        let plan = FaultPlan::hold_expiry_cascade(3, 400);
        assert_eq!(plan.len(), 3);
        for (peer, event) in plan.events().iter().enumerate() {
            let FaultAction::BlackoutUntil {
                peer: p,
                until_tick,
            } = event.action
            else {
                panic!("cascade must be blackouts");
            };
            assert_eq!(p, peer);
            assert!(until_tick - event.at_tick > 400, "must outlast hold");
        }
    }

    #[test]
    fn horizon_accounts_for_blackout_tails() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                at_tick: 10,
                action: FaultAction::BlackoutUntil {
                    peer: 0,
                    until_tick: 900,
                },
            },
            FaultEvent {
                at_tick: 500,
                action: FaultAction::Flap { peer: 1 },
            },
        ]);
        assert_eq!(plan.horizon(), 900);
        assert_eq!(FaultPlan::none().horizon(), 0);
    }

    #[test]
    fn restart_is_a_single_flap() {
        let plan = FaultPlan::restart(2, 300);
        assert_eq!(
            plan.events(),
            &[FaultEvent {
                at_tick: 300,
                action: FaultAction::Flap { peer: 2 },
            }]
        );
    }
}
