//! The multi-peer topology engine behind the session-churn scenarios.
//!
//! Where the paper's harness hard-wires Speaker 1 → DUT → Speaker 2,
//! this module attaches N speakers to one simulated router and drives
//! a full RFC 4271 session FSM ([`bgpbench_daemon::SessionFsm`]) per
//! peer, one tick at a time, interleaved with a seeded [`FaultPlan`]:
//!
//! 1. due fault events are injected at the simnet layer (session
//!    flaps, link blackouts, message drops/reorders);
//! 2. each peer's FSM advances — the engine plays the remote endpoint,
//!    answering the handshake and delivering keepalives while the link
//!    is up;
//! 3. the router simulation advances exactly one tick.
//!
//! A session reaching Established opens the speaker's link and
//! (re-)advertises its full table; a session going down purges
//! everything learned from that peer and re-runs best-path selection.
//! The run converges when the plan is exhausted, every session is
//! Established, and the router has drained — the tick count and the
//! duplicate-update amplification are the scenario's metrics.

use std::net::Ipv4Addr;

use bgpbench_daemon::{FsmAction, FsmEvent, FsmState, SessionFsm, SessionTimers};
use bgpbench_models::{PlatformSpec, SimRouter, SpeakerHandle};
use bgpbench_rib::{PeerId, PeerInfo};
use bgpbench_speaker::{workload, SpeakerScript, TableGenerator};
use bgpbench_telemetry::{self as telemetry, EventKind, MetricId, TraceEventId};
use bgpbench_wire::{Asn, RouterId};

use crate::experiments::{Figure, Panel};
use crate::faults::{FaultAction, FaultPlan};
use crate::report::Render;
use crate::runner::{CellSpec, GridRunner};
use crate::scenario::Scenario;

/// Sizing of a churn run's topology and timers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologyConfig {
    /// Number of attached peers.
    pub peers: usize,
    /// Routing-table size each peer advertises.
    pub prefixes: usize,
    /// Workload seed (tables, fault plans).
    pub seed: u64,
    /// Hold time in simnet ticks (keepalive is derived as hold/3).
    /// Deliberately short next to RFC 4271's 90 s so expiry cascades
    /// fit in simulated seconds.
    pub hold_ticks: u64,
    /// Prefixes per UPDATE in the peers' scripts.
    pub prefixes_per_update: usize,
    /// Safety limit on the whole run, in ticks.
    pub limit_ticks: u64,
    /// RIB shard count on the router under test (host-side
    /// parallelism; results are bit-identical for every value).
    pub rib_shards: usize,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            peers: 4,
            prefixes: 1000,
            seed: 2007,
            hold_ticks: 900,
            prefixes_per_update: workload::LARGE_PACKET_PREFIXES,
            limit_ticks: 600_000,
            rib_shards: 1,
        }
    }
}

/// What a churn run measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceOutcome {
    /// Whether the run converged before the tick limit.
    pub converged: bool,
    /// Ticks from start to convergence (or the limit).
    pub ticks: u64,
    /// Established sessions that went down (FSM flap count, summed).
    pub flaps: u64,
    /// Prefix transactions announced beyond one full table per peer —
    /// the re-advertisement amplification caused by session churn.
    pub duplicate_updates: u64,
    /// Prefix transactions the router fully processed.
    pub transactions: u64,
    /// Prefixes purged by session-down best-path re-runs.
    pub purged_prefixes: u64,
}

/// Per-peer engine state alongside the FSM.
#[derive(Debug)]
struct PeerRuntime {
    handle: SpeakerHandle,
    fsm: SessionFsm,
    /// Link carries no traffic before this tick (blackout fault).
    blackout_until: u64,
    /// Ticks since the engine last delivered a keepalive.
    since_keepalive: u64,
    /// Prefix transactions announced before the last script reset.
    announced: u64,
    /// Mirror of the model's link gate, to issue transitions once.
    input_open: bool,
}

/// N speakers, one simulated router, a fault plan, and a per-peer
/// session FSM — the session-churn scenario engine.
#[derive(Debug)]
pub struct Topology {
    router: SimRouter,
    peers: Vec<PeerRuntime>,
    plan: FaultPlan,
    config: TopologyConfig,
    purged: u64,
}

impl Topology {
    /// Builds the topology: `config.peers` speakers (AS 65001+i at
    /// 10.0.0.2+i), each loaded with a full-table announcement script,
    /// all sessions Idle and all links closed until their FSMs reach
    /// Established.
    ///
    /// # Panics
    ///
    /// Panics if `config.peers` is zero or above 64, or
    /// `config.prefixes` is zero.
    pub fn new(platform: &PlatformSpec, config: &TopologyConfig, plan: FaultPlan) -> Self {
        assert!(
            (1..=64).contains(&config.peers),
            "peer count must be in 1..=64"
        );
        assert!(config.prefixes > 0, "topology needs at least one prefix");
        let infos: Vec<PeerInfo> = (0..config.peers)
            .map(|i| {
                let host = 2 + i as u32;
                PeerInfo::new(
                    PeerId(i as u32 + 1),
                    Asn(65001 + i as u16),
                    RouterId(0x0A00_0000 + host),
                    Ipv4Addr::new(10, 0, 0, host as u8),
                )
            })
            .collect();
        let mut router = SimRouter::with_peers(platform, &infos, Asn(65000));
        // Shard count must be set while the RIB is still empty.
        router.set_rib_shards(config.rib_shards);
        let table = TableGenerator::new(config.seed).generate(config.prefixes);
        let timers = SessionTimers {
            hold_ticks: config.hold_ticks.max(3),
            keepalive_ticks: (config.hold_ticks / 3).max(1),
            connect_retry_ticks: (config.hold_ticks / 2).max(1),
        };
        let peers = infos
            .iter()
            .enumerate()
            .map(|(i, info)| {
                let handle = SpeakerHandle(i);
                router.load_script(
                    handle,
                    SpeakerScript::new(workload::announcements(
                        &table,
                        &workload::AnnounceSpec {
                            speaker_asn: info.asn(),
                            path_len: 3,
                            next_hop: info.address(),
                            prefixes_per_update: config.prefixes_per_update,
                            seed: config.seed + i as u64,
                        },
                    )),
                );
                // Sessions start Idle: no input until Established.
                router.set_speaker_enabled(handle, false);
                let mut fsm = SessionFsm::new(timers);
                // Peer ids are 1-based on the trace timeline (0 means
                // "unlabeled"), matching the journal convention below.
                fsm.set_trace_label(i as u64 + 1);
                PeerRuntime {
                    handle,
                    fsm,
                    blackout_until: 0,
                    since_keepalive: 0,
                    announced: 0,
                    input_open: false,
                }
            })
            .collect();
        Topology {
            router,
            peers,
            plan,
            config: *config,
            purged: 0,
        }
    }

    /// Runs the tick loop to convergence (or the configured limit) and
    /// reports what happened. Records [`MetricId::SessionFlaps`],
    /// [`MetricId::DuplicateUpdates`], and
    /// [`MetricId::ConvergenceTicks`].
    pub fn run_to_convergence(&mut self) -> ConvergenceOutcome {
        let mut next_event = 0;
        let mut actions: Vec<FsmAction> = Vec::new();
        let mut tick: u64 = 0;
        let horizon = self.plan.horizon();
        let converged = loop {
            if tick >= self.config.limit_ticks {
                break false;
            }
            while next_event < self.plan.events().len()
                && self.plan.events()[next_event].at_tick <= tick
            {
                let action = self.plan.events()[next_event].action;
                next_event += 1;
                self.inject(action, tick, &mut actions);
            }
            for i in 0..self.peers.len() {
                self.step_peer(i, tick, &mut actions);
            }
            self.router.step();
            tick += 1;
            if next_event == self.plan.events().len()
                && tick > horizon
                && self
                    .peers
                    .iter()
                    .all(|p| p.fsm.state() == FsmState::Established)
                && self.router.is_quiescent()
            {
                break true;
            }
        };
        let flaps: u64 = self.peers.iter().map(|p| p.fsm.flaps()).sum();
        let total_announced: u64 = self
            .peers
            .iter()
            .map(|p| p.announced + self.router.speaker_transactions_taken(p.handle))
            .sum();
        let baseline = (self.peers.len() * self.config.prefixes) as u64;
        let duplicate_updates = total_announced.saturating_sub(baseline);
        telemetry::add(MetricId::DuplicateUpdates, duplicate_updates);
        telemetry::gauge(MetricId::ConvergenceTicks, tick);
        ConvergenceOutcome {
            converged,
            ticks: tick,
            flaps,
            duplicate_updates,
            transactions: self.router.transactions_done(),
            purged_prefixes: self.purged,
        }
    }

    /// Sets the cross-traffic offered load during the run.
    pub fn set_cross_traffic_mbps(&mut self, mbps: f64) {
        self.router.set_cross_traffic_mbps(mbps);
    }

    /// The simulated router, for post-run inspection.
    pub fn router(&self) -> &SimRouter {
        &self.router
    }

    /// Hands the router back (the harness returns it to figure
    /// drivers).
    pub fn into_router(self) -> SimRouter {
        self.router
    }

    /// Session states in peer order.
    pub fn session_states(&self) -> Vec<FsmState> {
        self.peers.iter().map(|p| p.fsm.state()).collect()
    }

    fn inject(&mut self, action: FaultAction, tick: u64, actions: &mut Vec<FsmAction>) {
        let (peer, kind) = match action {
            FaultAction::Flap { peer } => (peer, 1),
            FaultAction::BlackoutUntil { peer, .. } => (peer, 2),
            FaultAction::Drop { peer, .. } => (peer, 3),
            FaultAction::Reorder { peer, .. } => (peer, 4),
        };
        telemetry::trace_instant(TraceEventId::FaultInjected, peer as u64 + 1, kind);
        match action {
            FaultAction::Flap { peer } => {
                actions.clear();
                self.peers[peer].fsm.handle(FsmEvent::ManualStop, actions);
                self.apply_actions(peer, actions);
            }
            FaultAction::BlackoutUntil { peer, until_tick } => {
                self.peers[peer].blackout_until = until_tick.max(tick);
            }
            FaultAction::Drop { peer, n } => {
                self.router.drop_next(SpeakerHandle(peer), n);
            }
            FaultAction::Reorder { peer, pairs } => {
                self.router.reorder_next(SpeakerHandle(peer), pairs);
            }
        }
    }

    /// One engine tick for one peer: play the remote endpoint while
    /// the link is up, advance the FSM clock, apply the fallout, and
    /// reconcile the model's input gate with the session state.
    fn step_peer(&mut self, i: usize, tick: u64, actions: &mut Vec<FsmAction>) {
        let link_up = tick >= self.peers[i].blackout_until;
        actions.clear();
        if link_up {
            let keepalive_every = self.peers[i].fsm.timers().keepalive_ticks;
            match self.peers[i].fsm.state() {
                FsmState::Idle => self.peers[i].fsm.handle(FsmEvent::ManualStart, actions),
                FsmState::Connect => self.peers[i].fsm.handle(FsmEvent::TcpConnected, actions),
                FsmState::OpenSent => self.peers[i].fsm.handle(FsmEvent::OpenReceived, actions),
                FsmState::OpenConfirm => self.peers[i]
                    .fsm
                    .handle(FsmEvent::KeepaliveReceived, actions),
                FsmState::Established => {
                    self.peers[i].since_keepalive += 1;
                    if self.peers[i].since_keepalive >= keepalive_every {
                        self.peers[i].since_keepalive = 0;
                        self.peers[i]
                            .fsm
                            .handle(FsmEvent::KeepaliveReceived, actions);
                    }
                }
            }
        }
        self.peers[i].fsm.on_tick(actions);
        self.apply_actions(i, actions);
        let open = link_up && self.peers[i].fsm.state() == FsmState::Established;
        if open != self.peers[i].input_open {
            self.peers[i].input_open = open;
            self.router.set_speaker_enabled(self.peers[i].handle, open);
        }
    }

    /// Applies session-level consequences of FSM actions: purge on
    /// session down, full re-advertisement on session up.
    fn apply_actions(&mut self, i: usize, actions: &[FsmAction]) {
        let handle = self.peers[i].handle;
        for action in actions {
            match action {
                FsmAction::SessionDown => {
                    telemetry::incr(MetricId::SessionFlaps);
                    telemetry::event(EventKind::SessionDown, i as u64 + 1, 0);
                    telemetry::trace_instant(TraceEventId::SessionDown, i as u64 + 1, 0);
                    self.purged += self.router.purge_speaker(handle) as u64;
                }
                FsmAction::SessionUp => {
                    telemetry::event(EventKind::SessionUp, i as u64 + 1, 0);
                    telemetry::trace_instant(TraceEventId::SessionUp, i as u64 + 1, 0);
                    // BGP has no incremental resync: a fresh session
                    // re-advertises the whole table. Bank what the old
                    // session already sent (reset zeroes the counter),
                    // then rewind.
                    self.peers[i].announced += self.router.speaker_transactions_taken(handle);
                    self.router.reset_script(handle);
                    self.peers[i].since_keepalive = 0;
                }
                FsmAction::StartConnect
                | FsmAction::SendOpen
                | FsmAction::SendKeepalive
                | FsmAction::SendNotification => {}
            }
        }
    }
}

/// One churn cell's full result: the cell's identity plus what the
/// engine measured. `Eq` on purpose — the determinism contract is
/// bit-identical runs, not approximate agreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceRun {
    /// The fault scenario that ran (S9–S12).
    pub scenario: Scenario,
    /// The platform's display name.
    pub platform: &'static str,
    /// Attached peers.
    pub peers: usize,
    /// Table size each peer advertises.
    pub prefixes: usize,
    /// The cell seed (workload tables and fault plan).
    pub seed: u64,
    /// Mean flap spacing used for storm plans, in ticks.
    pub flap_interval_ticks: u64,
    /// What the run measured.
    pub outcome: ConvergenceOutcome,
}

/// The S9–S12 results as a renderable artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// One row per executed churn cell.
    pub runs: Vec<ConvergenceRun>,
}

impl Render for ConvergenceReport {
    fn title(&self) -> String {
        "Session-churn convergence (Scenarios 9-12)".to_owned()
    }

    fn text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n\n", self.title()));
        out.push_str(&format!(
            "{:<9} {:<12} {:>5} {:>8} {:>10} {:>6} {:>11} {:>12} {:>9}\n",
            "scenario",
            "platform",
            "peers",
            "prefixes",
            "conv_ticks",
            "flaps",
            "duplicates",
            "transactions",
            "converged"
        ));
        for run in &self.runs {
            out.push_str(&format!(
                "{:<9} {:<12} {:>5} {:>8} {:>10} {:>6} {:>11} {:>12} {:>9}\n",
                format!("{:?}", run.scenario),
                run.platform,
                run.peers,
                run.prefixes,
                run.outcome.ticks,
                run.outcome.flaps,
                run.outcome.duplicate_updates,
                run.outcome.transactions,
                if run.outcome.converged { "yes" } else { "NO" },
            ));
        }
        out
    }

    fn csv(&self) -> String {
        let mut out = String::from(
            "scenario,platform,peers,prefixes,seed,flap_interval_ticks,\
             converged,convergence_ticks,flaps,duplicate_updates,transactions,purged_prefixes\n",
        );
        for run in &self.runs {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{}\n",
                run.scenario.number(),
                run.platform,
                run.peers,
                run.prefixes,
                run.seed,
                run.flap_interval_ticks,
                run.outcome.converged,
                run.outcome.ticks,
                run.outcome.flaps,
                run.outcome.duplicate_updates,
                run.outcome.transactions,
                run.outcome.purged_prefixes,
            ));
        }
        out
    }
}

/// Runs every fault scenario (S9–S12) on every given platform through
/// the grid engine and collects the report. Cells execute across the
/// runner's thread pool; rows come back in grid order, so serial and
/// parallel runs are bit-identical.
///
/// # Panics
///
/// Panics if a cell itself panics (fault scenarios are expected to
/// converge within the engine's safety limit).
pub fn convergence_report(
    runner: &mut GridRunner,
    platforms: &[PlatformSpec],
    base: &CellSpec,
) -> ConvergenceReport {
    let cells: Vec<CellSpec> = Scenario::FAULTS
        .iter()
        .flat_map(|&scenario| {
            platforms.iter().map(move |platform| {
                base.clone()
                    .with_scenario_platform(scenario, platform.clone())
            })
        })
        .collect();
    let runs = runner
        .run_map(&cells, CellSpec::run_churn)
        .into_iter()
        .map(|run| run.result.expect("churn cell must complete"))
        .collect();
    ConvergenceReport { runs }
}

/// The flap-storm sweep (extension figure): ticks-to-converge and
/// duplicate-update amplification versus session flap rate, one series
/// per platform. `intervals` are mean flap spacings in ticks; the
/// x axis is the resulting flap rate in flaps per simulated second.
pub fn flap_storm_figure(
    runner: &mut GridRunner,
    platforms: &[PlatformSpec],
    intervals: &[u64],
    base: &CellSpec,
) -> Figure {
    let cells: Vec<CellSpec> = intervals
        .iter()
        .flat_map(|&interval| {
            platforms.iter().map(move |platform| {
                base.clone()
                    .with_scenario_platform(Scenario::S9, platform.clone())
                    .flap_interval(interval)
            })
        })
        .collect();
    let runs = runner.run_map(&cells, CellSpec::run_churn);
    let blank: Vec<(String, Vec<(f64, f64)>)> = platforms
        .iter()
        .map(|p| (p.name.to_owned(), Vec::new()))
        .collect();
    let mut ticks_series = blank.clone();
    let mut duplicate_series = blank;
    for (index, run) in runs.iter().enumerate() {
        let Ok(row) = &run.result else { continue };
        let platform = index % platforms.len();
        // Ticks are milliseconds, so rate = 1000 / spacing.
        let x = 1000.0 / intervals[index / platforms.len()] as f64;
        ticks_series[platform].1.push((x, row.outcome.ticks as f64));
        duplicate_series[platform]
            .1
            .push((x, row.outcome.duplicate_updates as f64));
    }
    Figure {
        title: "Flap-storm sweep: convergence cost versus session flap rate".to_owned(),
        panels: vec![
            Panel {
                title: "ticks to converge".to_owned(),
                series: ticks_series,
                marks: Vec::new(),
            },
            Panel {
                title: "duplicate prefix announcements".to_owned(),
                series: duplicate_series,
                marks: Vec::new(),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpbench_models::xeon;

    fn quick_config() -> TopologyConfig {
        TopologyConfig {
            peers: 3,
            prefixes: 120,
            seed: 1,
            hold_ticks: 300,
            limit_ticks: 120_000,
            ..TopologyConfig::default()
        }
    }

    #[test]
    fn faultless_startup_converges_with_no_duplicates() {
        let config = quick_config();
        let mut topo = Topology::new(&xeon(), &config, FaultPlan::none());
        let outcome = topo.run_to_convergence();
        assert!(outcome.converged, "startup must converge");
        assert_eq!(outcome.flaps, 0);
        assert_eq!(outcome.duplicate_updates, 0);
        assert_eq!(outcome.purged_prefixes, 0);
        assert_eq!(topo.router().loc_rib_len(), config.prefixes);
        assert_eq!(topo.router().fib_len(), config.prefixes);
        assert!(topo
            .session_states()
            .iter()
            .all(|s| *s == FsmState::Established));
    }

    #[test]
    fn a_flap_forces_a_full_readvertisement() {
        let config = quick_config();
        let plan = FaultPlan::restart(0, 2000);
        let mut topo = Topology::new(&xeon(), &config, plan);
        let outcome = topo.run_to_convergence();
        assert!(outcome.converged);
        assert_eq!(outcome.flaps, 1);
        assert!(
            outcome.duplicate_updates > 0,
            "restart must re-announce previously sent prefixes"
        );
        assert!(outcome.purged_prefixes > 0, "session down must purge");
        // The table heals completely after re-sync.
        assert_eq!(topo.router().loc_rib_len(), config.prefixes);
        assert_eq!(topo.router().fib_len(), config.prefixes);
    }

    #[test]
    fn blackout_expires_the_hold_timer_and_recovers() {
        let config = quick_config();
        let plan = FaultPlan::hold_expiry_cascade(1, config.hold_ticks);
        let mut topo = Topology::new(&xeon(), &config, plan);
        let outcome = topo.run_to_convergence();
        assert!(outcome.converged);
        assert!(outcome.flaps >= 1, "blackout must expire the hold timer");
        assert_eq!(topo.router().fib_len(), config.prefixes);
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let config = quick_config();
        let run = || {
            let plan = FaultPlan::flap_storm(config.seed, config.peers, 4, 1500);
            Topology::new(&xeon(), &config, plan).run_to_convergence()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "peer count")]
    fn zero_peers_panics() {
        let config = TopologyConfig {
            peers: 0,
            ..TopologyConfig::default()
        };
        let _ = Topology::new(&xeon(), &config, FaultPlan::none());
    }
}
