//! Live mode: the benchmark methodology applied to a real BGP daemon
//! over TCP.
//!
//! The paper's benchmark is explicitly "applicable to any BGP router";
//! this module is that claim realized in software — the same phases
//! and metric, but against a [`BgpDaemon`] (or, with minor adaptation,
//! any RFC 4271 speaker reachable over TCP), measured in wall-clock
//! time on the host machine.

use std::io;
use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

use bgpbench_daemon::BgpDaemon;
use bgpbench_speaker::{workload, LiveSpeaker, LiveSpeakerConfig, WorkloadSpec};
use bgpbench_wire::{Asn, RouterId};

use crate::harness::ScenarioResult;
use crate::scenario::{BgpOperation, Scenario, WorkloadKind};

/// Parameters of a live scenario run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveConfig {
    /// Routing-table size.
    pub prefixes: usize,
    /// Workload seed.
    pub seed: u64,
    /// Per-phase timeout.
    pub phase_timeout: Duration,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            prefixes: 10_000,
            seed: 2007,
            phase_timeout: Duration::from_secs(120),
        }
    }
}

fn speaker_config(asn: u16, id: u32) -> LiveSpeakerConfig {
    LiveSpeakerConfig {
        local_asn: Asn(asn),
        router_id: RouterId(id),
        hold_time_secs: 90,
    }
}

/// Waits until the daemon has processed `target` transactions,
/// returning the elapsed wall-clock seconds.
fn wait_transactions(daemon: &BgpDaemon, target: u64, timeout: Duration) -> io::Result<f64> {
    let start = Instant::now();
    loop {
        if daemon.snapshot().transactions >= target {
            return Ok(start.elapsed().as_secs_f64());
        }
        if start.elapsed() > timeout {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "daemon processed {} of {target} transactions before timeout",
                    daemon.snapshot().transactions
                ),
            ));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Runs one benchmark scenario against a live daemon, timing only the
/// scenario's relevant phase (wall-clock).
///
/// # Errors
///
/// Propagates socket errors and phase timeouts.
pub fn run_live_scenario(
    daemon: &BgpDaemon,
    scenario: Scenario,
    config: &LiveConfig,
) -> io::Result<ScenarioResult> {
    let mut source = match scenario.workload() {
        WorkloadKind::Classic => WorkloadSpec::Classic,
        WorkloadKind::Modern => WorkloadSpec::Modern,
    }
    .source(config.seed)
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let table = source.table(config.prefixes);
    let pkt = scenario.packet_size().prefixes_per_update();
    let n = table.len() as u64;
    let addr = daemon.local_addr();
    let handshake = Duration::from_secs(10);

    let mut speaker1 = LiveSpeaker::connect(addr, &speaker_config(65001, 0x0A00_0002), handshake)?;
    let base_spec = workload::AnnounceSpec {
        speaker_asn: Asn(65001),
        path_len: 3,
        next_hop: Ipv4Addr::new(127, 0, 0, 1),
        prefixes_per_update: workload::LARGE_PACKET_PREFIXES,
        seed: config.seed,
    };

    let (transactions, elapsed) = match scenario.operation() {
        BgpOperation::StartupAnnounce => {
            let updates = source.announcements(
                &table,
                &workload::AnnounceSpec {
                    prefixes_per_update: pkt,
                    ..base_spec
                },
            );
            let start = Instant::now();
            speaker1.flood(&updates)?;
            wait_transactions(daemon, n, config.phase_timeout)?;
            (n, start.elapsed().as_secs_f64())
        }
        BgpOperation::EndingWithdraw => {
            speaker1.flood(&source.announcements(&table, &base_spec))?;
            wait_transactions(daemon, n, config.phase_timeout)?;
            let updates = source.withdrawals(&table, pkt);
            let start = Instant::now();
            speaker1.flood(&updates)?;
            wait_transactions(daemon, 2 * n, config.phase_timeout)?;
            (n, start.elapsed().as_secs_f64())
        }
        BgpOperation::IncrementalNoChange | BgpOperation::IncrementalChange => {
            // Phase 1: inject.
            speaker1.flood(&source.announcements(&table, &base_spec))?;
            wait_transactions(daemon, n, config.phase_timeout)?;
            // Phase 2: speaker 2 connects and receives the table.
            let mut speaker2 =
                LiveSpeaker::connect(addr, &speaker_config(65002, 0x0A00_0003), handshake)?;
            speaker2.collect_routes_until(table.len(), 0, config.phase_timeout)?;
            // Phase 3: speaker 2 announces the same prefixes with a
            // longer (losing) or shorter (winning) path.
            let path_len = if scenario.operation() == BgpOperation::IncrementalNoChange {
                6
            } else {
                2
            };
            let updates = source.announcements(
                &table,
                &workload::AnnounceSpec {
                    speaker_asn: Asn(65002),
                    path_len,
                    next_hop: Ipv4Addr::new(127, 0, 0, 2),
                    prefixes_per_update: pkt,
                    seed: config.seed + 1,
                },
            );
            let start = Instant::now();
            speaker2.flood(&updates)?;
            wait_transactions(daemon, 2 * n, config.phase_timeout)?;
            (n, start.elapsed().as_secs_f64())
        }
        BgpOperation::UpdateTrainReplay => {
            // Phase 1: inject the full table.
            speaker1.flood(&source.announcements(&table, &base_spec))?;
            wait_transactions(daemon, n, config.phase_timeout)?;
            // Phase 3: replay the source's update train.
            let train = source.update_train(
                &table,
                &workload::AnnounceSpec {
                    prefixes_per_update: pkt,
                    ..base_spec
                },
            );
            let train_tx = workload::transaction_count(&train) as u64;
            let start = Instant::now();
            speaker1.flood(&train)?;
            wait_transactions(daemon, n + train_tx, config.phase_timeout)?;
            (train_tx, start.elapsed().as_secs_f64())
        }
        BgpOperation::SessionChurn => {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("{scenario} needs the simulated topology engine, not a live daemon"),
            ));
        }
        BgpOperation::ExportRewrite | BgpOperation::MedOscillation => {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("{scenario} needs route-map configuration, which the live daemon lacks"),
            ));
        }
    };

    Ok(ScenarioResult {
        scenario,
        platform: "live daemon",
        transactions,
        elapsed_secs: elapsed,
        cross_traffic_mbps: 0.0,
        completed: true,
        // The live daemon runs on host time; there is no simulator
        // clock to count.
        virtual_ticks: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpbench_daemon::DaemonConfig;

    fn quick_config() -> LiveConfig {
        LiveConfig {
            prefixes: 500,
            seed: 1,
            phase_timeout: Duration::from_secs(30),
        }
    }

    #[test]
    fn live_scenario_2_measures_real_throughput() {
        let daemon = BgpDaemon::start(DaemonConfig::default()).unwrap();
        let result = run_live_scenario(&daemon, Scenario::S2, &quick_config()).unwrap();
        assert_eq!(result.transactions, 500);
        assert!(result.tps() > 100.0, "live tps {}", result.tps());
        daemon.shutdown();
    }

    #[test]
    fn live_scenario_4_withdrawals() {
        let daemon = BgpDaemon::start(DaemonConfig::default()).unwrap();
        let result = run_live_scenario(&daemon, Scenario::S4, &quick_config()).unwrap();
        assert_eq!(result.transactions, 500);
        assert_eq!(daemon.snapshot().loc_rib_len, 0);
        daemon.shutdown();
    }

    #[test]
    fn live_scenario_6_no_fib_change() {
        let daemon = BgpDaemon::start(DaemonConfig::default()).unwrap();
        let result = run_live_scenario(&daemon, Scenario::S6, &quick_config()).unwrap();
        assert!(result.completed);
        let snapshot = daemon.snapshot();
        // Phase 3 must not have touched the FIB beyond phase 1.
        assert_eq!(snapshot.rib.fib_installs, 500);
        daemon.shutdown();
    }

    #[test]
    fn live_scenario_8_fib_change() {
        let daemon = BgpDaemon::start(DaemonConfig::default()).unwrap();
        let result = run_live_scenario(&daemon, Scenario::S8, &quick_config()).unwrap();
        assert!(result.completed);
        let snapshot = daemon.snapshot();
        // Phase 3 replaced every route: installs from phase 1 plus the
        // replacements.
        assert_eq!(snapshot.rib.fib_installs, 1000);
        daemon.shutdown();
    }
}
