//! The Fig. 3–4 per-process breakdown, derived from instrumentation.
//!
//! [`crate::experiments::figure3`] and [`crate::experiments::figure4`]
//! plot the per-process CPU series the simulator's cost model emits —
//! which reproduces the paper's *pictures*, but the decomposition there
//! is an input of the model. [`fig34_breakdown`] instead measures the
//! decomposition from the telemetry layer: the span tracer times the
//! real pipeline stages (`RibEngine::apply_update`, Adj-RIB-Out upkeep,
//! FIB writes) on the host clock, and the simulator attributes its
//! virtual cycles per process. Both sources must show the paper's
//! qualitative shape — the BGP process dominates, and the FEA's share
//! only materialises in the scenarios that change the forwarding table
//! — and now they show it because the instrumented code *did* that
//! work, not because a constant says so.
//!
//! The span decomposition has two components, the functional endpoints
//! of the pipeline: *bgp* (decision, export computation, Adj-RIB-Out
//! upkeep, propagation — all `xorp_bgp` work in XORP terms) and *fea*
//! (forwarding-table writes). XORP's central RIB process is an IPC
//! relay with no separate functional stage here; its modeled load
//! appears only in the cycle attribution.

use bgpbench_models::pentium3;
use bgpbench_telemetry::{self as telemetry, MetricId, Snapshot, SpanId};

use crate::experiments::ExperimentConfig;
use crate::report::Render;
use crate::runner::CellSpec;
use crate::scenario::Scenario;

/// The router-side component classes of the span breakdown, in column
/// order: the BGP process (decision, export computation, Adj-RIB-Out
/// upkeep, and propagation) and the FEA (FIB writes).
pub const BREAKDOWN_COMPONENTS: [&str; 2] = ["bgp", "fea"];

/// The scenarios where the paper's figures show the BGP process
/// dominating: Fig. 3 runs Scenario 6 and Fig. 4's small-packet panel
/// runs Scenario 1. The dominance check in
/// [`Fig34Breakdown::check_shape`] is scoped to these — Fig. 4's
/// large-packet panel (Scenario 2) shows the *opposite*: deep
/// downstream backlogs while `xorp_bgp` idles, which the packetization
/// check asserts instead.
pub const DOMINANCE_SCENARIOS: [Scenario; 2] = [Scenario::S1, Scenario::S6];

/// Process classes of the simulator-cycle breakdown, in column order.
pub const CYCLE_CLASSES: [&str; 8] = [
    "bgp",
    "policy",
    "rib",
    "fea",
    "rtrmgr",
    "kernel",
    "interrupts",
    "other",
];

const CYCLE_METRICS: [MetricId; 8] = [
    MetricId::CyclesBgp,
    MetricId::CyclesPolicy,
    MetricId::CyclesRib,
    MetricId::CyclesFea,
    MetricId::CyclesRtrmgr,
    MetricId::CyclesKernel,
    MetricId::CyclesInterrupt,
    MetricId::CyclesOther,
];

/// One scenario's measured decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakdownRow {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The platform's display name.
    pub platform: &'static str,
    /// Host-clock nanoseconds inside the component spans, in
    /// [`BREAKDOWN_COMPONENTS`] order.
    pub span_host_ns: [u64; 2],
    /// Number of spans entered per component, in
    /// [`BREAKDOWN_COMPONENTS`] order. Unlike the host-clock time this
    /// is deterministic for a given cell, so shape checks that compare
    /// scenarios lean on it.
    pub span_count: [u64; 2],
    /// Simulator cycles attributed to each process class, in
    /// [`CYCLE_CLASSES`] order.
    pub sim_cycles: [u64; 8],
}

impl BreakdownRow {
    /// Builds a row from the telemetry delta of one scenario run.
    pub fn from_snapshot(scenario: Scenario, platform: &'static str, delta: &Snapshot) -> Self {
        const COMPONENT_SPANS: [&[SpanId]; 2] = [
            &[
                SpanId::RibApplyUpdate,
                SpanId::ExportRoutes,
                SpanId::AdjOutSync,
                SpanId::AdjOutPacketize,
                SpanId::DaemonPropagate,
            ],
            &[SpanId::FibApply],
        ];
        let sum = |field: fn(&bgpbench_telemetry::SpanTotals) -> u64| {
            COMPONENT_SPANS.map(|ids| ids.iter().map(|id| field(&delta.span(*id))).sum())
        };
        BreakdownRow {
            scenario,
            platform,
            span_host_ns: sum(|totals| totals.host_ns),
            span_count: sum(|totals| totals.count),
            sim_cycles: CYCLE_METRICS.map(|id| delta.get(id)),
        }
    }

    /// A component's fraction of the row's total span time (0 when
    /// nothing was recorded).
    pub fn span_share(&self, component: usize) -> f64 {
        let total: u64 = self.span_host_ns.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.span_host_ns[component] as f64 / total as f64
        }
    }

    /// A process class's fraction of the row's total simulated cycles.
    pub fn cycle_share(&self, class: usize) -> f64 {
        let total: u64 = self.sim_cycles.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.sim_cycles[class] as f64 / total as f64
        }
    }
}

/// The measured Fig. 3–4 report: one row per scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig34Breakdown {
    /// Rows in [`Scenario::ALL`] order.
    pub rows: Vec<BreakdownRow>,
}

impl Fig34Breakdown {
    /// The row for a scenario.
    pub fn row(&self, scenario: Scenario) -> &BreakdownRow {
        self.rows
            .iter()
            .find(|row| row.scenario == scenario)
            .expect("one row per scenario")
    }

    /// Checks the paper's qualitative Fig. 3–4 observations against
    /// the *span-measured* decomposition, returning one message per
    /// violation (empty = shape reproduced).
    pub fn check_shape(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for &scenario in &DOMINANCE_SCENARIOS {
            // Fig. 3 and Fig. 4's small-packet panel: the BGP process
            // carries most of the router-side load.
            let row = self.row(scenario);
            if row.span_share(0) <= row.span_share(1) {
                violations.push(format!(
                    "{}: bgp span share {:.0}% does not dominate fea",
                    row.scenario,
                    100.0 * row.span_share(0)
                ));
            }
        }
        // Fig. 4's mechanism: batching 500 prefixes per UPDATE
        // amortises the per-message BGP work, so the downstream
        // forwarding-table share grows from the small-packet scenario
        // to the large-packet one.
        let small_fea = self.row(Scenario::S1).span_share(1);
        let large_fea = self.row(Scenario::S2).span_share(1);
        if small_fea >= large_fea {
            violations.push(format!(
                "S1 fea share {:.1}% not below large-packet S2 fea share {:.1}%",
                100.0 * small_fea,
                100.0 * large_fea
            ));
        }
        // FEA work only materialises when the forwarding table changes:
        // the no-change scenarios (5/6) must trigger fewer FIB-write
        // spans than the equivalents that replace the best route (7/8),
        // whose timed phase rewrites the forwarding table. Span counts
        // are deterministic per cell, unlike host-clock shares.
        for (lose, win) in [(Scenario::S5, Scenario::S7), (Scenario::S6, Scenario::S8)] {
            let lose_fea = self.row(lose).span_count[1];
            let win_fea = self.row(win).span_count[1];
            if lose_fea >= win_fea {
                violations.push(format!(
                    "{lose} fea spans ({lose_fea}) not below {win} fea spans ({win_fea})"
                ));
            }
        }
        violations
    }
}

/// Measures the Fig. 3–4 decomposition: every scenario on the Pentium
/// III (the paper's Fig. 4 platform), each cell attributed by
/// snapshot-diffing the global telemetry registry around its run.
///
/// Cells run serially on the calling thread by construction — the
/// registry is process-global, so overlapping cells would blend their
/// attribution. Telemetry is enabled for the duration and restored to
/// its prior state afterwards.
pub fn fig34_breakdown(config: &ExperimentConfig) -> Fig34Breakdown {
    let platform = pentium3();
    let was_enabled = telemetry::enabled();
    telemetry::enable();
    // One unmeasured warm-up cell: the first cell of a fresh process
    // otherwise pays the allocator's and page cache's cold-start costs
    // inside its spans, skewing the attribution.
    let _ = CellSpec::new(Scenario::S2, platform.clone())
        .prefixes(config.prefixes_for(Scenario::S2))
        .seed(config.seed)
        .run();
    // Each scenario runs three times and keeps, per component, the
    // *minimum* span host-ns across repetitions: host noise is
    // additive, and a scenario's span totals are small enough (a few
    // hundred µs) that a single scheduler preemption inside one span
    // would otherwise flip its share. Span counts and simulated
    // cycles are deterministic, so those come from the first run and
    // must agree across repetitions.
    const REPS: usize = 3;
    let rows = Scenario::ALL
        .iter()
        .map(|&scenario| {
            let mut combined: Option<BreakdownRow> = None;
            for _ in 0..REPS {
                let cell = CellSpec::new(scenario, platform.clone())
                    .prefixes(config.prefixes_for(scenario))
                    .seed(config.seed);
                let before = telemetry::snapshot();
                let _ = cell.run();
                let delta = telemetry::snapshot().diff(&before);
                let row = BreakdownRow::from_snapshot(scenario, platform.name, &delta);
                combined = Some(match combined.take() {
                    None => row,
                    Some(mut best) => {
                        debug_assert_eq!(best.span_count, row.span_count);
                        debug_assert_eq!(best.sim_cycles, row.sim_cycles);
                        for (kept, fresh) in best.span_host_ns.iter_mut().zip(row.span_host_ns) {
                            *kept = (*kept).min(fresh);
                        }
                        best
                    }
                });
            }
            combined.expect("REPS >= 1")
        })
        .collect();
    if !was_enabled {
        telemetry::disable();
    }
    Fig34Breakdown { rows }
}

impl Render for Fig34Breakdown {
    fn title(&self) -> String {
        "Figures 3-4 breakdown (measured)".to_owned()
    }

    fn text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figures 3-4: per-process breakdown measured by instrumentation"
        );
        let _ = writeln!(
            out,
            "(span shares from host-clock tracing; cycle shares from the simulator)"
        );
        let _ = writeln!(out, "{:-<76}", "");
        let _ = writeln!(
            out,
            "{:<12} | {:>7} {:>7} | {:>8} {:>8} {:>8} {:>8}",
            "Scenario", "bgp", "fea", "cyc:bgp", "cyc:rib", "cyc:fea", "cyc:other"
        );
        let _ = writeln!(out, "{:-<76}", "");
        for row in &self.rows {
            let cycle_other: f64 = [1, 4, 5, 6, 7].iter().map(|&c| row.cycle_share(c)).sum();
            let _ = writeln!(
                out,
                "{:<12} | {:>6.1}% {:>6.1}% | {:>7.1}% {:>7.1}% {:>7.1}% {:>8.1}%",
                format!("Scenario {}", row.scenario.number()),
                100.0 * row.span_share(0),
                100.0 * row.span_share(1),
                100.0 * row.cycle_share(0),
                100.0 * row.cycle_share(2),
                100.0 * row.cycle_share(3),
                100.0 * cycle_other,
            );
        }
        let _ = writeln!(out, "{:-<76}", "");
        out
    }

    fn csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("scenario,platform,source,component,value,share\n");
        for row in &self.rows {
            for (c, name) in BREAKDOWN_COMPONENTS.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{},{},span_host_ns,{},{},{:.6}",
                    row.scenario.number(),
                    row.platform,
                    name,
                    row.span_host_ns[c],
                    row.span_share(c)
                );
            }
            for (c, name) in BREAKDOWN_COMPONENTS.iter().enumerate() {
                let count = row.span_count[c];
                let total: u64 = row.span_count.iter().sum();
                let share = if total == 0 {
                    0.0
                } else {
                    count as f64 / total as f64
                };
                let _ = writeln!(
                    out,
                    "{},{},span_count,{},{},{:.6}",
                    row.scenario.number(),
                    row.platform,
                    name,
                    count,
                    share
                );
            }
            for (c, name) in CYCLE_CLASSES.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{},{},sim_cycles,{},{},{:.6}",
                    row.scenario.number(),
                    row.platform,
                    name,
                    row.sim_cycles[c],
                    row.cycle_share(c)
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(scenario: Scenario, span_host_ns: [u64; 2], sim_cycles: [u64; 8]) -> BreakdownRow {
        // One span per 10ns keeps counts proportional to the times.
        BreakdownRow {
            scenario,
            platform: "Pentium III",
            span_host_ns,
            span_count: span_host_ns.map(|ns| ns / 10),
            sim_cycles,
        }
    }

    fn shaped() -> Fig34Breakdown {
        // bgp dominates everywhere; extra fea only in the replace
        // scenarios.
        let rows = Scenario::ALL
            .iter()
            .map(|&scenario| {
                let fea = match scenario {
                    // The large-packet scenario leans on the FIB…
                    Scenario::S2 => 30,
                    // …and the replace scenarios rewrite it.
                    Scenario::S7 | Scenario::S8 => 20,
                    _ => 10,
                };
                row(scenario, [100, fea], [500, 5, 60, fea, 3, 20, 10, 0])
            })
            .collect();
        Fig34Breakdown { rows }
    }

    #[test]
    fn shares_sum_to_one_and_handle_empty_rows() {
        let full = row(Scenario::S1, [60, 40], [8, 0, 1, 1, 0, 0, 0, 0]);
        let span_total: f64 = (0..2).map(|c| full.span_share(c)).sum();
        assert!((span_total - 1.0).abs() < 1e-12);
        let cycle_total: f64 = (0..8).map(|c| full.cycle_share(c)).sum();
        assert!((cycle_total - 1.0).abs() < 1e-12);
        let empty = row(Scenario::S1, [0; 2], [0; 8]);
        assert_eq!(empty.span_share(0), 0.0);
        assert_eq!(empty.cycle_share(0), 0.0);
    }

    #[test]
    fn shape_checker_accepts_the_paper_shape() {
        assert!(shaped().check_shape().is_empty());
    }

    #[test]
    fn shape_checker_detects_violations() {
        let mut broken = shaped();
        // Make the FEA dominate scenario 1: bgp no longer leads.
        broken.rows[0].span_host_ns = [10, 100];
        let violations = broken.check_shape();
        assert!(
            violations.iter().any(|v| v.contains("Scenario 1")),
            "missed planted dominance violation: {violations:?}"
        );
        // Give the losing scenario 5 more FIB-write spans than
        // scenario 7.
        let mut inverted = shaped();
        inverted.rows[4].span_count[1] = 5;
        let violations = inverted.check_shape();
        assert!(
            violations.iter().any(|v| v.contains("fea spans")),
            "missed planted fea inversion: {violations:?}"
        );
    }

    #[test]
    fn renderings_cover_every_scenario() {
        let breakdown = shaped();
        let text = breakdown.text();
        for n in 1..=8 {
            assert!(text.contains(&format!("Scenario {n}")));
        }
        let csv = breakdown.csv();
        // Header + 8 scenarios x (2 span ns + 2 span count + 8 cycle)
        // rows.
        assert_eq!(csv.lines().count(), 1 + 8 * 12);
        assert!(csv.starts_with("scenario,platform,source,component,value,share\n"));
        assert!(csv.contains("1,Pentium III,span_host_ns,bgp,100,"));
        assert!(csv.contains("1,Pentium III,span_count,bgp,10,"));
    }
}
